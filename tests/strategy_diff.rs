//! Differential test for the incremental query machinery over the six
//! bundled evaluation protocols (Section 5.1): the `Fresh`, `Session`, and
//! `Parallel` strategies of the inductiveness checker must agree on every
//! verdict and name the same violation, and incremental BMC must agree with
//! fresh per-depth BMC. This is the end-to-end guarantee that solver-state
//! reuse (shared frames, assumption groups, learnt clauses, repaired
//! equality axioms) never changes an answer.

use ivy_core::{Bmc, Conjecture, Inductiveness, QueryStrategy, Verifier, Violation};
use ivy_protocols as p;
use ivy_rml::Program;

fn protocols() -> Vec<(&'static str, Program, Vec<Conjecture>)> {
    vec![
        ("leader", p::leader::program(), p::leader::invariant()),
        (
            "lock_server",
            p::lock_server::program(),
            p::lock_server::invariant(),
        ),
        (
            "distributed_lock",
            p::distributed_lock::program(),
            p::distributed_lock::invariant(),
        ),
        (
            "learning_switch",
            p::learning_switch::program(),
            p::learning_switch::invariant(),
        ),
        ("db_chain", p::db_chain::program(), p::db_chain::invariant()),
        ("chord", p::chord::program(), p::chord::invariant()),
    ]
}

fn check_with(program: &Program, strategy: QueryStrategy, inv: &[Conjecture]) -> Inductiveness {
    let mut v = Verifier::new(program);
    v.set_strategy(strategy);
    v.check(inv).unwrap()
}

fn violation_of(result: &Inductiveness) -> Option<Violation> {
    match result {
        Inductiveness::Inductive => None,
        Inductiveness::Cti(cti) => Some(cti.violation.clone()),
    }
}

#[test]
fn strategies_agree_on_all_protocols() {
    for (name, program, invariant) in protocols() {
        // The bundled invariant is inductive: every strategy must prove it.
        // Dropping its last conjecture usually breaks inductiveness: every
        // strategy must then report the same violation.
        let mut weakened = invariant.clone();
        weakened.pop();
        for inv in [&invariant, &weakened] {
            let reference = check_with(&program, QueryStrategy::Fresh, inv);
            for strategy in [QueryStrategy::Session, QueryStrategy::Parallel(4)] {
                let got = check_with(&program, strategy, inv);
                assert_eq!(
                    violation_of(&reference),
                    violation_of(&got),
                    "{name}: {strategy:?} disagrees with Fresh on {} conjectures",
                    inv.len()
                );
            }
        }
        assert!(
            check_with(&program, QueryStrategy::Session, &invariant).is_inductive(),
            "{name}: bundled invariant must verify"
        );
    }
}

#[test]
fn parallel_cti_selection_is_repeatable() {
    for (name, program, invariant) in protocols() {
        let mut weakened = invariant.clone();
        weakened.pop();
        let first = violation_of(&check_with(&program, QueryStrategy::Parallel(4), &weakened));
        for threads in [1, 8] {
            let again = violation_of(&check_with(
                &program,
                QueryStrategy::Parallel(threads),
                &weakened,
            ));
            assert_eq!(
                first, again,
                "{name}: parallel CTI selection varies with {threads} threads"
            );
        }
    }
}

#[test]
fn incremental_bmc_agrees_with_fresh() {
    for (name, program, _) in protocols() {
        let mut fresh = Bmc::new(&program);
        fresh.set_incremental(false);
        let mut incremental = Bmc::new(&program);
        incremental.set_incremental(true);
        let k = 2;
        let f = fresh.check_safety(k).unwrap();
        let i = incremental.check_safety(k).unwrap();
        match (&f, &i) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.violated, b.violated, "{name}");
                assert_eq!(a.steps(), b.steps(), "{name}: trace depth differs");
            }
            _ => panic!("{name}: incremental BMC disagrees with fresh at k={k}"),
        }
        // k-invariance of each declared safety property.
        for (label, phi) in &program.safety {
            let f = fresh.check_k_invariance(phi, k).unwrap();
            let i = incremental.check_k_invariance(phi, k).unwrap();
            assert_eq!(
                f.as_ref().map(|t| t.steps()),
                i.as_ref().map(|t| t.steps()),
                "{name}: k-invariance of `{label}` differs"
            );
        }
    }
}
