//! Cross-crate consistency: the paper's `wp`-based verification conditions
//! (Equation 2) agree with the transition-relation encoding the verifier
//! uses. Both are checked with the same EPR decision procedure; a candidate
//! invariant must be judged identically by the two encodings.

use ivy_repro::epr::{EprCheck, EprOutcome};
use ivy_repro::fol::{parse_formula, Formula};
use ivy_repro::ivy::{Conjecture, Verifier};
use ivy_repro::rml::{check_program, parse_program, wp, Program};

const SPREAD: &str = r#"
sort node
relation marked : node
relation blue : node
local n : node
variable seed : node
safety seed_marked: marked(seed)
init { marked(X0) := X0 = seed; blue(X0) := false }
action mark { havoc n; marked.insert(n) }
action unmark_blue { havoc n; assume blue(n); marked.remove(n) }
"#;

fn program() -> Program {
    let p = parse_program(SPREAD).unwrap();
    assert!(check_program(&p).is_empty());
    p
}

/// Checks consecution `A ∧ I ⇒ wp(C_body, I)` via the wp encoding.
fn wp_consecution_holds(p: &Program, inv: &Formula) -> bool {
    let axiom = p.axiom();
    let weakest = wp(&p.sig, &axiom, &p.body(), inv);
    let mut q = EprCheck::new(&p.sig).unwrap();
    q.assert_labeled("axiom", &axiom).unwrap();
    q.assert_labeled("inv", inv).unwrap();
    q.assert_labeled("neg_wp", &Formula::not(weakest)).unwrap();
    matches!(q.check().unwrap(), EprOutcome::Unsat(_))
}

#[test]
fn encodings_agree_on_inductive_invariants() {
    let p = program();
    let v = Verifier::new(&p);
    let candidates = [
        // Inductive: nothing restores blue marks... blue never set.
        "forall X:node. ~blue(X)",
        // Inductive: marked(seed) given no node is blue... NOT inductive
        // alone (unmark_blue could remove seed if blue(seed)); tests the
        // negative direction.
        "marked(seed)",
        // Inductive trivially.
        "forall X:node. marked(X) | ~marked(X)",
        // Not inductive: mark action breaks it.
        "forall X:node, Y:node. marked(X) & marked(Y) -> X = Y",
        // Not even initially true... consecution may or may not hold;
        // encodings must still agree.
        "forall X:node. ~marked(X)",
    ];
    for src in candidates {
        let inv = parse_formula(src).unwrap();
        let via_wp = wp_consecution_holds(&p, &inv);
        let via_trans = v
            .check_consecution(&[Conjecture::new("I", inv.clone())])
            .unwrap()
            .is_none();
        assert_eq!(
            via_wp, via_trans,
            "encodings disagree on consecution of `{src}`"
        );
    }
}

#[test]
fn wp_initiation_matches_verifier() {
    let p = program();
    let v = Verifier::new(&p);
    let axiom = p.axiom();
    for (src, _expected) in [
        ("marked(seed)", true),
        ("forall X:node. ~marked(X)", false),
        ("forall X:node. ~blue(X)", true),
    ] {
        let inv = parse_formula(src).unwrap();
        // wp encoding of initiation: A ⇒ wp(C_init, I).
        let weakest = wp(&p.sig, &axiom, &p.init, &inv);
        let mut q = EprCheck::new(&p.sig).unwrap();
        q.assert_labeled("axiom", &axiom).unwrap();
        q.assert_labeled("neg", &Formula::not(weakest)).unwrap();
        let via_wp = matches!(q.check().unwrap(), EprOutcome::Unsat(_));
        let via_trans = v
            .check_initiation(&[Conjecture::new("I", inv)])
            .unwrap()
            .is_none();
        assert_eq!(
            via_wp, via_trans,
            "initiation encodings disagree on `{src}`"
        );
    }
}

#[test]
fn wp_vcs_stay_in_decidable_fragment() {
    // Lemma 3.2 / Theorem 3.3 on real protocol bodies: the negated VC of
    // every universal conjecture is ∃*∀*.
    for (p, inv) in [
        (
            ivy_repro::protocols::leader::program(),
            ivy_repro::protocols::leader::invariant(),
        ),
        (
            ivy_repro::protocols::lock_server::program(),
            ivy_repro::protocols::lock_server::invariant(),
        ),
        (
            ivy_repro::protocols::chord::program(),
            ivy_repro::protocols::chord::invariant(),
        ),
    ] {
        let axiom = p.axiom();
        let conj = Formula::and(inv.iter().map(|c| c.formula.clone()));
        let weakest = wp(&p.sig, &axiom, &p.body(), &conj);
        assert!(
            ivy_repro::fol::is_ae_sentence(&weakest),
            "wp left ∀*∃* on a protocol body"
        );
        let vc = Formula::and([axiom, conj, Formula::not(weakest)]);
        assert!(ivy_repro::fol::is_ea_sentence(&vc), "negated VC left ∃*∀*");
    }
}
