//! Differential tests for `ivy_core::infer` — automatic invariant synthesis
//! from the safety properties alone (DESIGN.md §4i). Three guarantees:
//!
//! 1. Everything `infer` claims to have proved is *independently* checkable:
//!    a fresh `Verifier` (no shared state with the synthesis run) must find
//!    the returned clause set inductive, and the set must contain the
//!    program's safety properties — across the bundled evaluation protocols.
//! 2. The loop rides the oracle's frame cache: re-running synthesis through
//!    the same oracle must re-ground strictly fewer frames than the cold
//!    run did (the serve daemon exposes `infer` over the wire precisely to
//!    amortize this).
//! 3. Alpha-equivalence dedup in template enumeration is sound: adding the
//!    duplicates back changes neither Houdini's safety verdict nor the
//!    surviving clause set (up to renaming) — the dedup only removes work.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use ivy_core::{
    enumerate_candidates, houdini_with_oracle, infer, Conjecture, InferOptions, InferStatus,
    Oracle, Verifier,
};
use ivy_epr::Budget;
use ivy_fol::intern::intern;
use ivy_fol::{
    canonical_clause, sort_permutations, template_var, Binding, Formula, FormulaId, Sym, Term,
};
use ivy_protocols as p;

fn budgeted_oracle(secs: u64) -> Arc<Oracle> {
    let mut o = Oracle::new();
    o.set_budget(Budget::with_timeout(Duration::from_secs(secs)));
    Arc::new(o)
}

/// The inferred invariant must prove safety on most of the evaluation
/// protocols (the ROADMAP bar is 4 of 6; `bench_infer` enforces the same
/// gate on the committed run), and every `Proved` verdict must survive
/// independent re-verification by a verifier that shares nothing with the
/// synthesis run.
#[test]
fn infer_verdicts_survive_independent_reverification() {
    // (name, program, measures, include_constants, budget_secs) — Chord's
    // template is relation-only, exactly as `bench_infer` runs it (the
    // ring-anchor constants come back in via CTI-guided blocking). The two
    // protocols whose invariants need four-variable clauses (distributed
    // lock, learning switch) are expected to degrade to Unknown; they get a
    // short budget so the suite stays fast — what matters is that they
    // degrade *gracefully*, never with a hard error or a wrong verdict.
    let entries: Vec<(&str, ivy_rml::Program, Vec<ivy_core::Measure>, bool, u64)> = vec![
        (
            "leader",
            p::leader::program(),
            p::leader::measures(),
            true,
            240,
        ),
        (
            "lock_server",
            p::lock_server::program(),
            p::lock_server::measures(),
            true,
            240,
        ),
        (
            "distributed_lock",
            p::distributed_lock::program(),
            p::distributed_lock::measures(),
            true,
            30,
        ),
        (
            "learning_switch",
            p::learning_switch::program(),
            p::learning_switch::measures(),
            true,
            30,
        ),
        (
            "db_chain",
            p::db_chain::program(),
            p::db_chain::measures(),
            true,
            240,
        ),
        (
            "chord",
            p::chord::program(),
            p::chord::measures(),
            false,
            240,
        ),
    ];
    let total = entries.len();
    let mut proved = 0usize;
    for (name, program, measures, include_constants, budget_secs) in entries {
        let oracle = budgeted_oracle(budget_secs);
        let opts = InferOptions {
            measures,
            include_constants,
            ..InferOptions::default()
        };
        let report = match infer(&program, &oracle, &opts) {
            Ok(r) => r,
            // An exhausted budget is an honest Unknown, not a failure —
            // but it must arrive as `Inconclusive`, never a hard error.
            Err(ivy_epr::EprError::Inconclusive(_)) => continue,
            Err(e) => panic!("{name}: infer failed hard: {e}"),
        };
        if report.status != InferStatus::Proved {
            continue;
        }
        proved += 1;
        // Independent re-verification with a fresh verifier.
        let checked = Verifier::new(&program)
            .check(&report.invariant)
            .unwrap_or_else(|e| panic!("{name}: re-verification errored: {e}"));
        assert!(
            checked.is_inductive(),
            "{name}: inferred invariant is not independently inductive"
        );
        // The invariant must actually contain the safety properties —
        // inductiveness of the set then implies safety.
        for (label, _) in &program.safety {
            assert!(
                report
                    .invariant
                    .iter()
                    .any(|c| c.name == format!("S_{label}")),
                "{name}: safety property {label} missing from the invariant"
            );
        }
    }
    assert!(
        proved * 6 >= total * 4,
        "only {proved}/{total} protocols proved from safety alone (need 4/6)"
    );
}

/// Synthesis through a warm oracle re-grounds strictly fewer frames than
/// the cold run: the loop's Houdini passes, CTI searches, and BMC frames
/// are all keyed in the shared session pool.
#[test]
fn rerunning_infer_rides_the_frame_cache() {
    let program = p::lock_server::program();
    let oracle = budgeted_oracle(240);
    let opts = InferOptions {
        measures: p::lock_server::measures(),
        ..InferOptions::default()
    };
    let cold = infer(&program, &oracle, &opts).expect("cold run");
    assert_eq!(cold.status, InferStatus::Proved, "{cold:?}");
    let mid = oracle.rollup();
    assert!(mid.frame_misses > 0, "cold run must build frames");

    let warm = infer(&program, &oracle, &opts).expect("warm run");
    let end = oracle.rollup();
    // Same verdict, same invariant — the cache must not change answers.
    assert_eq!(warm.status, InferStatus::Proved);
    assert_eq!(
        cold.invariant
            .iter()
            .map(|c| c.formula.clone())
            .collect::<Vec<_>>(),
        warm.invariant
            .iter()
            .map(|c| c.formula.clone())
            .collect::<Vec<_>>(),
        "warm run synthesized a different invariant"
    );
    let warm_misses = end.frame_misses - mid.frame_misses;
    assert!(
        warm_misses < mid.frame_misses,
        "warm run re-ground {warm_misses} frames, cold ground {}",
        mid.frame_misses
    );
    assert!(
        end.frame_hits > mid.frame_hits,
        "warm run never hit the session cache"
    );
}

/// The disjuncts of a clause body, interned.
fn disjuncts(f: &Formula) -> Vec<FormulaId> {
    match f {
        Formula::Or(parts) => parts.iter().map(intern).collect(),
        other => vec![intern(other)],
    }
}

/// Enumeration dedups alpha-variants (Chord's 2-variable / 2-literal
/// template, the paper's Section 5.1 seed): every emitted clause is
/// canonically distinct, hand-built alpha-variants of emitted clauses fall
/// into existing equivalence classes (so an enumeration without the dedup
/// would emit strictly more clauses), and running Houdini with the
/// duplicates added back changes neither the safety verdict nor the
/// surviving clause set up to renaming.
#[test]
fn chord_dedup_drops_alpha_variants_without_changing_survivors() {
    let program = p::chord::program();
    let deduped = enumerate_candidates(&program.sig, 2, 2);

    // Canonical keys over the full template variable pool.
    let mut bindings: Vec<Binding> = Vec::new();
    for sort in program.sig.sorts() {
        for i in 0..2 {
            bindings.push(Binding::new(template_var(sort, i), *sort));
        }
    }
    let perms = sort_permutations(&bindings);
    let key_of = |f: &Formula| -> Vec<FormulaId> {
        let body = match f {
            Formula::Forall(_, body) => body.as_ref(),
            other => other,
        };
        canonical_clause(&disjuncts(body), &perms)
    };

    // 1. Every emitted clause is its own alpha-equivalence class.
    let mut keys = HashSet::new();
    for c in &deduped {
        assert!(
            keys.insert(key_of(&c.formula)),
            "enumeration emitted two alpha-variants: {}",
            c.formula
        );
    }

    // 2. Swapping the two node variables yields alpha-variants that land in
    //    already-emitted classes: a dedup-free enumeration would have
    //    emitted them too, so the deduped count is a strict drop.
    let mut swap: BTreeMap<Sym, Term> = BTreeMap::new();
    for sort in program.sig.sorts() {
        swap.insert(template_var(sort, 0), Term::Var(template_var(sort, 1)));
        swap.insert(template_var(sort, 1), Term::Var(template_var(sort, 0)));
    }
    let mut variants: Vec<Conjecture> = Vec::new();
    for (i, c) in deduped.iter().enumerate() {
        let (binds, body) = match &c.formula {
            Formula::Forall(b, body) => (b.clone(), body.as_ref().clone()),
            other => (Vec::new(), other.clone()),
        };
        if binds.iter().filter(|b| b.sort == binds[0].sort).count() < 2 {
            continue; // nothing to permute
        }
        let swapped_body = ivy_fol::subst::subst_vars(&body, &swap);
        if swapped_body == body {
            continue; // symmetric clause, the swap is the identity
        }
        let renamed: Vec<Binding> = binds
            .iter()
            .map(|b| match swap.get(&b.var) {
                Some(Term::Var(v)) => Binding::new(*v, b.sort),
                _ => b.clone(),
            })
            .collect();
        let variant = Formula::forall(renamed, swapped_body);
        assert!(
            keys.contains(&key_of(&variant)),
            "alpha-variant of {} escaped its equivalence class",
            c.formula
        );
        variants.push(Conjecture::new(format!("D{i}"), variant));
    }
    assert!(
        variants.len() > deduped.len() / 4,
        "too few genuine alpha-variants ({} of {}) to exercise the dedup",
        variants.len(),
        deduped.len()
    );

    // 3. Houdini over the deduped set and over deduped ∪ variants: the
    //    duplicates are just as inductive as their originals, so the
    //    verdict and the surviving classes must match exactly.
    let baseline = houdini_with_oracle(&program, deduped.clone(), &budgeted_oracle(240))
        .expect("houdini on the deduped set");
    let mut padded = deduped.clone();
    padded.extend(variants);
    let with_dupes = houdini_with_oracle(&program, padded, &budgeted_oracle(240))
        .expect("houdini on the padded set");
    assert_eq!(baseline.proves_safety, with_dupes.proves_safety);
    let classes = |cs: &[Conjecture]| -> HashSet<Vec<FormulaId>> {
        cs.iter().map(|c| key_of(&c.formula)).collect()
    };
    assert_eq!(
        classes(&baseline.invariant),
        classes(&with_dupes.invariant),
        "adding alpha-duplicates changed the surviving clause set"
    );
}
