//! Cross-crate property test: the axiomatic semantics (`wp`, Figure 13)
//! agrees with the operational semantics (the explicit-state interpreter).
//!
//! If `s ⊨ wp(C, Q)` then no execution of `C` from `s` aborts, and every
//! completed execution ends in a state satisfying `Q`.

use ivy_repro::fol::{Formula, Signature, Structure, Sym, Term};
use ivy_repro::rml::{exec_all, wp, Cmd, ExecOutcome};
use proptest::prelude::*;
use std::sync::Arc;

fn signature() -> Signature {
    let mut sig = Signature::new();
    sig.add_sort("s").unwrap();
    sig.add_relation("r", ["s"]).unwrap();
    sig.add_relation("q", ["s", "s"]).unwrap();
    sig.add_constant("a", "s").unwrap();
    sig.add_constant("b", "s").unwrap();
    sig
}

/// Random structure over `signature()` with 1..=3 elements.
fn arb_structure() -> impl Strategy<Value = Structure> {
    (1usize..=3, any::<u64>()).prop_map(|(n, seed)| {
        let mut s = Structure::new(Arc::new(signature()));
        let elems: Vec<_> = (0..n).map(|_| s.add_element("s")).collect();
        let mut bits = seed;
        let mut next = || {
            bits = bits.wrapping_mul(6364136223846793005).wrapping_add(1);
            (bits >> 33) as usize
        };
        s.set_fun("a", vec![], elems[next() % n].clone());
        s.set_fun("b", vec![], elems[next() % n].clone());
        for e in &elems {
            s.set_rel("r", vec![e.clone()], next() % 2 == 0);
            for f in &elems {
                s.set_rel("q", vec![e.clone(), f.clone()], next() % 2 == 0);
            }
        }
        s
    })
}

/// Random loop-free command over the signature.
fn arb_cmd() -> impl Strategy<Value = Cmd> {
    let atomic = prop_oneof![
        Just(Cmd::Skip),
        Just(Cmd::Abort),
        Just(Cmd::Havoc(Sym::new("a"))),
        Just(Cmd::Havoc(Sym::new("b"))),
        Just(Cmd::Assume(
            ivy_repro::fol::parse_formula("r(a)").unwrap()
        )),
        Just(Cmd::Assume(
            ivy_repro::fol::parse_formula("exists X:s. q(X, b)").unwrap()
        )),
        Just(Cmd::insert_tuple(
            "r",
            vec![Sym::new("X0")],
            vec![Term::cst("a")]
        )),
        Just(Cmd::remove_tuple(
            "r",
            vec![Sym::new("X0")],
            vec![Term::cst("b")]
        )),
        Just(Cmd::UpdateRel {
            rel: Sym::new("q"),
            params: vec![Sym::new("X0"), Sym::new("X1")],
            body: ivy_repro::fol::parse_formula("q(X1, X0)").unwrap(),
        }),
        Just(Cmd::UpdateRel {
            rel: Sym::new("r"),
            params: vec![Sym::new("X0")],
            body: ivy_repro::fol::parse_formula("q(X0, X0) | X0 = a").unwrap(),
        }),
    ];
    let seq = proptest::collection::vec(atomic.clone(), 1..=3).prop_map(Cmd::seq);
    let choice = proptest::collection::vec(seq.clone(), 1..=2).prop_map(Cmd::choice);
    prop_oneof![atomic, seq, choice]
}

fn post_conditions() -> Vec<Formula> {
    [
        "r(a)",
        "forall X:s. r(X) -> q(X, X)",
        "exists X:s. ~r(X)",
        "a = b",
        "forall X:s, Y:s. q(X, Y) -> q(Y, X)",
    ]
    .iter()
    .map(|s| ivy_repro::fol::parse_formula(s).unwrap())
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Soundness of wp: states satisfying wp(C, Q) only execute into Q.
    #[test]
    fn wp_is_sound(state in arb_structure(), cmd in arb_cmd(), qi in 0usize..5) {
        let sig = signature();
        let post = &post_conditions()[qi];
        let pre = wp(&sig, &Formula::True, &cmd, post);
        let holds = state.eval_closed(&pre).unwrap();
        let outcomes = exec_all(&Formula::True, &cmd, &state).unwrap();
        if holds {
            for o in &outcomes {
                match o {
                    ExecOutcome::Aborted => prop_assert!(false, "wp held but execution aborted"),
                    ExecOutcome::Done(s2) => {
                        prop_assert!(
                            s2.eval_closed(post).unwrap(),
                            "wp held but post failed in {s2}"
                        );
                    }
                    ExecOutcome::Blocked => {}
                }
            }
        }
    }

    /// Completeness on deterministic commands: when every execution
    /// satisfies Q and none aborts or blocks, wp(C, Q) holds (wp is the
    /// *weakest* precondition).
    #[test]
    fn wp_is_weakest(state in arb_structure(), cmd in arb_cmd(), qi in 0usize..5) {
        let sig = signature();
        let post = &post_conditions()[qi];
        let outcomes = exec_all(&Formula::True, &cmd, &state).unwrap();
        let all_good = !outcomes.is_empty()
            && outcomes.iter().all(|o| match o {
                ExecOutcome::Done(s2) => s2.eval_closed(post).unwrap(),
                ExecOutcome::Aborted => false,
                ExecOutcome::Blocked => true,
            });
        if all_good {
            let pre = wp(&sig, &Formula::True, &cmd, post);
            prop_assert!(
                state.eval_closed(&pre).unwrap(),
                "every run satisfies Q but wp fails; cmd = {cmd}"
            );
        }
    }
}
