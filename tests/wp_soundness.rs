//! Cross-crate property test: the axiomatic semantics (`wp`, Figure 13)
//! agrees with the operational semantics (the explicit-state interpreter).
//!
//! If `s ⊨ wp(C, Q)` then no execution of `C` from `s` aborts, and every
//! completed execution ends in a state satisfying `Q`.
//!
//! Inputs come from a deterministic in-repo PRNG for reproducibility.

use ivy_repro::fol::{Formula, Signature, Structure, Sym, Term};
use ivy_repro::rml::{exec_all, wp, Cmd, ExecOutcome};
use std::sync::Arc;

/// Deterministic splitmix64 generator.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed.wrapping_add(0x9e3779b97f4a7c15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

fn signature() -> Signature {
    let mut sig = Signature::new();
    sig.add_sort("s").unwrap();
    sig.add_relation("r", ["s"]).unwrap();
    sig.add_relation("q", ["s", "s"]).unwrap();
    sig.add_constant("a", "s").unwrap();
    sig.add_constant("b", "s").unwrap();
    sig
}

/// Random structure over `signature()` with 1..=3 elements.
fn arb_structure(g: &mut Gen) -> Structure {
    let n = 1 + g.below(3);
    let mut s = Structure::new(Arc::new(signature()));
    let elems: Vec<_> = (0..n).map(|_| s.add_element("s")).collect();
    s.set_fun("a", vec![], elems[g.below(n)].clone());
    s.set_fun("b", vec![], elems[g.below(n)].clone());
    for e in &elems {
        s.set_rel("r", vec![e.clone()], g.below(2) == 0);
        for f in &elems {
            s.set_rel("q", vec![e.clone(), f.clone()], g.below(2) == 0);
        }
    }
    s
}

fn arb_atomic(g: &mut Gen) -> Cmd {
    match g.below(10) {
        0 => Cmd::Skip,
        1 => Cmd::Abort,
        2 => Cmd::Havoc(Sym::new("a")),
        3 => Cmd::Havoc(Sym::new("b")),
        4 => Cmd::Assume(ivy_repro::fol::parse_formula("r(a)").unwrap()),
        5 => Cmd::Assume(ivy_repro::fol::parse_formula("exists X:s. q(X, b)").unwrap()),
        6 => Cmd::insert_tuple("r", vec![Sym::new("X0")], vec![Term::cst("a")]),
        7 => Cmd::remove_tuple("r", vec![Sym::new("X0")], vec![Term::cst("b")]),
        8 => Cmd::UpdateRel {
            rel: Sym::new("q"),
            params: vec![Sym::new("X0"), Sym::new("X1")],
            body: ivy_repro::fol::parse_formula("q(X1, X0)").unwrap(),
        },
        _ => Cmd::UpdateRel {
            rel: Sym::new("r"),
            params: vec![Sym::new("X0")],
            body: ivy_repro::fol::parse_formula("q(X0, X0) | X0 = a").unwrap(),
        },
    }
}

/// Random loop-free command over the signature.
fn arb_cmd(g: &mut Gen) -> Cmd {
    let seq = |g: &mut Gen| {
        let len = 1 + g.below(3);
        Cmd::seq((0..len).map(|_| arb_atomic(g)).collect::<Vec<_>>())
    };
    match g.below(3) {
        0 => arb_atomic(g),
        1 => seq(g),
        _ => {
            let branches = 1 + g.below(2);
            Cmd::choice((0..branches).map(|_| seq(g)).collect::<Vec<_>>())
        }
    }
}

fn post_conditions() -> Vec<Formula> {
    [
        "r(a)",
        "forall X:s. r(X) -> q(X, X)",
        "exists X:s. ~r(X)",
        "a = b",
        "forall X:s, Y:s. q(X, Y) -> q(Y, X)",
    ]
    .iter()
    .map(|s| ivy_repro::fol::parse_formula(s).unwrap())
    .collect()
}

/// Soundness of wp: states satisfying wp(C, Q) only execute into Q.
#[test]
fn wp_is_sound() {
    let mut g = Gen::new(0x3b01);
    let posts = post_conditions();
    for case in 0..128 {
        let state = arb_structure(&mut g);
        let cmd = arb_cmd(&mut g);
        let post = &posts[g.below(posts.len())];
        let sig = signature();
        let pre = wp(&sig, &Formula::True, &cmd, post);
        let holds = state.eval_closed(&pre).unwrap();
        let outcomes = exec_all(&Formula::True, &cmd, &state).unwrap();
        if holds {
            for o in &outcomes {
                match o {
                    ExecOutcome::Aborted => panic!("case {case}: wp held but execution aborted"),
                    ExecOutcome::Done(s2) => {
                        assert!(
                            s2.eval_closed(post).unwrap(),
                            "case {case}: wp held but post failed in {s2}"
                        );
                    }
                    ExecOutcome::Blocked => {}
                }
            }
        }
    }
}

/// Completeness on deterministic commands: when every execution
/// satisfies Q and none aborts or blocks, wp(C, Q) holds (wp is the
/// *weakest* precondition).
#[test]
fn wp_is_weakest() {
    let mut g = Gen::new(0x3b02);
    let posts = post_conditions();
    for _ in 0..128 {
        let state = arb_structure(&mut g);
        let cmd = arb_cmd(&mut g);
        let post = &posts[g.below(posts.len())];
        let sig = signature();
        let outcomes = exec_all(&Formula::True, &cmd, &state).unwrap();
        let all_good = !outcomes.is_empty()
            && outcomes.iter().all(|o| match o {
                ExecOutcome::Done(s2) => s2.eval_closed(post).unwrap(),
                ExecOutcome::Aborted => false,
                ExecOutcome::Blocked => true,
            });
        if all_good {
            let pre = wp(&sig, &Formula::True, &cmd, post);
            assert!(
                state.eval_closed(&pre).unwrap(),
                "every run satisfies Q but wp fails; cmd = {cmd}"
            );
        }
    }
}
