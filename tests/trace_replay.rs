//! Differential testing of bounded verification against the interpreter:
//! every symbolic BMC trace must replay concretely, and properties BMC
//! declares `k`-invariant must survive random concrete walks of length `k`.

use ivy_repro::fol::parse_formula;
use ivy_repro::ivy::Bmc;
use ivy_repro::protocols::leader;
use ivy_repro::rml::interp::rand_like::XorShift;
use ivy_repro::rml::{exec_all, step_random, ExecOutcome};

#[test]
fn figure4_trace_replays_concretely() {
    let program = leader::program_without_unique_ids();
    let bmc = Bmc::new(&program);
    let trace = bmc.check_safety(4).unwrap().expect("bug reachable");
    let axiom = program.axiom();
    for i in 0..trace.steps() {
        let action = program
            .action(&trace.actions[i])
            .unwrap_or_else(|| panic!("unlabeled step {i}"));
        let outcomes = exec_all(&axiom, &action.cmd, &trace.states[i]).unwrap();
        let replayed = outcomes.iter().any(|o| match o {
            ExecOutcome::Done(s) => s == &trace.states[i + 1],
            _ => false,
        });
        assert!(replayed, "step {i} ({}) does not replay", trace.actions[i]);
    }
}

#[test]
fn k_invariant_properties_survive_random_walks() {
    let program = leader::program();
    let bmc = Bmc::new(&program);
    // BMC says: at most one leader within 3 iterations.
    let phi = parse_formula(leader::C0).unwrap();
    assert!(bmc.check_k_invariance(&phi, 3).unwrap().is_none());
    // Concrete check: seed initial states from a BMC model of depth 0 by
    // asking for ANY reachable state (satisfying the trivially-true
    // property's negation is unsat, so instead take the state from a trace
    // of the always-false property).
    let bad = parse_formula("false").unwrap();
    let trace = bmc
        .check_k_invariance(&bad, 0)
        .unwrap()
        .expect("initial states exist");
    let initial = trace.states[0].clone();
    assert!(initial.eval_closed(&phi).unwrap());
    // Random walks of length 3 from that state keep the property.
    for seed in 1..40u64 {
        let mut rng = XorShift::new(seed);
        let mut state = initial.clone();
        for _ in 0..3 {
            let (_, outcome) = step_random(&program, &state, &mut rng, 10).unwrap();
            match outcome {
                ExecOutcome::Done(next) => state = next,
                ExecOutcome::Blocked => continue,
                ExecOutcome::Aborted => panic!("abort during walk"),
            }
            assert!(
                state.eval_closed(&phi).unwrap(),
                "property broke on a concrete walk: {state}"
            );
        }
    }
}

#[test]
fn interpreter_and_bmc_agree_on_buggy_model() {
    // With duplicate ids allowed, random walks can produce two leaders; BMC
    // must also find the violation (and does, per figure4 test). Here we
    // drive the interpreter along the BMC trace prefix and confirm the
    // final state violates safety concretely.
    let program = leader::program_without_unique_ids();
    let bmc = Bmc::new(&program);
    let trace = bmc.check_safety(4).unwrap().expect("bug reachable");
    let last = trace.states.last().unwrap();
    let phi = parse_formula(leader::C0).unwrap();
    assert!(!last.eval_closed(&phi).unwrap());
}
