//! Differential test for the unified solver oracle over the six bundled
//! evaluation protocols (Section 5.1): every engine — inductiveness
//! checking, BMC, Houdini, and BMC + Auto Generalize — must return verdicts
//! through a frame-cached oracle identical to its fresh-grounding baseline.
//! This is the end-to-end guarantee that the oracle's session pool, frame
//! fingerprinting, and transparent rebuilds never change an answer, even
//! when several engines share one cache.

use std::sync::Arc;

use ivy_core::{
    houdini_with_oracle, AutoGen, Bmc, Conjecture, Generalizer, Inductiveness, Oracle,
    QueryStrategy, Verifier, Violation,
};
use ivy_fol::PartialStructure;
use ivy_protocols as p;
use ivy_rml::Program;

fn protocols() -> Vec<(&'static str, Program, Vec<Conjecture>)> {
    vec![
        ("leader", p::leader::program(), p::leader::invariant()),
        (
            "lock_server",
            p::lock_server::program(),
            p::lock_server::invariant(),
        ),
        (
            "distributed_lock",
            p::distributed_lock::program(),
            p::distributed_lock::invariant(),
        ),
        (
            "learning_switch",
            p::learning_switch::program(),
            p::learning_switch::invariant(),
        ),
        ("db_chain", p::db_chain::program(), p::db_chain::invariant()),
        ("chord", p::chord::program(), p::chord::invariant()),
    ]
}

fn oracle(strategy: QueryStrategy) -> Arc<Oracle> {
    let mut o = Oracle::new();
    o.set_strategy(strategy);
    Arc::new(o)
}

fn violation_of(result: &Inductiveness) -> Option<Violation> {
    match result {
        Inductiveness::Inductive => None,
        Inductiveness::Cti(cti) => Some(cti.violation.clone()),
    }
}

/// One shared cached oracle under Verifier + BMC must reproduce the fresh
/// baselines exactly — and actually hit its cache while doing so.
#[test]
fn shared_oracle_matches_fresh_verifier_and_bmc() {
    for (name, program, invariant) in protocols() {
        let mut weakened = invariant.clone();
        weakened.pop();
        let shared = oracle(QueryStrategy::Session);
        let fresh = oracle(QueryStrategy::Fresh);
        for inv in [&invariant, &weakened] {
            let baseline = Verifier::with_oracle(&program, fresh.clone())
                .check(inv)
                .unwrap();
            let cached = Verifier::with_oracle(&program, shared.clone())
                .check(inv)
                .unwrap();
            assert_eq!(
                violation_of(&baseline),
                violation_of(&cached),
                "{name}: cached verifier disagrees with fresh on {} conjectures",
                inv.len()
            );
        }
        // Re-checking the full invariant replays every frame from the pool.
        let before = shared.rollup();
        assert!(Verifier::with_oracle(&program, shared.clone())
            .check(&invariant)
            .unwrap()
            .is_inductive());
        let after = shared.rollup();
        assert!(
            after.frame_hits > before.frame_hits,
            "{name}: re-check must hit the session cache"
        );
        assert_eq!(
            after.frame_misses, before.frame_misses,
            "{name}: re-check must not re-ground any frame"
        );
        // BMC through the same shared oracle agrees with fresh BMC.
        let k = 2;
        let f = Bmc::with_oracle(&program, fresh.clone())
            .check_safety(k)
            .unwrap();
        let c = Bmc::with_oracle(&program, shared.clone())
            .check_safety(k)
            .unwrap();
        match (&f, &c) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.violated, b.violated, "{name}");
                assert_eq!(a.steps(), b.steps(), "{name}: trace depth differs");
            }
            _ => panic!("{name}: cached BMC disagrees with fresh at k={k}"),
        }
    }
}

/// Houdini's strongest inductive subset (and its safety verdict) is
/// strategy-independent. Candidates: the bundled invariant plus a
/// deliberately non-inductive weakening artifact — dropping a conjecture
/// and re-adding it under a junk sibling exercises both drops and keeps.
#[test]
fn houdini_verdicts_match_fresh_baseline() {
    for (name, program, invariant) in protocols() {
        let candidates = invariant.clone();
        let reference =
            houdini_with_oracle(&program, candidates.clone(), &oracle(QueryStrategy::Fresh))
                .unwrap();
        for strategy in [
            QueryStrategy::Session,
            QueryStrategy::Parallel(4),
            QueryStrategy::Portfolio(4),
        ] {
            let got = houdini_with_oracle(&program, candidates.clone(), &oracle(strategy)).unwrap();
            let ref_names: Vec<&str> = reference
                .invariant
                .iter()
                .map(|c| c.name.as_str())
                .collect();
            let got_names: Vec<&str> = got.invariant.iter().map(|c| c.name.as_str()).collect();
            assert_eq!(
                ref_names, got_names,
                "{name}: {strategy:?} surviving set differs"
            );
            assert_eq!(
                reference.proves_safety, got.proves_safety,
                "{name}: {strategy:?} safety verdict differs"
            );
        }
        // The bundled invariant is inductive, so Houdini keeps all of it.
        assert_eq!(reference.invariant.len(), invariant.len(), "{name}");
        assert!(reference.proves_safety, "{name}");
    }
}

/// The in-query portfolio strategy returns verdicts identical to the
/// fresh-grounding baseline on every protocol, for both inductiveness
/// checking and BMC. Racing diversified solver threads inside a query may
/// change which model or core is found, but never whether one exists.
#[test]
fn portfolio_verdicts_match_fresh_baseline() {
    for (name, program, invariant) in protocols() {
        let mut weakened = invariant.clone();
        weakened.pop();
        let fresh = oracle(QueryStrategy::Fresh);
        let racing = oracle(QueryStrategy::Portfolio(4));
        for inv in [&invariant, &weakened] {
            let baseline = Verifier::with_oracle(&program, fresh.clone())
                .check(inv)
                .unwrap();
            let got = Verifier::with_oracle(&program, racing.clone())
                .check(inv)
                .unwrap();
            assert_eq!(
                baseline.is_inductive(),
                got.is_inductive(),
                "{name}: portfolio verifier verdict differs on {} conjectures",
                inv.len()
            );
            // Witness shape: when both report a CTI it names a violation of
            // the same conjecture set, even if the models differ.
            if let (Inductiveness::Cti(a), Inductiveness::Cti(b)) = (&baseline, &got) {
                assert_eq!(
                    std::mem::discriminant(&a.violation),
                    std::mem::discriminant(&b.violation),
                    "{name}: portfolio CTI violates a different check kind"
                );
            }
        }
        let k = 2;
        let f = Bmc::with_oracle(&program, fresh.clone())
            .check_safety(k)
            .unwrap();
        let c = Bmc::with_oracle(&program, racing.clone())
            .check_safety(k)
            .unwrap();
        match (&f, &c) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.violated, b.violated, "{name}");
                assert_eq!(a.steps(), b.steps(), "{name}: trace depth differs");
            }
            _ => panic!("{name}: portfolio BMC disagrees with fresh at k={k}"),
        }
    }
}

/// BMC + Auto Generalize through the oracle matches the fresh baseline:
/// same TooStrong-vs-Generalized variant, and the same minimized
/// conjecture when generalization succeeds. The upper bound is a small
/// slice of a real CTI diagram from the weakened invariant.
#[test]
fn generalizer_verdicts_match_fresh_baseline() {
    for (name, program, invariant) in protocols() {
        let mut weakened = invariant.clone();
        weakened.pop();
        let v = Verifier::with_oracle(&program, oracle(QueryStrategy::Fresh));
        let Inductiveness::Cti(cti) = v.check(&weakened).unwrap() else {
            // Weakening happened to stay inductive: nothing to generalize.
            continue;
        };
        let mut s_u = PartialStructure::from_structure(&cti.state);
        // Keep the diagram small so embedding queries stay cheap; the
        // comparison needs identical inputs, not a realistic session.
        let facts: Vec<_> = s_u.facts().iter().take(6).cloned().collect();
        s_u.retain_facts(|f| facts.contains(f));
        let describe = |r: &AutoGen| match r {
            AutoGen::TooStrong(trace) => format!("too_strong@{}", trace.steps()),
            AutoGen::Generalized { conjecture, .. } => format!("generalized:{conjecture}"),
        };
        let reference = describe(
            &Generalizer::with_oracle(&program, oracle(QueryStrategy::Fresh))
                .auto_generalize(&s_u, 1)
                .unwrap(),
        );
        for strategy in [QueryStrategy::Session, QueryStrategy::Parallel(4)] {
            let got = describe(
                &Generalizer::with_oracle(&program, oracle(strategy))
                    .auto_generalize(&s_u, 1)
                    .unwrap(),
            );
            assert_eq!(
                reference, got,
                "{name}: {strategy:?} generalization differs"
            );
        }
        // Portfolio cores are winner-dependent, so the minimized conjecture
        // may legitimately differ; the TooStrong-vs-Generalized variant (the
        // verdict) must not.
        let variant = |d: &str| d.split(&['@', ':'][..]).next().unwrap().to_string();
        let got = describe(
            &Generalizer::with_oracle(&program, oracle(QueryStrategy::Portfolio(4)))
                .auto_generalize(&s_u, 1)
                .unwrap(),
        );
        assert_eq!(
            variant(&reference),
            variant(&got),
            "{name}: portfolio generalization verdict differs"
        );
    }
}
