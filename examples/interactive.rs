//! An interactive terminal session — the stand-in for the paper's graphical
//! IPython notebook. Drives the Figure 5 loop with a human at the keyboard:
//! CTIs are displayed (text and DOT on request), the user picks which
//! symbols/polarities to generalize away and a BMC bound, and decides on
//! the auto-generalized conjectures.
//!
//! Run with: `cargo run --release --example interactive [protocol]`
//! where protocol is one of: leader (default), lock_server,
//! distributed_lock, learning_switch, db_chain, chord.

use std::io::{BufRead, Write};

use ivy_core::{
    partial_to_dot, structure_to_dot, trace_to_text, Conjecture, Cti, CtiDecision, Proposal,
    ProposalDecision, Session, SessionCtx, TooStrongDecision, User, VizOptions,
};
use ivy_fol::{PartialStructure, Sym};
use ivy_protocols as protocols;

struct TerminalUser {
    locals: std::collections::BTreeSet<Sym>,
}

impl TerminalUser {
    fn prompt(&self, text: &str) -> String {
        print!("{text}");
        std::io::stdout().flush().expect("stdout");
        let mut line = String::new();
        std::io::stdin().lock().read_line(&mut line).expect("stdin");
        line.trim().to_string()
    }
}

impl User for TerminalUser {
    fn on_cti(&mut self, ctx: &SessionCtx<'_>, cti: &Cti) -> CtiDecision {
        println!("\n=== CTI {} === {}", ctx.iteration, cti.violation);
        println!("current invariant:");
        for c in ctx.conjectures {
            println!("  {c}");
        }
        println!("state: {}", cti.state);
        if let Some(s) = &cti.successor {
            println!("successor: {s}");
        }
        loop {
            let cmd = self.prompt("[g]eneralize / [w]eaken <names> / [d]ot / [s]top ? ");
            match cmd.split_whitespace().next() {
                Some("d") => {
                    println!("{}", structure_to_dot(&cti.state, &VizOptions::default()));
                }
                Some("w") => {
                    let names: Vec<String> =
                        cmd.split_whitespace().skip(1).map(String::from).collect();
                    return CtiDecision::Weaken { remove: names };
                }
                Some("s") => return CtiDecision::Stop,
                Some("g") => {
                    let mut s_u =
                        PartialStructure::from_structure_without(&cti.state, &self.locals);
                    let drops =
                        self.prompt("symbols to drop entirely (comma separated, empty for none): ");
                    for sym in drops.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                        s_u.drop_symbol(&Sym::new(sym));
                    }
                    let negs = self.prompt("symbols to drop negative facts of: ");
                    for sym in negs.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                        s_u.drop_negative(&Sym::new(sym));
                    }
                    let bound: usize = self
                        .prompt("BMC bound for auto-generalize [3]: ")
                        .parse()
                        .unwrap_or(3);
                    println!("upper bound: {s_u}");
                    return CtiDecision::Generalize {
                        upper_bound: s_u,
                        bound,
                    };
                }
                _ => println!("unrecognized choice"),
            }
        }
    }

    fn on_too_strong(
        &mut self,
        _ctx: &SessionCtx<'_>,
        attempted: &PartialStructure,
        trace: &ivy_core::Trace,
    ) -> TooStrongDecision {
        println!("your generalization excludes a REACHABLE state:");
        println!("{}", trace_to_text(trace));
        println!("attempted upper bound: {attempted}");
        TooStrongDecision::Stop
    }

    fn on_proposal(&mut self, _ctx: &SessionCtx<'_>, proposal: &Proposal) -> ProposalDecision {
        println!("auto-generalized conjecture: {}", proposal.conjecture);
        loop {
            let cmd = self.prompt("[a]ccept / [u]pper bound only / [d]ot / [s]top ? ");
            match cmd.as_str() {
                "a" => return ProposalDecision::Accept,
                "u" => return ProposalDecision::AcceptUpperBound,
                "d" => println!(
                    "{}",
                    partial_to_dot(&proposal.partial, &VizOptions::default())
                ),
                "s" => return ProposalDecision::Stop,
                _ => println!("unrecognized choice"),
            }
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "leader".into());
    let (program, measures) = match which.as_str() {
        "leader" => (protocols::leader::program(), protocols::leader::measures()),
        "lock_server" => (
            protocols::lock_server::program(),
            protocols::lock_server::measures(),
        ),
        "distributed_lock" => (
            protocols::distributed_lock::program(),
            protocols::distributed_lock::measures(),
        ),
        "learning_switch" => (
            protocols::learning_switch::program(),
            protocols::learning_switch::measures(),
        ),
        "db_chain" => (
            protocols::db_chain::program(),
            protocols::db_chain::measures(),
        ),
        "chord" => (protocols::chord::program(), protocols::chord::measures()),
        other => {
            eprintln!("unknown protocol `{other}`");
            std::process::exit(1);
        }
    };
    let initial: Vec<Conjecture> = program
        .safety
        .iter()
        .map(|(label, f)| Conjecture::new(label.clone(), f.clone()))
        .collect();
    println!("protocol `{which}`; initial conjectures = safety properties:");
    for c in &initial {
        println!("  {c}");
    }
    let locals = program.locals.clone();
    let mut session = Session::new(&program, initial, measures);
    let mut user = TerminalUser { locals };
    let outcome = session.run(&mut user, 100)?;
    println!("\nsession ended: {outcome:?} after {:?}", session.stats());
    if outcome == ivy_core::SessionOutcome::Proved {
        println!("inductive invariant:");
        for c in session.conjectures() {
            println!("  {c}");
        }
    }
    Ok(())
}
