//! Model debugging via bounded verification (Section 2.2 of the paper):
//! re-enacts the story of Figure 3/4 — the initial leader-election model
//! missed the `unique_ids` axiom, and BMC with bound 4 produced a trace in
//! which two nodes share an id and both become leader.
//!
//! Run with: `cargo run --example bmc_debugging`

use ivy_core::{trace_to_text, Bmc, Projection, VizOptions};
use ivy_fol::{parse_formula, Sort};
use ivy_protocols::leader;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The buggy model: unique_ids omitted.
    let buggy = leader::program_without_unique_ids();
    let bmc = Bmc::new(&buggy);
    println!("checking the buggy model (no unique_ids) up to 4 iterations...");
    let trace = bmc
        .check_safety(4)?
        .expect("two leaders are reachable without unique ids");
    println!("{}", trace_to_text(&trace));

    // The same trace, as Graphviz DOT (one digraph per state) with the ring
    // projected to `next` edges as in the paper's figures.
    let opts = VizOptions::default().hide("btw").project(Projection {
        name: "next".into(),
        formula: parse_formula("forall Z:node. Z ~= X & Z ~= Y -> btw(X, Y, Z)")?,
        sort: Sort::new("node"),
    });
    println!("--- DOT rendering of the final state ---");
    println!(
        "{}",
        ivy_core::structure_to_dot(trace.states.last().expect("nonempty trace"), &opts)
    );

    // After fixing the model (restoring the axiom), the same check passes.
    let fixed = leader::program();
    println!("checking the fixed model up to 4 iterations...");
    match Bmc::new(&fixed).check_safety(4)? {
        None => println!("no counterexample: ready for unbounded verification"),
        Some(t) => println!("unexpected violation: {}", t.violated),
    }
    Ok(())
}
