//! Quickstart: model a tiny mutual-exclusion protocol in RML, debug it with
//! bounded verification, and prove it safe with an inductive invariant.
//!
//! Run with: `cargo run --example quickstart`

use ivy_core::{Bmc, Conjecture, Inductiveness, Verifier};
use ivy_fol::parse_formula;
use ivy_rml::{check_program, parse_program};

const MODEL: &str = r#"
# A toy spinlock: clients acquire and release a single lock.
sort client

relation has_lock : client
relation lock_free

local c : client

safety mutex: forall C1:client, C2:client. has_lock(C1) & has_lock(C2) -> C1 = C2

init {
  has_lock(X0) := false;
  lock_free() := true
}

action acquire {
  havoc c;
  assume lock_free;
  lock_free() := false;
  has_lock.insert(c)
}

action release {
  havoc c;
  assume has_lock(c);
  has_lock.remove(c);
  lock_free() := true
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse and validate: RML's restrictions (quantifier-free updates,
    //    ∃*∀* assumes, stratified functions) make everything below decidable.
    let program = parse_program(MODEL)?;
    let problems = check_program(&program);
    assert!(problems.is_empty(), "validation: {problems:?}");
    println!(
        "model ok: {} actions, safety `mutex`",
        program.actions.len()
    );

    // 2. Debug with bounded verification: no counterexample within 5 loop
    //    iterations, over clients sets of ANY size.
    let bmc = Bmc::new(&program);
    match bmc.check_safety(5)? {
        None => println!("BMC: no violation within 5 iterations"),
        Some(trace) => {
            println!("BMC found a bug!\n{}", ivy_core::trace_to_text(&trace));
            return Ok(());
        }
    }

    // 3. Try to prove the safety property alone: it is not inductive, and
    //    the verifier shows us a counterexample to induction.
    let verifier = Verifier::new(&program);
    let safety_only = vec![Conjecture::new(
        "mutex",
        parse_formula("forall C1:client, C2:client. has_lock(C1) & has_lock(C2) -> C1 = C2")?,
    )];
    if let Inductiveness::Cti(cti) = verifier.check(&safety_only)? {
        println!("safety alone is not inductive: {}", cti.violation);
        println!("  CTI state: {}", cti.state);
    }

    // 4. Strengthen: holding the lock and the lock being free exclude each
    //    other. The conjunction is inductive — the protocol is proved safe
    //    for any number of clients and any number of steps.
    let invariant = vec![
        safety_only[0].clone(),
        Conjecture::new(
            "exclusion",
            parse_formula("forall C:client. has_lock(C) -> ~lock_free")?,
        ),
    ];
    match verifier.check(&invariant)? {
        Inductiveness::Inductive => println!("proved: mutex holds for unboundedly many clients"),
        Inductiveness::Cti(cti) => println!("unexpected CTI: {}", cti.violation),
    }
    Ok(())
}
