//! Automatic invariant synthesis with `ivy_core::infer` — the paper
//! bootstraps its Chord proof by running Houdini over a clause template
//! (Section 5.1); `infer` grows that seed into a full synthesis loop that
//! rediscovers an inductive invariant from the safety properties alone:
//! template enumeration with symmetry reduction, a reachability pre-filter,
//! Houdini elimination, and CTI-guided diagram blocking (Definitions 4–5).
//!
//! Here it re-derives the leader-election proof of Section 2 without being
//! given any of the paper's conjectures C1–C3.
//!
//! Run with: `cargo run --release --example invariant_inference`

use std::sync::Arc;
use std::time::Duration;

use ivy_core::{infer, InferOptions, InferStatus, Oracle, Verifier};
use ivy_epr::Budget;
use ivy_protocols::leader;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = leader::program();
    // One shared, budgeted oracle carries every query of the run: the
    // reachability filter, all Houdini passes, CTI search, and diagram
    // generalization reuse its frame-keyed session cache.
    let mut oracle = Oracle::new();
    oracle.set_budget(Budget::with_timeout(Duration::from_secs(300)));
    let oracle = Arc::new(oracle);
    // Start from clauses of at most 2 literals over 2 variables per sort;
    // the loop enlarges the template itself only when CTI-guided blocking
    // stops making progress.
    let opts = InferOptions::default();
    let report = infer(&program, &oracle, &opts)?;
    println!(
        "{}: {} clause(s) — {} generated ({} filtered by reachability), \
         {} blocked from CTIs, {} Houdini run(s)",
        report.status.tag(),
        report.invariant.len(),
        report.generated,
        report.filtered_out,
        report.blocked,
        report.houdini_runs
    );
    for c in &report.invariant {
        println!("  {c}");
    }
    // The synthesized invariant is machine-checkable evidence: an
    // independent verifier confirms it is inductive and proves safety.
    if report.status == InferStatus::Proved {
        let ok = Verifier::new(&program)
            .check(&report.invariant)?
            .is_inductive();
        println!("independently re-verified inductive: {ok}");
    }
    Ok(())
}
