//! Automatic invariant inference with Houdini over a clause template — the
//! technique the paper reports using to bootstrap the Chord proof
//! (Section 5.1), here applied to the Chord ring-maintenance model itself.
//!
//! Run with: `cargo run --release --example invariant_inference`

use ivy_core::{enumerate_candidates, houdini, Verifier};
use ivy_protocols::chord;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = chord::program();
    // Template: clauses of at most 2 literals over 2 node variables with
    // depth-1 terms.
    let candidates = enumerate_candidates(&program.sig, 2, 2);
    println!(
        "template: {} candidate clauses (2 vars/sort, <=2 literals)",
        candidates.len()
    );
    let result = houdini(&program, candidates, ivy_epr::DEFAULT_INSTANCE_LIMIT)?;
    println!(
        "houdini: {} clauses survive after {} CTIs; proves safety: {}",
        result.invariant.len(),
        result.iterations,
        result.proves_safety
    );
    // The surviving set is the strongest inductive invariant in the
    // template; print a few of its clauses.
    for c in result.invariant.iter().take(12) {
        println!("  {c}");
    }
    if result.invariant.len() > 12 {
        println!("  ... and {} more", result.invariant.len() - 12);
    }
    // Even when the template is too weak to prove safety on its own, the
    // surviving clauses can seed an interactive session (the paper's Chord
    // workflow: Houdini first, then interactive repair). Demonstrate that
    // the handcrafted invariant still checks.
    let verifier = Verifier::new(&program);
    let ok = verifier.check(&chord::invariant())?.is_inductive();
    println!("handcrafted Chord invariant inductive: {ok}");
    Ok(())
}
