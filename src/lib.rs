//! Facade crate for the Ivy reproduction: re-exports the public API of all
//! subsystem crates. See README.md for the tour and DESIGN.md for the
//! system inventory.
//!
//! * [`fol`]: sorted first-order logic, structures, partial structures,
//!   diagrams.
//! * [`sat`]: the CDCL solver substrate.
//! * [`epr`]: the EPR(+stratified functions) decision procedure.
//! * [`rml`]: the relational modeling language.
//! * [`ivy`]: the verification engine (CTIs, BMC, minimization,
//!   interactive generalization, Houdini, visualization).
//! * [`protocols`]: the six evaluation protocols of the paper.

pub use ivy_core as ivy;
pub use ivy_epr as epr;
pub use ivy_fol as fol;
pub use ivy_protocols as protocols;
pub use ivy_rml as rml;
pub use ivy_sat as sat;
