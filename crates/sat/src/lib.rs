//! A from-scratch SAT solving stack for the Ivy reproduction.
//!
//! The PLDI 2016 Ivy paper discharges all verification conditions with Z3's
//! EPR engine. This crate is the propositional layer of our substitute:
//!
//! * [`Solver`]: a CDCL solver (watched literals, 1UIP learning, VSIDS +
//!   phase saving, Luby restarts, learnt-clause reduction) with
//!   **assumption-based incremental solving and UNSAT cores** — cores drive
//!   Ivy's *BMC + Auto Generalize* step (Section 4.5 of the paper).
//! * [`Cnf`]: a plain clause container, the target of Tseitin encoding in
//!   `ivy-epr`.
//! * [`solve_dpll`] / [`solve_brute_force`]: reference solvers used as
//!   differential-testing oracles and ablation baselines.
//! * [`parse_dimacs`] / [`write_dimacs`]: DIMACS interoperability.
//!
//! # Example
//!
//! ```
//! use ivy_sat::{Cnf, Solver, SolveResult};
//!
//! let mut s = Solver::new();
//! let (a, b) = (s.new_var(), s.new_var());
//! s.add_clause([a.neg(), b.pos()]);
//! assert_eq!(s.solve_with_assumptions(&[a.pos(), b.neg()]), SolveResult::Unsat);
//! assert_eq!(s.unsat_core().len(), 2);
//! ```

#![warn(missing_docs)]

pub mod cnf;
pub mod dimacs;
pub mod dpll;
pub mod legacy;
pub mod lit;
pub mod solver;

pub use cnf::Cnf;
pub use dimacs::{parse_dimacs, write_dimacs, DimacsError};
pub use dpll::{solve_brute_force, solve_dpll};
pub use lit::{LBool, Lit, Var};
pub use solver::{Interrupt, SolveResult, Solver, SolverConfig, Stats};
