//! DIMACS CNF reading and writing, for interoperability and debugging.

use std::fmt::Write as _;

use crate::cnf::Cnf;
use crate::lit::Lit;

/// Errors from DIMACS parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DimacsError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DIMACS error on line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for DimacsError {}

/// Parses a DIMACS CNF document.
///
/// # Errors
///
/// Returns [`DimacsError`] on malformed headers, tokens, or out-of-range
/// variables.
pub fn parse_dimacs(input: &str) -> Result<Cnf, DimacsError> {
    let mut cnf = Cnf::new();
    let mut declared_vars: Option<usize> = None;
    let mut current: Vec<Lit> = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(DimacsError {
                    line: line_no,
                    msg: format!("bad problem line `{line}`"),
                });
            }
            let nv: usize = parts[1].parse().map_err(|_| DimacsError {
                line: line_no,
                msg: "bad variable count".into(),
            })?;
            declared_vars = Some(nv);
            cnf.ensure_vars(nv);
            continue;
        }
        for tok in line.split_whitespace() {
            let code: i32 = tok.parse().map_err(|_| DimacsError {
                line: line_no,
                msg: format!("bad literal `{tok}`"),
            })?;
            if code == 0 {
                cnf.add_clause(current.drain(..));
            } else {
                let lit = Lit::from_dimacs(code);
                if let Some(nv) = declared_vars {
                    if lit.var().index() >= nv {
                        return Err(DimacsError {
                            line: line_no,
                            msg: format!("variable {} exceeds declared count {nv}", code.abs()),
                        });
                    }
                }
                cnf.ensure_vars(lit.var().index() + 1);
                current.push(lit);
            }
        }
    }
    if !current.is_empty() {
        cnf.add_clause(current.drain(..));
    }
    Ok(cnf)
}

/// Renders a CNF as a DIMACS document.
pub fn write_dimacs(cnf: &Cnf) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses());
    for clause in cnf.clauses() {
        for &l in clause {
            let _ = write!(out, "{} ", l.to_dimacs());
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let cnf = parse_dimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
        assert!(cnf.solve().is_some());
    }

    #[test]
    fn roundtrip() {
        let text = "p cnf 2 2\n1 2 0\n-1 0\n";
        let cnf = parse_dimacs(text).unwrap();
        assert_eq!(write_dimacs(&cnf), text);
    }

    #[test]
    fn rejects_oversized_variable() {
        let err = parse_dimacs("p cnf 1 1\n2 0\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(parse_dimacs("p dnf 1 1\n").is_err());
        assert!(parse_dimacs("p cnf x 1\n").is_err());
    }

    #[test]
    fn multiline_clause() {
        let cnf = parse_dimacs("p cnf 3 1\n1 2\n3 0\n").unwrap();
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.clauses()[0].len(), 3);
    }
}
