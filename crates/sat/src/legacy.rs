//! The pre-arena CDCL solver, frozen as a differential-testing baseline.
//!
//! This is the boxed-clause (`Vec<Clause>`, one heap allocation per clause)
//! solver that shipped before the flat-arena rebuild in [`crate::solver`].
//! It is kept verbatim — two-watched-literal propagation, first-UIP conflict
//! analysis, VSIDS with phase saving, Luby restarts, activity-based
//! learnt-clause deletion, assumption-based incremental solving with UNSAT
//! cores — so randomized differential tests and the `solver_ablation` bench
//! can pin the arena solver's verdicts and measure the layout change in
//! isolation. New features (LBD reduction, recursive minimization,
//! chronological backtracking, portfolio racing) exist only in the arena
//! solver; do not add them here.

use crate::lit::{LBool, Lit, Var};
use crate::solver::{Interrupt, SolveResult, Stats};
use std::time::Instant;

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
}

#[derive(Clone, Copy, Debug)]
struct Watch {
    cref: u32,
    blocker: Lit,
}

/// Indexed max-heap over variable activities (the VSIDS order).
#[derive(Clone, Debug, Default)]
struct VarHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX` when absent.
    pos: Vec<usize>,
}

impl VarHeap {
    fn grow_to(&mut self, n: usize) {
        while self.pos.len() < n {
            self.pos.push(usize::MAX);
        }
    }

    fn contains(&self, v: Var) -> bool {
        self.pos[v.index()] != usize::MAX
    }

    fn insert(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn pop_max(&mut self, act: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("nonempty");
        self.pos[top.index()] = usize::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn decrease_key_bumped(&mut self, v: Var, act: &[f64]) {
        // Activity only increases, so a bumped element sifts up.
        let i = self.pos[v.index()];
        if i != usize::MAX {
            self.sift_up(i, act);
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].index()] > act[self.heap[parent].index()] {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[best].index()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[best].index()] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].index()] = a;
        self.pos[self.heap[b].index()] = b;
    }
}

/// The frozen pre-arena CDCL solver (boxed-clause layout).
///
/// # Examples
///
/// ```
/// use ivy_sat::legacy::Solver;
/// use ivy_sat::SolveResult;
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause([a.pos(), b.pos()]);
/// s.add_clause([a.neg()]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// assert_eq!(s.model_value(b), Some(true));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    learnt_refs: Vec<u32>,
    watches: Vec<Vec<Watch>>,
    assign: Vec<LBool>,
    polarity: Vec<bool>,
    /// Vars whose decision phase is pinned: phase saving skips them, so the
    /// solver always prefers the pinned polarity when branching.
    phase_pinned: Vec<bool>,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: VarHeap,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    reason: Vec<Option<u32>>,
    level: Vec<u32>,
    qhead: usize,
    /// False once the clause set is unconditionally unsatisfiable.
    ok: bool,
    seen: Vec<bool>,
    assumptions: Vec<Lit>,
    core: Vec<Lit>,
    model: Vec<LBool>,
    max_learnts: f64,
    /// Problem (non-learnt) clauses submitted via `add_clause`, counted
    /// before simplification; sizes the learnt-clause database.
    problem_clauses: usize,
    /// When true (the default), `max_learnts` is raised to a fraction of
    /// the problem clause count at each solve, so large groundings do not
    /// thrash the learnt database against the old fixed cap of 1000.
    scale_learnts: bool,
    /// Wall-clock deadline; search gives up (gracefully) once it passes.
    deadline: Option<Instant>,
    /// Why the most recent `solve_budgeted` returned `None`.
    interrupt: Option<Interrupt>,
    stats: Stats,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            max_learnts: 1000.0,
            scale_learnts: true,
            ..Solver::default()
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(LBool::Undef);
        self.polarity.push(false);
        self.phase_pinned.push(false);
        self.activity.push(0.0);
        self.reason.push(None);
        self.level.push(0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow_to(self.assign.len());
        self.order.insert(v, &self.activity);
        v
    }

    /// Pins `v`'s decision phase to `value`: when branching on `v`, the
    /// solver always tries `value` first, and phase saving no longer updates
    /// the preference. Propagation may of course still force the other
    /// value. Useful for variables (like ground-equality encodings) whose
    /// unconstrained occurrences should default to a canonical polarity
    /// instead of whatever an earlier model happened to assign.
    pub fn pin_phase(&mut self, v: Var, value: bool) {
        self.polarity[v.index()] = value;
        self.phase_pinned[v.index()] = true;
    }

    /// Forgets all saved decision phases, restoring the initial all-false
    /// preference (pinned phases keep their pinned value). Incremental
    /// queries use this to avoid inheriting a previous, unrelated model:
    /// saved phases make the solver re-assert atoms the old model set true,
    /// which can force large spurious equality classes in lazy-equality
    /// grounding.
    pub fn reset_phases(&mut self) {
        for (i, p) in self.polarity.iter_mut().enumerate() {
            if !self.phase_pinned[i] {
                *p = false;
            }
        }
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of problem (non-learnt) clauses added, including those
    /// simplified away.
    pub fn num_clauses(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| !c.learnt && !c.deleted)
            .count()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Sets (or clears) the wall-clock deadline. Once it passes,
    /// [`Solver::solve_budgeted`] returns `None` with
    /// [`Solver::last_interrupt`] reporting [`Interrupt::Deadline`]. The
    /// solver stays usable; clear the deadline to resume unbounded solving.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Why the most recent [`Solver::solve_budgeted`] call returned `None`
    /// (cleared at the start of each solve).
    pub fn last_interrupt(&self) -> Option<Interrupt> {
        self.interrupt
    }

    /// Enables or disables sizing the learnt-clause database from the
    /// problem clause count (on by default). With scaling off the database
    /// starts at the historical fixed cap of 1000 regardless of problem
    /// size — kept for ablation.
    pub fn set_learnt_scaling(&mut self, enabled: bool) {
        self.scale_learnts = enabled;
    }

    /// Adds a clause. Returns `false` when the solver becomes trivially
    /// unsatisfiable (empty clause, or a unit contradicting level-0 facts).
    ///
    /// Clauses may be added between `solve` calls (incremental use).
    ///
    /// # Panics
    ///
    /// Panics if a literal's variable was not allocated with
    /// [`Solver::new_var`].
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "clauses are added at level 0");
        if !self.ok {
            return false;
        }
        self.problem_clauses += 1;
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for l in &lits {
            assert!(l.var().index() < self.num_vars(), "unknown variable {l}");
        }
        // Simplify: sort, dedupe, drop false literals, detect tautology.
        lits.sort();
        lits.dedup();
        let mut simplified = Vec::with_capacity(lits.len());
        for (i, &l) in lits.iter().enumerate() {
            if i + 1 < lits.len() && lits[i + 1] == !l {
                return true; // tautology: contains l and ~l
            }
            match self.value(l) {
                LBool::True => return true, // satisfied at level 0
                LBool::False => {}          // drop
                LBool::Undef => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(simplified[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_new_clause(simplified, false);
                true
            }
        }
    }

    fn attach_new_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as u32;
        let (w0, w1) = (lits[0], lits[1]);
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
        });
        if learnt {
            self.learnt_refs.push(cref);
        }
        self.watches[w0.index()].push(Watch { cref, blocker: w1 });
        self.watches[w1.index()].push(Watch { cref, blocker: w0 });
        cref
    }

    fn value(&self, l: Lit) -> LBool {
        self.assign[l.var().index()].under(l)
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: Option<u32>) {
        debug_assert_eq!(self.value(l), LBool::Undef);
        let v = l.var().index();
        self.assign[v] = LBool::from_bool(l.is_pos());
        self.reason[v] = reason;
        self.level[v] = self.decision_level();
        self.trail.push(l);
    }

    /// Propagates pending assignments; returns the conflicting clause
    /// reference, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            // Visit clauses watching ~p (now false).
            let mut i = 0;
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut conflict = None;
            while i < watch_list.len() {
                let Watch { cref, blocker } = watch_list[i];
                if self.value(blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let clause = &mut self.clauses[cref as usize];
                if clause.deleted {
                    watch_list.swap_remove(i);
                    continue;
                }
                // Normalize: the false watch goes to position 1.
                if clause.lits[0] == false_lit {
                    clause.lits.swap(0, 1);
                }
                debug_assert_eq!(clause.lits[1], false_lit);
                let first = clause.lits[0];
                if first != blocker && self.assign[first.var().index()].under(first) == LBool::True
                {
                    watch_list[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Find a new literal to watch.
                let mut moved = false;
                for k in 2..clause.lits.len() {
                    let cand = clause.lits[k];
                    if self.assign[cand.var().index()].under(cand) != LBool::False {
                        clause.lits.swap(1, k);
                        self.watches[cand.index()].push(Watch {
                            cref,
                            blocker: first,
                        });
                        watch_list.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflict.
                if self.value(first) == LBool::False {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    break;
                }
                self.unchecked_enqueue(first, Some(cref));
                i += 1;
            }
            self.watches[false_lit.index()].append(&mut watch_list);
            // Note: append puts processed watches back *after* any watches
            // added during this loop (none target false_lit), order is
            // irrelevant for correctness.
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.assign[v.index()] = LBool::Undef;
            if !self.phase_pinned[v.index()] {
                self.polarity[v.index()] = l.is_pos();
            }
            self.reason[v.index()] = None;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.decrease_key_bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: u32) {
        let c = &mut self.clauses[cref as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for &r in &self.learnt_refs {
                self.clauses[r as usize].activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = confl;
        loop {
            self.bump_clause(confl);
            let lits: Vec<Lit> = self.clauses[confl as usize].lits.clone();
            // Skip lits[0] when it is the literal we just resolved on.
            let skip = usize::from(p.is_some());
            for &q in &lits[skip..] {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Pick the next literal on the trail to resolve.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let q = self.trail[index];
            self.seen[q.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(q);
                break;
            }
            confl = self.reason[q.var().index()].expect("non-UIP literal has a reason");
            p = Some(q);
        }
        learnt[0] = !p.expect("loop sets p");

        // Simple self-subsumption minimization: drop literals whose reason
        // clause is entirely covered by the remaining `seen` set.
        let keep: Vec<bool> = learnt
            .iter()
            .enumerate()
            .map(|(i, &l)| i == 0 || !self.literal_redundant(l))
            .collect();
        let mut minimized = Vec::with_capacity(learnt.len());
        for (i, &l) in learnt.iter().enumerate() {
            if keep[i] {
                minimized.push(l);
            }
        }

        // Compute backtrack level: second highest level in the clause.
        let bt = if minimized.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var().index()]
                    > self.level[minimized[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            self.level[minimized[1].var().index()]
        };
        for &l in &minimized {
            self.seen[l.var().index()] = false;
        }
        // Clear any remaining seen flags from minimization checks.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (minimized, bt)
    }

    /// Whether `l` is implied by the other literals already in the learnt
    /// clause (a one-level check, not the full recursive version).
    fn literal_redundant(&self, l: Lit) -> bool {
        match self.reason[l.var().index()] {
            None => false,
            Some(r) => self.clauses[r as usize].lits.iter().all(|&q| {
                q == !l || self.seen[q.var().index()] || self.level[q.var().index()] == 0
            }),
        }
    }

    /// Produces the subset of assumptions responsible for falsifying the
    /// assumption `failed` (MiniSat's `analyzeFinal`). The trail contains
    /// `!failed`; we walk its implication graph back to assumption decisions.
    fn analyze_final(&mut self, failed: Lit) -> Vec<Lit> {
        let mut core = vec![failed];
        if self.decision_level() == 0 {
            return core;
        }
        self.seen[failed.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let q = self.trail[i];
            let v = q.var().index();
            if !self.seen[v] {
                continue;
            }
            match self.reason[v] {
                // A decision within assumption levels is an assumption, and
                // the trail literal *is* the assumption itself. (When q is
                // `!failed` it is the contradictory twin assumption.)
                None => core.push(q),
                Some(r) => {
                    for &x in &self.clauses[r as usize].lits[1..] {
                        if self.level[x.var().index()] > 0 {
                            self.seen[x.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[failed.var().index()] = false;
        core
    }

    fn reduce_db(&mut self) {
        // Sort learnt clauses by activity, delete the weaker half (skipping
        // binary and locked clauses).
        let mut refs = self.learnt_refs.clone();
        refs.retain(|&r| !self.clauses[r as usize].deleted);
        refs.sort_by(|&a, &b| {
            self.clauses[a as usize]
                .activity
                .partial_cmp(&self.clauses[b as usize].activity)
                .expect("activities are finite")
        });
        let target = refs.len() / 2;
        let mut deleted = 0;
        for &r in refs.iter() {
            if deleted >= target {
                break;
            }
            let locked = {
                let c = &self.clauses[r as usize];
                c.lits.len() <= 2 || self.reason[c.lits[0].var().index()] == Some(r)
            };
            if !locked {
                self.clauses[r as usize].deleted = true;
                deleted += 1;
                self.stats.deleted_clauses += 1;
            }
        }
        self.learnt_refs
            .retain(|&r| !self.clauses[r as usize].deleted);
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assign[v.index()] == LBool::Undef {
                return Some(v);
            }
        }
        None
    }

    /// Luby restart sequence value (1-based): 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
    fn luby(mut i: u64) -> u64 {
        loop {
            let mut k = 1u32;
            while (1u64 << k) - 1 < i {
                k += 1;
            }
            if (1u64 << k) - 1 == i {
                return 1u64 << (k - 1);
            }
            i -= (1u64 << (k - 1)) - 1;
        }
    }

    /// Solves without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals. On `Unsat`, the subset of
    /// assumptions participating in the refutation is available via
    /// [`Solver::unsat_core`] (empty core = unsatisfiable even without
    /// assumptions).
    ///
    /// # Panics
    ///
    /// Panics if a deadline set via [`Solver::set_deadline`] expires during
    /// the solve — callers with a deadline must use
    /// [`Solver::solve_budgeted`], which degrades gracefully.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_budgeted(assumptions, u64::MAX)
            .expect("unbounded solve always decides (use solve_budgeted with a deadline)")
    }

    /// Like [`Solver::solve_with_assumptions`] but gives up (returning
    /// `None`) once roughly `max_conflicts` conflicts have been analyzed in
    /// this call, or once the deadline set via [`Solver::set_deadline`]
    /// passes; [`Solver::last_interrupt`] tells the two apart. The solver
    /// stays usable afterwards (learnt clauses are kept).
    pub fn solve_budgeted(
        &mut self,
        assumptions: &[Lit],
        max_conflicts: u64,
    ) -> Option<SolveResult> {
        self.assumptions = assumptions.to_vec();
        self.core.clear();
        self.interrupt = None;
        self.backtrack_to(0);
        if !self.ok {
            return Some(SolveResult::Unsat);
        }
        if self.propagate().is_some() {
            self.ok = false;
            return Some(SolveResult::Unsat);
        }
        if self.scale_learnts {
            // Size the learnt database to the problem: a fixed cap of 1000
            // thrashes on 100k+-clause groundings. Only ever raise it, so
            // the usual 1.1x growth is preserved across incremental calls.
            let target = (self.problem_clauses / 3).max(1000) as f64;
            if self.max_learnts < target {
                self.max_learnts = target;
            }
        }
        let conflict_limit = self.stats.conflicts.saturating_add(max_conflicts);
        let mut restart = 0u64;
        loop {
            restart += 1;
            let budget = 100 * Self::luby(restart);
            match self.search(budget) {
                Some(result) => {
                    self.backtrack_to(0);
                    return Some(result);
                }
                None => {
                    self.stats.restarts += 1;
                    self.backtrack_to(0);
                    if self.deadline_passed() {
                        self.interrupt = Some(Interrupt::Deadline);
                        return None;
                    }
                    if self.stats.conflicts >= conflict_limit {
                        self.interrupt = Some(Interrupt::Conflicts);
                        return None;
                    }
                }
            }
        }
    }

    fn deadline_passed(&self) -> bool {
        matches!(self.deadline, Some(d) if Instant::now() >= d)
    }

    /// Runs CDCL search for at most `budget` conflicts; `None` = restart.
    fn search(&mut self, budget: u64) -> Option<SolveResult> {
        let mut conflicts_here = 0u64;
        let mut steps = 0u32;
        loop {
            // Poll the wall clock sparingly: a deadline overshoot of a few
            // thousand propagation/decision steps is invisible next to the
            // cost of checking `Instant::now` every iteration.
            steps = steps.wrapping_add(1);
            if steps & 0x0FFF == 0 && self.deadline_passed() {
                return None; // surfaces as a restart; solve_budgeted stops
            }
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Some(SolveResult::Unsat);
                }
                let (learnt, bt) = self.analyze(confl);
                self.backtrack_to(bt);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    self.unchecked_enqueue(asserting, None);
                } else {
                    let cref = self.attach_new_clause(learnt, true);
                    self.bump_clause(cref);
                    self.unchecked_enqueue(asserting, Some(cref));
                }
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
                continue;
            }
            if conflicts_here >= budget {
                return None; // restart
            }
            if self.learnt_refs.len() as f64 > self.max_learnts + self.trail.len() as f64 {
                self.reduce_db();
                self.max_learnts *= 1.1;
            }
            // Place assumptions as pseudo-decisions first.
            let mut next_decision: Option<Lit> = None;
            while (self.decision_level() as usize) < self.assumptions.len() {
                let p = self.assumptions[self.decision_level() as usize];
                match self.value(p) {
                    LBool::True => self.new_decision_level(),
                    LBool::False => {
                        self.core = self.analyze_final(p);
                        return Some(SolveResult::Unsat);
                    }
                    LBool::Undef => {
                        next_decision = Some(p);
                        break;
                    }
                }
            }
            let decision = match next_decision {
                Some(p) => p,
                None => match self.pick_branch_var() {
                    None => {
                        self.model = self.assign.clone();
                        return Some(SolveResult::Sat);
                    }
                    Some(v) => v.lit(self.polarity[v.index()]),
                },
            };
            self.stats.decisions += 1;
            self.new_decision_level();
            self.unchecked_enqueue(decision, None);
        }
    }

    /// The value of `v` in the most recent satisfying model. `None` when the
    /// last solve was UNSAT or the variable was irrelevant... variables are
    /// always fully assigned on SAT, so `None` only before any solve.
    pub fn model_value(&self, v: Var) -> Option<bool> {
        match self.model.get(v.index()) {
            Some(LBool::True) => Some(true),
            Some(LBool::False) => Some(false),
            _ => None,
        }
    }

    /// The failed-assumption core of the most recent UNSAT answer: a subset
    /// of the assumptions that is jointly unsatisfiable with the clauses.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.core
    }

    /// Allocates a fresh *activation literal* for a retirable clause group.
    /// Clauses added via [`Solver::add_clause_in_group`] with this literal
    /// are enforced only while it is passed as an assumption, so a caller
    /// can keep many alternative assertion sets in one solver and pick a
    /// subset per [`Solver::solve_with_assumptions`] call — the basis of
    /// incremental solving with learnt-clause reuse.
    pub fn new_activation(&mut self) -> Lit {
        self.new_var().pos()
    }

    /// Adds `lits` as a clause guarded by activation literal `act`: the
    /// stored clause is `¬act ∨ lits`, a tautological no-op unless `act` is
    /// assumed. Returns `false` if the solver is already unsatisfiable.
    pub fn add_clause_in_group(&mut self, act: Lit, lits: impl IntoIterator<Item = Lit>) -> bool {
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        clause.push(!act);
        self.add_clause(clause)
    }

    /// Permanently disables the clause group guarded by `act` by asserting
    /// `¬act` at level 0. All clauses of the group become satisfied, and the
    /// solver may simplify them away. The activation literal must not be
    /// assumed afterwards. Returns `false` if the solver became (or already
    /// was) unsatisfiable.
    pub fn retire_group(&mut self, act: Lit) -> bool {
        self.add_clause([!act])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    /// A hard UNSAT instance: `n` pigeons into `n - 1` holes.
    fn pigeonhole(s: &mut Solver, n: usize) {
        let p: Vec<Vec<Var>> = (0..n).map(|_| vars(s, n - 1)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|v| v.pos()));
        }
        for a in 0..n {
            for b in (a + 1)..n {
                for (pa, pb) in p[a].iter().zip(&p[b]) {
                    s.add_clause([pa.neg(), pb.neg()]);
                }
            }
        }
    }

    #[test]
    fn conflict_budget_interrupts_and_solver_recovers() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 7);
        assert_eq!(s.solve_budgeted(&[], 1), None);
        assert_eq!(s.last_interrupt(), Some(Interrupt::Conflicts));
        // The solver (and its learnt clauses) stay usable: an unbudgeted
        // call still reaches the correct verdict.
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(s.last_interrupt(), None);
    }

    #[test]
    fn expired_deadline_interrupts_budgeted_solve() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 7);
        s.set_deadline(Some(Instant::now()));
        assert_eq!(s.solve_budgeted(&[], u64::MAX), None);
        assert_eq!(s.last_interrupt(), Some(Interrupt::Deadline));
        // Clearing the deadline restores a decisive answer.
        s.set_deadline(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(s.last_interrupt(), None);
    }

    #[test]
    fn learnt_cap_scales_with_problem_size() {
        let build = || {
            let mut s = Solver::new();
            let mut prev = s.new_var();
            // 6000 distinct implication clauses: a satisfiable problem big
            // enough that `problem_clauses / 3` exceeds the fixed cap.
            for _ in 0..6000 {
                let v = s.new_var();
                s.add_clause([prev.neg(), v.pos()]);
                prev = v;
            }
            s
        };
        let mut scaled = build();
        assert_eq!(scaled.solve(), SolveResult::Sat);
        assert!(
            scaled.max_learnts >= (scaled.problem_clauses / 3) as f64,
            "scaling on: cap {} for {} clauses",
            scaled.max_learnts,
            scaled.problem_clauses
        );
        let mut fixed = build();
        fixed.set_learnt_scaling(false);
        assert_eq!(fixed.solve(), SolveResult::Sat);
        assert_eq!(fixed.max_learnts, 1000.0, "scaling off keeps the old cap");
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([v[0].pos(), v[1].pos()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let m0 = s.model_value(v[0]).unwrap();
        let m1 = s.model_value(v[1]).unwrap();
        assert!(m0 || m1);
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        s.add_clause([v[0].pos()]);
        assert!(!s.add_clause([v[0].neg()]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = Solver::new();
        let _ = vars(&mut s, 1);
        assert!(!s.add_clause([]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        s.add_clause([v[0].pos()]);
        s.add_clause([v[0].neg(), v[1].pos()]);
        s.add_clause([v[1].neg(), v[2].pos()]);
        s.add_clause([v[2].neg(), v[3].pos()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for &x in &v {
            assert_eq!(s.model_value(x), Some(true));
        }
    }

    #[test]
    fn tautology_ignored() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        assert!(s.add_clause([v[0].pos(), v[0].neg()]));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p[i][j]: pigeon i in hole j. 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..3).map(|_| vars(&mut s, 2)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|v| v.pos()));
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    let (x, y) = (p[a][j], p[b][j]);
                    s.add_clause([x.neg(), y.neg()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_5_into_5_sat() {
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..5).map(|_| vars(&mut s, 5)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|v| v.pos()));
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..5 {
            for a in 0..5 {
                for b in (a + 1)..5 {
                    s.add_clause([p[a][j].neg(), p[b][j].neg()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn assumptions_flip_result() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([v[0].neg(), v[1].pos()]);
        assert_eq!(
            s.solve_with_assumptions(&[v[0].pos(), v[1].neg()]),
            SolveResult::Unsat
        );
        // Solver stays usable incrementally:
        assert_eq!(s.solve_with_assumptions(&[v[0].pos()]), SolveResult::Sat);
        assert_eq!(s.model_value(v[1]), Some(true));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unsat_core_is_relevant_subset() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        // v0 & v1 contradictory via clauses; v2, v3 irrelevant.
        s.add_clause([v[0].neg(), v[1].neg()]);
        let assumptions = [v[2].pos(), v[0].pos(), v[3].pos(), v[1].pos()];
        assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Unsat);
        let core: Vec<Lit> = s.unsat_core().to_vec();
        assert!(core.contains(&v[0].pos()) || core.contains(&v[1].pos()));
        assert!(
            !core.contains(&v[2].pos()),
            "irrelevant assumption in core: {core:?}"
        );
        assert!(!core.contains(&v[3].pos()));
        // Core itself must be unsat with the clauses.
        assert_eq!(s.solve_with_assumptions(&core), SolveResult::Unsat);
    }

    #[test]
    fn core_empty_when_clauses_alone_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([v[0].pos()]);
        s.add_clause([v[0].neg()]);
        assert_eq!(s.solve_with_assumptions(&[v[1].pos()]), SolveResult::Unsat);
        assert!(s.unsat_core().is_empty());
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause([v[0].pos(), v[1].pos(), v[2].pos()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause([v[0].neg()]);
        s.add_clause([v[1].neg()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v[2]), Some(true));
        s.add_clause([v[2].neg()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<u64> = (1..=15).map(Solver::luby).collect();
        assert_eq!(seq, [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn activation_groups_enable_and_disable() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        let g1 = s.new_activation();
        let g2 = s.new_activation();
        // Group 1 forces x0; group 2 contradicts it.
        s.add_clause_in_group(g1, [v[0].pos()]);
        s.add_clause_in_group(g2, [v[0].neg()]);
        s.add_clause([v[1].pos()]);
        // Individually each group is consistent.
        assert_eq!(s.solve_with_assumptions(&[g1]), SolveResult::Sat);
        assert_eq!(s.model_value(v[0]), Some(true));
        assert_eq!(s.solve_with_assumptions(&[g2]), SolveResult::Sat);
        assert_eq!(s.model_value(v[0]), Some(false));
        // Together they conflict, and the core names both groups.
        assert_eq!(s.solve_with_assumptions(&[g1, g2]), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(core.contains(&g1) && core.contains(&g2), "{core:?}");
        // Unguarded clauses are unaffected by group selection.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v[1]), Some(true));
    }

    #[test]
    fn retired_group_no_longer_constrains() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        let g1 = s.new_activation();
        let g2 = s.new_activation();
        s.add_clause_in_group(g1, [v[0].pos()]);
        s.add_clause_in_group(g2, [v[0].neg()]);
        assert_eq!(s.solve_with_assumptions(&[g1, g2]), SolveResult::Unsat);
        s.retire_group(g1);
        // With group 1 retired, group 2 alone decides the query.
        assert_eq!(s.solve_with_assumptions(&[g2]), SolveResult::Sat);
        assert_eq!(s.model_value(v[0]), Some(false));
    }

    #[test]
    fn groups_reuse_learnt_clauses_across_queries() {
        // A pigeonhole core shared by two violation groups: solving under
        // the first group trains the solver; the second query still answers
        // correctly with the learnt clauses in place.
        let mut s = Solver::new();
        let n = 5;
        let p: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..n - 1).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            s.add_clause(row.iter().map(|v| v.pos()));
        }
        for a in 0..n {
            for b in (a + 1)..n {
                for (pa, pb) in p[a].iter().zip(&p[b]) {
                    s.add_clause([pa.neg(), pb.neg()]);
                }
            }
        }
        let g1 = s.new_activation();
        let g2 = s.new_activation();
        s.add_clause_in_group(g1, [p[0][0].pos()]);
        s.add_clause_in_group(g2, [p[0][0].neg()]);
        assert_eq!(s.solve_with_assumptions(&[g1]), SolveResult::Unsat);
        let conflicts_first = s.stats().conflicts;
        assert!(conflicts_first > 0, "pigeonhole needs search");
        let clauses = s.num_clauses();
        // The second query runs on the same solver: no clauses are re-added
        // and the conflict counter keeps accumulating instead of resetting —
        // learnt state is carried, not rebuilt.
        assert_eq!(s.solve_with_assumptions(&[g2]), SolveResult::Unsat);
        assert_eq!(s.num_clauses(), clauses);
        assert!(s.stats().conflicts >= conflicts_first);
    }
}
