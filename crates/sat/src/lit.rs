//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered from 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The variable's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn pos(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[allow(clippy::should_implement_trait)] // builds a Lit, does not negate a Var
    pub fn neg(self) -> Lit {
        Lit((self.0 << 1) | 1)
    }

    /// The literal of this variable with the given polarity.
    pub fn lit(self, positive: bool) -> Lit {
        if positive {
            self.pos()
        } else {
            self.neg()
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A literal: a variable or its negation. Encoded as `2*var + sign`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub u32);

impl Lit {
    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is positive (unnegated).
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// Index for watch lists and other literal-indexed arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a literal from a DIMACS-style nonzero integer.
    ///
    /// # Panics
    ///
    /// Panics if `code` is zero.
    pub fn from_dimacs(code: i32) -> Lit {
        assert!(code != 0, "DIMACS literal must be nonzero");
        let v = Var(code.unsigned_abs() - 1);
        v.lit(code > 0)
    }

    /// DIMACS-style integer for this literal (1-based, sign = polarity).
    pub fn to_dimacs(self) -> i32 {
        let n = (self.var().0 + 1) as i32;
        if self.is_pos() {
            n
        } else {
            -n
        }
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pos() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "~{}", self.var())
        }
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Ternary assignment value.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    #[default]
    Undef,
}

impl LBool {
    /// Lifts a `bool`.
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// The value of a literal whose variable has this value.
    pub fn under(self, lit: Lit) -> LBool {
        match (self, lit.is_pos()) {
            (LBool::Undef, _) => LBool::Undef,
            (LBool::True, true) | (LBool::False, false) => LBool::True,
            _ => LBool::False,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrips() {
        let v = Var(5);
        assert_eq!(v.pos().var(), v);
        assert_eq!(v.neg().var(), v);
        assert!(v.pos().is_pos());
        assert!(!v.neg().is_pos());
        assert_eq!(!v.pos(), v.neg());
        assert_eq!(!!v.pos(), v.pos());
    }

    #[test]
    fn dimacs_roundtrips() {
        for code in [1, -1, 7, -42] {
            assert_eq!(Lit::from_dimacs(code).to_dimacs(), code);
        }
        assert_eq!(Lit::from_dimacs(1), Var(0).pos());
        assert_eq!(Lit::from_dimacs(-3), Var(2).neg());
    }

    #[test]
    fn lbool_under_literal() {
        let v = Var(0);
        assert_eq!(LBool::True.under(v.pos()), LBool::True);
        assert_eq!(LBool::True.under(v.neg()), LBool::False);
        assert_eq!(LBool::False.under(v.neg()), LBool::True);
        assert_eq!(LBool::Undef.under(v.pos()), LBool::Undef);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn dimacs_zero_rejected() {
        let _ = Lit::from_dimacs(0);
    }
}
