//! A CDCL SAT solver on a flat clause arena, in the MiniSat/Glucose lineage.
//!
//! Clauses live in one contiguous `Vec<u32>` (header words followed by the
//! literal run), addressed by `ClauseRef` word offsets — the same u32-id
//! trick as the interned-term arena in `ivy-fol`. Deletion marks a header
//! bit and counts wasted words; a compacting GC rewrites the arena through
//! forwarding pointers once a quarter of it is garbage. On top of the
//! arena the solver layers the competition-era CDCL features, each behind a
//! [`SolverConfig`] toggle so the `solver_ablation` bench can measure it in
//! isolation:
//!
//! * **LBD (glue) reduction** — every learnt clause records its literal
//!   block distance; the learnt database is periodically halved keeping
//!   low-LBD / high-activity clauses, replacing the blunt `max_learnts` cap.
//! * **Recursive conflict-clause minimization** — MiniSat's `litRedundant`
//!   walk over the implication graph, dropping dominated literals.
//! * **Chronological backtracking** — when analysis would jump far past the
//!   conflict level, back up one level instead and assert there.
//! * **Portfolio racing** — N diversified clones of the solver race on the
//!   same clause database with bounded sharing of glue clauses; first
//!   decisive answer wins and the winner's state is adopted.
//!
//! The paper's Ivy uses Z3 as its satisfiability back end; this solver
//! (plus the EPR grounding layer in `ivy-epr`) is our from-scratch
//! substitute. The pre-arena solver is frozen in [`crate::legacy`] as a
//! differential-testing baseline.

use crate::lit::{LBool, Lit, Var};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Statistics about a solver's run, cumulative over all `solve` calls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of conflicts analyzed.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Number of LBD-based learnt-database reductions performed.
    pub lbd_reductions: u64,
    /// Literals removed from learnt clauses by conflict-clause minimization.
    pub minimized_lits: u64,
    /// Portfolio races run (calls that fanned out to diversified workers).
    pub portfolio_races: u64,
    /// Portfolio races won by a diversified (non-baseline) worker.
    pub portfolio_winner: u64,
}

/// The result of [`Solver::solve_with_assumptions`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable; query the model via [`Solver::model_value`].
    Sat,
    /// Unsatisfiable under the assumptions; the subset of assumptions used
    /// in the refutation is available via [`Solver::unsat_core`].
    Unsat,
}

/// Why [`Solver::solve_budgeted`] gave up without an answer (see
/// [`Solver::last_interrupt`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interrupt {
    /// The per-call conflict budget was exhausted.
    Conflicts,
    /// The wall-clock deadline set via [`Solver::set_deadline`] passed.
    Deadline,
    /// A portfolio sibling answered first and asked this worker to stop.
    /// Never observed through [`Solver::last_interrupt`] on the adopted
    /// winner: a stopped worker only loses the race to a decisive answer.
    Stopped,
}

/// Feature toggles and tuning knobs for the CDCL search.
///
/// [`SolverConfig::default`] enables every feature; [`SolverConfig::baseline`]
/// reproduces the pre-arena solver's policies (activity-capped learnt
/// database, one-level minimization, pure backjumping) for ablation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolverConfig {
    /// Reduce the learnt database by LBD (glue) instead of the
    /// `max_learnts` activity cap.
    pub lbd_reduction: bool,
    /// Use recursive (full implication-graph) conflict-clause minimization
    /// instead of the one-level check.
    pub recursive_minimization: bool,
    /// Backtrack chronologically (one level) when analysis would jump more
    /// than [`SolverConfig::chrono_threshold`] levels.
    pub chrono_backtrack: bool,
    /// Minimum backjump distance before chronological backtracking kicks in.
    pub chrono_threshold: u32,
    /// Base conflict budget per Luby restart (the pre-arena solver used 100).
    pub restart_unit: u64,
    /// VSIDS variable-activity decay factor (activity increment grows by
    /// `1 / var_decay` per conflict).
    pub var_decay: f64,
    /// Number of diversified solver threads to race per query; values below
    /// 2 solve sequentially.
    pub portfolio: usize,
    /// Emit flat CNF (no Tseitin gates) for matrices that distribute into a
    /// small clause set. An *encoder-level* feature — the SAT core itself
    /// ignores it — carried here so the whole per-query feature set has a
    /// single ablation surface.
    pub flat_cnf: bool,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            lbd_reduction: true,
            recursive_minimization: true,
            chrono_backtrack: true,
            chrono_threshold: 100,
            restart_unit: 100,
            var_decay: 0.95,
            portfolio: 0,
            flat_cnf: true,
        }
    }
}

impl SolverConfig {
    /// The all-features-off configuration: identical search policies to the
    /// frozen pre-arena solver in [`crate::legacy`], so ablations can
    /// isolate the arena layout itself.
    pub fn baseline() -> SolverConfig {
        SolverConfig {
            lbd_reduction: false,
            recursive_minimization: false,
            chrono_backtrack: false,
            chrono_threshold: 100,
            restart_unit: 100,
            var_decay: 0.95,
            portfolio: 0,
            flat_cnf: false,
        }
    }
}

/// Word offset of a clause inside the arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ClauseRef(u32);

const HEADER_WORDS: usize = 3;
/// Header word 0, bit 0: clause is learnt.
const LEARNT_BIT: u32 = 1 << 0;
/// Header word 0, bit 1: clause is deleted (space reclaimed by the next GC).
const DELETED_BIT: u32 = 1 << 1;
/// Header word 0, bit 2: clause was already exported to (or imported from)
/// the portfolio share pool.
const EXPORTED_BIT: u32 = 1 << 2;
/// Clause size is stored in header word 0 above the flag bits.
const SIZE_SHIFT: u32 = 3;

/// Flat clause storage: `[header, activity, lbd, lit0, lit1, ...]*`.
///
/// Word 1 holds the clause activity as `f32` bits; during GC it doubles as
/// the forwarding pointer to the clause's new offset. Word 2 is the LBD.
#[derive(Clone, Debug, Default)]
struct ClauseArena {
    data: Vec<u32>,
    /// Words occupied by deleted clauses; drives GC scheduling.
    wasted: u32,
}

impl ClauseArena {
    fn alloc(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        debug_assert!(self.data.len() + HEADER_WORDS + lits.len() < u32::MAX as usize);
        let cref = ClauseRef(self.data.len() as u32);
        let mut header = (lits.len() as u32) << SIZE_SHIFT;
        if learnt {
            header |= LEARNT_BIT;
        }
        self.data.push(header);
        self.data.push(0f32.to_bits());
        self.data.push(lbd);
        self.data.extend(lits.iter().map(|l| l.0));
        cref
    }

    #[inline]
    fn header(&self, c: ClauseRef) -> u32 {
        self.data[c.0 as usize]
    }

    #[inline]
    fn len(&self, c: ClauseRef) -> usize {
        (self.header(c) >> SIZE_SHIFT) as usize
    }

    #[inline]
    fn base(&self, c: ClauseRef) -> usize {
        c.0 as usize + HEADER_WORDS
    }

    #[inline]
    fn lit(&self, c: ClauseRef, k: usize) -> Lit {
        Lit(self.data[self.base(c) + k])
    }

    #[inline]
    fn swap_lits(&mut self, c: ClauseRef, a: usize, b: usize) {
        let base = self.base(c);
        self.data.swap(base + a, base + b);
    }

    #[inline]
    fn is_deleted(&self, c: ClauseRef) -> bool {
        self.header(c) & DELETED_BIT != 0
    }

    #[inline]
    fn is_learnt(&self, c: ClauseRef) -> bool {
        self.header(c) & LEARNT_BIT != 0
    }

    #[inline]
    fn is_exported(&self, c: ClauseRef) -> bool {
        self.header(c) & EXPORTED_BIT != 0
    }

    fn set_exported(&mut self, c: ClauseRef) {
        self.data[c.0 as usize] |= EXPORTED_BIT;
    }

    fn delete(&mut self, c: ClauseRef) {
        if !self.is_deleted(c) {
            self.wasted += (HEADER_WORDS + self.len(c)) as u32;
            self.data[c.0 as usize] |= DELETED_BIT;
        }
    }

    #[inline]
    fn activity(&self, c: ClauseRef) -> f32 {
        f32::from_bits(self.data[c.0 as usize + 1])
    }

    fn set_activity(&mut self, c: ClauseRef, a: f32) {
        self.data[c.0 as usize + 1] = a.to_bits();
    }

    #[inline]
    fn lbd(&self, c: ClauseRef) -> u32 {
        self.data[c.0 as usize + 2]
    }
}

#[derive(Clone, Copy, Debug)]
struct Watch {
    cref: ClauseRef,
    blocker: Lit,
}

/// Tag bit on [`Watch::cref`] marking a binary clause. For a binary clause
/// the blocker *is* the entire rest of the clause, so propagation can
/// decide skip/enqueue/conflict from the watch entry alone — the arena is
/// only touched on an actual enqueue (to put the propagated literal at
/// position 0, the reason-clause invariant `analyze` relies on). EPR
/// groundings are dominated by binary gate clauses, making this the hot
/// path of [`Solver::propagate`].
const BINARY_TAG: u32 = 1 << 31;

impl Watch {
    /// The untagged clause reference.
    #[inline]
    fn clause(self) -> ClauseRef {
        ClauseRef(self.cref.0 & !BINARY_TAG)
    }

    #[inline]
    fn is_binary(self) -> bool {
        self.cref.0 & BINARY_TAG != 0
    }
}

/// Indexed max-heap over variable activities (the VSIDS order).
#[derive(Clone, Debug, Default)]
struct VarHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX` when absent.
    pos: Vec<usize>,
}

impl VarHeap {
    fn grow_to(&mut self, n: usize) {
        while self.pos.len() < n {
            self.pos.push(usize::MAX);
        }
    }

    fn contains(&self, v: Var) -> bool {
        self.pos[v.index()] != usize::MAX
    }

    fn insert(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn pop_max(&mut self, act: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("nonempty");
        self.pos[top.index()] = usize::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn decrease_key_bumped(&mut self, v: Var, act: &[f64]) {
        // Activity only increases, so a bumped element sifts up.
        let i = self.pos[v.index()];
        if i != usize::MAX {
            self.sift_up(i, act);
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].index()] > act[self.heap[parent].index()] {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[best].index()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[best].index()] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].index()] = a;
        self.pos[self.heap[b].index()] = b;
    }
}

/// Clauses exported by portfolio workers: `(lbd, literals)` pairs appended
/// under the pool mutex; each worker keeps a private cursor into the vec.
type SharePool = Arc<Mutex<Vec<(u32, Vec<Lit>)>>>;

/// A worker's connection to the portfolio share pool.
#[derive(Clone, Debug)]
struct ShareLink {
    pool: SharePool,
    /// Pool entries before this index were already imported.
    cursor: usize,
}

/// The winning worker of a portfolio race: `(index, solver, result)`.
type WinnerSlot = Mutex<Option<(usize, Box<Solver>, Option<SolveResult>)>>;

/// Per-exchange cap on clauses a worker pushes to the share pool.
const SHARE_EXPORT_PER_ROUND: usize = 16;
/// Only clauses this short or with LBD at most [`SHARE_MAX_LBD`] are shared.
const SHARE_MAX_LEN: usize = 2;
/// LBD ceiling for sharing (and the "glue" protection bound in reduction).
const SHARE_MAX_LBD: u32 = 2;
/// Total share-pool size cap across all workers of one race.
const SHARE_POOL_CAP: usize = 512;
/// Upper bound on portfolio fan-out regardless of configuration.
const MAX_PORTFOLIO_WORKERS: usize = 8;
/// Conflicts before the first LBD-based reduction.
const REDUCE_BASE: u64 = 2000;
/// Extra conflicts added to the reduction interval per reduction done.
const REDUCE_INTERVAL_GROWTH: u64 = 300;

/// A CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use ivy_sat::{Solver, SolveResult};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause([a.pos(), b.pos()]);
/// s.add_clause([a.neg()]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// assert_eq!(s.model_value(b), Some(true));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Solver {
    arena: ClauseArena,
    /// Live problem (non-learnt) clauses attached to watches.
    attached_problem: usize,
    learnt_refs: Vec<ClauseRef>,
    watches: Vec<Vec<Watch>>,
    assign: Vec<LBool>,
    polarity: Vec<bool>,
    /// Vars whose decision phase is pinned: phase saving skips them, so the
    /// solver always prefers the pinned polarity when branching.
    phase_pinned: Vec<bool>,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: VarHeap,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    reason: Vec<Option<ClauseRef>>,
    level: Vec<u32>,
    qhead: usize,
    /// False once the clause set is unconditionally unsatisfiable.
    ok: bool,
    seen: Vec<bool>,
    /// Per-decision-level stamp used by LBD computation.
    lbd_stamp: Vec<u64>,
    lbd_gen: u64,
    assumptions: Vec<Lit>,
    core: Vec<Lit>,
    model: Vec<LBool>,
    max_learnts: f64,
    /// Conflict count that triggers the next LBD reduction.
    next_reduce: u64,
    /// LBD reductions done so far (grows the reduction interval).
    reduce_count: u64,
    /// Problem (non-learnt) clauses submitted via `add_clause`, counted
    /// before simplification; sizes the learnt-clause database.
    problem_clauses: usize,
    /// When true (the default), `max_learnts` is raised to a fraction of
    /// the problem clause count at each solve, so large groundings do not
    /// thrash the learnt database against the old fixed cap of 1000.
    scale_learnts: bool,
    config: SolverConfig,
    /// Wall-clock deadline; search gives up (gracefully) once it passes.
    deadline: Option<Instant>,
    /// Cooperative cancellation flag shared across a portfolio race.
    stop: Option<Arc<AtomicBool>>,
    /// Link to the portfolio clause-share pool, if racing.
    share: Option<ShareLink>,
    /// Why the most recent `solve_budgeted` returned `None`.
    interrupt: Option<Interrupt>,
    /// Reused literal buffer for `add_clause` simplification — EPR
    /// groundings add millions of clauses, so the per-call allocation is
    /// measurable.
    scratch_add: Vec<Lit>,
    stats: Stats,
}

impl Solver {
    /// Creates an empty solver with the default (all features on)
    /// configuration.
    pub fn new() -> Solver {
        Solver {
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            max_learnts: 1000.0,
            next_reduce: REDUCE_BASE,
            scale_learnts: true,
            config: SolverConfig::default(),
            ..Solver::default()
        }
    }

    /// Creates an empty solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Solver {
        Solver {
            config,
            ..Solver::new()
        }
    }

    /// The active configuration.
    pub fn config(&self) -> SolverConfig {
        self.config
    }

    /// Replaces the configuration. Takes effect on the next solve; safe to
    /// call between incremental queries.
    pub fn set_config(&mut self, config: SolverConfig) {
        self.config = config;
    }

    /// Sets the portfolio fan-out (see [`SolverConfig::portfolio`]).
    pub fn set_portfolio(&mut self, workers: usize) {
        self.config.portfolio = workers;
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(LBool::Undef);
        self.polarity.push(false);
        self.phase_pinned.push(false);
        self.activity.push(0.0);
        self.reason.push(None);
        self.level.push(0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow_to(self.assign.len());
        self.order.insert(v, &self.activity);
        v
    }

    /// Pins `v`'s decision phase to `value`: when branching on `v`, the
    /// solver always tries `value` first, and phase saving no longer updates
    /// the preference. Propagation may of course still force the other
    /// value. Useful for variables (like ground-equality encodings) whose
    /// unconstrained occurrences should default to a canonical polarity
    /// instead of whatever an earlier model happened to assign.
    pub fn pin_phase(&mut self, v: Var, value: bool) {
        self.polarity[v.index()] = value;
        self.phase_pinned[v.index()] = true;
    }

    /// Forgets all saved decision phases, restoring the initial all-false
    /// preference (pinned phases keep their pinned value). Incremental
    /// queries use this to avoid inheriting a previous, unrelated model:
    /// saved phases make the solver re-assert atoms the old model set true,
    /// which can force large spurious equality classes in lazy-equality
    /// grounding.
    pub fn reset_phases(&mut self) {
        for (i, p) in self.polarity.iter_mut().enumerate() {
            if !self.phase_pinned[i] {
                *p = false;
            }
        }
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of problem (non-learnt) clauses currently attached (clauses
    /// simplified away at add time are not counted).
    pub fn num_clauses(&self) -> usize {
        self.attached_problem
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Sets (or clears) the wall-clock deadline. Once it passes,
    /// [`Solver::solve_budgeted`] returns `None` with
    /// [`Solver::last_interrupt`] reporting [`Interrupt::Deadline`]. The
    /// solver stays usable; clear the deadline to resume unbounded solving.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Why the most recent [`Solver::solve_budgeted`] call returned `None`
    /// (cleared at the start of each solve).
    pub fn last_interrupt(&self) -> Option<Interrupt> {
        self.interrupt
    }

    /// Enables or disables sizing the learnt-clause database from the
    /// problem clause count (on by default). With scaling off the database
    /// starts at the historical fixed cap of 1000 regardless of problem
    /// size — kept for ablation.
    pub fn set_learnt_scaling(&mut self, enabled: bool) {
        self.scale_learnts = enabled;
    }

    /// Adds a clause. Returns `false` when the solver becomes trivially
    /// unsatisfiable (empty clause, or a unit contradicting level-0 facts).
    ///
    /// Clauses may be added between `solve` calls (incremental use).
    ///
    /// # Panics
    ///
    /// Panics if a literal's variable was not allocated with
    /// [`Solver::new_var`].
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "clauses are added at level 0");
        if !self.ok {
            return false;
        }
        self.problem_clauses += 1;
        let mut buf = std::mem::take(&mut self.scratch_add);
        buf.clear();
        buf.extend(lits);
        for l in &buf {
            assert!(l.var().index() < self.num_vars(), "unknown variable {l}");
        }
        // Simplify in place: sort, dedupe, drop false literals, detect
        // tautology. The buffer is a reused field — `add_clause` runs
        // millions of times during grounding, so it must not allocate.
        buf.sort_unstable();
        buf.dedup();
        let mut kept = 0;
        let mut trivial = false;
        for i in 0..buf.len() {
            let l = buf[i];
            if i + 1 < buf.len() && buf[i + 1] == !l {
                trivial = true; // tautology: contains l and ~l
                break;
            }
            match self.value(l) {
                LBool::True => {
                    trivial = true; // satisfied at level 0
                    break;
                }
                LBool::False => {} // drop
                LBool::Undef => {
                    buf[kept] = l;
                    kept += 1;
                }
            }
        }
        let result = if trivial {
            true
        } else {
            buf.truncate(kept);
            match buf.len() {
                0 => {
                    self.ok = false;
                    false
                }
                1 => {
                    self.unchecked_enqueue(buf[0], None);
                    self.ok = self.propagate().is_none();
                    self.ok
                }
                _ => {
                    self.attach_clause(&buf, false, 0);
                    true
                }
            }
        };
        self.scratch_add = buf;
        result
    }

    fn attach_clause(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.arena.alloc(lits, learnt, lbd);
        if learnt {
            self.learnt_refs.push(cref);
        } else {
            self.attached_problem += 1;
        }
        let (w0, w1) = (lits[0], lits[1]);
        debug_assert_eq!(cref.0 & BINARY_TAG, 0, "arena outgrew the watch tag bit");
        let tagged = if lits.len() == 2 {
            ClauseRef(cref.0 | BINARY_TAG)
        } else {
            cref
        };
        self.watches[w0.index()].push(Watch {
            cref: tagged,
            blocker: w1,
        });
        self.watches[w1.index()].push(Watch {
            cref: tagged,
            blocker: w0,
        });
        cref
    }

    fn value(&self, l: Lit) -> LBool {
        self.assign[l.var().index()].under(l)
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.value(l), LBool::Undef);
        let v = l.var().index();
        self.assign[v] = LBool::from_bool(l.is_pos());
        self.reason[v] = reason;
        self.level[v] = self.decision_level();
        self.trail.push(l);
    }

    /// Propagates pending assignments; returns the conflicting clause
    /// reference, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            // Visit clauses watching ~p (now false).
            let mut i = 0;
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut conflict = None;
            while i < watch_list.len() {
                let w = watch_list[i];
                let blocker = w.blocker;
                if self.value(blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                if w.is_binary() {
                    // Binary clauses are never deleted (the reduction passes
                    // skip `len <= 2`), so the watch entry is authoritative.
                    let cref = w.clause();
                    debug_assert!(!self.arena.is_deleted(cref));
                    if self.value(blocker) == LBool::False {
                        conflict = Some(cref);
                        self.qhead = self.trail.len();
                        break;
                    }
                    if self.arena.lit(cref, 0) != blocker {
                        self.arena.swap_lits(cref, 0, 1);
                    }
                    self.unchecked_enqueue(blocker, Some(cref));
                    i += 1;
                    continue;
                }
                let cref = w.cref;
                if self.arena.is_deleted(cref) {
                    watch_list.swap_remove(i);
                    continue;
                }
                // Normalize: the false watch goes to position 1.
                if self.arena.lit(cref, 0) == false_lit {
                    self.arena.swap_lits(cref, 0, 1);
                }
                debug_assert_eq!(self.arena.lit(cref, 1), false_lit);
                let first = self.arena.lit(cref, 0);
                if first != blocker && self.value(first) == LBool::True {
                    watch_list[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Find a new literal to watch.
                let len = self.arena.len(cref);
                let mut moved = false;
                for k in 2..len {
                    let cand = self.arena.lit(cref, k);
                    if self.value(cand) != LBool::False {
                        self.arena.swap_lits(cref, 1, k);
                        self.watches[cand.index()].push(Watch {
                            cref,
                            blocker: first,
                        });
                        watch_list.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflict.
                if self.value(first) == LBool::False {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    break;
                }
                self.unchecked_enqueue(first, Some(cref));
                i += 1;
            }
            self.watches[false_lit.index()].append(&mut watch_list);
            // Note: append puts processed watches back *after* any watches
            // added during this loop (none target false_lit), order is
            // irrelevant for correctness.
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.assign[v.index()] = LBool::Undef;
            if !self.phase_pinned[v.index()] {
                self.polarity[v.index()] = l.is_pos();
            }
            self.reason[v.index()] = None;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.decrease_key_bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let bumped = self.arena.activity(cref) + self.cla_inc as f32;
        self.arena.set_activity(cref, bumped);
        if bumped > 1e20 {
            for &r in &self.learnt_refs {
                let scaled = self.arena.activity(r) * 1e-20;
                self.arena.set_activity(r, scaled);
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Literal block distance: distinct nonzero decision levels among `lits`.
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_gen += 1;
        let mut lbd = 0u32;
        for &l in lits {
            let lev = self.level[l.var().index()] as usize;
            if lev == 0 {
                continue;
            }
            if lev >= self.lbd_stamp.len() {
                self.lbd_stamp.resize(lev + 1, 0);
            }
            if self.lbd_stamp[lev] != self.lbd_gen {
                self.lbd_stamp[lev] = self.lbd_gen;
                lbd += 1;
            }
        }
        lbd
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = confl;
        loop {
            self.bump_clause(confl);
            // Skip position 0 when it is the literal we just resolved on.
            let skip = usize::from(p.is_some());
            let len = self.arena.len(confl);
            for k in skip..len {
                let q = self.arena.lit(confl, k);
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Pick the next literal on the trail to resolve.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let q = self.trail[index];
            self.seen[q.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(q);
                break;
            }
            confl = self.reason[q.var().index()].expect("non-UIP literal has a reason");
            p = Some(q);
        }
        learnt[0] = !p.expect("loop sets p");

        // Conflict-clause minimization: drop literals implied by the rest of
        // the clause, either through their immediate reason (one-level) or
        // the whole implication graph (recursive).
        let mut to_clear: Vec<Var> = Vec::new();
        let mut keep = vec![true; learnt.len()];
        if self.config.recursive_minimization {
            let abstract_levels = learnt[1..].iter().fold(0u32, |acc, l| {
                acc | Self::abstract_level(self.level[l.var().index()])
            });
            for i in 1..learnt.len() {
                keep[i] = !self.lit_redundant_recursive(learnt[i], abstract_levels, &mut to_clear);
            }
        } else {
            for i in 1..learnt.len() {
                keep[i] = !self.literal_redundant(learnt[i]);
            }
        }
        let mut minimized = Vec::with_capacity(learnt.len());
        for (i, &l) in learnt.iter().enumerate() {
            if keep[i] {
                minimized.push(l);
            }
        }
        self.stats.minimized_lits += (learnt.len() - minimized.len()) as u64;

        // Compute backtrack level: second highest level in the clause.
        let bt = if minimized.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var().index()]
                    > self.level[minimized[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            self.level[minimized[1].var().index()]
        };
        for &l in &minimized {
            self.seen[l.var().index()] = false;
        }
        // Clear any remaining seen flags from minimization checks.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        for &v in &to_clear {
            self.seen[v.index()] = false;
        }
        (minimized, bt)
    }

    /// Whether `l` is implied by the other literals already in the learnt
    /// clause (a one-level check, not the full recursive version).
    fn literal_redundant(&self, l: Lit) -> bool {
        match self.reason[l.var().index()] {
            None => false,
            Some(r) => (0..self.arena.len(r)).all(|k| {
                let q = self.arena.lit(r, k);
                q == !l || self.seen[q.var().index()] || self.level[q.var().index()] == 0
            }),
        }
    }

    /// Bitmask fingerprint of a decision level (MiniSat's `abstractLevel`).
    fn abstract_level(level: u32) -> u32 {
        1 << (level & 31)
    }

    /// MiniSat's `litRedundant`: whether `l` is implied by `seen` literals
    /// through any depth of the implication graph. Vars proven redundant
    /// along the way stay marked in `seen` (memoization) and are recorded in
    /// `to_clear` for the caller to unmark; on failure the vars marked by
    /// this call are rolled back.
    fn lit_redundant_recursive(
        &mut self,
        l: Lit,
        abstract_levels: u32,
        to_clear: &mut Vec<Var>,
    ) -> bool {
        if self.reason[l.var().index()].is_none() {
            return false;
        }
        let mut stack = vec![l.var()];
        let undo_from = to_clear.len();
        while let Some(v) = stack.pop() {
            let r = self.reason[v.index()].expect("stacked vars have reasons");
            // Position 0 holds the propagated literal itself; its antecedents
            // are the rest.
            for k in 1..self.arena.len(r) {
                let q = self.arena.lit(r, k);
                let qv = q.var();
                if self.seen[qv.index()] || self.level[qv.index()] == 0 {
                    continue;
                }
                if self.reason[qv.index()].is_some()
                    && (Self::abstract_level(self.level[qv.index()]) & abstract_levels) != 0
                {
                    self.seen[qv.index()] = true;
                    to_clear.push(qv);
                    stack.push(qv);
                } else {
                    for &u in &to_clear[undo_from..] {
                        self.seen[u.index()] = false;
                    }
                    to_clear.truncate(undo_from);
                    return false;
                }
            }
        }
        true
    }

    /// Produces the subset of assumptions responsible for falsifying the
    /// assumption `failed` (MiniSat's `analyzeFinal`). The trail contains
    /// `!failed`; we walk its implication graph back to assumption decisions.
    fn analyze_final(&mut self, failed: Lit) -> Vec<Lit> {
        let mut core = vec![failed];
        if self.decision_level() == 0 {
            return core;
        }
        self.seen[failed.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let q = self.trail[i];
            let v = q.var().index();
            if !self.seen[v] {
                continue;
            }
            match self.reason[v] {
                // A decision within assumption levels is an assumption, and
                // the trail literal *is* the assumption itself. (When q is
                // `!failed` it is the contradictory twin assumption.)
                None => core.push(q),
                Some(r) => {
                    for k in 1..self.arena.len(r) {
                        let x = self.arena.lit(r, k);
                        if self.level[x.var().index()] > 0 {
                            self.seen[x.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[failed.var().index()] = false;
        core
    }

    /// Whether `r` is the reason of its first literal's assignment (locked
    /// clauses must never be deleted).
    fn is_locked(&self, r: ClauseRef) -> bool {
        self.reason[self.arena.lit(r, 0).var().index()] == Some(r)
    }

    /// Activity-based reduction (the pre-arena policy): sort learnt clauses
    /// by activity, delete the weaker half (skipping binary and locked
    /// clauses).
    fn reduce_db(&mut self) {
        let mut refs = self.learnt_refs.clone();
        let arena = &self.arena;
        refs.retain(|&r| !arena.is_deleted(r));
        refs.sort_by(|&a, &b| {
            arena
                .activity(a)
                .partial_cmp(&arena.activity(b))
                .expect("activities are finite")
        });
        let target = refs.len() / 2;
        let mut deleted = 0;
        for &r in refs.iter() {
            if deleted >= target {
                break;
            }
            let locked = self.arena.len(r) <= 2 || self.is_locked(r);
            if !locked {
                self.arena.delete(r);
                deleted += 1;
                self.stats.deleted_clauses += 1;
            }
        }
        let arena = &self.arena;
        self.learnt_refs.retain(|&r| !arena.is_deleted(r));
        self.maybe_collect_garbage();
    }

    /// LBD-based reduction (Glucose's policy): sort deletion candidates by
    /// LBD descending then activity ascending, delete the worst half.
    /// Binary clauses, glue clauses (LBD ≤ 2), and locked clauses are kept.
    fn reduce_db_lbd(&mut self) {
        let mut cands: Vec<ClauseRef> = Vec::with_capacity(self.learnt_refs.len());
        for &r in &self.learnt_refs {
            debug_assert!(self.arena.is_deleted(r) || self.arena.is_learnt(r));
            if !self.arena.is_deleted(r)
                && self.arena.len(r) > 2
                && self.arena.lbd(r) > SHARE_MAX_LBD
                && !self.is_locked(r)
            {
                cands.push(r);
            }
        }
        let arena = &self.arena;
        cands.sort_by(|&a, &b| {
            arena.lbd(b).cmp(&arena.lbd(a)).then(
                arena
                    .activity(a)
                    .partial_cmp(&arena.activity(b))
                    .expect("activities are finite"),
            )
        });
        let target = cands.len() / 2;
        for &r in &cands[..target] {
            self.arena.delete(r);
            self.stats.deleted_clauses += 1;
        }
        self.stats.lbd_reductions += 1;
        let arena = &self.arena;
        self.learnt_refs.retain(|&r| !arena.is_deleted(r));
        self.maybe_collect_garbage();
    }

    fn maybe_collect_garbage(&mut self) {
        if (self.arena.wasted as usize) * 4 > self.arena.data.len() {
            self.collect_garbage();
        }
    }

    /// Compacts the arena: copies live clauses front-to-back, writing each
    /// clause's new offset into its activity word (word 1) as a forwarding
    /// pointer, then remaps every `ClauseRef` in watches, reasons, and the
    /// learnt list.
    fn collect_garbage(&mut self) {
        let mut old = std::mem::take(&mut self.arena.data);
        let mut new_data = Vec::with_capacity(old.len().saturating_sub(self.arena.wasted as usize));
        let mut off = 0usize;
        while off < old.len() {
            let header = old[off];
            let total = HEADER_WORDS + (header >> SIZE_SHIFT) as usize;
            if header & DELETED_BIT == 0 {
                let new_off = new_data.len() as u32;
                new_data.extend_from_slice(&old[off..off + total]);
                old[off + 1] = new_off; // forwarding pointer
            }
            off += total;
        }
        let fwd = |c: ClauseRef| -> ClauseRef {
            debug_assert_eq!(
                old[c.0 as usize] & DELETED_BIT,
                0,
                "deleted clause survived"
            );
            ClauseRef(old[c.0 as usize + 1])
        };
        for wl in &mut self.watches {
            // Watches of deleted clauses are purged lazily by propagation;
            // drop any stragglers now so every remaining cref forwards.
            wl.retain(|w| old[w.clause().0 as usize] & DELETED_BIT == 0);
            for w in wl.iter_mut() {
                let tag = w.cref.0 & BINARY_TAG;
                w.cref = ClauseRef(fwd(w.clause()).0 | tag);
            }
        }
        for r in self.reason.iter_mut().flatten() {
            *r = fwd(*r);
        }
        for r in &mut self.learnt_refs {
            *r = fwd(*r);
        }
        self.arena.data = new_data;
        self.arena.wasted = 0;
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assign[v.index()] == LBool::Undef {
                return Some(v);
            }
        }
        None
    }

    /// Luby restart sequence value (1-based): 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
    fn luby(mut i: u64) -> u64 {
        loop {
            let mut k = 1u32;
            while (1u64 << k) - 1 < i {
                k += 1;
            }
            if (1u64 << k) - 1 == i {
                return 1u64 << (k - 1);
            }
            i -= (1u64 << (k - 1)) - 1;
        }
    }

    /// Solves without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals. On `Unsat`, the subset of
    /// assumptions participating in the refutation is available via
    /// [`Solver::unsat_core`] (empty core = unsatisfiable even without
    /// assumptions).
    ///
    /// # Panics
    ///
    /// Panics if a deadline set via [`Solver::set_deadline`] expires during
    /// the solve — callers with a deadline must use
    /// [`Solver::solve_budgeted`], which degrades gracefully.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_budgeted(assumptions, u64::MAX)
            .expect("unbounded solve always decides (use solve_budgeted with a deadline)")
    }

    /// Like [`Solver::solve_with_assumptions`] but gives up (returning
    /// `None`) once roughly `max_conflicts` conflicts have been analyzed in
    /// this call, or once the deadline set via [`Solver::set_deadline`]
    /// passes; [`Solver::last_interrupt`] tells the two apart. The solver
    /// stays usable afterwards (learnt clauses are kept).
    ///
    /// With [`SolverConfig::portfolio`] ≥ 2 the call races that many
    /// diversified clones of the solver and adopts the winner's state; the
    /// verdict is identical to a sequential solve (both are sound and
    /// complete on the same clause set), though models and failed-assumption
    /// cores may differ within their usual nondeterminism.
    pub fn solve_budgeted(
        &mut self,
        assumptions: &[Lit],
        max_conflicts: u64,
    ) -> Option<SolveResult> {
        if self.config.portfolio >= 2 && self.stop.is_none() && self.share.is_none() {
            self.solve_portfolio(assumptions, max_conflicts)
        } else {
            self.solve_budgeted_seq(assumptions, max_conflicts)
        }
    }

    fn solve_budgeted_seq(
        &mut self,
        assumptions: &[Lit],
        max_conflicts: u64,
    ) -> Option<SolveResult> {
        self.assumptions = assumptions.to_vec();
        self.core.clear();
        self.interrupt = None;
        self.backtrack_to(0);
        if !self.ok {
            return Some(SolveResult::Unsat);
        }
        if self.propagate().is_some() {
            self.ok = false;
            return Some(SolveResult::Unsat);
        }
        if self.scale_learnts {
            // Size the learnt database to the problem: a fixed cap of 1000
            // thrashes on 100k+-clause groundings. Only ever raise it, so
            // the usual 1.1x growth is preserved across incremental calls.
            let target = (self.problem_clauses / 3).max(1000) as f64;
            if self.max_learnts < target {
                self.max_learnts = target;
            }
        }
        let conflict_limit = self.stats.conflicts.saturating_add(max_conflicts);
        let mut restart = 0u64;
        loop {
            restart += 1;
            let budget = self
                .config
                .restart_unit
                .max(1)
                .saturating_mul(Self::luby(restart));
            match self.search(budget) {
                Some(result) => {
                    self.backtrack_to(0);
                    return Some(result);
                }
                None => {
                    self.stats.restarts += 1;
                    self.backtrack_to(0);
                    self.exchange_shared_clauses();
                    if !self.ok {
                        return Some(SolveResult::Unsat);
                    }
                    if self.stop_requested() {
                        self.interrupt = Some(Interrupt::Stopped);
                        return None;
                    }
                    if self.deadline_passed() {
                        self.interrupt = Some(Interrupt::Deadline);
                        return None;
                    }
                    if self.stats.conflicts >= conflict_limit {
                        self.interrupt = Some(Interrupt::Conflicts);
                        return None;
                    }
                }
            }
        }
    }

    fn deadline_passed(&self) -> bool {
        matches!(self.deadline, Some(d) if Instant::now() >= d)
    }

    fn stop_requested(&self) -> bool {
        matches!(&self.stop, Some(f) if f.load(Ordering::Relaxed))
    }

    /// Runs CDCL search for at most `budget` conflicts; `None` = restart.
    fn search(&mut self, budget: u64) -> Option<SolveResult> {
        let mut conflicts_here = 0u64;
        let mut steps = 0u32;
        loop {
            // Poll the wall clock (and the portfolio stop flag) sparingly: an
            // overshoot of a few thousand propagation/decision steps is
            // invisible next to the cost of checking `Instant::now` every
            // iteration.
            steps = steps.wrapping_add(1);
            if steps & 0x0FFF == 0 && (self.deadline_passed() || self.stop_requested()) {
                return None; // surfaces as a restart; solve_budgeted stops
            }
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Some(SolveResult::Unsat);
                }
                let (learnt, bt) = self.analyze(confl);
                // LBD is computed against pre-backtrack levels.
                let lbd = self.compute_lbd(&learnt);
                // Chronological backtracking: on a long backjump, step back a
                // single level and assert there instead, keeping most of the
                // trail. Unit learnt clauses always go to level 0 (a reason-
                // less literal above level 0 would corrupt final-conflict
                // analysis).
                let target = if self.config.chrono_backtrack
                    && learnt.len() > 1
                    && self.decision_level() > bt.saturating_add(self.config.chrono_threshold)
                {
                    self.decision_level() - 1
                } else {
                    bt
                };
                self.backtrack_to(target);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    self.unchecked_enqueue(asserting, None);
                } else {
                    let cref = self.attach_clause(&learnt, true, lbd);
                    self.bump_clause(cref);
                    self.unchecked_enqueue(asserting, Some(cref));
                }
                self.var_inc /= self.config.var_decay;
                self.cla_inc /= 0.999;
                continue;
            }
            if conflicts_here >= budget {
                return None; // restart
            }
            if self.config.lbd_reduction {
                if self.stats.conflicts >= self.next_reduce {
                    self.reduce_db_lbd();
                    self.reduce_count += 1;
                    self.next_reduce = self.stats.conflicts
                        + REDUCE_BASE
                        + REDUCE_INTERVAL_GROWTH * self.reduce_count;
                }
            } else if self.learnt_refs.len() as f64 > self.max_learnts + self.trail.len() as f64 {
                self.reduce_db();
                self.max_learnts *= 1.1;
            }
            // Place assumptions as pseudo-decisions first.
            let mut next_decision: Option<Lit> = None;
            while (self.decision_level() as usize) < self.assumptions.len() {
                let p = self.assumptions[self.decision_level() as usize];
                match self.value(p) {
                    LBool::True => self.new_decision_level(),
                    LBool::False => {
                        self.core = self.analyze_final(p);
                        return Some(SolveResult::Unsat);
                    }
                    LBool::Undef => {
                        next_decision = Some(p);
                        break;
                    }
                }
            }
            let decision = match next_decision {
                Some(p) => p,
                None => match self.pick_branch_var() {
                    None => {
                        self.model = self.assign.clone();
                        return Some(SolveResult::Sat);
                    }
                    Some(v) => v.lit(self.polarity[v.index()]),
                },
            };
            self.stats.decisions += 1;
            self.new_decision_level();
            self.unchecked_enqueue(decision, None);
        }
    }

    /// The value of `v` in the most recent satisfying model. `None` when the
    /// last solve was UNSAT or the variable was irrelevant... variables are
    /// always fully assigned on SAT, so `None` only before any solve.
    pub fn model_value(&self, v: Var) -> Option<bool> {
        match self.model.get(v.index()) {
            Some(LBool::True) => Some(true),
            Some(LBool::False) => Some(false),
            _ => None,
        }
    }

    /// The failed-assumption core of the most recent UNSAT answer: a subset
    /// of the assumptions that is jointly unsatisfiable with the clauses.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.core
    }

    /// Allocates a fresh *activation literal* for a retirable clause group.
    /// Clauses added via [`Solver::add_clause_in_group`] with this literal
    /// are enforced only while it is passed as an assumption, so a caller
    /// can keep many alternative assertion sets in one solver and pick a
    /// subset per [`Solver::solve_with_assumptions`] call — the basis of
    /// incremental solving with learnt-clause reuse.
    pub fn new_activation(&mut self) -> Lit {
        self.new_var().pos()
    }

    /// Adds `lits` as a clause guarded by activation literal `act`: the
    /// stored clause is `¬act ∨ lits`, a tautological no-op unless `act` is
    /// assumed. Returns `false` if the solver is already unsatisfiable.
    pub fn add_clause_in_group(&mut self, act: Lit, lits: impl IntoIterator<Item = Lit>) -> bool {
        self.add_clause(lits.into_iter().chain([!act]))
    }

    /// Permanently disables the clause group guarded by `act` by asserting
    /// `¬act` at level 0. All clauses of the group become satisfied, and the
    /// solver may simplify them away. The activation literal must not be
    /// assumed afterwards. Returns `false` if the solver became (or already
    /// was) unsatisfiable.
    pub fn retire_group(&mut self, act: Lit) -> bool {
        self.add_clause([!act])
    }

    // ---- Portfolio -------------------------------------------------------

    /// Races `config.portfolio` diversified clones of this solver on the
    /// current clause set. First decisive answer wins; the winner's entire
    /// state (learnt clauses, model/core, stats) is adopted back into
    /// `self`. Learnt clauses are consequences of the clause database alone
    /// (assumptions enter them as ordinary literals), so sharing and
    /// adoption never change satisfiability.
    fn solve_portfolio(&mut self, assumptions: &[Lit], max_conflicts: u64) -> Option<SolveResult> {
        // Decide trivial queries without fanning out, mirroring the
        // sequential prologue.
        self.assumptions = assumptions.to_vec();
        self.core.clear();
        self.interrupt = None;
        self.backtrack_to(0);
        if !self.ok {
            return Some(SolveResult::Unsat);
        }
        if self.propagate().is_some() {
            self.ok = false;
            return Some(SolveResult::Unsat);
        }
        let workers = self.config.portfolio.min(MAX_PORTFOLIO_WORKERS);
        let stop = Arc::new(AtomicBool::new(false));
        let pool: SharePool = Arc::new(Mutex::new(Vec::new()));
        let winner: WinnerSlot = Mutex::new(None);
        let mut solvers = Vec::with_capacity(workers);
        for i in 0..workers {
            let mut w = self.clone();
            w.config.portfolio = 0;
            w.stop = Some(stop.clone());
            w.share = Some(ShareLink {
                pool: pool.clone(),
                cursor: 0,
            });
            w.diversify(i);
            solvers.push(w);
        }
        let assumptions = &self.assumptions;
        std::thread::scope(|scope| {
            for (i, mut w) in solvers.into_iter().enumerate() {
                let winner = &winner;
                let stop = &stop;
                scope.spawn(move || {
                    let result = w.solve_budgeted_seq(assumptions, max_conflicts);
                    let mut slot = winner.lock().expect("winner slot lock");
                    let better =
                        matches!((&*slot, &result), (None, _) | (Some((_, _, None)), Some(_)));
                    if better {
                        if result.is_some() {
                            // Decisive: tell the other workers to stop. Set
                            // inside the lock so no later decisive worker can
                            // be displaced by an indecisive one.
                            stop.store(true, Ordering::Relaxed);
                        }
                        *slot = Some((i, Box::new(w), result));
                    }
                });
            }
        });
        let (idx, w, result) = winner
            .into_inner()
            .expect("winner slot poisoned")
            .expect("every worker reports to the winner slot");
        let races = self.stats.portfolio_races + 1;
        let wins = self.stats.portfolio_winner + u64::from(result.is_some() && idx > 0);
        let config = self.config;
        *self = *w;
        self.config = config;
        self.stop = None;
        self.share = None;
        self.stats.portfolio_races = races;
        self.stats.portfolio_winner = wins;
        result
    }

    /// Differentiates portfolio worker `i`'s search trajectory. Worker 0
    /// mirrors the sequential configuration so the race can only improve on
    /// it; the others vary restart cadence, activity decay, backtracking,
    /// reduction policy, and (unpinned) starting phases.
    fn diversify(&mut self, worker: usize) {
        if worker == 0 {
            return;
        }
        let mut flip_phases = false;
        match worker % 4 {
            1 => {
                self.config.restart_unit = self.config.restart_unit.saturating_mul(4);
                self.config.var_decay = 0.99;
            }
            2 => {
                self.config.restart_unit = (self.config.restart_unit / 2).max(10);
                self.config.var_decay = 0.85;
                flip_phases = true;
            }
            3 => {
                self.config.chrono_backtrack = !self.config.chrono_backtrack;
                self.config.var_decay = 0.75;
            }
            _ => {
                self.config.lbd_reduction = !self.config.lbd_reduction;
                self.config.restart_unit = self.config.restart_unit.saturating_mul(8);
                flip_phases = true;
            }
        }
        if worker >= 4 {
            self.config.chrono_threshold = 20 + 10 * worker as u32;
        }
        if flip_phases {
            self.flip_unpinned_phases();
        }
    }

    fn flip_unpinned_phases(&mut self) {
        for (i, p) in self.polarity.iter_mut().enumerate() {
            if !self.phase_pinned[i] {
                *p = !*p;
            }
        }
    }

    /// At a restart boundary (decision level 0): pushes fresh glue clauses
    /// to the share pool and imports everything siblings published since the
    /// last exchange. No-op outside portfolio races.
    fn exchange_shared_clauses(&mut self) {
        let Some(mut link) = self.share.take() else {
            return;
        };
        debug_assert_eq!(self.decision_level(), 0);
        let mut outgoing: Vec<(u32, Vec<Lit>)> = Vec::new();
        for &r in &self.learnt_refs {
            if outgoing.len() >= SHARE_EXPORT_PER_ROUND {
                break;
            }
            if self.arena.is_deleted(r) || !self.arena.is_learnt(r) || self.arena.is_exported(r) {
                continue;
            }
            let len = self.arena.len(r);
            let lbd = self.arena.lbd(r);
            if len <= SHARE_MAX_LEN || lbd <= SHARE_MAX_LBD {
                let lits: Vec<Lit> = (0..len).map(|k| self.arena.lit(r, k)).collect();
                outgoing.push((lbd, lits));
                self.arena.set_exported(r);
            }
        }
        let mut incoming: Vec<(u32, Vec<Lit>)> = Vec::new();
        {
            let mut pool = link.pool.lock().expect("share pool lock");
            // Import first, then publish, so a worker never re-imports its
            // own exports.
            if link.cursor < pool.len() {
                incoming.extend_from_slice(&pool[link.cursor..]);
            }
            if !outgoing.is_empty() && pool.len() < SHARE_POOL_CAP {
                let room = SHARE_POOL_CAP - pool.len();
                pool.extend(outgoing.into_iter().take(room));
            }
            link.cursor = pool.len();
        }
        self.share = Some(link);
        for (lbd, lits) in incoming {
            if !self.ok {
                break;
            }
            self.import_learnt(&lits, lbd);
        }
    }

    /// Installs a clause received from a portfolio sibling. The clause is a
    /// consequence of the shared problem clauses, so it is attached as a
    /// learnt clause (already marked exported) without touching the problem
    /// counters.
    fn import_learnt(&mut self, lits: &[Lit], lbd: u32) {
        debug_assert_eq!(self.decision_level(), 0);
        let mut lits: Vec<Lit> = lits.to_vec();
        lits.sort();
        lits.dedup();
        let mut simplified = Vec::with_capacity(lits.len());
        for &l in &lits {
            if l.var().index() >= self.num_vars() {
                return; // foreign variable: cannot happen within one race
            }
            match self.value(l) {
                LBool::True => return, // already satisfied at level 0
                LBool::False => {}     // drop
                LBool::Undef => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => self.ok = false,
            1 => {
                self.unchecked_enqueue(simplified[0], None);
                self.ok = self.propagate().is_none();
            }
            _ => {
                let cref = self.attach_clause(&simplified, true, lbd);
                self.arena.set_exported(cref);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    /// A hard UNSAT instance: `n` pigeons into `n - 1` holes.
    fn pigeonhole(s: &mut Solver, n: usize) {
        let p: Vec<Vec<Var>> = (0..n).map(|_| vars(s, n - 1)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|v| v.pos()));
        }
        for a in 0..n {
            for b in (a + 1)..n {
                for (pa, pb) in p[a].iter().zip(&p[b]) {
                    s.add_clause([pa.neg(), pb.neg()]);
                }
            }
        }
    }

    #[test]
    fn conflict_budget_interrupts_and_solver_recovers() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 7);
        assert_eq!(s.solve_budgeted(&[], 1), None);
        assert_eq!(s.last_interrupt(), Some(Interrupt::Conflicts));
        // The solver (and its learnt clauses) stay usable: an unbudgeted
        // call still reaches the correct verdict.
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(s.last_interrupt(), None);
    }

    #[test]
    fn expired_deadline_interrupts_budgeted_solve() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 7);
        s.set_deadline(Some(Instant::now()));
        assert_eq!(s.solve_budgeted(&[], u64::MAX), None);
        assert_eq!(s.last_interrupt(), Some(Interrupt::Deadline));
        // Clearing the deadline restores a decisive answer.
        s.set_deadline(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(s.last_interrupt(), None);
    }

    #[test]
    fn learnt_cap_scales_with_problem_size() {
        let build = || {
            let mut s = Solver::new();
            let mut prev = s.new_var();
            // 6000 distinct implication clauses: a satisfiable problem big
            // enough that `problem_clauses / 3` exceeds the fixed cap.
            for _ in 0..6000 {
                let v = s.new_var();
                s.add_clause([prev.neg(), v.pos()]);
                prev = v;
            }
            s
        };
        let mut scaled = build();
        assert_eq!(scaled.solve(), SolveResult::Sat);
        assert!(
            scaled.max_learnts >= (scaled.problem_clauses / 3) as f64,
            "scaling on: cap {} for {} clauses",
            scaled.max_learnts,
            scaled.problem_clauses
        );
        let mut fixed = build();
        fixed.set_learnt_scaling(false);
        assert_eq!(fixed.solve(), SolveResult::Sat);
        assert_eq!(fixed.max_learnts, 1000.0, "scaling off keeps the old cap");
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([v[0].pos(), v[1].pos()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let m0 = s.model_value(v[0]).unwrap();
        let m1 = s.model_value(v[1]).unwrap();
        assert!(m0 || m1);
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        s.add_clause([v[0].pos()]);
        assert!(!s.add_clause([v[0].neg()]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = Solver::new();
        let _ = vars(&mut s, 1);
        assert!(!s.add_clause([]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        s.add_clause([v[0].pos()]);
        s.add_clause([v[0].neg(), v[1].pos()]);
        s.add_clause([v[1].neg(), v[2].pos()]);
        s.add_clause([v[2].neg(), v[3].pos()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for &x in &v {
            assert_eq!(s.model_value(x), Some(true));
        }
    }

    #[test]
    fn tautology_ignored() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        assert!(s.add_clause([v[0].pos(), v[0].neg()]));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 3);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_5_into_5_sat() {
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..5).map(|_| vars(&mut s, 5)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|v| v.pos()));
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..5 {
            for a in 0..5 {
                for b in (a + 1)..5 {
                    s.add_clause([p[a][j].neg(), p[b][j].neg()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn assumptions_flip_result() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([v[0].neg(), v[1].pos()]);
        assert_eq!(
            s.solve_with_assumptions(&[v[0].pos(), v[1].neg()]),
            SolveResult::Unsat
        );
        // Solver stays usable incrementally:
        assert_eq!(s.solve_with_assumptions(&[v[0].pos()]), SolveResult::Sat);
        assert_eq!(s.model_value(v[1]), Some(true));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unsat_core_is_relevant_subset() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        // v0 & v1 contradictory via clauses; v2, v3 irrelevant.
        s.add_clause([v[0].neg(), v[1].neg()]);
        let assumptions = [v[2].pos(), v[0].pos(), v[3].pos(), v[1].pos()];
        assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Unsat);
        let core: Vec<Lit> = s.unsat_core().to_vec();
        assert!(core.contains(&v[0].pos()) || core.contains(&v[1].pos()));
        assert!(
            !core.contains(&v[2].pos()),
            "irrelevant assumption in core: {core:?}"
        );
        assert!(!core.contains(&v[3].pos()));
        // Core itself must be unsat with the clauses.
        assert_eq!(s.solve_with_assumptions(&core), SolveResult::Unsat);
    }

    #[test]
    fn core_empty_when_clauses_alone_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([v[0].pos()]);
        s.add_clause([v[0].neg()]);
        assert_eq!(s.solve_with_assumptions(&[v[1].pos()]), SolveResult::Unsat);
        assert!(s.unsat_core().is_empty());
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause([v[0].pos(), v[1].pos(), v[2].pos()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause([v[0].neg()]);
        s.add_clause([v[1].neg()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v[2]), Some(true));
        s.add_clause([v[2].neg()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<u64> = (1..=15).map(Solver::luby).collect();
        assert_eq!(seq, [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn activation_groups_enable_and_disable() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        let g1 = s.new_activation();
        let g2 = s.new_activation();
        // Group 1 forces x0; group 2 contradicts it.
        s.add_clause_in_group(g1, [v[0].pos()]);
        s.add_clause_in_group(g2, [v[0].neg()]);
        s.add_clause([v[1].pos()]);
        // Individually each group is consistent.
        assert_eq!(s.solve_with_assumptions(&[g1]), SolveResult::Sat);
        assert_eq!(s.model_value(v[0]), Some(true));
        assert_eq!(s.solve_with_assumptions(&[g2]), SolveResult::Sat);
        assert_eq!(s.model_value(v[0]), Some(false));
        // Together they conflict, and the core names both groups.
        assert_eq!(s.solve_with_assumptions(&[g1, g2]), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(core.contains(&g1) && core.contains(&g2), "{core:?}");
        // Unguarded clauses are unaffected by group selection.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v[1]), Some(true));
    }

    #[test]
    fn retired_group_no_longer_constrains() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        let g1 = s.new_activation();
        let g2 = s.new_activation();
        s.add_clause_in_group(g1, [v[0].pos()]);
        s.add_clause_in_group(g2, [v[0].neg()]);
        assert_eq!(s.solve_with_assumptions(&[g1, g2]), SolveResult::Unsat);
        s.retire_group(g1);
        // With group 1 retired, group 2 alone decides the query.
        assert_eq!(s.solve_with_assumptions(&[g2]), SolveResult::Sat);
        assert_eq!(s.model_value(v[0]), Some(false));
    }

    #[test]
    fn groups_reuse_learnt_clauses_across_queries() {
        let mut s = Solver::new();
        let n = 5;
        let p: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..n - 1).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            s.add_clause(row.iter().map(|v| v.pos()));
        }
        for a in 0..n {
            for b in (a + 1)..n {
                for (pa, pb) in p[a].iter().zip(&p[b]) {
                    s.add_clause([pa.neg(), pb.neg()]);
                }
            }
        }
        let g1 = s.new_activation();
        let g2 = s.new_activation();
        s.add_clause_in_group(g1, [p[0][0].pos()]);
        s.add_clause_in_group(g2, [p[0][0].neg()]);
        assert_eq!(s.solve_with_assumptions(&[g1]), SolveResult::Unsat);
        let conflicts_first = s.stats().conflicts;
        assert!(conflicts_first > 0, "pigeonhole needs search");
        let clauses = s.num_clauses();
        // The second query runs on the same solver: no clauses are re-added
        // and the conflict counter keeps accumulating instead of resetting —
        // learnt state is carried, not rebuilt.
        assert_eq!(s.solve_with_assumptions(&[g2]), SolveResult::Unsat);
        assert_eq!(s.num_clauses(), clauses);
        assert!(s.stats().conflicts >= conflicts_first);
    }

    // ---- Arena / config-specific tests ----------------------------------

    /// Every configuration corner must agree on verdicts.
    fn all_configs() -> Vec<SolverConfig> {
        let mut configs = vec![SolverConfig::default(), SolverConfig::baseline()];
        for i in 0..3 {
            let mut c = SolverConfig::baseline();
            match i {
                0 => c.lbd_reduction = true,
                1 => c.recursive_minimization = true,
                _ => c.chrono_backtrack = true,
            }
            configs.push(c);
        }
        configs.push(SolverConfig {
            chrono_threshold: 0,
            ..SolverConfig::default()
        });
        configs
    }

    #[test]
    fn feature_toggles_preserve_verdicts() {
        for config in all_configs() {
            let mut s = Solver::with_config(config);
            pigeonhole(&mut s, 6);
            assert_eq!(s.solve(), SolveResult::Unsat, "config {config:?}");

            let mut s = Solver::with_config(config);
            let v = vars(&mut s, 4);
            s.add_clause([v[0].pos(), v[1].pos()]);
            s.add_clause([v[0].neg(), v[2].pos()]);
            s.add_clause([v[2].neg(), v[3].pos()]);
            assert_eq!(s.solve(), SolveResult::Sat, "config {config:?}");
            // The reported model must satisfy every clause.
            let val = |l: Lit| s.model_value(l.var()).unwrap() == l.is_pos();
            assert!(val(v[0].pos()) || val(v[1].pos()));
            assert!(val(v[0].neg()) || val(v[2].pos()));
            assert!(val(v[2].neg()) || val(v[3].pos()));
        }
    }

    #[test]
    fn feature_toggles_preserve_assumption_cores() {
        for config in all_configs() {
            let mut s = Solver::with_config(config);
            pigeonhole(&mut s, 5);
            let extra = s.new_var();
            assert_eq!(
                s.solve_with_assumptions(&[extra.pos()]),
                SolveResult::Unsat,
                "config {config:?}"
            );
            assert!(
                !s.unsat_core().contains(&extra.pos()),
                "irrelevant assumption in core under {config:?}"
            );
        }
    }

    #[test]
    fn lbd_reduction_fires_and_keeps_verdicts() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 7);
        // Pull the first reduction forward so the test does not need
        // thousands of conflicts.
        s.next_reduce = 50;
        assert_eq!(s.solve(), SolveResult::Unsat);
        let st = s.stats();
        assert!(st.lbd_reductions > 0, "no LBD reduction ran: {st:?}");
        assert!(st.deleted_clauses > 0, "reduction deleted nothing: {st:?}");
    }

    #[test]
    fn arena_gc_compacts_and_solver_stays_usable() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 7);
        s.next_reduce = 20;
        let first = s.solve_budgeted(&[], 2_000);
        assert!(matches!(first, None | Some(SolveResult::Unsat)));
        assert!(s.stats().deleted_clauses > 0);
        // The GC invariant: never more than a quarter of the arena wasted
        // once a reduction has run.
        assert!(
            (s.arena.wasted as usize) * 4 <= s.arena.data.len(),
            "wasted {} of {}",
            s.arena.wasted,
            s.arena.data.len()
        );
        // The compacted solver still answers correctly, incrementally.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn recursive_minimization_strips_literals() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 7);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(
            s.stats().minimized_lits > 0,
            "recursive minimization never removed a literal: {:?}",
            s.stats()
        );
    }

    #[test]
    fn portfolio_matches_sequential_verdicts() {
        let build_unsat = |portfolio: usize| {
            let mut s = Solver::new();
            s.set_portfolio(portfolio);
            pigeonhole(&mut s, 6);
            s
        };
        assert_eq!(build_unsat(0).solve(), SolveResult::Unsat);
        let mut racing = build_unsat(3);
        assert_eq!(racing.solve(), SolveResult::Unsat);
        assert_eq!(racing.stats().portfolio_races, 1);

        let mut s = Solver::new();
        s.set_portfolio(3);
        let v = vars(&mut s, 6);
        let clauses = [
            [v[0].pos(), v[1].pos()],
            [v[1].neg(), v[2].pos()],
            [v[3].pos(), v[4].neg()],
            [v[4].pos(), v[5].pos()],
        ];
        for c in &clauses {
            s.add_clause(*c);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        for c in &clauses {
            assert!(
                c.iter()
                    .any(|l| s.model_value(l.var()).unwrap() == l.is_pos()),
                "model violates {c:?}"
            );
        }
    }

    #[test]
    fn portfolio_cores_remain_valid() {
        let mut s = Solver::new();
        s.set_portfolio(4);
        let v = vars(&mut s, 4);
        s.add_clause([v[0].neg(), v[1].neg()]);
        let assumptions = [v[2].pos(), v[0].pos(), v[3].pos(), v[1].pos()];
        assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(!core.is_empty());
        for l in &core {
            assert!(assumptions.contains(l), "core lit {l} not assumed");
        }
        assert_eq!(s.solve_with_assumptions(&core), SolveResult::Unsat);
        // The adopted winner stays usable for further incremental queries.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn portfolio_keeps_configured_fanout_across_calls() {
        // Guard the pigeonhole behind an activation literal so UNSAT answers
        // don't poison the solver (`ok` stays true) and every call races.
        let mut s = Solver::new();
        s.set_portfolio(2);
        let g = s.new_activation();
        let n = 5;
        let p: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..n - 1).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            s.add_clause_in_group(g, row.iter().map(|v| v.pos()));
        }
        for a in 0..n {
            for b in (a + 1)..n {
                for (pa, pb) in p[a].iter().zip(&p[b]) {
                    s.add_clause([pa.neg(), pb.neg()]);
                }
            }
        }
        assert_eq!(s.solve_with_assumptions(&[g]), SolveResult::Unsat);
        // Adoption must restore the caller-facing configuration (portfolio
        // fan-out included), not the worker's zeroed copy.
        assert_eq!(s.config().portfolio, 2);
        assert_eq!(s.solve_with_assumptions(&[g]), SolveResult::Unsat);
        assert_eq!(s.stats().portfolio_races, 2);
    }

    #[test]
    fn portfolio_respects_conflict_budget() {
        let mut s = Solver::new();
        s.set_portfolio(2);
        pigeonhole(&mut s, 8);
        assert_eq!(s.solve_budgeted(&[], 1), None);
        assert!(matches!(
            s.last_interrupt(),
            Some(Interrupt::Conflicts | Interrupt::Deadline)
        ));
        // Still answers decisively afterwards.
        let mut easy = Solver::new();
        easy.set_portfolio(2);
        pigeonhole(&mut easy, 5);
        assert_eq!(easy.solve(), SolveResult::Unsat);
    }
}
