//! A reference DPLL solver: recursive, unit propagation + pure-literal
//! elimination, no learning.
//!
//! Deliberately simple — it serves as a differential-testing oracle for the
//! CDCL solver and as the baseline in the solver ablation benchmark.

use crate::cnf::Cnf;
use crate::lit::Lit;

/// Solves a CNF by plain DPLL. Returns a model on SAT, `None` on UNSAT.
///
/// Exponential worst case; only use on small instances (tests, baselines).
pub fn solve_dpll(cnf: &Cnf) -> Option<Vec<bool>> {
    let clauses: Vec<Vec<Lit>> = cnf.clauses().to_vec();
    let mut assignment: Vec<Option<bool>> = vec![None; cnf.num_vars()];
    if dpll(&clauses, &mut assignment) {
        Some(assignment.into_iter().map(|v| v.unwrap_or(false)).collect())
    } else {
        None
    }
}

fn lit_value(assignment: &[Option<bool>], l: Lit) -> Option<bool> {
    assignment[l.var().index()].map(|b| b == l.is_pos())
}

/// Simplification outcome of one pass.
enum Pass {
    Conflict,
    Fixpoint,
    Progress,
}

fn unit_propagate(clauses: &[Vec<Lit>], assignment: &mut [Option<bool>]) -> Pass {
    let mut progress = false;
    for clause in clauses {
        let mut unassigned: Option<Lit> = None;
        let mut count = 0;
        let mut satisfied = false;
        for &l in clause {
            match lit_value(assignment, l) {
                Some(true) => {
                    satisfied = true;
                    break;
                }
                Some(false) => {}
                None => {
                    unassigned = Some(l);
                    count += 1;
                }
            }
        }
        if satisfied {
            continue;
        }
        match count {
            0 => return Pass::Conflict,
            1 => {
                let l = unassigned.expect("count == 1");
                assignment[l.var().index()] = Some(l.is_pos());
                progress = true;
            }
            _ => {}
        }
    }
    if progress {
        Pass::Progress
    } else {
        Pass::Fixpoint
    }
}

fn dpll(clauses: &[Vec<Lit>], assignment: &mut Vec<Option<bool>>) -> bool {
    loop {
        match unit_propagate(clauses, assignment) {
            Pass::Conflict => return false,
            Pass::Progress => continue,
            Pass::Fixpoint => break,
        }
    }
    // Find a branching variable: first unassigned var in an unsatisfied clause.
    let mut branch = None;
    'outer: for clause in clauses {
        if clause
            .iter()
            .any(|&l| lit_value(assignment, l) == Some(true))
        {
            continue;
        }
        for &l in clause {
            if lit_value(assignment, l).is_none() {
                branch = Some(l);
                break 'outer;
            }
        }
    }
    let Some(l) = branch else {
        return true; // every clause satisfied
    };
    let saved = assignment.clone();
    assignment[l.var().index()] = Some(l.is_pos());
    if dpll(clauses, assignment) {
        return true;
    }
    *assignment = saved;
    assignment[l.var().index()] = Some(!l.is_pos());
    if dpll(clauses, assignment) {
        return true;
    }
    assignment[l.var().index()] = None;
    false
}

/// Exhaustive satisfiability check by enumeration — the "obviously correct"
/// oracle for property tests.
///
/// # Panics
///
/// Panics if the CNF has more than 24 variables.
pub fn solve_brute_force(cnf: &Cnf) -> Option<Vec<bool>> {
    let n = cnf.num_vars();
    assert!(n <= 24, "brute force limited to 24 variables");
    for bits in 0u64..(1u64 << n) {
        let assignment: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
        if cnf.eval(&assignment) {
            return Some(assignment);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phole(pigeons: usize, holes: usize) -> Cnf {
        let mut cnf = Cnf::new();
        let p: Vec<Vec<_>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| cnf.new_var()).collect())
            .collect();
        for row in &p {
            cnf.add_clause(row.iter().map(|v| v.pos()));
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..holes {
            for a in 0..pigeons {
                for b in (a + 1)..pigeons {
                    cnf.add_clause([p[a][j].neg(), p[b][j].neg()]);
                }
            }
        }
        cnf
    }

    #[test]
    fn dpll_agrees_on_pigeonhole() {
        let unsat = phole(4, 3);
        assert!(solve_dpll(&unsat).is_none());
        assert!(unsat.solve().is_none());
        let sat = phole(3, 3);
        let m = solve_dpll(&sat).unwrap();
        assert!(sat.eval(&m));
    }

    #[test]
    fn brute_force_agrees() {
        let cnf = phole(3, 2);
        assert!(solve_brute_force(&cnf).is_none());
        assert!(solve_dpll(&cnf).is_none());
    }

    #[test]
    fn empty_cnf_sat() {
        let cnf = Cnf::new();
        assert!(solve_dpll(&cnf).is_some());
        assert!(solve_brute_force(&cnf).is_some());
    }
}
