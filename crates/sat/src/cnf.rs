//! A plain CNF container, shared by the CDCL and reference solvers and used
//! as the target of the Tseitin transformation in `ivy-epr`.

use crate::lit::{Lit, Var};
use crate::solver::{SolveResult, Solver};

/// A CNF formula: a variable count and a list of clauses.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// An empty CNF (no variables, no clauses — trivially satisfiable).
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars as u32);
        self.num_vars += 1;
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn ensure_vars(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Adds a clause.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for l in &clause {
            assert!(
                l.var().index() < self.num_vars,
                "literal {l} out of range ({} vars)",
                self.num_vars
            );
        }
        self.clauses.push(clause);
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Loads this CNF into a fresh CDCL [`Solver`].
    pub fn to_solver(&self) -> Solver {
        let mut s = Solver::new();
        for _ in 0..self.num_vars {
            s.new_var();
        }
        for c in &self.clauses {
            s.add_clause(c.iter().copied());
        }
        s
    }

    /// Solves with the CDCL solver; returns a model on SAT.
    pub fn solve(&self) -> Option<Vec<bool>> {
        let mut s = self.to_solver();
        match s.solve() {
            SolveResult::Sat => Some(
                (0..self.num_vars)
                    .map(|i| s.model_value(Var(i as u32)).unwrap_or(false))
                    .collect(),
            ),
            SolveResult::Unsat => None,
        }
    }

    /// Evaluates the CNF under a full assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| assignment[l.var().index()] == l.is_pos()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_solve() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.pos(), b.pos()]);
        cnf.add_clause([a.neg()]);
        let model = cnf.solve().unwrap();
        assert!(cnf.eval(&model));
        assert!(!model[a.index()]);
        assert!(model[b.index()]);
    }

    #[test]
    fn unsat_returns_none() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        cnf.add_clause([a.pos()]);
        cnf.add_clause([a.neg()]);
        assert_eq!(cnf.solve(), None);
    }

    #[test]
    fn eval_detects_violation() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.pos(), b.neg()]);
        assert!(cnf.eval(&[true, true]));
        assert!(!cnf.eval(&[false, true]));
    }
}
