//! Property-based differential testing of the CDCL solver against the
//! reference DPLL solver and brute-force enumeration.

use ivy_sat::{solve_brute_force, solve_dpll, Cnf, Lit, SolveResult, Var};
use proptest::prelude::*;

/// Strategy: a random CNF over `max_vars` variables.
fn arb_cnf(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    let clause = proptest::collection::vec((0..max_vars, any::<bool>()), 1..=4);
    proptest::collection::vec(clause, 0..=max_clauses).prop_map(move |clauses| {
        let mut cnf = Cnf::new();
        for _ in 0..max_vars {
            cnf.new_var();
        }
        for c in clauses {
            cnf.add_clause(
                c.into_iter()
                    .map(|(v, pos)| Var(v as u32).lit(pos))
                    .collect::<Vec<Lit>>(),
            );
        }
        cnf
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// CDCL agrees with brute force on satisfiability, and produced models
    /// really satisfy the formula.
    #[test]
    fn cdcl_agrees_with_brute_force(cnf in arb_cnf(8, 24)) {
        let brute = solve_brute_force(&cnf);
        let cdcl = cnf.solve();
        prop_assert_eq!(brute.is_some(), cdcl.is_some());
        if let Some(model) = cdcl {
            prop_assert!(cnf.eval(&model));
        }
    }

    /// CDCL agrees with the DPLL reference on slightly larger instances.
    #[test]
    fn cdcl_agrees_with_dpll(cnf in arb_cnf(14, 50)) {
        let dpll = solve_dpll(&cnf);
        let cdcl = cnf.solve();
        prop_assert_eq!(dpll.is_some(), cdcl.is_some());
        if let Some(model) = dpll {
            prop_assert!(cnf.eval(&model));
        }
    }

    /// UNSAT cores from assumption solving are themselves unsatisfiable
    /// together with the clauses, and are subsets of the assumptions.
    #[test]
    fn unsat_cores_are_sound(cnf in arb_cnf(8, 20), seed_bits in 0u16..256) {
        let mut solver = cnf.to_solver();
        // Derive assumptions from seed bits: variable i assumed with
        // polarity bit i when bit (i+8) selects it.
        let assumptions: Vec<Lit> = (0..8)
            .filter(|i| cnf.num_vars() > *i)
            .filter(|i| seed_bits & (1 << (i + 8)) != 0)
            .map(|i| Var(i as u32).lit(seed_bits & (1 << i) != 0))
            .collect();
        match solver.solve_with_assumptions(&assumptions) {
            SolveResult::Sat => {
                // Model satisfies clauses and assumptions.
                let model: Vec<bool> = (0..cnf.num_vars())
                    .map(|i| solver.model_value(Var(i as u32)).unwrap())
                    .collect();
                prop_assert!(cnf.eval(&model));
                for a in &assumptions {
                    prop_assert_eq!(model[a.var().index()], a.is_pos());
                }
            }
            SolveResult::Unsat => {
                let core: Vec<Lit> = solver.unsat_core().to_vec();
                for l in &core {
                    prop_assert!(assumptions.contains(l), "core lit {l} not among assumptions");
                }
                // Re-solving under the core alone stays UNSAT.
                let mut s2 = cnf.to_solver();
                prop_assert_eq!(s2.solve_with_assumptions(&core), SolveResult::Unsat);
            }
        }
    }

    /// Incremental solving is consistent with one-shot solving.
    #[test]
    fn incremental_matches_oneshot(cnf1 in arb_cnf(8, 12), extra in arb_cnf(8, 12)) {
        // Solve cnf1, then add extra clauses and compare with a fresh solve
        // of the union.
        let mut solver = cnf1.to_solver();
        let _ = solver.solve();
        for c in extra.clauses() {
            solver.add_clause(c.iter().copied());
        }
        let incremental = solver.solve() == SolveResult::Sat;

        let mut union = cnf1.clone();
        for c in extra.clauses() {
            union.add_clause(c.iter().copied());
        }
        prop_assert_eq!(incremental, union.solve().is_some());
    }
}
