//! Property-based differential testing of the CDCL solver against the
//! reference DPLL solver and brute-force enumeration.
//!
//! Cases are generated with a deterministic in-repo PRNG (the toolchain
//! vendors no external crates), so every run explores the same inputs.

use ivy_sat::{solve_brute_force, solve_dpll, Cnf, Lit, SolveResult, Var};

/// Deterministic splitmix64 generator for reproducible test cases.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed.wrapping_add(0x9e3779b97f4a7c15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }

    fn flip(&mut self) -> bool {
        self.next().is_multiple_of(2)
    }
}

/// A random CNF over `max_vars` variables with up to `max_clauses` clauses
/// of 1..=4 literals.
fn arb_cnf(g: &mut Gen, max_vars: usize, max_clauses: usize) -> Cnf {
    let mut cnf = Cnf::new();
    for _ in 0..max_vars {
        cnf.new_var();
    }
    let n_clauses = g.below(max_clauses + 1);
    for _ in 0..n_clauses {
        let len = 1 + g.below(4);
        let lits: Vec<Lit> = (0..len)
            .map(|_| Var(g.below(max_vars) as u32).lit(g.flip()))
            .collect();
        cnf.add_clause(lits);
    }
    cnf
}

/// CDCL agrees with brute force on satisfiability, and produced models
/// really satisfy the formula.
#[test]
fn cdcl_agrees_with_brute_force() {
    let mut g = Gen::new(0xb127);
    for case in 0..256 {
        let cnf = arb_cnf(&mut g, 8, 24);
        let brute = solve_brute_force(&cnf);
        let cdcl = cnf.solve();
        assert_eq!(brute.is_some(), cdcl.is_some(), "case {case}");
        if let Some(model) = cdcl {
            assert!(cnf.eval(&model), "case {case}: bogus model");
        }
    }
}

/// CDCL agrees with the DPLL reference on slightly larger instances.
#[test]
fn cdcl_agrees_with_dpll() {
    let mut g = Gen::new(0xd911);
    for case in 0..256 {
        let cnf = arb_cnf(&mut g, 14, 50);
        let dpll = solve_dpll(&cnf);
        let cdcl = cnf.solve();
        assert_eq!(dpll.is_some(), cdcl.is_some(), "case {case}");
        if let Some(model) = dpll {
            assert!(cnf.eval(&model), "case {case}: bogus DPLL model");
        }
    }
}

/// UNSAT cores from assumption solving are themselves unsatisfiable
/// together with the clauses, and are subsets of the assumptions.
#[test]
fn unsat_cores_are_sound() {
    let mut g = Gen::new(0xc03e);
    for case in 0..256 {
        let cnf = arb_cnf(&mut g, 8, 20);
        let seed_bits = g.next() as u16;
        let mut solver = cnf.to_solver();
        // Derive assumptions from seed bits: variable i assumed with
        // polarity bit i when bit (i+8) selects it.
        let assumptions: Vec<Lit> = (0..8)
            .filter(|i| cnf.num_vars() > *i)
            .filter(|i| seed_bits & (1 << (i + 8)) != 0)
            .map(|i| Var(i as u32).lit(seed_bits & (1 << i) != 0))
            .collect();
        match solver.solve_with_assumptions(&assumptions) {
            SolveResult::Sat => {
                // Model satisfies clauses and assumptions.
                let model: Vec<bool> = (0..cnf.num_vars())
                    .map(|i| solver.model_value(Var(i as u32)).unwrap())
                    .collect();
                assert!(cnf.eval(&model), "case {case}");
                for a in &assumptions {
                    assert_eq!(model[a.var().index()], a.is_pos(), "case {case}");
                }
            }
            SolveResult::Unsat => {
                let core: Vec<Lit> = solver.unsat_core().to_vec();
                for l in &core {
                    assert!(
                        assumptions.contains(l),
                        "case {case}: core lit {l} not among assumptions"
                    );
                }
                // Re-solving under the core alone stays UNSAT.
                let mut s2 = cnf.to_solver();
                assert_eq!(s2.solve_with_assumptions(&core), SolveResult::Unsat);
            }
        }
    }
}

/// Incremental solving is consistent with one-shot solving.
#[test]
fn incremental_matches_oneshot() {
    let mut g = Gen::new(0x19c8);
    for case in 0..256 {
        let cnf1 = arb_cnf(&mut g, 8, 12);
        let extra = arb_cnf(&mut g, 8, 12);
        // Solve cnf1, then add extra clauses and compare with a fresh solve
        // of the union.
        let mut solver = cnf1.to_solver();
        let _ = solver.solve();
        for c in extra.clauses() {
            solver.add_clause(c.iter().copied());
        }
        let incremental = solver.solve() == SolveResult::Sat;

        let mut union = cnf1.clone();
        for c in extra.clauses() {
            union.add_clause(c.iter().copied());
        }
        assert_eq!(incremental, union.solve().is_some(), "case {case}");
    }
}
