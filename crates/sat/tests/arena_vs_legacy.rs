//! Differential test: the flat-arena CDCL solver against the frozen
//! pre-refactor (boxed-clause) solver on randomized CNFs.
//!
//! Every instance is round-tripped through the DIMACS writer/parser first,
//! so the corpus doubles as an interop check, then solved by:
//!
//! * the legacy solver (`ivy_sat::legacy::Solver`),
//! * the arena solver under every `SolverConfig` corner,
//! * the arena solver in portfolio mode,
//! * the DPLL reference oracle (on the smaller instances).
//!
//! Verdicts must agree everywhere; SAT models are checked against the CNF.

use ivy_sat::{
    legacy, parse_dimacs, solve_dpll, write_dimacs, Cnf, SolveResult, Solver, SolverConfig,
};

/// Deterministic LCG (same multiplier as the bench suite's generator).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random k-SAT instance with `vars` variables and `clauses` clauses of
/// width 1..=4 (width skewed toward 3).
fn random_cnf(vars: usize, clauses: usize, seed: u64) -> Cnf {
    let mut rng = Rng(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1));
    let mut cnf = Cnf::new();
    cnf.ensure_vars(vars);
    let all: Vec<_> = (0..vars as u32).map(ivy_sat::Var).collect();
    for _ in 0..clauses {
        let width = match rng.below(6) {
            0 => 2,
            5 => 4,
            _ => 3,
        };
        let lits: Vec<_> = (0..width)
            .map(|_| {
                let v = all[rng.below(vars as u64) as usize];
                v.lit(rng.below(2) == 0)
            })
            .collect();
        cnf.add_clause(lits);
    }
    cnf
}

fn configs() -> Vec<(&'static str, SolverConfig)> {
    let mut lbd_only = SolverConfig::baseline();
    lbd_only.lbd_reduction = true;
    let mut min_only = SolverConfig::baseline();
    min_only.recursive_minimization = true;
    let mut chrono_only = SolverConfig::baseline();
    chrono_only.chrono_backtrack = true;
    let chrono_eager = SolverConfig {
        chrono_threshold: 0,
        ..SolverConfig::default()
    };
    vec![
        ("default", SolverConfig::default()),
        ("baseline", SolverConfig::baseline()),
        ("lbd_only", lbd_only),
        ("min_only", min_only),
        ("chrono_only", chrono_only),
        ("chrono_eager", chrono_eager),
    ]
}

fn arena_solver(cnf: &Cnf, config: SolverConfig) -> Solver {
    let mut s = Solver::with_config(config);
    for _ in 0..cnf.num_vars() {
        s.new_var();
    }
    for c in cnf.clauses() {
        s.add_clause(c.iter().copied());
    }
    s
}

fn legacy_verdict(cnf: &Cnf) -> SolveResult {
    let mut s = legacy::Solver::new();
    for _ in 0..cnf.num_vars() {
        s.new_var();
    }
    for c in cnf.clauses() {
        s.add_clause(c.iter().copied());
    }
    let r = s.solve();
    if r == SolveResult::Sat {
        let assignment: Vec<bool> = (0..cnf.num_vars())
            .map(|i| s.model_value(ivy_sat::Var(i as u32)).unwrap())
            .collect();
        assert!(cnf.eval(&assignment), "legacy model violates the CNF");
    }
    r
}

fn check_instance(cnf: &Cnf, label: &str, with_dpll: bool) {
    // DIMACS round-trip: the parsed instance is what everyone solves.
    let cnf = parse_dimacs(&write_dimacs(cnf)).expect("round-trip parse");
    let expected = legacy_verdict(&cnf);
    if with_dpll {
        let dpll = match solve_dpll(&cnf) {
            Some(_) => SolveResult::Sat,
            None => SolveResult::Unsat,
        };
        assert_eq!(dpll, expected, "{label}: dpll disagrees with legacy");
    }
    for (name, config) in configs() {
        let mut s = arena_solver(&cnf, config);
        let got = s.solve();
        assert_eq!(
            got, expected,
            "{label}: arena[{name}] disagrees with legacy"
        );
        if got == SolveResult::Sat {
            let assignment: Vec<bool> = (0..cnf.num_vars())
                .map(|i| s.model_value(ivy_sat::Var(i as u32)).unwrap())
                .collect();
            assert!(
                cnf.eval(&assignment),
                "{label}: arena[{name}] model violates the CNF"
            );
        }
    }
    let mut racing = arena_solver(&cnf, SolverConfig::default());
    racing.set_portfolio(3);
    assert_eq!(
        racing.solve(),
        expected,
        "{label}: portfolio disagrees with legacy"
    );
}

#[test]
fn randomized_cnfs_small_with_dpll_oracle() {
    for seed in 0..40u64 {
        let vars = 4 + (seed % 7) as usize;
        let clauses = vars * 3 + (seed % 11) as usize;
        let cnf = random_cnf(vars, clauses, seed);
        check_instance(&cnf, &format!("small seed {seed}"), true);
    }
}

#[test]
fn randomized_cnfs_medium_against_legacy() {
    for seed in 0..15u64 {
        // Around the 3-SAT phase transition (ratio ~4.3) so both verdicts
        // occur and search actually branches.
        let vars = 30 + (seed % 20) as usize;
        let clauses = (vars as f64 * 4.3) as usize;
        let cnf = random_cnf(vars, clauses, 1000 + seed);
        check_instance(&cnf, &format!("medium seed {seed}"), false);
    }
}

#[test]
fn randomized_cnfs_incremental_assumptions_agree() {
    for seed in 0..10u64 {
        let vars = 20;
        let clauses = 70;
        let cnf = random_cnf(vars, clauses, 5000 + seed);
        let cnf = parse_dimacs(&write_dimacs(&cnf)).expect("round-trip parse");

        let mut old = legacy::Solver::new();
        let mut new = Solver::new();
        for _ in 0..cnf.num_vars() {
            old.new_var();
            new.new_var();
        }
        for c in cnf.clauses() {
            old.add_clause(c.iter().copied());
            new.add_clause(c.iter().copied());
        }
        // A fixed probe sequence of assumption pairs; verdicts must agree
        // call by call on the same incremental solver.
        let mut rng = Rng(seed + 99);
        for probe in 0..6 {
            let a = ivy_sat::Var(rng.below(vars as u64) as u32);
            let b = ivy_sat::Var(rng.below(vars as u64) as u32);
            let assumptions = [a.lit(rng.below(2) == 0), b.lit(rng.below(2) == 0)];
            let expected = old.solve_with_assumptions(&assumptions);
            let got = new.solve_with_assumptions(&assumptions);
            assert_eq!(
                got, expected,
                "seed {seed} probe {probe}: incremental verdict mismatch"
            );
        }
    }
}
