//! Property-based tests of the logical transformations: NNF, prenexing and
//! `ite`-elimination must preserve evaluation on finite structures, and the
//! diagram/conjecture machinery must satisfy Lemma 4.2.

use ivy_fol::{
    conjecture, diagram, eliminate_ite, nnf, prenex, Binding, Formula, PartialStructure,
    Signature, Structure, Sym, Term,
};
use proptest::prelude::*;
use std::sync::Arc;

fn signature() -> Signature {
    let mut sig = Signature::new();
    sig.add_sort("s").unwrap();
    sig.add_relation("r", ["s"]).unwrap();
    sig.add_relation("q", ["s", "s"]).unwrap();
    sig.add_function("f", ["s"], "s").unwrap();
    sig.add_constant("c", "s").unwrap();
    sig
}

fn arb_structure() -> impl Strategy<Value = Structure> {
    (1usize..=3, any::<u64>()).prop_map(|(n, seed)| {
        let mut s = Structure::new(Arc::new(signature()));
        let elems: Vec<_> = (0..n).map(|_| s.add_element("s")).collect();
        let mut bits = seed;
        let mut next = || {
            bits = bits.wrapping_mul(6364136223846793005).wrapping_add(1);
            (bits >> 33) as usize
        };
        s.set_fun("c", vec![], elems[next() % n].clone());
        for e in &elems {
            s.set_fun("f", vec![e.clone()], elems[next() % n].clone());
            s.set_rel("r", vec![e.clone()], next() % 2 == 0);
            for g in &elems {
                s.set_rel("q", vec![e.clone(), g.clone()], next() % 2 == 0);
            }
        }
        s
    })
}

/// Random closed formulas over `signature()` with bounded depth.
fn arb_formula() -> impl Strategy<Value = Formula> {
    let atom = prop_oneof![
        Just(Formula::rel("r", [Term::cst("c")])),
        Just(Formula::rel("q", [Term::cst("c"), Term::app("f", [Term::cst("c")])])),
        Just(Formula::eq(Term::app("f", [Term::cst("c")]), Term::cst("c"))),
        Just(Formula::True),
    ];
    // Open atoms over variables X and Y (closed by quantifiers below).
    let open_atom = prop_oneof![
        Just(Formula::rel("r", [Term::var("X")])),
        Just(Formula::rel("q", [Term::var("X"), Term::var("Y")])),
        Just(Formula::eq(Term::var("X"), Term::var("Y"))),
        Just(Formula::rel("q", [Term::var("Y"), Term::app("f", [Term::var("X")])])),
        Just(Formula::eq(
            Term::ite(
                Formula::rel("r", [Term::var("X")]),
                Term::var("X"),
                Term::cst("c")
            ),
            Term::var("Y")
        )),
    ];
    let quantified = open_atom.prop_flat_map(|body| {
        prop_oneof![
            Just(Formula::forall(
                [Binding::new("X", "s"), Binding::new("Y", "s")],
                body.clone()
            )),
            Just(Formula::exists(
                [Binding::new("X", "s"), Binding::new("Y", "s")],
                body.clone()
            )),
            Just(Formula::forall(
                [Binding::new("X", "s")],
                Formula::exists([Binding::new("Y", "s")], body.clone())
            )),
            Just(Formula::exists(
                [Binding::new("X", "s")],
                Formula::forall([Binding::new("Y", "s")], body)
            )),
        ]
    });
    let leaf = prop_oneof![atom, quantified];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Formula::and([a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::or([a, b])),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Formula::implies(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::iff(a, b)),
            inner.prop_map(Formula::not),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn nnf_preserves_evaluation(f in arb_formula(), s in arb_structure()) {
        let v1 = s.eval_closed(&f).unwrap();
        let v2 = s.eval_closed(&nnf(&f)).unwrap();
        prop_assert_eq!(v1, v2, "nnf changed the meaning of {}", f);
    }

    #[test]
    fn prenex_preserves_evaluation(f in arb_formula(), s in arb_structure()) {
        let v1 = s.eval_closed(&f).unwrap();
        let p = prenex(&f);
        let v2 = s.eval_closed(&p.to_formula()).unwrap();
        prop_assert_eq!(v1, v2, "prenex changed the meaning of {}", f);
    }

    #[test]
    fn ite_elimination_preserves_evaluation(f in arb_formula(), s in arb_structure()) {
        let v1 = s.eval_closed(&f).unwrap();
        let v2 = s.eval_closed(&eliminate_ite(&f)).unwrap();
        prop_assert_eq!(v1, v2, "ite elimination changed the meaning of {}", f);
    }

    #[test]
    fn parser_roundtrips_printed_formulas(f in arb_formula()) {
        let text = f.to_string();
        let parsed = ivy_fol::parse_formula(&text)
            .unwrap_or_else(|e| panic!("reparse of `{text}` failed: {e}"));
        prop_assert_eq!(parsed.to_string(), text);
    }

    /// Lemma 4.2: a total structure satisfies the diagram of any of its own
    /// generalizations, and violates the induced conjecture.
    #[test]
    fn diagrams_satisfy_lemma_4_2(s in arb_structure(), keep_bits in 0u16..4096) {
        let total = PartialStructure::from_structure(&s);
        // Drop a pseudo-random subset of facts to build a generalization.
        let facts: Vec<_> = total.facts().iter().cloned().collect();
        let mut partial = total.clone();
        for (i, fact) in facts.iter().enumerate() {
            if keep_bits & (1 << (i % 12)) == 0 {
                partial.undefine(fact);
            }
        }
        prop_assert!(partial.generalizes(&total));
        if partial.fact_count() > 0 {
            prop_assert!(s.eval_closed(&diagram(&partial)).unwrap());
            prop_assert!(!s.eval_closed(&conjecture(&partial)).unwrap());
        }
    }

    /// The fragment predicates agree with actually produced prenex prefixes
    /// in the EA direction (the side Skolemization relies on).
    #[test]
    fn ea_sentences_get_ea_prefixes(f in arb_formula()) {
        if ivy_fol::is_ea_sentence(&f) {
            prop_assert!(prenex(&f).is_ea(), "EA sentence got non-EA prefix: {}", f);
        }
    }

    /// Sanity: evaluation is total on well-sorted closed formulas.
    #[test]
    fn evaluation_is_total(f in arb_formula(), s in arb_structure()) {
        prop_assert!(s.eval_closed(&f).is_ok());
        let _ = Sym::new("unused");
    }
}
