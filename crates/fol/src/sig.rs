//! Sorted first-order vocabularies (signatures).
//!
//! A [`Signature`] declares the sorts, relations and functions an RML program
//! (or a formula) may use. Program variables are nullary functions, following
//! Section 3.2 of the paper. The paper's *stratification* requirement on
//! function symbols (Section 3.1) is checked by [`Signature::stratification`].

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::{Sort, Sym};

/// Declaration of a function symbol: argument sorts and result sort.
///
/// A constant (program variable) is a function with no arguments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuncDecl {
    /// Argument sorts, in order.
    pub args: Vec<Sort>,
    /// Result sort.
    pub ret: Sort,
}

impl FuncDecl {
    /// Number of arguments.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Whether this is a constant (nullary function / program variable).
    pub fn is_constant(&self) -> bool {
        self.args.is_empty()
    }
}

/// One function edge of the stratification graph: `function` forces
/// `ret` strictly below `arg`. A cycle of such edges is what breaks
/// stratification, and naming the edges (not just the sorts) tells the
/// user *which declarations* to change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StratEdge {
    /// The function symbol inducing the constraint.
    pub function: Sym,
    /// The argument sort the result must sit strictly below.
    pub arg: Sort,
    /// The result sort.
    pub ret: Sort,
}

impl fmt::Display for StratEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}` forces {} < {}", self.function, self.ret, self.arg)
    }
}

/// Result of the stratification *analysis* (as opposed to the pass/fail
/// check of [`Signature::stratification`]): either a witnessing sort order,
/// or the offending cycle together with the function edges that close it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stratification {
    /// A witnessing total order (smallest first) when stratified.
    pub order: Option<Vec<Sort>>,
    /// A sort cycle witnessing the violation (first sort repeated at the
    /// end), empty when stratified.
    pub cycle: Vec<Sort>,
    /// For each consecutive cycle pair `(a, b)`, one function edge forcing
    /// `a < b`; empty when stratified.
    pub edges: Vec<StratEdge>,
}

impl Stratification {
    /// Whether the signature is stratified.
    pub fn is_stratified(&self) -> bool {
        self.order.is_some()
    }
}

/// Errors raised while building or validating a [`Signature`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SigError {
    /// A sort was declared twice.
    DuplicateSort(Sort),
    /// A relation or function symbol was declared twice.
    DuplicateSymbol(Sym),
    /// A declaration refers to an unknown sort.
    UnknownSort(Sort),
    /// The function symbols cannot be stratified (Section 3.1): the
    /// "result sort strictly below argument sorts" requirement is cyclic.
    /// Carries one cycle of sorts witnessing the violation plus the
    /// function edges that close it.
    NotStratified {
        /// The offending sort cycle (first sort repeated at the end).
        cycle: Vec<Sort>,
        /// One witnessing function edge per consecutive cycle pair.
        edges: Vec<StratEdge>,
    },
}

impl fmt::Display for SigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SigError::DuplicateSort(s) => write!(f, "duplicate sort `{s}`"),
            SigError::DuplicateSymbol(s) => write!(f, "duplicate symbol `{s}`"),
            SigError::UnknownSort(s) => write!(f, "unknown sort `{s}`"),
            SigError::NotStratified { cycle, edges } => {
                write!(f, "function symbols are not stratified; sort cycle: ")?;
                for (i, s) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{s}")?;
                }
                if !edges.is_empty() {
                    write!(f, " (")?;
                    for (i, e) in edges.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SigError {}

/// A sorted first-order vocabulary: sorts, relations and functions.
///
/// # Examples
///
/// ```
/// use ivy_fol::Signature;
/// let mut sig = Signature::new();
/// sig.add_sort("node")?;
/// sig.add_sort("id")?;
/// sig.add_relation("le", ["id", "id"])?;
/// sig.add_function("id_of", ["node"], "id")?;
/// sig.add_constant("n", "node")?;
/// assert!(sig.stratification().is_ok());
/// # Ok::<(), ivy_fol::SigError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Signature {
    sorts: Vec<Sort>,
    rels: BTreeMap<Sym, Vec<Sort>>,
    funs: BTreeMap<Sym, FuncDecl>,
}

impl Signature {
    /// Creates an empty signature.
    pub fn new() -> Self {
        Signature::default()
    }

    /// Declares a sort.
    ///
    /// # Errors
    ///
    /// Returns [`SigError::DuplicateSort`] if the sort already exists.
    pub fn add_sort(&mut self, sort: impl Into<Sort>) -> Result<Sort, SigError> {
        let sort = sort.into();
        if self.sorts.contains(&sort) {
            return Err(SigError::DuplicateSort(sort));
        }
        self.sorts.push(sort);
        Ok(sort)
    }

    /// Declares a relation symbol with the given argument sorts.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is taken or an argument sort is unknown.
    pub fn add_relation<I, S>(&mut self, name: impl Into<Sym>, args: I) -> Result<Sym, SigError>
    where
        I: IntoIterator<Item = S>,
        S: Into<Sort>,
    {
        let name = name.into();
        let args: Vec<Sort> = args.into_iter().map(Into::into).collect();
        self.check_name_free(&name)?;
        for s in &args {
            self.check_sort_known(s)?;
        }
        self.rels.insert(name, args);
        Ok(name)
    }

    /// Declares a function symbol.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is taken or a sort is unknown. Note that
    /// stratification is *not* checked here; call [`Signature::stratification`]
    /// once the signature is complete.
    pub fn add_function<I, S>(
        &mut self,
        name: impl Into<Sym>,
        args: I,
        ret: impl Into<Sort>,
    ) -> Result<Sym, SigError>
    where
        I: IntoIterator<Item = S>,
        S: Into<Sort>,
    {
        let name = name.into();
        let args: Vec<Sort> = args.into_iter().map(Into::into).collect();
        let ret = ret.into();
        self.check_name_free(&name)?;
        for s in &args {
            self.check_sort_known(s)?;
        }
        self.check_sort_known(&ret)?;
        self.funs.insert(name, FuncDecl { args, ret });
        Ok(name)
    }

    /// Declares a constant (program variable): a nullary function.
    ///
    /// # Errors
    ///
    /// Same as [`Signature::add_function`].
    pub fn add_constant(
        &mut self,
        name: impl Into<Sym>,
        sort: impl Into<Sort>,
    ) -> Result<Sym, SigError> {
        self.add_function(name, Vec::<Sort>::new(), sort)
    }

    fn check_name_free(&self, name: &Sym) -> Result<(), SigError> {
        if self.rels.contains_key(name) || self.funs.contains_key(name) {
            return Err(SigError::DuplicateSymbol(*name));
        }
        Ok(())
    }

    fn check_sort_known(&self, sort: &Sort) -> Result<(), SigError> {
        if !self.sorts.contains(sort) {
            return Err(SigError::UnknownSort(*sort));
        }
        Ok(())
    }

    /// All declared sorts, in declaration order.
    pub fn sorts(&self) -> &[Sort] {
        &self.sorts
    }

    /// Whether `sort` is declared.
    pub fn has_sort(&self, sort: &Sort) -> bool {
        self.sorts.contains(sort)
    }

    /// Looks up a relation's argument sorts.
    pub fn relation(&self, name: &Sym) -> Option<&[Sort]> {
        self.rels.get(name).map(Vec::as_slice)
    }

    /// Looks up a function declaration.
    pub fn function(&self, name: &Sym) -> Option<&FuncDecl> {
        self.funs.get(name)
    }

    /// Iterates over all relation symbols and their argument sorts.
    pub fn relations(&self) -> impl Iterator<Item = (&Sym, &[Sort])> {
        self.rels.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Iterates over all function symbols (constants included).
    pub fn functions(&self) -> impl Iterator<Item = (&Sym, &FuncDecl)> {
        self.funs.iter()
    }

    /// Iterates over the constants (nullary functions) only.
    pub fn constants(&self) -> impl Iterator<Item = (&Sym, &Sort)> {
        self.funs
            .iter()
            .filter(|(_, d)| d.is_constant())
            .map(|(k, d)| (k, &d.ret))
    }

    /// Number of relation plus function symbols (the paper's "RF" column in
    /// Figure 14 counts both, excluding nullary program variables is a
    /// modeling choice; we count non-constant symbols here).
    pub fn symbol_count(&self) -> usize {
        self.rels.len() + self.funs.values().filter(|d| !d.is_constant()).count()
    }

    /// Checks the paper's stratification requirement (Section 3.1): there is
    /// a total order `<` on sorts such that every function `f : s1,...,sn -> s`
    /// has `s < si` for all `i`. Returns a witnessing order (smallest first).
    ///
    /// # Errors
    ///
    /// Returns [`SigError::NotStratified`] with a sort cycle if no such order
    /// exists (e.g. a function from `node` to `id` and another from `id` to
    /// `node`, or any function whose result sort appears among its arguments).
    pub fn stratification(&self) -> Result<Vec<Sort>, SigError> {
        let analysis = self.analyze_stratification();
        match analysis.order {
            Some(order) => Ok(order),
            None => Err(SigError::NotStratified {
                cycle: analysis.cycle,
                edges: analysis.edges,
            }),
        }
    }

    /// Stratification as an *analysis result* rather than a pass/fail error:
    /// always returns, carrying either a witnessing order or the offending
    /// sort cycle plus the function edges that close it. This is what lets
    /// the bounded-instantiation pipeline treat fragment membership as data
    /// (report it, route around it) instead of a constructor-time wall.
    pub fn analyze_stratification(&self) -> Stratification {
        // Edge s -> t means "s must be strictly below t": for f : ...t... -> s.
        let mut below: BTreeMap<&Sort, BTreeSet<&Sort>> = BTreeMap::new();
        for s in &self.sorts {
            below.entry(s).or_default();
        }
        for decl in self.funs.values() {
            if decl.is_constant() {
                continue;
            }
            for arg in &decl.args {
                below.entry(&decl.ret).or_default().insert(arg);
            }
        }
        // Kahn's algorithm on the "must be below" DAG; a cycle (including a
        // self-loop from f : s -> s) means stratification fails.
        let mut indegree: BTreeMap<&Sort, usize> = self.sorts.iter().map(|s| (s, 0)).collect();
        for targets in below.values() {
            for t in targets {
                *indegree.get_mut(t).expect("sorts validated on declaration") += 1;
            }
        }
        let mut order = Vec::with_capacity(self.sorts.len());
        let mut ready: Vec<&Sort> = indegree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(s, _)| *s)
            .collect();
        // Edges run below -> above, so indegree-0 sorts are minimal and the
        // emission order is already smallest-first.
        while let Some(s) = ready.pop() {
            order.push(*s);
            if let Some(targets) = below.get(s) {
                for t in targets {
                    let d = indegree.get_mut(t).expect("known sort");
                    *d -= 1;
                    if *d == 0 {
                        ready.push(t);
                    }
                }
            }
        }
        if order.len() == self.sorts.len() {
            return Stratification {
                order: Some(order),
                cycle: Vec::new(),
                edges: Vec::new(),
            };
        }
        // Find a cycle among unprocessed sorts for the diagnostic.
        let remaining: BTreeSet<&Sort> = indegree
            .iter()
            .filter(|(_, d)| **d > 0)
            .map(|(s, _)| *s)
            .collect();
        let start = *remaining.iter().next().expect("cycle exists");
        let mut cycle = vec![*start];
        let mut cur = start;
        loop {
            let next = below[cur]
                .iter()
                .find(|t| remaining.contains(*t))
                .expect("every remaining sort has a remaining successor");
            if cycle.contains(next) {
                cycle.push(*(*next));
                break;
            }
            cycle.push(*(*next));
            cur = next;
        }
        // Trim the lead-in: the walk may enter the cycle after a few steps;
        // keep only the looping suffix so every consecutive pair is a real
        // edge of the cycle.
        let back = *cycle.last().expect("cycle is nonempty");
        if let Some(pos) = cycle.iter().position(|s| *s == back) {
            cycle.drain(..pos);
        }
        // Name a witnessing function per cycle edge (a, b): some `f` with
        // result sort `a` taking an argument of sort `b`.
        let edges = cycle
            .windows(2)
            .filter_map(|w| {
                let (a, b) = (w[0], w[1]);
                self.funs.iter().find_map(|(name, decl)| {
                    (!decl.is_constant() && decl.ret == a && decl.args.contains(&b)).then_some(
                        StratEdge {
                            function: *name,
                            arg: b,
                            ret: a,
                        },
                    )
                })
            })
            .collect();
        Stratification {
            order: None,
            cycle,
            edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leader_sig() -> Signature {
        let mut sig = Signature::new();
        sig.add_sort("node").unwrap();
        sig.add_sort("id").unwrap();
        sig.add_function("idf", ["node"], "id").unwrap();
        sig.add_relation("le", ["id", "id"]).unwrap();
        sig.add_relation("btw", ["node", "node", "node"]).unwrap();
        sig.add_relation("leader", ["node"]).unwrap();
        sig.add_relation("pnd", ["id", "node"]).unwrap();
        sig.add_constant("n", "node").unwrap();
        sig
    }

    #[test]
    fn leader_signature_is_stratified() {
        let sig = leader_sig();
        let order = sig.stratification().unwrap();
        // id must come strictly before node (id < node).
        let pos = |s: &str| order.iter().position(|x| x.name() == s).unwrap();
        assert!(pos("id") < pos("node"));
    }

    #[test]
    fn cyclic_functions_rejected() {
        let mut sig = Signature::new();
        sig.add_sort("a").unwrap();
        sig.add_sort("b").unwrap();
        sig.add_function("f", ["a"], "b").unwrap();
        sig.add_function("g", ["b"], "a").unwrap();
        match sig.stratification() {
            Err(SigError::NotStratified { cycle, edges }) => {
                assert!(cycle.len() >= 2);
                // Every cycle edge names a witnessing function.
                assert_eq!(edges.len(), cycle.len() - 1);
                let names: Vec<&str> = edges.iter().map(|e| e.function.as_str()).collect();
                assert!(names.contains(&"f") && names.contains(&"g"), "{names:?}");
            }
            other => panic!("expected stratification failure, got {other:?}"),
        }
    }

    #[test]
    fn self_loop_function_rejected() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_function("next", ["s"], "s").unwrap();
        match sig.stratification() {
            Err(e @ SigError::NotStratified { .. }) => {
                let msg = e.to_string();
                assert!(msg.contains("next"), "diagnostic must name the edge: {msg}");
                assert!(msg.contains("s -> s"), "{msg}");
            }
            other => panic!("expected stratification failure, got {other:?}"),
        }
    }

    #[test]
    fn analysis_reports_order_or_cycle() {
        let sig = leader_sig();
        let a = sig.analyze_stratification();
        assert!(a.is_stratified());
        assert!(a.cycle.is_empty() && a.edges.is_empty());

        let mut bad = Signature::new();
        bad.add_sort("epoch").unwrap();
        bad.add_function("next", ["epoch"], "epoch").unwrap();
        let a = bad.analyze_stratification();
        assert!(!a.is_stratified());
        assert_eq!(a.cycle.first(), a.cycle.last());
        assert_eq!(a.edges.len(), 1);
        assert_eq!(a.edges[0].function.as_str(), "next");
    }

    #[test]
    fn constants_do_not_affect_stratification() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_constant("c", "s").unwrap();
        sig.add_constant("d", "s").unwrap();
        assert!(sig.stratification().is_ok());
    }

    #[test]
    fn duplicate_declarations_rejected() {
        let mut sig = leader_sig();
        assert_eq!(
            sig.add_sort("node"),
            Err(SigError::DuplicateSort(Sort::new("node")))
        );
        assert_eq!(
            sig.add_relation("le", ["id", "id"]),
            Err(SigError::DuplicateSymbol(Sym::new("le")))
        );
        assert_eq!(
            sig.add_constant("idf", "id"),
            Err(SigError::DuplicateSymbol(Sym::new("idf")))
        );
    }

    #[test]
    fn unknown_sort_rejected() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        assert_eq!(
            sig.add_relation("r", ["t"]),
            Err(SigError::UnknownSort(Sort::new("t")))
        );
    }

    #[test]
    fn lookups_and_counts() {
        let sig = leader_sig();
        assert_eq!(sig.relation(&Sym::new("btw")).unwrap().len(), 3);
        assert_eq!(sig.function(&Sym::new("idf")).unwrap().arity(), 1);
        assert!(sig.function(&Sym::new("n")).unwrap().is_constant());
        assert_eq!(sig.constants().count(), 1);
        // 4 relations + 1 non-constant function.
        assert_eq!(sig.symbol_count(), 5);
    }
}
