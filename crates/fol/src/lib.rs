//! Sorted first-order logic for the Ivy reproduction.
//!
//! This crate provides the logical substrate of the PLDI 2016 paper
//! *Ivy: Safety Verification by Interactive Generalization*:
//!
//! * [`Signature`]s with sorts, relations and *stratified* functions
//!   (Section 3.1 of the paper);
//! * [`Term`]s and [`Formula`]s with the paper's quantifier fragments
//!   (Figure 11), plus a parser and pretty printer for a concrete syntax;
//! * substitution machinery used by weakest preconditions ([`subst`]);
//! * normal forms: NNF, prenexing, Skolemization ([`xform`]);
//! * finite [`Structure`]s (program states, Definition 1) with formula
//!   evaluation;
//! * [`PartialStructure`]s, the generalization partial order
//!   (Definitions 2–3), and [`diagram()`]/[`conjecture()`]
//!   (Definitions 4–5).
//!
//! # Example
//!
//! ```
//! use ivy_fol::{parse_formula, prenex, Formula};
//!
//! // The paper's conjecture C1 for leader election:
//! let c1 = parse_formula(
//!     "forall N1:node, N2:node. ~(N1 ~= N2 & leader(N1) & le(idf(N1), idf(N2)))",
//! )?;
//! // Its negation is ∃*: exactly what the EPR decision procedure wants.
//! assert!(prenex(&Formula::not(c1)).is_ea());
//! # Ok::<(), ivy_fol::ParseError>(())
//! ```

#![warn(missing_docs)]

mod sym;

pub mod canon;
pub mod diagram;
pub mod formula;
pub mod intern;
pub mod parser;
pub mod partial;
pub mod pretty;
pub mod sig;
pub mod structure;
pub mod subst;
pub mod term;
pub mod xform;

pub use crate::canon::{canonical_clause, sort_permutations, template_var};
pub use crate::diagram::{conjecture, diagram, diagram_var};
pub use formula::{Binding, Formula, SortError};
pub use intern::{FormulaId, FormulaNode, Interner, PrenexI, SkolemizedI, TermId, TermNode};
pub use parser::{parse_formula, parse_formula_prefix, parse_term, parse_term_prefix, ParseError};
pub use partial::{Fact, PartialStructure};
pub use sig::{FuncDecl, SigError, Signature, StratEdge, Stratification};
pub use structure::{Elem, EvalError, Structure};
pub use sym::{Sort, Sym};
pub use term::Term;
pub use xform::{
    ae_alternation, eliminate_ite, is_ae_sentence, is_ea_sentence, nnf, prenex, skolemize, Block,
    Prenex, SkolemError, Skolemized,
};
