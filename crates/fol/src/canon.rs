//! Canonical forms for template clauses.
//!
//! Clause templates (Section 5.1's Houdini seed) quantify over a fixed pool
//! of variables per sort, so two enumerated clauses can be alpha-variants of
//! one another: `∀X,Y. r(X,Y)` and `∀X,Y. r(Y,X)` differ only by permuting
//! same-sort variables. This module computes a canonical key for a clause —
//! the lexicographically least sorted literal-id vector over all per-sort
//! variable permutations — so enumeration can emit each equivalence class
//! once.
//!
//! It also owns [`template_var`], the naming scheme for template variables.
//! Diagram and conjecture variables are named by [`crate::diagram_var`]
//! (`NODE0`, `NODE1`, …); template variables deliberately use a distinct
//! `V_` prefix (`V_NODE0`, …) so conjoining a template clause with a
//! diagram-derived conjecture can never silently identify variables that
//! were meant to be distinct.

use std::collections::BTreeMap;

use crate::formula::Binding;
use crate::intern::{FormulaId, Interner, TermId};
use crate::sym::{Sort, Sym};

/// The `i`-th template variable of `sort`: `V_` + uppercased sort name +
/// index, e.g. `V_NODE0`. The `V_` prefix keeps template variables disjoint
/// from [`crate::diagram_var`] names (`NODE0`, …), which share the
/// uppercase-sort-plus-index tail.
pub fn template_var(sort: &Sort, i: usize) -> Sym {
    Sym::new(format!("V_{}{}", sort.name().to_ascii_uppercase(), i))
}

/// All simultaneous renamings of `bindings` that permute variables within
/// each sort (the Cartesian product of per-sort permutations), as
/// substitution maps suitable for [`Interner::subst_vars`]. The first map is
/// always the identity.
///
/// The map count is `Π_sort (vars_of_sort)!` — callers should keep the
/// per-sort pool small (≤ 4), as templates do.
pub fn sort_permutations(bindings: &[Binding]) -> Vec<BTreeMap<Sym, TermId>> {
    // Group variable names by sort, preserving binding order.
    let mut groups: Vec<(Sort, Vec<Sym>)> = Vec::new();
    for b in bindings {
        match groups.iter_mut().find(|(s, _)| *s == b.sort) {
            Some((_, names)) => names.push(b.var),
            None => groups.push((b.sort, vec![b.var])),
        }
    }
    let mut perms: Vec<BTreeMap<Sym, TermId>> = vec![BTreeMap::new()];
    Interner::with(|it| {
        for (_, names) in &groups {
            let orderings = permutations(names);
            let mut next = Vec::with_capacity(perms.len() * orderings.len());
            for base in &perms {
                for ordering in &orderings {
                    let mut map = base.clone();
                    for (from, to) in names.iter().zip(ordering) {
                        if from != to {
                            map.insert(*from, it.var(*to));
                        }
                    }
                    next.push(map);
                }
            }
            perms = next;
        }
    });
    perms
}

/// The canonical key of the clause whose literals are `literals`: for each
/// renaming in `perms`, rename every literal, sort and dedup the resulting
/// ids, and return the lexicographically least vector. Two clauses that
/// differ only by a renaming in `perms` (or by literal order / duplicate
/// literals) share a key.
pub fn canonical_clause(literals: &[FormulaId], perms: &[BTreeMap<Sym, TermId>]) -> Vec<FormulaId> {
    Interner::with(|it| {
        let mut best: Option<Vec<FormulaId>> = None;
        for perm in perms {
            let mut row: Vec<FormulaId> = literals
                .iter()
                .map(|&l| {
                    if perm.is_empty() {
                        l
                    } else {
                        it.subst_vars(l, perm)
                    }
                })
                .collect();
            row.sort();
            row.dedup();
            match &best {
                Some(b) if *b <= row => {}
                _ => best = Some(row),
            }
        }
        best.unwrap_or_default()
    })
}

fn permutations(items: &[Sym]) -> Vec<Vec<Sym>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for (i, head) in items.iter().enumerate() {
        let mut rest: Vec<Sym> = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, *head);
            out.push(tail);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::intern;
    use crate::parser::parse_formula;

    fn lit(src: &str) -> FormulaId {
        intern(&parse_formula(src).unwrap())
    }

    fn bindings() -> Vec<Binding> {
        let node = Sort::new("node");
        vec![
            Binding::new(template_var(&node, 0), node),
            Binding::new(template_var(&node, 1), node),
        ]
    }

    #[test]
    fn template_vars_are_disjoint_from_diagram_vars() {
        let node = Sort::new("node");
        for i in 0..4 {
            let t = template_var(&node, i);
            assert!(t.as_str().starts_with("V_"), "{t}");
            assert_ne!(t.as_str(), format!("NODE{i}"));
        }
    }

    #[test]
    fn alpha_variants_share_a_key() {
        let perms = sort_permutations(&bindings());
        assert_eq!(perms.len(), 2);
        let a = vec![lit("edge(V_NODE0, V_NODE1)")];
        let b = vec![lit("edge(V_NODE1, V_NODE0)")];
        assert_eq!(canonical_clause(&a, &perms), canonical_clause(&b, &perms));
    }

    #[test]
    fn distinct_clauses_keep_distinct_keys() {
        let perms = sort_permutations(&bindings());
        let a = vec![lit("edge(V_NODE0, V_NODE0)")];
        let b = vec![lit("edge(V_NODE0, V_NODE1)")];
        assert_ne!(canonical_clause(&a, &perms), canonical_clause(&b, &perms));
    }

    #[test]
    fn literal_order_and_duplicates_are_normalized() {
        let perms = sort_permutations(&bindings());
        let a = vec![lit("p(V_NODE0)"), lit("q(V_NODE1)")];
        let b = vec![lit("q(V_NODE1)"), lit("p(V_NODE0)"), lit("p(V_NODE0)")];
        assert_eq!(canonical_clause(&a, &perms), canonical_clause(&b, &perms));
    }
}
