//! Terms of sorted first-order logic (Figure 11 of the paper).
//!
//! ```text
//! t ::= x                    logical variable
//!     | v                    program variable (nullary function)
//!     | f(t, ..., t)         function application
//!     | ite(phi_QF, t, t)    if-then-else term
//! ```

use std::collections::BTreeSet;
use std::fmt;

use crate::formula::Formula;
use crate::{Sort, Sym};

/// A first-order term.
///
/// Program variables and constants are represented as nullary
/// [`Term::App`]s, matching the paper's treatment of program variables as
/// nullary function symbols (Remark 3.1).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A logical variable (bound by a quantifier, or free in an open formula).
    Var(Sym),
    /// Application of a function symbol; constants have an empty argument
    /// list.
    App(Sym, Vec<Term>),
    /// If-then-else over a quantifier-free condition.
    Ite(Box<Formula>, Box<Term>, Box<Term>),
}

impl Term {
    /// A logical variable.
    pub fn var(name: impl Into<Sym>) -> Term {
        Term::Var(name.into())
    }

    /// A constant / program variable.
    pub fn cst(name: impl Into<Sym>) -> Term {
        Term::App(name.into(), Vec::new())
    }

    /// A function application.
    pub fn app(name: impl Into<Sym>, args: impl IntoIterator<Item = Term>) -> Term {
        Term::App(name.into(), args.into_iter().collect())
    }

    /// An if-then-else term.
    pub fn ite(cond: Formula, then: Term, els: Term) -> Term {
        Term::Ite(Box::new(cond), Box::new(then), Box::new(els))
    }

    /// Collects the free logical variables of this term into `out`.
    pub fn collect_vars(&self, out: &mut BTreeSet<Sym>) {
        match self {
            Term::Var(v) => {
                out.insert(*v);
            }
            Term::App(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Term::Ite(c, t, e) => {
                c.collect_free_vars_into(out, &mut BTreeSet::new());
                t.collect_vars(out);
                e.collect_vars(out);
            }
        }
    }

    /// The free logical variables of this term.
    pub fn vars(&self) -> BTreeSet<Sym> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    /// Whether this term mentions function symbol or constant `name`.
    pub fn mentions_symbol(&self, name: &Sym) -> bool {
        match self {
            Term::Var(_) => false,
            Term::App(f, args) => f == name || args.iter().any(|a| a.mentions_symbol(name)),
            Term::Ite(c, t, e) => {
                c.mentions_symbol(name) || t.mentions_symbol(name) || e.mentions_symbol(name)
            }
        }
    }

    /// Whether this term contains an `ite`.
    pub fn has_ite(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::App(_, args) => args.iter().any(Term::has_ite),
            Term::Ite(..) => true,
        }
    }

    /// Infers the sort of this term given the sorts of free variables.
    ///
    /// Returns `None` when the term is ill-sorted or mentions unknown
    /// symbols/variables.
    pub fn sort(
        &self,
        sig: &crate::Signature,
        var_sorts: &std::collections::BTreeMap<Sym, Sort>,
    ) -> Option<Sort> {
        match self {
            Term::Var(v) => var_sorts.get(v).cloned(),
            Term::App(f, args) => {
                let decl = sig.function(f)?;
                if decl.args.len() != args.len() {
                    return None;
                }
                for (a, expected) in args.iter().zip(&decl.args) {
                    if a.sort(sig, var_sorts)? != *expected {
                        return None;
                    }
                }
                Some(decl.ret)
            }
            Term::Ite(c, t, e) => {
                c.well_sorted(sig, var_sorts).ok()?;
                let ts = t.sort(sig, var_sorts)?;
                let es = e.sort(sig, var_sorts)?;
                (ts == es).then_some(ts)
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pretty::write_term(f, self)
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}
