//! Finite sorted first-order structures (Definition 1 of the paper) and
//! formula evaluation.
//!
//! A [`Structure`] is a program state of an RML program: finite domains per
//! sort, relation tables, and total function tables. Counterexamples to
//! induction (CTIs) and BMC trace states are structures.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::formula::Formula;
use crate::term::Term;
use crate::{Signature, Sort, Sym};

/// An element of a structure's domain: a sort paired with an index.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Elem {
    /// The element's sort.
    pub sort: Sort,
    /// Index within the sort's domain, `0..domain_size(sort)`.
    pub idx: u32,
}

impl Elem {
    /// Creates an element handle.
    pub fn new(sort: impl Into<Sort>, idx: u32) -> Self {
        Elem {
            sort: sort.into(),
            idx,
        }
    }
}

impl fmt::Display for Elem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.sort, self.idx)
    }
}

impl fmt::Debug for Elem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Errors raised during evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A symbol not declared in the structure's signature.
    UnknownSymbol(Sym),
    /// A logical variable with no binding in the environment.
    UnboundVariable(Sym),
    /// A function application with no defined value (structures are expected
    /// to be total; this indicates a construction bug).
    UndefinedApplication(Sym, Vec<Elem>),
    /// A sort with an empty domain was quantified over... permitted (vacuous
    /// `forall`, false `exists`), so this variant is only produced when an
    /// element handle refers outside the domain.
    BadElement(Elem),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownSymbol(s) => write!(f, "unknown symbol `{s}`"),
            EvalError::UnboundVariable(v) => write!(f, "unbound logical variable `{v}`"),
            EvalError::UndefinedApplication(g, args) => {
                write!(f, "function `{g}` undefined on (")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            EvalError::BadElement(e) => write!(f, "element `{e}` outside its sort's domain"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A finite sorted first-order structure.
///
/// # Examples
///
/// ```
/// use ivy_fol::{Signature, Structure, Elem, parse_formula};
/// use std::sync::Arc;
///
/// let mut sig = Signature::new();
/// sig.add_sort("node")?;
/// sig.add_relation("leader", ["node"])?;
/// let mut s = Structure::new(Arc::new(sig));
/// let n0 = s.add_element("node");
/// let n1 = s.add_element("node");
/// s.set_rel("leader", vec![n0.clone()], true);
///
/// let f = parse_formula("exists X:node. leader(X)").unwrap();
/// assert!(s.eval_closed(&f)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Structure {
    sig: Arc<Signature>,
    domain: BTreeMap<Sort, u32>,
    rels: BTreeMap<Sym, BTreeMap<Vec<Elem>, bool>>,
    funs: BTreeMap<Sym, BTreeMap<Vec<Elem>, Elem>>,
}

impl Structure {
    /// Creates a structure with empty domains over the given signature.
    pub fn new(sig: Arc<Signature>) -> Self {
        Structure {
            sig,
            domain: BTreeMap::new(),
            rels: BTreeMap::new(),
            funs: BTreeMap::new(),
        }
    }

    /// The structure's signature.
    pub fn signature(&self) -> &Arc<Signature> {
        &self.sig
    }

    /// Adds a fresh element to `sort`'s domain and returns it.
    ///
    /// # Panics
    ///
    /// Panics if `sort` is not declared in the signature.
    pub fn add_element(&mut self, sort: impl Into<Sort>) -> Elem {
        let sort = sort.into();
        assert!(
            self.sig.has_sort(&sort),
            "add_element: unknown sort `{sort}`"
        );
        let n = self.domain.entry(sort).or_insert(0);
        let e = Elem { sort, idx: *n };
        *n += 1;
        e
    }

    /// The domain size of `sort` (0 when the sort has no elements).
    pub fn domain_size(&self, sort: &Sort) -> u32 {
        self.domain.get(sort).copied().unwrap_or(0)
    }

    /// Total number of elements across all sorts.
    pub fn universe_size(&self) -> usize {
        self.domain.values().map(|&n| n as usize).sum()
    }

    /// The elements of `sort`.
    pub fn elements(&self, sort: &Sort) -> impl Iterator<Item = Elem> + '_ {
        let sort = *sort;
        let n = self.domain_size(&sort);
        (0..n).map(move |idx| Elem { sort, idx })
    }

    /// All elements, all sorts.
    pub fn all_elements(&self) -> impl Iterator<Item = Elem> + '_ {
        self.domain.iter().flat_map(|(sort, &n)| {
            let sort = *sort;
            (0..n).map(move |idx| Elem { sort, idx })
        })
    }

    /// Sets a relation fact. Unset tuples are false.
    ///
    /// # Panics
    ///
    /// Panics if `rel` is not a declared relation of matching arity/sorts.
    pub fn set_rel(&mut self, rel: impl Into<Sym>, tuple: Vec<Elem>, value: bool) {
        let rel = rel.into();
        let decl = self
            .sig
            .relation(&rel)
            .unwrap_or_else(|| panic!("set_rel: unknown relation `{rel}`"));
        assert_eq!(
            decl.len(),
            tuple.len(),
            "set_rel: arity mismatch for `{rel}`"
        );
        for (e, s) in tuple.iter().zip(decl) {
            assert_eq!(&e.sort, s, "set_rel: sort mismatch for `{rel}`");
        }
        if value {
            self.rels.entry(rel).or_default().insert(tuple, true);
        } else {
            self.rels.entry(rel).or_default().remove(&tuple);
        }
    }

    /// Whether `rel` holds on `tuple`.
    pub fn rel_holds(&self, rel: &Sym, tuple: &[Elem]) -> bool {
        self.rels
            .get(rel)
            .is_some_and(|m| m.get(tuple).copied().unwrap_or(false))
    }

    /// The positive tuples of `rel`.
    pub fn rel_tuples(&self, rel: &Sym) -> impl Iterator<Item = &Vec<Elem>> + '_ {
        self.rels.get(rel).into_iter().flat_map(|m| m.keys())
    }

    /// Number of positive tuples of `rel`.
    pub fn rel_count(&self, rel: &Sym) -> usize {
        self.rels.get(rel).map_or(0, BTreeMap::len)
    }

    /// Defines `fun(args) = result`.
    ///
    /// # Panics
    ///
    /// Panics on unknown symbol, arity, or sort mismatch.
    pub fn set_fun(&mut self, fun: impl Into<Sym>, args: Vec<Elem>, result: Elem) {
        let fun = fun.into();
        let decl = self
            .sig
            .function(&fun)
            .unwrap_or_else(|| panic!("set_fun: unknown function `{fun}`"));
        assert_eq!(
            decl.args.len(),
            args.len(),
            "set_fun: arity mismatch for `{fun}`"
        );
        for (e, s) in args.iter().zip(&decl.args) {
            assert_eq!(&e.sort, s, "set_fun: argument sort mismatch for `{fun}`");
        }
        assert_eq!(
            result.sort, decl.ret,
            "set_fun: result sort mismatch for `{fun}`"
        );
        self.funs.entry(fun).or_default().insert(args, result);
    }

    /// Looks up `fun(args)`.
    pub fn fun_app(&self, fun: &Sym, args: &[Elem]) -> Option<Elem> {
        self.funs.get(fun).and_then(|m| m.get(args)).cloned()
    }

    /// The defined entries of `fun`.
    pub fn fun_entries(&self, fun: &Sym) -> impl Iterator<Item = (&Vec<Elem>, &Elem)> + '_ {
        self.funs.get(fun).into_iter().flat_map(|m| m.iter())
    }

    /// Checks that every declared function (constants included) is total over
    /// the current domains; returns the first missing application.
    pub fn totality_gap(&self) -> Option<(Sym, Vec<Elem>)> {
        for (name, decl) in self.sig.functions() {
            let mut missing = None;
            self.for_each_tuple(&decl.args, &mut |tuple| {
                if missing.is_none() && self.fun_app(name, tuple).is_none() {
                    missing = Some(tuple.to_vec());
                }
            });
            if let Some(args) = missing {
                return Some((*name, args));
            }
        }
        None
    }

    fn for_each_tuple(&self, sorts: &[Sort], f: &mut impl FnMut(&[Elem])) {
        fn go(s: &Structure, sorts: &[Sort], acc: &mut Vec<Elem>, f: &mut impl FnMut(&[Elem])) {
            if acc.len() == sorts.len() {
                f(acc);
                return;
            }
            let sort = &sorts[acc.len()];
            for e in s.elements(sort).collect::<Vec<_>>() {
                acc.push(e);
                go(s, sorts, acc, f);
                acc.pop();
            }
        }
        go(self, sorts, &mut Vec::new(), f);
    }

    /// Evaluates a term under a variable environment.
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    pub fn eval_term(&self, t: &Term, env: &BTreeMap<Sym, Elem>) -> Result<Elem, EvalError> {
        match t {
            Term::Var(v) => env.get(v).cloned().ok_or(EvalError::UnboundVariable(*v)),
            Term::App(f, args) => {
                let args: Vec<Elem> = args
                    .iter()
                    .map(|a| self.eval_term(a, env))
                    .collect::<Result<_, _>>()?;
                if self.sig.function(f).is_none() {
                    return Err(EvalError::UnknownSymbol(*f));
                }
                self.fun_app(f, &args)
                    .ok_or(EvalError::UndefinedApplication(*f, args))
            }
            Term::Ite(c, a, b) => {
                if self.eval(c, env)? {
                    self.eval_term(a, env)
                } else {
                    self.eval_term(b, env)
                }
            }
        }
    }

    /// Evaluates a formula under a variable environment.
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    pub fn eval(&self, f: &Formula, env: &BTreeMap<Sym, Elem>) -> Result<bool, EvalError> {
        match f {
            Formula::True => Ok(true),
            Formula::False => Ok(false),
            Formula::Rel(r, args) => {
                if self.sig.relation(r).is_none() {
                    return Err(EvalError::UnknownSymbol(*r));
                }
                let tuple: Vec<Elem> = args
                    .iter()
                    .map(|a| self.eval_term(a, env))
                    .collect::<Result<_, _>>()?;
                Ok(self.rel_holds(r, &tuple))
            }
            Formula::Eq(a, b) => Ok(self.eval_term(a, env)? == self.eval_term(b, env)?),
            Formula::Not(g) => Ok(!self.eval(g, env)?),
            Formula::And(fs) => {
                for g in fs {
                    if !self.eval(g, env)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Or(fs) => {
                for g in fs {
                    if self.eval(g, env)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::Implies(a, b) => Ok(!self.eval(a, env)? || self.eval(b, env)?),
            Formula::Iff(a, b) => Ok(self.eval(a, env)? == self.eval(b, env)?),
            Formula::Forall(bs, body) => self.eval_quant(bs, body, env, true),
            Formula::Exists(bs, body) => self.eval_quant(bs, body, env, false),
        }
    }

    fn eval_quant(
        &self,
        bs: &[crate::formula::Binding],
        body: &Formula,
        env: &BTreeMap<Sym, Elem>,
        universal: bool,
    ) -> Result<bool, EvalError> {
        fn go(
            s: &Structure,
            bs: &[crate::formula::Binding],
            body: &Formula,
            env: &mut BTreeMap<Sym, Elem>,
            universal: bool,
        ) -> Result<bool, EvalError> {
            let Some(b) = bs.first() else {
                return s.eval(body, env);
            };
            let rest = &bs[1..];
            for e in s.elements(&b.sort).collect::<Vec<_>>() {
                let prev = env.insert(b.var, e);
                let r = go(s, rest, body, env, universal)?;
                match prev {
                    Some(p) => {
                        env.insert(b.var, p);
                    }
                    None => {
                        env.remove(&b.var);
                    }
                }
                if r != universal {
                    return Ok(!universal);
                }
            }
            Ok(universal)
        }
        let mut env = env.clone();
        go(self, bs, body, &mut env, universal)
    }

    /// Evaluates a closed formula.
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    pub fn eval_closed(&self, f: &Formula) -> Result<bool, EvalError> {
        self.eval(f, &BTreeMap::new())
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "structure {{ ")?;
        let mut first = true;
        for (sort, &n) in &self.domain {
            if !first {
                write!(f, "; ")?;
            }
            first = false;
            write!(f, "|{sort}| = {n}")?;
        }
        for (rel, tuples) in &self.rels {
            for tuple in tuples.keys() {
                write!(f, "; {rel}(")?;
                for (i, e) in tuple.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")?;
            }
        }
        for (fun, entries) in &self.funs {
            for (args, res) in entries {
                write!(f, "; {fun}")?;
                if !args.is_empty() {
                    write!(f, "(")?;
                    for (i, e) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, ")")?;
                }
                write!(f, " = {res}")?;
            }
        }
        write!(f, " }}")
    }
}

impl fmt::Debug for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_formula;

    fn two_node_state() -> Structure {
        // The paper's Figure 7 (a1): two nodes, two ids, id(node1) < id(node2),
        // pnd(id2, node2), leader(node1).
        let mut sig = Signature::new();
        sig.add_sort("node").unwrap();
        sig.add_sort("id").unwrap();
        sig.add_function("idf", ["node"], "id").unwrap();
        sig.add_relation("le", ["id", "id"]).unwrap();
        sig.add_relation("leader", ["node"]).unwrap();
        sig.add_relation("pnd", ["id", "node"]).unwrap();
        let mut s = Structure::new(Arc::new(sig));
        let n1 = s.add_element("node");
        let n2 = s.add_element("node");
        let i1 = s.add_element("id");
        let i2 = s.add_element("id");
        s.set_fun("idf", vec![n1.clone()], i1.clone());
        s.set_fun("idf", vec![n2.clone()], i2.clone());
        for i in [&i1, &i2] {
            s.set_rel("le", vec![i.clone(), i.clone()], true);
        }
        s.set_rel("le", vec![i1.clone(), i2.clone()], true);
        s.set_rel("leader", vec![n1.clone()], true);
        s.set_rel("pnd", vec![i2.clone(), n2.clone()], true);
        s
    }

    #[test]
    fn domain_bookkeeping() {
        let s = two_node_state();
        assert_eq!(s.domain_size(&Sort::new("node")), 2);
        assert_eq!(s.universe_size(), 4);
        assert_eq!(s.rel_count(&Sym::new("le")), 3);
        assert!(s.totality_gap().is_none());
    }

    #[test]
    fn eval_atoms() {
        let s = two_node_state();
        assert!(s
            .eval_closed(&parse_formula("exists X:node. leader(X)").unwrap())
            .unwrap());
        assert!(!s
            .eval_closed(&parse_formula("forall X:node. leader(X)").unwrap())
            .unwrap());
    }

    #[test]
    fn eval_violates_c1() {
        // Figure 7 (a1) violates C1: a leader whose id is below another id.
        let s = two_node_state();
        let c1 = parse_formula(
            "forall N1:node, N2:node. ~(N1 ~= N2 & leader(N1) & le(idf(N1), idf(N2)))",
        )
        .unwrap();
        assert!(!s.eval_closed(&c1).unwrap());
    }

    #[test]
    fn eval_satisfies_c0() {
        // Figure 7 (a1) satisfies the safety property C0: at most one leader.
        let s = two_node_state();
        let c0 =
            parse_formula("forall N1:node, N2:node. leader(N1) & leader(N2) -> N1 = N2").unwrap();
        assert!(s.eval_closed(&c0).unwrap());
    }

    #[test]
    fn eval_nested_quantifiers() {
        let s = two_node_state();
        // Every node's id is le-below some id (its own, by reflexivity).
        let f = parse_formula("forall X:node. exists Y:id. le(idf(X), Y)").unwrap();
        assert!(s.eval_closed(&f).unwrap());
    }

    #[test]
    fn eval_ite_term() {
        let s = two_node_state();
        let f = parse_formula("forall X:node. ite(leader(X), idf(X), idf(X)) = idf(X)").unwrap();
        assert!(s.eval_closed(&f).unwrap());
    }

    #[test]
    fn empty_domain_quantifiers() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_relation("r", ["s"]).unwrap();
        let s = Structure::new(Arc::new(sig));
        assert!(s
            .eval_closed(&parse_formula("forall X:s. r(X)").unwrap())
            .unwrap());
        assert!(!s
            .eval_closed(&parse_formula("exists X:s. r(X)").unwrap())
            .unwrap());
    }

    #[test]
    fn totality_gap_detected() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_constant("c", "s").unwrap();
        let mut s = Structure::new(Arc::new(sig));
        s.add_element("s");
        let gap = s.totality_gap().unwrap();
        assert_eq!(gap.0, Sym::new("c"));
    }

    #[test]
    fn unbound_variable_errors() {
        let s = two_node_state();
        let f = parse_formula("leader(X)").unwrap();
        assert!(matches!(
            s.eval_closed(&f),
            Err(EvalError::UnboundVariable(_))
        ));
    }

    #[test]
    fn display_lists_facts() {
        let s = two_node_state();
        let d = s.to_string();
        assert!(d.contains("|node| = 2"));
        assert!(d.contains("leader(node0)"));
        assert!(d.contains("idf(node0) = id0"));
    }
}
