//! Partial structures and the generalization partial order
//! (Definitions 2 and 3 of the paper).
//!
//! A partial structure records *some* facts of a structure and leaves the
//! rest undefined. Generalizing a CTI means turning facts to undefined
//! (and possibly dropping elements): the fewer facts are defined, the more
//! states the induced conjecture excludes (see [the `diagram` module](mod@crate::diagram)).
//!
//! Following the paper's footnote 1, a `k`-ary function is treated as a
//! `k+1`-ary relation relating argument tuples to the result.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::structure::{Elem, Structure};
use crate::{Signature, Sym};

/// A single defined fact of a partial structure.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Fact {
    /// `rel(tuple) = value`.
    Rel {
        /// Relation symbol.
        sym: Sym,
        /// Argument tuple.
        tuple: Vec<Elem>,
        /// Defined truth value.
        value: bool,
    },
    /// `fun(args) = result` holds (`value = true`) or does not (`false`).
    Fun {
        /// Function symbol.
        sym: Sym,
        /// Argument tuple (length = arity).
        args: Vec<Elem>,
        /// Candidate result element.
        result: Elem,
        /// Defined truth value of the `k+1`-ary relation view.
        value: bool,
    },
}

impl Fact {
    /// All elements mentioned by the fact.
    pub fn elements(&self) -> Vec<&Elem> {
        match self {
            Fact::Rel { tuple, .. } => tuple.iter().collect(),
            Fact::Fun { args, result, .. } => args.iter().chain(Some(result)).collect(),
        }
    }

    /// The relation/function symbol of the fact.
    pub fn symbol(&self) -> &Sym {
        match self {
            Fact::Rel { sym, .. } | Fact::Fun { sym, .. } => sym,
        }
    }

    /// The fact's defined truth value.
    pub fn value(&self) -> bool {
        match self {
            Fact::Rel { value, .. } | Fact::Fun { value, .. } => *value,
        }
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fact::Rel { sym, tuple, value } => {
                if !value {
                    write!(f, "~")?;
                }
                write!(f, "{sym}(")?;
                for (i, e) in tuple.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Fact::Fun {
                sym,
                args,
                result,
                value,
            } => {
                write!(f, "{sym}")?;
                if !args.is_empty() {
                    write!(f, "(")?;
                    for (i, e) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, ")")?;
                }
                write!(f, " {} {result}", if *value { "=" } else { "~=" })
            }
        }
    }
}

/// A partial structure: a domain plus a set of defined facts
/// (Definition 2).
#[derive(Clone, PartialEq, Eq)]
pub struct PartialStructure {
    sig: Arc<Signature>,
    domain: BTreeSet<Elem>,
    facts: BTreeSet<Fact>,
}

impl PartialStructure {
    /// An empty partial structure (defines nothing; its conjecture is
    /// `~true`, i.e. excludes everything containing nothing — trivially
    /// `false`... callers normally start [`PartialStructure::from_structure`]).
    pub fn new(sig: Arc<Signature>) -> Self {
        PartialStructure {
            sig,
            domain: BTreeSet::new(),
            facts: BTreeSet::new(),
        }
    }

    /// The total view of a structure as a partial structure: every relation
    /// fact (both polarities) and every function fact is defined.
    pub fn from_structure(s: &Structure) -> Self {
        Self::from_structure_without(s, &BTreeSet::new())
    }

    /// Like [`PartialStructure::from_structure`], but skipping the given
    /// symbols entirely — used to exclude scratch program variables (the
    /// paper's figures never display the havocked locals `n`, `m`, `i`).
    pub fn from_structure_without(s: &Structure, skip: &BTreeSet<Sym>) -> Self {
        let sig = s.signature().clone();
        let mut out = PartialStructure::new(sig.clone());
        out.domain = s.all_elements().collect();
        for (rel, arg_sorts) in sig.relations() {
            if skip.contains(rel) {
                continue;
            }
            for tuple in tuples_over(s, arg_sorts) {
                let value = s.rel_holds(rel, &tuple);
                out.facts.insert(Fact::Rel {
                    sym: *rel,
                    tuple,
                    value,
                });
            }
        }
        for (fun, decl) in sig.functions() {
            if skip.contains(fun) {
                continue;
            }
            for args in tuples_over(s, &decl.args) {
                let actual = s.fun_app(fun, &args);
                for result in s.elements(&decl.ret).collect::<Vec<_>>() {
                    let value = actual.as_ref() == Some(&result);
                    out.facts.insert(Fact::Fun {
                        sym: *fun,
                        args: args.clone(),
                        result,
                        value,
                    });
                }
            }
        }
        out
    }

    /// A partial structure over the same domain as `s` but with *no* facts
    /// defined; facts are then added selectively with
    /// [`PartialStructure::define`]. This is how an "upper bound" `s_u` is
    /// often built programmatically.
    pub fn empty_over(s: &Structure) -> Self {
        let mut out = PartialStructure::new(s.signature().clone());
        out.domain = s.all_elements().collect();
        out
    }

    /// The signature.
    pub fn signature(&self) -> &Arc<Signature> {
        &self.sig
    }

    /// The domain `D`.
    pub fn domain(&self) -> &BTreeSet<Elem> {
        &self.domain
    }

    /// The defined facts.
    pub fn facts(&self) -> &BTreeSet<Fact> {
        &self.facts
    }

    /// Number of defined facts.
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }

    /// The *active* elements `D'` of Definition 4: those appearing in at
    /// least one defined fact.
    pub fn active_elements(&self) -> BTreeSet<Elem> {
        let mut out = BTreeSet::new();
        for fact in &self.facts {
            out.extend(fact.elements().into_iter().cloned());
        }
        out
    }

    /// Defines (adds) a fact.
    ///
    /// # Panics
    ///
    /// Panics if the fact mentions elements outside the domain.
    pub fn define(&mut self, fact: Fact) {
        for e in fact.elements() {
            assert!(
                self.domain.contains(e),
                "fact mentions element {e} outside the domain"
            );
        }
        self.facts.insert(fact);
    }

    /// Convenience: define a relation fact.
    pub fn define_rel(&mut self, sym: impl Into<Sym>, tuple: Vec<Elem>, value: bool) {
        self.define(Fact::Rel {
            sym: sym.into(),
            tuple,
            value,
        });
    }

    /// Convenience: define a (positive) function fact `sym(args) = result`.
    pub fn define_fun(&mut self, sym: impl Into<Sym>, args: Vec<Elem>, result: Elem) {
        self.define(Fact::Fun {
            sym: sym.into(),
            args,
            result,
            value: true,
        });
    }

    /// Undefines a fact (no-op when it is not defined).
    pub fn undefine(&mut self, fact: &Fact) {
        self.facts.remove(fact);
    }

    /// Removes an element from the domain, undefining every fact that
    /// mentions it.
    pub fn drop_element(&mut self, e: &Elem) {
        self.domain.remove(e);
        self.facts.retain(|f| !f.elements().contains(&e));
    }

    /// Turns all *positive* instances of `sym` to undefined — one of the
    /// coarse-grained checkbox operations of Section 4.5.
    pub fn drop_positive(&mut self, sym: &Sym) {
        self.facts.retain(|f| f.symbol() != sym || !f.value());
    }

    /// Turns all *negative* instances of `sym` to undefined.
    pub fn drop_negative(&mut self, sym: &Sym) {
        self.facts.retain(|f| f.symbol() != sym || f.value());
    }

    /// Turns all instances of `sym` (either polarity) to undefined.
    pub fn drop_symbol(&mut self, sym: &Sym) {
        self.facts.retain(|f| f.symbol() != sym);
    }

    /// Keeps only facts satisfying the predicate.
    pub fn retain_facts(&mut self, mut pred: impl FnMut(&Fact) -> bool) {
        self.facts.retain(|f| pred(f));
    }

    /// The generalization partial order (Definition 3): `self ⪯ other` when
    /// `self`'s domain is a subset of `other`'s and every fact defined in
    /// `self` is defined in `other` with the same value.
    ///
    /// `self ⪯ other` means `self` is *more general* (defines less, so its
    /// conjecture excludes more states).
    pub fn generalizes(&self, other: &PartialStructure) -> bool {
        self.domain.is_subset(&other.domain) && self.facts.is_subset(&other.facts)
    }

    /// Whether a total structure `s` agrees with all defined facts, taking
    /// element identities literally (no embedding). Used to validate
    /// generalizations of a CTI against the CTI itself.
    pub fn consistent_with(&self, s: &Structure) -> bool {
        self.facts.iter().all(|fact| match fact {
            Fact::Rel { sym, tuple, value } => s.rel_holds(sym, tuple) == *value,
            Fact::Fun {
                sym,
                args,
                result,
                value,
            } => (s.fun_app(sym, args).as_ref() == Some(result)) == *value,
        })
    }
}

fn tuples_over(s: &Structure, sorts: &[crate::Sort]) -> Vec<Vec<Elem>> {
    let mut out = vec![Vec::new()];
    for sort in sorts {
        let elems: Vec<Elem> = s.elements(sort).collect();
        let mut next = Vec::with_capacity(out.len() * elems.len());
        for prefix in &out {
            for e in &elems {
                let mut t = prefix.clone();
                t.push(e.clone());
                next.push(t);
            }
        }
        out = next;
    }
    out
}

impl fmt::Display for PartialStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "partial {{ domain: ")?;
        for (i, e) in self.domain.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "; facts: ")?;
        for (i, fact) in self.facts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fact}")?;
        }
        write!(f, " }}")
    }
}

impl fmt::Debug for PartialStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leader_state() -> Structure {
        let mut sig = Signature::new();
        sig.add_sort("node").unwrap();
        sig.add_sort("id").unwrap();
        sig.add_function("idf", ["node"], "id").unwrap();
        sig.add_relation("le", ["id", "id"]).unwrap();
        sig.add_relation("leader", ["node"]).unwrap();
        let mut s = Structure::new(Arc::new(sig));
        let n1 = s.add_element("node");
        let n2 = s.add_element("node");
        let i1 = s.add_element("id");
        let i2 = s.add_element("id");
        s.set_fun("idf", vec![n1.clone()], i1.clone());
        s.set_fun("idf", vec![n2.clone()], i2.clone());
        s.set_rel("le", vec![i1.clone(), i1.clone()], true);
        s.set_rel("le", vec![i2.clone(), i2.clone()], true);
        s.set_rel("le", vec![i1, i2], true);
        s.set_rel("leader", vec![n1], true);
        s
    }

    #[test]
    fn from_structure_is_total() {
        let s = leader_state();
        let p = PartialStructure::from_structure(&s);
        // le: 4 tuples; leader: 2; idf viewed as 2-ary relation: 2*2 = 4.
        assert_eq!(p.fact_count(), 4 + 2 + 4);
        assert!(p.consistent_with(&s));
        assert_eq!(p.active_elements().len(), 4);
    }

    #[test]
    fn drop_element_removes_facts() {
        let s = leader_state();
        let mut p = PartialStructure::from_structure(&s);
        let n1 = Elem::new("node", 0);
        p.drop_element(&n1);
        assert!(!p.domain().contains(&n1));
        assert!(p.facts().iter().all(|f| !f.elements().contains(&&n1)));
        assert!(p.consistent_with(&s), "remaining facts still agree");
    }

    #[test]
    fn polarity_drops() {
        let s = leader_state();
        let mut p = PartialStructure::from_structure(&s);
        let leader = Sym::new("leader");
        p.drop_negative(&leader);
        let leader_facts: Vec<_> = p.facts().iter().filter(|f| f.symbol() == &leader).collect();
        assert_eq!(leader_facts.len(), 1);
        assert!(leader_facts[0].value());
        p.drop_positive(&leader);
        assert!(p.facts().iter().all(|f| f.symbol() != &leader));
    }

    #[test]
    fn generalization_order() {
        let s = leader_state();
        let total = PartialStructure::from_structure(&s);
        let mut gen = total.clone();
        gen.drop_symbol(&Sym::new("le"));
        assert!(gen.generalizes(&total));
        assert!(!total.generalizes(&gen));
        assert!(gen.generalizes(&gen), "reflexive");
        let mut gen2 = gen.clone();
        gen2.drop_element(&Elem::new("id", 0));
        assert!(gen2.generalizes(&gen));
        assert!(gen2.generalizes(&total), "transitive");
    }

    #[test]
    fn consistency_detects_disagreement() {
        let s = leader_state();
        let mut p = PartialStructure::empty_over(&s);
        p.define_rel("leader", vec![Elem::new("node", 1)], true);
        assert!(!p.consistent_with(&s), "node1 is not a leader in s");
    }

    #[test]
    #[should_panic(expected = "outside the domain")]
    fn define_checks_domain() {
        let s = leader_state();
        let mut p = PartialStructure::empty_over(&s);
        p.define_rel("leader", vec![Elem::new("node", 7)], true);
    }

    #[test]
    fn display_shows_facts() {
        let s = leader_state();
        let mut p = PartialStructure::empty_over(&s);
        p.define_rel("leader", vec![Elem::new("node", 0)], true);
        p.define_rel("leader", vec![Elem::new("node", 1)], false);
        let d = p.to_string();
        assert!(d.contains("leader(node0)"));
        assert!(d.contains("~leader(node1)"));
    }
}
