//! Formulas of sorted first-order logic (Figure 11 of the paper).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::term::Term;
use crate::{Signature, Sort, Sym};

/// A quantifier binding: a logical variable together with its sort.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Binding {
    /// The bound variable's name.
    pub var: Sym,
    /// The bound variable's sort.
    pub sort: Sort,
}

impl Binding {
    /// Creates a binding.
    pub fn new(var: impl Into<Sym>, sort: impl Into<Sort>) -> Self {
        Binding {
            var: var.into(),
            sort: sort.into(),
        }
    }
}

impl fmt::Display for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.var, self.sort)
    }
}

impl fmt::Debug for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A first-order formula.
///
/// Use the smart constructors ([`Formula::and`], [`Formula::or`],
/// [`Formula::not`], [`Formula::forall`], ...) rather than building variants
/// directly: they flatten nested conjunctions, drop trivial units and merge
/// adjacent quantifiers, keeping formulas small and displays readable.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Formula {
    /// The true constant.
    True,
    /// The false constant.
    False,
    /// Relation membership `r(t1, ..., tn)`.
    Rel(Sym, Vec<Term>),
    /// Equality between terms.
    Eq(Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction (empty = true).
    And(Vec<Formula>),
    /// N-ary disjunction (empty = false).
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Bi-implication.
    Iff(Box<Formula>, Box<Formula>),
    /// Universal quantification.
    Forall(Vec<Binding>, Box<Formula>),
    /// Existential quantification.
    Exists(Vec<Binding>, Box<Formula>),
}

impl Formula {
    /// Relation atom `r(args...)`.
    pub fn rel(name: impl Into<Sym>, args: impl IntoIterator<Item = Term>) -> Formula {
        Formula::Rel(name.into(), args.into_iter().collect())
    }

    /// Equality atom.
    pub fn eq(lhs: Term, rhs: Term) -> Formula {
        Formula::Eq(lhs, rhs)
    }

    /// Disequality `lhs ~= rhs`.
    pub fn neq(lhs: Term, rhs: Term) -> Formula {
        Formula::not(Formula::Eq(lhs, rhs))
    }

    /// Negation, simplifying double negations and constants.
    #[allow(clippy::should_implement_trait)] // static constructor, not ops::Not
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Flattening conjunction; drops `true` units and collapses to `false`
    /// when any conjunct is `false`.
    pub fn and(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.pop().expect("len checked"),
            _ => Formula::And(out),
        }
    }

    /// Flattening disjunction; drops `false` units and collapses to `true`
    /// when any disjunct is `true`.
    pub fn or(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.pop().expect("len checked"),
            _ => Formula::Or(out),
        }
    }

    /// Implication, simplifying constant operands.
    pub fn implies(lhs: Formula, rhs: Formula) -> Formula {
        match (&lhs, &rhs) {
            (Formula::True, _) => rhs,
            (Formula::False, _) => Formula::True,
            (_, Formula::True) => Formula::True,
            (_, Formula::False) => Formula::not(lhs),
            _ => Formula::Implies(Box::new(lhs), Box::new(rhs)),
        }
    }

    /// Bi-implication, simplifying constant operands.
    pub fn iff(lhs: Formula, rhs: Formula) -> Formula {
        match (&lhs, &rhs) {
            (Formula::True, _) => rhs,
            (_, Formula::True) => lhs,
            (Formula::False, _) => Formula::not(rhs),
            (_, Formula::False) => Formula::not(lhs),
            _ => Formula::Iff(Box::new(lhs), Box::new(rhs)),
        }
    }

    /// Universal quantification; merges with an immediately nested `forall`
    /// and is the identity on an empty binding list.
    pub fn forall(bindings: impl IntoIterator<Item = Binding>, body: Formula) -> Formula {
        let mut bindings: Vec<Binding> = bindings.into_iter().collect();
        if bindings.is_empty() {
            return body;
        }
        match body {
            Formula::Forall(inner, b) => {
                bindings.extend(inner);
                Formula::Forall(bindings, b)
            }
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            other => Formula::Forall(bindings, Box::new(other)),
        }
    }

    /// Existential quantification; merges with an immediately nested
    /// `exists` and is the identity on an empty binding list.
    pub fn exists(bindings: impl IntoIterator<Item = Binding>, body: Formula) -> Formula {
        let mut bindings: Vec<Binding> = bindings.into_iter().collect();
        if bindings.is_empty() {
            return body;
        }
        match body {
            Formula::Exists(inner, b) => {
                bindings.extend(inner);
                Formula::Exists(bindings, b)
            }
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            other => Formula::Exists(bindings, Box::new(other)),
        }
    }

    /// Pairwise disequality of the given terms (the paper's `distinct`).
    /// Only pairs are produced, so `distinct` of zero or one term is `true`.
    pub fn distinct(terms: &[Term]) -> Formula {
        let mut parts = Vec::new();
        for i in 0..terms.len() {
            for j in (i + 1)..terms.len() {
                parts.push(Formula::neq(terms[i].clone(), terms[j].clone()));
            }
        }
        Formula::and(parts)
    }

    /// Collects free variables; `bound` carries variables bound by enclosing
    /// quantifiers.
    pub fn collect_free_vars_into(&self, out: &mut BTreeSet<Sym>, bound: &mut BTreeSet<Sym>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Rel(_, args) => {
                for t in args {
                    collect_term_free(t, out, bound);
                }
            }
            Formula::Eq(a, b) => {
                collect_term_free(a, out, bound);
                collect_term_free(b, out, bound);
            }
            Formula::Not(f) => f.collect_free_vars_into(out, bound),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free_vars_into(out, bound);
                }
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.collect_free_vars_into(out, bound);
                b.collect_free_vars_into(out, bound);
            }
            Formula::Forall(bs, f) | Formula::Exists(bs, f) => {
                let newly: Vec<Sym> = bs
                    .iter()
                    .filter(|b| bound.insert(b.var))
                    .map(|b| b.var)
                    .collect();
                f.collect_free_vars_into(out, bound);
                for v in newly {
                    bound.remove(&v);
                }
            }
        }
    }

    /// The free logical variables of this formula.
    pub fn free_vars(&self) -> BTreeSet<Sym> {
        let mut out = BTreeSet::new();
        self.collect_free_vars_into(&mut out, &mut BTreeSet::new());
        out
    }

    /// Whether the formula is closed (a *sentence*).
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Whether the formula mentions relation/function symbol `name`.
    pub fn mentions_symbol(&self, name: &Sym) -> bool {
        match self {
            Formula::True | Formula::False => false,
            Formula::Rel(r, args) => r == name || args.iter().any(|t| t.mentions_symbol(name)),
            Formula::Eq(a, b) => a.mentions_symbol(name) || b.mentions_symbol(name),
            Formula::Not(f) => f.mentions_symbol(name),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().any(|f| f.mentions_symbol(name)),
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.mentions_symbol(name) || b.mentions_symbol(name)
            }
            Formula::Forall(_, f) | Formula::Exists(_, f) => f.mentions_symbol(name),
        }
    }

    /// The conjuncts of a top-level conjunction (a non-conjunction is its own
    /// single conjunct).
    pub fn conjuncts(&self) -> &[Formula] {
        match self {
            Formula::And(fs) => fs,
            _ => std::slice::from_ref(self),
        }
    }

    /// Checks well-sortedness of a formula whose free variables have the
    /// given sorts.
    ///
    /// # Errors
    ///
    /// Returns a [`SortError`] pinpointing the first ill-sorted subterm.
    pub fn well_sorted(
        &self,
        sig: &Signature,
        var_sorts: &BTreeMap<Sym, Sort>,
    ) -> Result<(), SortError> {
        match self {
            Formula::True | Formula::False => Ok(()),
            Formula::Rel(r, args) => {
                let decl = sig.relation(r).ok_or(SortError::UnknownRelation(*r))?;
                if decl.len() != args.len() {
                    return Err(SortError::ArityMismatch {
                        symbol: *r,
                        expected: decl.len(),
                        found: args.len(),
                    });
                }
                for (t, expected) in args.iter().zip(decl.to_vec()) {
                    let found = t
                        .sort(sig, var_sorts)
                        .ok_or_else(|| SortError::IllSortedTerm(t.clone()))?;
                    if found != expected {
                        return Err(SortError::SortMismatch {
                            term: t.clone(),
                            expected,
                            found,
                        });
                    }
                }
                Ok(())
            }
            Formula::Eq(a, b) => {
                let sa = a
                    .sort(sig, var_sorts)
                    .ok_or_else(|| SortError::IllSortedTerm(a.clone()))?;
                let sb = b
                    .sort(sig, var_sorts)
                    .ok_or_else(|| SortError::IllSortedTerm(b.clone()))?;
                if sa != sb {
                    return Err(SortError::SortMismatch {
                        term: b.clone(),
                        expected: sa,
                        found: sb,
                    });
                }
                Ok(())
            }
            Formula::Not(f) => f.well_sorted(sig, var_sorts),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().try_for_each(|f| f.well_sorted(sig, var_sorts))
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.well_sorted(sig, var_sorts)?;
                b.well_sorted(sig, var_sorts)
            }
            Formula::Forall(bs, f) | Formula::Exists(bs, f) => {
                let mut inner = var_sorts.clone();
                for b in bs {
                    if !sig.has_sort(&b.sort) {
                        return Err(SortError::UnknownSort(b.sort));
                    }
                    inner.insert(b.var, b.sort);
                }
                f.well_sorted(sig, &inner)
            }
        }
    }

    /// Counts the literal occurrences in this formula (atoms, each counted
    /// once per occurrence). This is the measure used for the `C` and `I`
    /// columns of the paper's Figure 14.
    pub fn literal_count(&self) -> usize {
        match self {
            Formula::True | Formula::False => 0,
            Formula::Rel(..) | Formula::Eq(..) => 1,
            Formula::Not(f) => f.literal_count(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().map(Formula::literal_count).sum(),
            Formula::Implies(a, b) | Formula::Iff(a, b) => a.literal_count() + b.literal_count(),
            Formula::Forall(_, f) | Formula::Exists(_, f) => f.literal_count(),
        }
    }
}

fn collect_term_free(t: &Term, out: &mut BTreeSet<Sym>, bound: &BTreeSet<Sym>) {
    match t {
        Term::Var(v) => {
            if !bound.contains(v) {
                out.insert(*v);
            }
        }
        Term::App(_, args) => {
            for a in args {
                collect_term_free(a, out, bound);
            }
        }
        Term::Ite(c, a, b) => {
            let mut inner_bound = bound.clone();
            c.collect_free_vars_into(out, &mut inner_bound);
            collect_term_free(a, out, bound);
            collect_term_free(b, out, bound);
        }
    }
}

/// Errors raised by sort checking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SortError {
    /// A relation symbol that is not declared in the signature.
    UnknownRelation(Sym),
    /// A sort that is not declared in the signature.
    UnknownSort(Sort),
    /// A symbol applied to the wrong number of arguments.
    ArityMismatch {
        /// The offending symbol.
        symbol: Sym,
        /// Declared arity.
        expected: usize,
        /// Arity at the use site.
        found: usize,
    },
    /// A term whose sort could not be inferred (unknown symbol or variable,
    /// or ill-sorted `ite`).
    IllSortedTerm(Term),
    /// A term of the wrong sort.
    SortMismatch {
        /// The offending term.
        term: Term,
        /// The sort required by context.
        expected: Sort,
        /// The term's actual sort.
        found: Sort,
    },
}

impl fmt::Display for SortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SortError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            SortError::UnknownSort(s) => write!(f, "unknown sort `{s}`"),
            SortError::ArityMismatch {
                symbol,
                expected,
                found,
            } => write!(
                f,
                "symbol `{symbol}` expects {expected} argument(s), found {found}"
            ),
            SortError::IllSortedTerm(t) => write!(f, "ill-sorted term `{t}`"),
            SortError::SortMismatch {
                term,
                expected,
                found,
            } => write!(
                f,
                "term `{term}` has sort `{found}` but sort `{expected}` is required"
            ),
        }
    }
}

impl std::error::Error for SortError {}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pretty::write_formula(f, self)
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Signature;

    fn sig() -> Signature {
        let mut sig = Signature::new();
        sig.add_sort("node").unwrap();
        sig.add_sort("id").unwrap();
        sig.add_function("idf", ["node"], "id").unwrap();
        sig.add_relation("le", ["id", "id"]).unwrap();
        sig.add_relation("leader", ["node"]).unwrap();
        sig.add_constant("n", "node").unwrap();
        sig
    }

    #[test]
    fn smart_and_flattens() {
        let f = Formula::and([
            Formula::True,
            Formula::and([Formula::rel("leader", [Term::var("X")]), Formula::True]),
        ]);
        assert_eq!(f, Formula::rel("leader", [Term::var("X")]));
        assert_eq!(Formula::and([]), Formula::True);
        assert_eq!(
            Formula::and([Formula::False, Formula::rel("leader", [Term::var("X")])]),
            Formula::False
        );
    }

    #[test]
    fn smart_or_flattens() {
        assert_eq!(Formula::or([]), Formula::False);
        assert_eq!(
            Formula::or([Formula::True, Formula::rel("leader", [Term::var("X")])]),
            Formula::True
        );
    }

    #[test]
    fn double_negation_cancels() {
        let atom = Formula::rel("leader", [Term::var("X")]);
        assert_eq!(Formula::not(Formula::not(atom.clone())), atom);
        assert_eq!(Formula::not(Formula::True), Formula::False);
    }

    #[test]
    fn quantifier_merging() {
        let body = Formula::rel("le", [Term::var("X"), Term::var("Y")]);
        let f = Formula::forall(
            [Binding::new("X", "id")],
            Formula::forall([Binding::new("Y", "id")], body),
        );
        match f {
            Formula::Forall(bs, _) => assert_eq!(bs.len(), 2),
            other => panic!("expected merged forall, got {other}"),
        }
    }

    #[test]
    fn free_vars_respect_binders() {
        let f = Formula::forall(
            [Binding::new("X", "node")],
            Formula::and([
                Formula::rel("leader", [Term::var("X")]),
                Formula::rel("leader", [Term::var("Y")]),
            ]),
        );
        let fv = f.free_vars();
        assert!(fv.contains(&Sym::new("Y")));
        assert!(!fv.contains(&Sym::new("X")));
        assert!(!f.is_closed());
    }

    #[test]
    fn distinct_is_pairwise() {
        let terms = [Term::var("X"), Term::var("Y"), Term::var("Z")];
        let f = Formula::distinct(&terms);
        assert_eq!(f.conjuncts().len(), 3);
        assert_eq!(Formula::distinct(&terms[..1]), Formula::True);
    }

    #[test]
    fn well_sorted_accepts_good_formula() {
        let sig = sig();
        let f = Formula::forall(
            [Binding::new("X", "node"), Binding::new("Y", "node")],
            Formula::rel(
                "le",
                [
                    Term::app("idf", [Term::var("X")]),
                    Term::app("idf", [Term::var("Y")]),
                ],
            ),
        );
        f.well_sorted(&sig, &BTreeMap::new()).unwrap();
    }

    #[test]
    fn well_sorted_rejects_bad_sort() {
        let sig = sig();
        // le expects ids, given a node.
        let f = Formula::forall(
            [Binding::new("X", "node")],
            Formula::rel("le", [Term::var("X"), Term::var("X")]),
        );
        assert!(matches!(
            f.well_sorted(&sig, &BTreeMap::new()),
            Err(SortError::SortMismatch { .. })
        ));
    }

    #[test]
    fn well_sorted_rejects_arity() {
        let sig = sig();
        let f = Formula::rel("leader", [Term::cst("n"), Term::cst("n")]);
        assert!(matches!(
            f.well_sorted(&sig, &BTreeMap::new()),
            Err(SortError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn eq_requires_same_sort() {
        let sig = sig();
        let f = Formula::eq(Term::cst("n"), Term::app("idf", [Term::cst("n")]));
        assert!(f.well_sorted(&sig, &BTreeMap::new()).is_err());
    }

    #[test]
    fn literal_count_matches_paper_style() {
        // C1 = forall N1,N2. ~(N1 ~= N2 & leader(N1) & le(id(N1), id(N2)))
        // has 3 literals.
        let c1 = Formula::forall(
            [Binding::new("N1", "node"), Binding::new("N2", "node")],
            Formula::not(Formula::and([
                Formula::neq(Term::var("N1"), Term::var("N2")),
                Formula::rel("leader", [Term::var("N1")]),
                Formula::rel(
                    "le",
                    [
                        Term::app("idf", [Term::var("N1")]),
                        Term::app("idf", [Term::var("N2")]),
                    ],
                ),
            ])),
        );
        assert_eq!(c1.literal_count(), 3);
    }

    #[test]
    fn mentions_symbol_sees_through_terms() {
        let f = Formula::eq(Term::app("idf", [Term::cst("n")]), Term::var("X"));
        assert!(f.mentions_symbol(&Sym::new("idf")));
        assert!(f.mentions_symbol(&Sym::new("n")));
        assert!(!f.mentions_symbol(&Sym::new("le")));
    }
}
