//! A recursive-descent parser for the concrete formula/term syntax printed
//! by [`crate::pretty`].
//!
//! Grammar (loosest first):
//!
//! ```text
//! formula  ::= 'forall' bindings '.' formula
//!            | 'exists' bindings '.' formula
//!            | iff
//! iff      ::= implies ('<->' implies)*
//! implies  ::= or ('->' implies)?          (right associative)
//! or       ::= and ('|' and)*
//! and      ::= unary ('&' unary)*
//! unary    ::= '~' unary | atom
//! atom     ::= 'true' | 'false' | '(' formula ')'
//!            | term ('=' term | '~=' term)?
//! term     ::= 'ite' '(' formula ',' term ',' term ')'
//!            | ident ('(' term (',' term)* ')')?
//! bindings ::= ident ':' ident (',' ident ':' ident)*
//! ```
//!
//! An identifier alone (`p`) parses as a nullary relation atom when in
//! formula position; sort checking later distinguishes misuse.

use std::fmt;

use crate::formula::{Binding, Formula};
use crate::term::Term;
use crate::Sym;

/// A parse error with byte position and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error occurred.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a formula from its concrete syntax.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
///
/// # Examples
///
/// ```
/// use ivy_fol::parse_formula;
/// let f = parse_formula("forall X:node. leader(X) -> ~pnd(idf(X), X)")?;
/// assert!(f.is_closed());
/// # Ok::<(), ivy_fol::ParseError>(())
/// ```
pub fn parse_formula(input: &str) -> Result<Formula, ParseError> {
    let mut p = Parser::new(input);
    let f = p.formula()?;
    p.expect_eof()?;
    Ok(f)
}

/// Parses a term from its concrete syntax.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn parse_term(input: &str) -> Result<Term, ParseError> {
    let mut p = Parser::new(input);
    let t = p.term()?;
    p.expect_eof()?;
    Ok(t)
}

/// Parses the longest formula prefix of `input`; returns the formula and the
/// byte offset where parsing stopped (start of the first unconsumed token).
/// Used by the RML program parser to embed formulas without terminators.
///
/// # Errors
///
/// Returns a [`ParseError`] when no formula prefix parses.
pub fn parse_formula_prefix(input: &str) -> Result<(Formula, usize), ParseError> {
    let mut p = Parser::new_prefix(input);
    let f = p.formula()?;
    Ok((f, p.tok_pos))
}

/// Parses the longest term prefix of `input`; returns the term and the byte
/// offset where parsing stopped.
///
/// # Errors
///
/// Returns a [`ParseError`] when no term prefix parses.
pub fn parse_term_prefix(input: &str) -> Result<(Term, usize), ParseError> {
    let mut p = Parser::new_prefix(input);
    let t = p.term()?;
    Ok((t, p.tok_pos))
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Colon,
    Eq,
    Neq,
    Not,
    And,
    Or,
    Arrow,
    DArrow,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tok::Ident(s) => return write!(f, "`{s}`"),
            Tok::LParen => "`(`",
            Tok::RParen => "`)`",
            Tok::Comma => "`,`",
            Tok::Dot => "`.`",
            Tok::Colon => "`:`",
            Tok::Eq => "`=`",
            Tok::Neq => "`~=`",
            Tok::Not => "`~`",
            Tok::And => "`&`",
            Tok::Or => "`|`",
            Tok::Arrow => "`->`",
            Tok::DArrow => "`<->`",
            Tok::Eof => "end of input",
        };
        f.write_str(s)
    }
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
    tok: Tok,
    tok_pos: usize,
    /// In prefix mode, a character the lexer does not know (`;`, `{`, ...)
    /// ends the token stream instead of erroring.
    stop_on_unknown: bool,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Self::with_mode(src, false)
    }

    fn new_prefix(src: &'a str) -> Self {
        Self::with_mode(src, true)
    }

    fn with_mode(src: &'a str, stop_on_unknown: bool) -> Self {
        let mut p = Parser {
            src,
            pos: 0,
            tok: Tok::Eof,
            tok_pos: 0,
            stop_on_unknown,
        };
        // The constructor input is lexed lazily; an error surfaces on first use.
        if let Err(e) = p.bump() {
            p.tok = Tok::Ident(format!("\u{0}lex-error:{}", e.msg));
        }
        p
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            pos: self.tok_pos,
            msg: msg.into(),
        })
    }

    fn bump(&mut self) -> Result<(), ParseError> {
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() && (bytes[self.pos] as char).is_whitespace() {
            self.pos += 1;
        }
        // Line comments start with `#`.
        if self.pos < bytes.len() && bytes[self.pos] == b'#' {
            while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
                self.pos += 1;
            }
            return self.bump();
        }
        self.tok_pos = self.pos;
        if self.pos >= bytes.len() {
            self.tok = Tok::Eof;
            return Ok(());
        }
        let c = bytes[self.pos] as char;
        self.tok = match c {
            '(' => {
                self.pos += 1;
                Tok::LParen
            }
            ')' => {
                self.pos += 1;
                Tok::RParen
            }
            ',' => {
                self.pos += 1;
                Tok::Comma
            }
            '.' => {
                self.pos += 1;
                Tok::Dot
            }
            ':' => {
                self.pos += 1;
                Tok::Colon
            }
            '=' => {
                self.pos += 1;
                Tok::Eq
            }
            '&' => {
                self.pos += 1;
                Tok::And
            }
            '|' => {
                self.pos += 1;
                Tok::Or
            }
            '~' => {
                if bytes.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Tok::Neq
                } else {
                    self.pos += 1;
                    Tok::Not
                }
            }
            '-' => {
                if bytes.get(self.pos + 1) == Some(&b'>') {
                    self.pos += 2;
                    Tok::Arrow
                } else {
                    if self.stop_on_unknown {
                        self.tok = Tok::Eof;
                        return Ok(());
                    }
                    return Err(ParseError {
                        pos: self.pos,
                        msg: "expected `->`".into(),
                    });
                }
            }
            '<' => {
                if self.src[self.pos..].starts_with("<->") {
                    self.pos += 3;
                    Tok::DArrow
                } else {
                    if self.stop_on_unknown {
                        self.tok = Tok::Eof;
                        return Ok(());
                    }
                    return Err(ParseError {
                        pos: self.pos,
                        msg: "expected `<->`".into(),
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = self.pos;
                while self.pos < bytes.len() {
                    let c = bytes[self.pos] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '\'' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Tok::Ident(self.src[start..self.pos].to_string())
            }
            other => {
                if self.stop_on_unknown {
                    self.tok = Tok::Eof;
                    return Ok(());
                }
                return Err(ParseError {
                    pos: self.pos,
                    msg: format!("unexpected character `{other}`"),
                });
            }
        };
        Ok(())
    }

    fn eat(&mut self, tok: &Tok) -> Result<bool, ParseError> {
        if &self.tok == tok {
            self.bump()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), ParseError> {
        if &self.tok == tok {
            self.bump()
        } else {
            self.err(format!("expected {tok}, found {}", self.tok))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.tok == Tok::Eof {
            Ok(())
        } else {
            self.err(format!("trailing input: {}", self.tok))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.tok.clone() {
            Tok::Ident(s) => {
                self.bump()?;
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        if let Tok::Ident(kw) = &self.tok {
            if kw == "forall" || kw == "exists" {
                let is_forall = kw == "forall";
                self.bump()?;
                let mut bindings = Vec::new();
                loop {
                    let var = self.ident()?;
                    self.expect(&Tok::Colon)?;
                    let sort = self.ident()?;
                    bindings.push(Binding::new(var, sort.as_str()));
                    if !self.eat(&Tok::Comma)? {
                        break;
                    }
                }
                self.expect(&Tok::Dot)?;
                let body = self.formula()?;
                return Ok(if is_forall {
                    Formula::forall(bindings, body)
                } else {
                    Formula::exists(bindings, body)
                });
            }
        }
        self.iff()
    }

    fn iff(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.implies()?;
        while self.eat(&Tok::DArrow)? {
            let rhs = self.implies()?;
            lhs = Formula::iff(lhs, rhs);
        }
        Ok(lhs)
    }

    fn implies(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.or()?;
        if self.eat(&Tok::Arrow)? {
            let rhs = self.implies()?;
            Ok(Formula::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.and()?];
        while self.eat(&Tok::Or)? {
            parts.push(self.and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Formula::or(parts)
        })
    }

    fn and(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.unary()?];
        while self.eat(&Tok::And)? {
            parts.push(self.unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Formula::and(parts)
        })
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        if self.eat(&Tok::Not)? {
            let f = self.unary()?;
            return Ok(Formula::not(f));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Formula, ParseError> {
        match self.tok.clone() {
            Tok::LParen => {
                self.bump()?;
                let f = self.formula()?;
                self.expect(&Tok::RParen)?;
                // A parenthesised term followed by `=`/`~=` is not supported;
                // terms never need parens in this grammar.
                Ok(f)
            }
            Tok::Ident(kw) if kw == "true" => {
                self.bump()?;
                Ok(Formula::True)
            }
            Tok::Ident(kw) if kw == "false" => {
                self.bump()?;
                Ok(Formula::False)
            }
            Tok::Ident(_) => {
                let t = self.term()?;
                if self.eat(&Tok::Eq)? {
                    let rhs = self.term()?;
                    Ok(Formula::eq(t, rhs))
                } else if self.eat(&Tok::Neq)? {
                    let rhs = self.term()?;
                    Ok(Formula::neq(t, rhs))
                } else {
                    // A bare application in formula position is a relation atom.
                    match t {
                        Term::App(name, args) => Ok(Formula::Rel(name, args)),
                        Term::Var(name) => Ok(Formula::Rel(name, Vec::new())),
                        Term::Ite(..) => self.err("`ite` term cannot be used as a formula"),
                    }
                }
            }
            other => self.err(format!("expected formula, found {other}")),
        }
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let name = self.ident()?;
        if name == "ite" {
            self.expect(&Tok::LParen)?;
            let cond = self.formula()?;
            self.expect(&Tok::Comma)?;
            let then = self.term()?;
            self.expect(&Tok::Comma)?;
            let els = self.term()?;
            self.expect(&Tok::RParen)?;
            return Ok(Term::ite(cond, then, els));
        }
        if self.eat(&Tok::LParen)? {
            let mut args = vec![self.term()?];
            while self.eat(&Tok::Comma)? {
                args.push(self.term()?);
            }
            self.expect(&Tok::RParen)?;
            Ok(Term::App(Sym::new(name), args))
        } else {
            // Convention: identifiers starting with an uppercase letter are
            // logical variables, everything else is a constant (the paper's
            // figures use lowercase `n1, n2`; our concrete syntax follows the
            // Ivy/mypyvy convention of capitalised variables instead).
            if name.starts_with(|c: char| c.is_ascii_uppercase()) {
                Ok(Term::var(name))
            } else {
                Ok(Term::cst(name))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_c1() {
        let src = "forall N1:node, N2:node. ~(N1 ~= N2 & leader(N1) & le(idf(N1), idf(N2)))";
        let f = parse_formula(src).unwrap();
        assert_eq!(f.to_string(), src);
    }

    #[test]
    fn round_trip_operators() {
        for src in [
            "p & q | r",
            "p -> q -> r",
            "(p -> q) -> r",
            "p <-> q",
            "~p & q",
            "~(p & q)",
            "a = b",
            "a ~= b",
            "exists X:s. forall Y:s. r(X, Y)",
        ] {
            let f = parse_formula(src).unwrap();
            assert_eq!(f.to_string(), src, "round-trip failed for {src}");
        }
    }

    #[test]
    fn case_convention_distinguishes_vars() {
        let f = parse_formula("le(X, c)").unwrap();
        assert_eq!(f, Formula::rel("le", [Term::var("X"), Term::cst("c")]));
    }

    #[test]
    fn ite_parses() {
        let t = parse_term("ite(r(X), X, f(c))").unwrap();
        assert_eq!(t.to_string(), "ite(r(X), X, f(c))");
    }

    #[test]
    fn comments_skipped() {
        let f = parse_formula("p & # comment\n q").unwrap();
        assert_eq!(f.to_string(), "p & q");
    }

    #[test]
    fn errors_carry_position() {
        let e = parse_formula("p & &").unwrap_err();
        assert_eq!(e.pos, 4);
        assert!(parse_formula("forall X. p").is_err(), "missing sort");
        assert!(parse_formula("p q").is_err(), "trailing input");
        assert!(parse_formula("").is_err(), "empty input");
    }

    #[test]
    fn quantifier_scopes_to_the_right() {
        let f = parse_formula("forall X:s. p(X) -> q(X)").unwrap();
        match f {
            Formula::Forall(_, body) => {
                assert!(matches!(*body, Formula::Implies(..)));
            }
            other => panic!("expected forall, got {other}"),
        }
    }
}
