//! Pretty printing of terms and formulas.
//!
//! The concrete syntax round-trips with [`crate::parser`]:
//!
//! ```text
//! forall N1:node, N2:node. ~(N1 ~= N2 & leader(N1) & le(idf(N1), idf(N2)))
//! ```
//!
//! Operator precedence, loosest first: quantifiers, `<->`, `->` (right
//! associative), `|`, `&`, `~`, atoms.

use std::fmt;

use crate::formula::Formula;
use crate::term::Term;

/// Writes a term in concrete syntax.
pub fn write_term(f: &mut fmt::Formatter<'_>, t: &Term) -> fmt::Result {
    match t {
        Term::Var(v) => write!(f, "{v}"),
        Term::App(name, args) => {
            write!(f, "{name}")?;
            if !args.is_empty() {
                write!(f, "(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write_term(f, a)?;
                }
                write!(f, ")")?;
            }
            Ok(())
        }
        Term::Ite(c, a, b) => {
            write!(f, "ite(")?;
            write_prec(f, c, 0)?;
            write!(f, ", ")?;
            write_term(f, a)?;
            write!(f, ", ")?;
            write_term(f, b)?;
            write!(f, ")")
        }
    }
}

/// Writes a formula in concrete syntax.
pub fn write_formula(f: &mut fmt::Formatter<'_>, phi: &Formula) -> fmt::Result {
    write_prec(f, phi, 0)
}

const PREC_QUANT: u8 = 0;
const PREC_IFF: u8 = 1;
const PREC_IMPLIES: u8 = 2;
const PREC_OR: u8 = 3;
const PREC_AND: u8 = 4;
const PREC_NOT: u8 = 5;

fn prec_of(phi: &Formula) -> u8 {
    match phi {
        Formula::Forall(..) | Formula::Exists(..) => PREC_QUANT,
        Formula::Iff(..) => PREC_IFF,
        Formula::Implies(..) => PREC_IMPLIES,
        Formula::Or(..) => PREC_OR,
        Formula::And(..) => PREC_AND,
        Formula::Not(..) => PREC_NOT,
        _ => u8::MAX,
    }
}

fn write_prec(f: &mut fmt::Formatter<'_>, phi: &Formula, min: u8) -> fmt::Result {
    let own = prec_of(phi);
    let parens = own < min;
    if parens {
        write!(f, "(")?;
    }
    match phi {
        Formula::True => write!(f, "true")?,
        Formula::False => write!(f, "false")?,
        Formula::Rel(name, args) => {
            write!(f, "{name}")?;
            if !args.is_empty() {
                write!(f, "(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write_term(f, a)?;
                }
                write!(f, ")")?;
            }
        }
        Formula::Eq(a, b) => {
            write_term(f, a)?;
            write!(f, " = ")?;
            write_term(f, b)?;
        }
        Formula::Not(inner) => {
            // Print `a ~= b` for negated equalities.
            if let Formula::Eq(a, b) = inner.as_ref() {
                write_term(f, a)?;
                write!(f, " ~= ")?;
                write_term(f, b)?;
            } else {
                write!(f, "~")?;
                write_prec(f, inner, PREC_NOT + 1)?;
            }
        }
        Formula::And(fs) => write_nary(f, fs, " & ", PREC_AND)?,
        Formula::Or(fs) => write_nary(f, fs, " | ", PREC_OR)?,
        Formula::Implies(a, b) => {
            write_prec(f, a, PREC_IMPLIES + 1)?;
            write!(f, " -> ")?;
            write_prec(f, b, PREC_IMPLIES)?;
        }
        Formula::Iff(a, b) => {
            write_prec(f, a, PREC_IFF + 1)?;
            write!(f, " <-> ")?;
            write_prec(f, b, PREC_IFF + 1)?;
        }
        Formula::Forall(bs, body) | Formula::Exists(bs, body) => {
            let kw = if matches!(phi, Formula::Forall(..)) {
                "forall"
            } else {
                "exists"
            };
            write!(f, "{kw} ")?;
            for (i, b) in bs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}:{}", b.var, b.sort)?;
            }
            write!(f, ". ")?;
            write_prec(f, body, PREC_QUANT)?;
        }
    }
    if parens {
        write!(f, ")")?;
    }
    Ok(())
}

fn write_nary(f: &mut fmt::Formatter<'_>, fs: &[Formula], op: &str, prec: u8) -> fmt::Result {
    debug_assert!(!fs.is_empty(), "smart constructors never build empty n-ary");
    for (i, phi) in fs.iter().enumerate() {
        if i > 0 {
            write!(f, "{op}")?;
        }
        write_prec(f, phi, prec + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::formula::{Binding, Formula};
    use crate::term::Term;

    #[test]
    fn prints_paper_conjecture_c1() {
        let c1 = Formula::forall(
            [Binding::new("N1", "node"), Binding::new("N2", "node")],
            Formula::not(Formula::and([
                Formula::neq(Term::var("N1"), Term::var("N2")),
                Formula::rel("leader", [Term::var("N1")]),
                Formula::rel(
                    "le",
                    [
                        Term::app("idf", [Term::var("N1")]),
                        Term::app("idf", [Term::var("N2")]),
                    ],
                ),
            ])),
        );
        assert_eq!(
            c1.to_string(),
            "forall N1:node, N2:node. ~(N1 ~= N2 & leader(N1) & le(idf(N1), idf(N2)))"
        );
    }

    #[test]
    fn implication_is_right_associative() {
        let a = || Formula::rel("p", []);
        let f = Formula::implies(a(), Formula::implies(a(), a()));
        assert_eq!(f.to_string(), "p -> p -> p");
        let g = Formula::Implies(Box::new(Formula::implies(a(), a())), Box::new(a()));
        assert_eq!(g.to_string(), "(p -> p) -> p");
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let p = || Formula::rel("p", []);
        let q = || Formula::rel("q", []);
        let f = Formula::or([Formula::and([p(), q()]), q()]);
        assert_eq!(f.to_string(), "p & q | q");
        let g = Formula::And(vec![Formula::Or(vec![p(), q()]), q()]);
        assert_eq!(g.to_string(), "(p | q) & q");
    }

    #[test]
    fn ite_term_prints() {
        let t = Term::ite(
            Formula::rel("r", [Term::var("X")]),
            Term::var("X"),
            Term::cst("c"),
        );
        assert_eq!(t.to_string(), "ite(r(X), X, c)");
    }

    #[test]
    fn quantifier_in_operand_gets_parens() {
        let inner = Formula::forall(
            [Binding::new("X", "s")],
            Formula::rel("r", [Term::var("X")]),
        );
        let f = Formula::and([inner, Formula::rel("p", [])]);
        assert_eq!(f.to_string(), "(forall X:s. r(X)) & p");
    }
}
