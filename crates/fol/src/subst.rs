//! Substitution machinery.
//!
//! Four operations, all needed by the weakest-precondition operator of
//! Figure 13:
//!
//! * [`subst_vars`]: capture-avoiding substitution of logical variables by
//!   terms (Hoare's assignment rule instantiation).
//! * [`subst_constant`]: replace a nullary function symbol (program variable)
//!   by a term — used by `wp(v := *, Q)`.
//! * [`rewrite_relation`]: replace every atom `r(s̄)` by `ϕ[s̄/x̄]` — used by
//!   `wp(r(x̄) := ϕ, Q) = (A → Q)[ϕ(s̄)/r(s̄)]`.
//! * [`rewrite_function`]: replace every term `f(s̄)` by `t[s̄/x̄]`
//!   *simultaneously* (occurrences of `f` inside the update body are not
//!   rewritten again) — used by `wp(f(x̄) := t, Q)`.

use std::collections::{BTreeMap, BTreeSet};

use crate::formula::Formula;
use crate::term::Term;
use crate::Sym;

/// Returns a name based on `base` that does not occur in `used`, inserting it
/// into `used`.
pub fn fresh_name(base: &str, used: &mut BTreeSet<Sym>) -> Sym {
    let candidate = Sym::new(base);
    if !used.contains(&candidate) {
        used.insert(candidate);
        return candidate;
    }
    for i in 1.. {
        let candidate = Sym::new(format!("{base}_{i}"));
        if !used.contains(&candidate) {
            used.insert(candidate);
            return candidate;
        }
    }
    unreachable!("fresh name search is unbounded")
}

/// Collects every variable name occurring in `f`, free or bound.
pub fn all_var_names(f: &Formula, out: &mut BTreeSet<Sym>) {
    match f {
        Formula::True | Formula::False => {}
        Formula::Rel(_, args) => args.iter().for_each(|t| t.collect_vars(out)),
        Formula::Eq(a, b) => {
            a.collect_vars(out);
            b.collect_vars(out);
        }
        Formula::Not(g) => all_var_names(g, out),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|g| all_var_names(g, out)),
        Formula::Implies(a, b) | Formula::Iff(a, b) => {
            all_var_names(a, out);
            all_var_names(b, out);
        }
        Formula::Forall(bs, g) | Formula::Exists(bs, g) => {
            out.extend(bs.iter().map(|b| b.var));
            all_var_names(g, out);
        }
    }
}

/// The original tree-walking implementations, kept verbatim as the
/// executable specification for the interned fast path (property tests
/// compare the two; the bench baselines call these directly).
pub mod reference {
    use std::collections::{BTreeMap, BTreeSet};

    use crate::formula::{Binding, Formula};
    use crate::term::Term;
    use crate::Sym;

    /// Substitutes logical variables in a term.
    pub fn subst_term_vars(t: &Term, map: &BTreeMap<Sym, Term>) -> Term {
        match t {
            Term::Var(v) => map.get(v).cloned().unwrap_or_else(|| t.clone()),
            Term::App(f, args) => {
                Term::App(*f, args.iter().map(|a| subst_term_vars(a, map)).collect())
            }
            Term::Ite(c, a, b) => Term::Ite(
                Box::new(subst_vars(c, map)),
                Box::new(subst_term_vars(a, map)),
                Box::new(subst_term_vars(b, map)),
            ),
        }
    }

    /// Capture-avoiding substitution of logical variables by terms.
    pub fn subst_vars(f: &Formula, map: &BTreeMap<Sym, Term>) -> Formula {
        if map.is_empty() {
            return f.clone();
        }
        match f {
            Formula::True | Formula::False => f.clone(),
            Formula::Rel(r, args) => {
                Formula::Rel(*r, args.iter().map(|t| subst_term_vars(t, map)).collect())
            }
            Formula::Eq(a, b) => Formula::Eq(subst_term_vars(a, map), subst_term_vars(b, map)),
            Formula::Not(g) => Formula::Not(Box::new(subst_vars(g, map))),
            Formula::And(fs) => Formula::And(fs.iter().map(|g| subst_vars(g, map)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|g| subst_vars(g, map)).collect()),
            Formula::Implies(a, b) => {
                Formula::Implies(Box::new(subst_vars(a, map)), Box::new(subst_vars(b, map)))
            }
            Formula::Iff(a, b) => {
                Formula::Iff(Box::new(subst_vars(a, map)), Box::new(subst_vars(b, map)))
            }
            Formula::Forall(bs, body) => {
                let (bs, body) = subst_under_binders(bs, body, map);
                Formula::Forall(bs, Box::new(body))
            }
            Formula::Exists(bs, body) => {
                let (bs, body) = subst_under_binders(bs, body, map);
                Formula::Exists(bs, Box::new(body))
            }
        }
    }

    fn subst_under_binders(
        bs: &[Binding],
        body: &Formula,
        map: &BTreeMap<Sym, Term>,
    ) -> (Vec<Binding>, Formula) {
        // Drop mappings shadowed by the binders.
        let mut inner: BTreeMap<Sym, Term> = map
            .iter()
            .filter(|(k, _)| !bs.iter().any(|b| &b.var == *k))
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        if inner.is_empty() {
            return (bs.to_vec(), body.clone());
        }
        // Rename binders that would capture variables of the replacement terms.
        let mut replacement_vars = BTreeSet::new();
        for t in inner.values() {
            t.collect_vars(&mut replacement_vars);
        }
        let mut used = replacement_vars.clone();
        super::all_var_names(body, &mut used);
        used.extend(inner.keys().cloned());
        let mut new_bs = Vec::with_capacity(bs.len());
        for b in bs {
            if replacement_vars.contains(&b.var) {
                let fresh = super::fresh_name(b.var.as_str(), &mut used);
                inner.insert(b.var, Term::Var(fresh));
                new_bs.push(Binding::new(fresh, b.sort));
            } else {
                new_bs.push(b.clone());
            }
        }
        (new_bs, subst_vars(body, &inner))
    }

    /// Replaces the nullary function symbol (program variable) `name` by `term`,
    /// renaming any binder that would capture a variable of `term`.
    pub fn subst_constant(f: &Formula, name: &Sym, term: &Term) -> Formula {
        let mut term_vars = BTreeSet::new();
        term.collect_vars(&mut term_vars);
        subst_constant_inner(f, name, term, &term_vars)
    }

    fn subst_constant_term(t: &Term, name: &Sym, term: &Term, tvars: &BTreeSet<Sym>) -> Term {
        match t {
            Term::Var(_) => t.clone(),
            Term::App(g, args) if g == name && args.is_empty() => term.clone(),
            Term::App(g, args) => Term::App(
                *g,
                args.iter()
                    .map(|a| subst_constant_term(a, name, term, tvars))
                    .collect(),
            ),
            Term::Ite(c, a, b) => Term::Ite(
                Box::new(subst_constant_inner(c, name, term, tvars)),
                Box::new(subst_constant_term(a, name, term, tvars)),
                Box::new(subst_constant_term(b, name, term, tvars)),
            ),
        }
    }

    fn subst_constant_inner(
        f: &Formula,
        name: &Sym,
        term: &Term,
        tvars: &BTreeSet<Sym>,
    ) -> Formula {
        match f {
            Formula::True | Formula::False => f.clone(),
            Formula::Rel(r, args) => Formula::Rel(
                *r,
                args.iter()
                    .map(|t| subst_constant_term(t, name, term, tvars))
                    .collect(),
            ),
            Formula::Eq(a, b) => Formula::Eq(
                subst_constant_term(a, name, term, tvars),
                subst_constant_term(b, name, term, tvars),
            ),
            Formula::Not(g) => Formula::Not(Box::new(subst_constant_inner(g, name, term, tvars))),
            Formula::And(fs) => Formula::And(
                fs.iter()
                    .map(|g| subst_constant_inner(g, name, term, tvars))
                    .collect(),
            ),
            Formula::Or(fs) => Formula::Or(
                fs.iter()
                    .map(|g| subst_constant_inner(g, name, term, tvars))
                    .collect(),
            ),
            Formula::Implies(a, b) => Formula::Implies(
                Box::new(subst_constant_inner(a, name, term, tvars)),
                Box::new(subst_constant_inner(b, name, term, tvars)),
            ),
            Formula::Iff(a, b) => Formula::Iff(
                Box::new(subst_constant_inner(a, name, term, tvars)),
                Box::new(subst_constant_inner(b, name, term, tvars)),
            ),
            Formula::Forall(bs, body) | Formula::Exists(bs, body) => {
                if !f.mentions_symbol(name) {
                    return f.clone();
                }
                // Rename binders that collide with the replacement term's
                // variables, then recurse.
                let needs_rename = bs.iter().any(|b| tvars.contains(&b.var));
                let (bs, body) = if needs_rename {
                    let mut used = tvars.clone();
                    super::all_var_names(body, &mut used);
                    let mut renames = BTreeMap::new();
                    let mut new_bs = Vec::with_capacity(bs.len());
                    for b in bs {
                        if tvars.contains(&b.var) {
                            let fresh = super::fresh_name(b.var.as_str(), &mut used);
                            renames.insert(b.var, Term::Var(fresh));
                            new_bs.push(Binding::new(fresh, b.sort));
                        } else {
                            new_bs.push(b.clone());
                        }
                    }
                    (new_bs, subst_vars(body, &renames))
                } else {
                    (bs.clone(), body.as_ref().clone())
                };
                let new_body = Box::new(subst_constant_inner(&body, name, term, tvars));
                match f {
                    Formula::Forall(..) => Formula::Forall(bs, new_body),
                    _ => Formula::Exists(bs, new_body),
                }
            }
        }
    }

    /// Replaces every atom `r(s̄)` in `f` by `body[s̄/params]`.
    ///
    /// `body` must be quantifier-free (as RML's update formulas are), so no
    /// capture can occur. Argument terms are rewritten first, which matters when
    /// they contain `ite` conditions mentioning `r`.
    pub fn rewrite_relation(f: &Formula, rel: &Sym, params: &[Sym], body: &Formula) -> Formula {
        match f {
            Formula::True | Formula::False => f.clone(),
            Formula::Rel(r, args) => {
                let args: Vec<Term> = args
                    .iter()
                    .map(|t| rewrite_relation_term(t, rel, params, body))
                    .collect();
                if r == rel {
                    debug_assert_eq!(args.len(), params.len(), "arity checked upstream");
                    let map: BTreeMap<Sym, Term> = params.iter().cloned().zip(args).collect();
                    subst_vars(body, &map)
                } else {
                    Formula::Rel(*r, args)
                }
            }
            Formula::Eq(a, b) => Formula::Eq(
                rewrite_relation_term(a, rel, params, body),
                rewrite_relation_term(b, rel, params, body),
            ),
            Formula::Not(g) => Formula::Not(Box::new(rewrite_relation(g, rel, params, body))),
            Formula::And(fs) => Formula::And(
                fs.iter()
                    .map(|g| rewrite_relation(g, rel, params, body))
                    .collect(),
            ),
            Formula::Or(fs) => Formula::Or(
                fs.iter()
                    .map(|g| rewrite_relation(g, rel, params, body))
                    .collect(),
            ),
            Formula::Implies(a, b) => Formula::Implies(
                Box::new(rewrite_relation(a, rel, params, body)),
                Box::new(rewrite_relation(b, rel, params, body)),
            ),
            Formula::Iff(a, b) => Formula::Iff(
                Box::new(rewrite_relation(a, rel, params, body)),
                Box::new(rewrite_relation(b, rel, params, body)),
            ),
            Formula::Forall(bs, g) => {
                let (bs, g) = rewrite_rel_under_binders(bs, g, rel, params, body);
                Formula::Forall(bs, Box::new(g))
            }
            Formula::Exists(bs, g) => {
                let (bs, g) = rewrite_rel_under_binders(bs, g, rel, params, body);
                Formula::Exists(bs, Box::new(g))
            }
        }
    }

    fn rewrite_rel_under_binders(
        bs: &[Binding],
        g: &Formula,
        rel: &Sym,
        params: &[Sym],
        body: &Formula,
    ) -> (Vec<Binding>, Formula) {
        // `body`'s free variables are `params`, which get fully replaced, so the
        // only capture risk is a binder shadowing a *free* variable of `body`
        // beyond params. RML guarantees body's free vars ⊆ params, but we stay
        // defensive: rename binders clashing with body's non-param free vars.
        let mut body_free = body.free_vars();
        for p in params {
            body_free.remove(p);
        }
        if bs.iter().any(|b| body_free.contains(&b.var)) {
            let mut used = body_free.clone();
            super::all_var_names(g, &mut used);
            let mut renames = BTreeMap::new();
            let mut new_bs = Vec::with_capacity(bs.len());
            for b in bs {
                if body_free.contains(&b.var) {
                    let fresh = super::fresh_name(b.var.as_str(), &mut used);
                    renames.insert(b.var, Term::Var(fresh));
                    new_bs.push(Binding::new(fresh, b.sort));
                } else {
                    new_bs.push(b.clone());
                }
            }
            let g = subst_vars(g, &renames);
            (new_bs.clone(), rewrite_relation(&g, rel, params, body))
        } else {
            (bs.to_vec(), rewrite_relation(g, rel, params, body))
        }
    }

    fn rewrite_relation_term(t: &Term, rel: &Sym, params: &[Sym], body: &Formula) -> Term {
        match t {
            Term::Var(_) => t.clone(),
            Term::App(g, args) => Term::App(
                *g,
                args.iter()
                    .map(|a| rewrite_relation_term(a, rel, params, body))
                    .collect(),
            ),
            Term::Ite(c, a, b) => Term::Ite(
                Box::new(rewrite_relation(c, rel, params, body)),
                Box::new(rewrite_relation_term(a, rel, params, body)),
                Box::new(rewrite_relation_term(b, rel, params, body)),
            ),
        }
    }

    /// Replaces every application `f(s̄)` in the formula by `body[s̄/params]`,
    /// simultaneously: occurrences of `f` inside `body` itself are left alone,
    /// which is exactly Hoare-style assignment for `f(x̄) := t(x̄)` (so
    /// `f(x) := f(x)` is a no-op rather than a loop).
    pub fn rewrite_function(f: &Formula, func: &Sym, params: &[Sym], body: &Term) -> Formula {
        match f {
            Formula::True | Formula::False => f.clone(),
            Formula::Rel(r, args) => Formula::Rel(
                *r,
                args.iter()
                    .map(|t| rewrite_function_term(t, func, params, body))
                    .collect(),
            ),
            Formula::Eq(a, b) => Formula::Eq(
                rewrite_function_term(a, func, params, body),
                rewrite_function_term(b, func, params, body),
            ),
            Formula::Not(g) => Formula::Not(Box::new(rewrite_function(g, func, params, body))),
            Formula::And(fs) => Formula::And(
                fs.iter()
                    .map(|g| rewrite_function(g, func, params, body))
                    .collect(),
            ),
            Formula::Or(fs) => Formula::Or(
                fs.iter()
                    .map(|g| rewrite_function(g, func, params, body))
                    .collect(),
            ),
            Formula::Implies(a, b) => Formula::Implies(
                Box::new(rewrite_function(a, func, params, body)),
                Box::new(rewrite_function(b, func, params, body)),
            ),
            Formula::Iff(a, b) => Formula::Iff(
                Box::new(rewrite_function(a, func, params, body)),
                Box::new(rewrite_function(b, func, params, body)),
            ),
            Formula::Forall(bs, g) | Formula::Exists(bs, g) => {
                // As in `rewrite_relation`, body's free vars ⊆ params so binders
                // cannot capture; rename defensively if they somehow do.
                let mut body_free = BTreeSet::new();
                body.collect_vars(&mut body_free);
                for p in params {
                    body_free.remove(p);
                }
                let (bs, g) = if bs.iter().any(|b| body_free.contains(&b.var)) {
                    let mut used = body_free.clone();
                    super::all_var_names(g, &mut used);
                    let mut renames = BTreeMap::new();
                    let mut new_bs = Vec::with_capacity(bs.len());
                    for b in bs {
                        if body_free.contains(&b.var) {
                            let fresh = super::fresh_name(b.var.as_str(), &mut used);
                            renames.insert(b.var, Term::Var(fresh));
                            new_bs.push(Binding::new(fresh, b.sort));
                        } else {
                            new_bs.push(b.clone());
                        }
                    }
                    (new_bs, subst_vars(g, &renames))
                } else {
                    (bs.clone(), g.as_ref().clone())
                };
                let new_body = Box::new(rewrite_function(&g, func, params, body));
                match f {
                    Formula::Forall(..) => Formula::Forall(bs, new_body),
                    _ => Formula::Exists(bs, new_body),
                }
            }
        }
    }

    fn rewrite_function_term(t: &Term, func: &Sym, params: &[Sym], body: &Term) -> Term {
        match t {
            Term::Var(_) => t.clone(),
            Term::App(g, args) => {
                let args: Vec<Term> = args
                    .iter()
                    .map(|a| rewrite_function_term(a, func, params, body))
                    .collect();
                if g == func {
                    debug_assert_eq!(args.len(), params.len(), "arity checked upstream");
                    let map: BTreeMap<Sym, Term> = params.iter().cloned().zip(args).collect();
                    subst_term_vars(body, &map)
                } else {
                    Term::App(*g, args)
                }
            }
            Term::Ite(c, a, b) => Term::Ite(
                Box::new(rewrite_function(c, func, params, body)),
                Box::new(rewrite_function_term(a, func, params, body)),
                Box::new(rewrite_function_term(b, func, params, body)),
            ),
        }
    }
}

use crate::intern::{Interner, TermId};

/// Substitutes logical variables in a term.
///
/// Delegates to the interned engine ([`Interner::subst_term_vars`]): the
/// term is interned once, rewritten by memoized id maps, and resolved back.
/// Output is identical to [`reference::subst_term_vars`].
pub fn subst_term_vars(t: &Term, map: &BTreeMap<Sym, Term>) -> Term {
    Interner::with(|it| {
        let tid = it.intern_term(t);
        let m: BTreeMap<Sym, TermId> = map.iter().map(|(k, v)| (*k, it.intern_term(v))).collect();
        let out = it.subst_term_vars(tid, &m);
        it.resolve_term(out)
    })
}

/// Capture-avoiding substitution of logical variables by terms.
///
/// Delegates to the interned engine ([`Interner::subst_vars`]); the
/// capture-avoidance walks over the body (`free_vars`, `all_var_names`) hit
/// per-node caches instead of re-traversing the tree. Output is identical
/// to [`reference::subst_vars`].
pub fn subst_vars(f: &Formula, map: &BTreeMap<Sym, Term>) -> Formula {
    Interner::with(|it| {
        let fid = it.intern(f);
        let m: BTreeMap<Sym, TermId> = map.iter().map(|(k, v)| (*k, it.intern_term(v))).collect();
        let out = it.subst_vars(fid, &m);
        it.resolve(out)
    })
}

/// Replaces the nullary function symbol (program variable) `name` by `term`,
/// renaming any binder that would capture a variable of `term`.
///
/// Delegates to [`Interner::subst_constant`]; identical output to
/// [`reference::subst_constant`].
pub fn subst_constant(f: &Formula, name: &Sym, term: &Term) -> Formula {
    Interner::with(|it| {
        let fid = it.intern(f);
        let tid = it.intern_term(term);
        let out = it.subst_constant(fid, *name, tid);
        it.resolve(out)
    })
}

/// Replaces every atom `r(s̄)` in `f` by `body[s̄/params]`.
///
/// `body` must be quantifier-free (as RML's update formulas are), so no
/// capture can occur. Argument terms are rewritten first, which matters when
/// they contain `ite` conditions mentioning `r`. Delegates to
/// [`Interner::rewrite_relation`]; identical output to
/// [`reference::rewrite_relation`].
pub fn rewrite_relation(f: &Formula, rel: &Sym, params: &[Sym], body: &Formula) -> Formula {
    Interner::with(|it| {
        let fid = it.intern(f);
        let bid = it.intern(body);
        let out = it.rewrite_relation(fid, *rel, params, bid);
        it.resolve(out)
    })
}

/// Replaces every application `f(s̄)` in the formula by `body[s̄/params]`,
/// simultaneously: occurrences of `f` inside `body` itself are left alone,
/// which is exactly Hoare-style assignment for `f(x̄) := t(x̄)` (so
/// `f(x) := f(x)` is a no-op rather than a loop). Delegates to
/// [`Interner::rewrite_function`]; identical output to
/// [`reference::rewrite_function`].
pub fn rewrite_function(f: &Formula, func: &Sym, params: &[Sym], body: &Term) -> Formula {
    Interner::with(|it| {
        let fid = it.intern(f);
        let bid = it.intern_term(body);
        let out = it.rewrite_function(fid, *func, params, bid);
        it.resolve(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_formula;

    fn map(pairs: &[(&str, Term)]) -> BTreeMap<Sym, Term> {
        pairs
            .iter()
            .map(|(k, v)| (Sym::new(*k), v.clone()))
            .collect()
    }

    #[test]
    fn simple_var_subst() {
        let f = parse_formula("le(X, Y)").unwrap();
        let g = subst_vars(&f, &map(&[("X", Term::cst("a"))]));
        assert_eq!(g.to_string(), "le(a, Y)");
    }

    #[test]
    fn shadowed_vars_untouched() {
        let f = parse_formula("forall X:s. le(X, Y)").unwrap();
        let g = subst_vars(&f, &map(&[("X", Term::cst("a"))]));
        assert_eq!(g.to_string(), "forall X:s. le(X, Y)");
    }

    #[test]
    fn capture_is_avoided() {
        // Substituting Y := X under a binder for X must rename the binder.
        let f = parse_formula("forall X:s. le(X, Y)").unwrap();
        let g = subst_vars(&f, &map(&[("Y", Term::var("X"))]));
        assert_eq!(g.to_string(), "forall X_1:s. le(X_1, X)");
    }

    #[test]
    fn constant_subst_basic() {
        let f = parse_formula("leader(n) & pnd(idf(n), m)").unwrap();
        let g = subst_constant(&f, &Sym::new("n"), &Term::var("X"));
        assert_eq!(g.to_string(), "leader(X) & pnd(idf(X), m)");
    }

    #[test]
    fn constant_subst_avoids_capture() {
        let f = parse_formula("forall X:s. le(X, n)").unwrap();
        let g = subst_constant(&f, &Sym::new("n"), &Term::var("X"));
        assert_eq!(g.to_string(), "forall X_1:s. le(X_1, X)");
    }

    #[test]
    fn relation_rewrite_identity_example() {
        // r(x1, x2) := x1 = x2 turns r into the identity relation:
        // wp substitutes r(a, b) by a = b.
        let q = parse_formula("r(a, b) | r(b, b)").unwrap();
        let body = parse_formula("X1 = X2").unwrap();
        let g = rewrite_relation(&q, &Sym::new("r"), &[Sym::new("X1"), Sym::new("X2")], &body);
        assert_eq!(g.to_string(), "a = b | b = b");
    }

    #[test]
    fn relation_rewrite_inverse_example() {
        // r(x1, x2) := r(x2, x1): substitution is simultaneous.
        let q = parse_formula("r(a, b)").unwrap();
        let body = parse_formula("r(X2, X1)").unwrap();
        let g = rewrite_relation(&q, &Sym::new("r"), &[Sym::new("X1"), Sym::new("X2")], &body);
        assert_eq!(g.to_string(), "r(b, a)");
    }

    #[test]
    fn relation_rewrite_insert_example() {
        // pnd.insert (i, n): pnd(x1,x2) := pnd(x1,x2) | (x1 = i & x2 = n).
        let q = parse_formula("forall I:id, N:node. pnd(I, N) -> le(I, idf(N))").unwrap();
        let body = parse_formula("pnd(X1, X2) | X1 = i & X2 = n").unwrap();
        let g = rewrite_relation(
            &q,
            &Sym::new("pnd"),
            &[Sym::new("X1"), Sym::new("X2")],
            &body,
        );
        // `|` binds tighter than `->`, so no parentheses are needed.
        assert_eq!(
            g.to_string(),
            "forall I:id, N:node. pnd(I, N) | I = i & N = n -> le(I, idf(N))"
        );
    }

    #[test]
    fn function_rewrite_simultaneous() {
        // f(x) := f(x) must be a no-op, not an infinite regress.
        let q = parse_formula("r(f(a))").unwrap();
        let g = rewrite_function(
            &q,
            &Sym::new("f"),
            &[Sym::new("X")],
            &Term::app("f", [Term::var("X")]),
        );
        assert_eq!(g.to_string(), "r(f(a))");
    }

    #[test]
    fn function_rewrite_transpose() {
        // f(x1,x2) := f(x2,x1) applied to r(f(a,b)).
        let q = parse_formula("r(f(a, b))").unwrap();
        let g = rewrite_function(
            &q,
            &Sym::new("f"),
            &[Sym::new("X1"), Sym::new("X2")],
            &Term::app("f", [Term::var("X2"), Term::var("X1")]),
        );
        assert_eq!(g.to_string(), "r(f(b, a))");
    }

    #[test]
    fn function_rewrite_nested_applications() {
        // g(g(a)) with g(x) := h(x): inner rewritten first, outer sees the
        // *old* g of its argument — simultaneous semantics gives h(h(a)).
        let q = parse_formula("r(g(g(a)))").unwrap();
        let out = rewrite_function(
            &q,
            &Sym::new("g"),
            &[Sym::new("X")],
            &Term::app("h", [Term::var("X")]),
        );
        assert_eq!(out.to_string(), "r(h(h(a)))");
    }

    #[test]
    fn function_rewrite_with_ite_body() {
        // f(x) := ite(r(x), x, f(x)).
        let q = parse_formula("p(f(c))").unwrap();
        let body = Term::ite(
            Formula::rel("r", [Term::var("X")]),
            Term::var("X"),
            Term::app("f", [Term::var("X")]),
        );
        let g = rewrite_function(&q, &Sym::new("f"), &[Sym::new("X")], &body);
        assert_eq!(g.to_string(), "p(ite(r(c), c, f(c)))");
    }

    #[test]
    fn fresh_names_are_fresh() {
        let mut used: BTreeSet<Sym> = ["X", "X_1"].iter().map(|s| Sym::new(*s)).collect();
        let f = fresh_name("X", &mut used);
        assert_eq!(f.as_str(), "X_2");
        assert!(used.contains(&f));
    }
}
