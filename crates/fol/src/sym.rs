//! Interned-style identifiers for sorts and symbols.
//!
//! Names are reference-counted strings, so cloning a [`Sym`] or [`Sort`] is
//! cheap and formulas can share names freely.

use std::fmt;
use std::sync::Arc;

/// A symbol name: a relation, function, constant, or logical-variable
/// identifier.
///
/// # Examples
///
/// ```
/// use ivy_fol::Sym;
/// let s = Sym::new("leader");
/// assert_eq!(s.as_str(), "leader");
/// assert_eq!(s, Sym::from("leader"));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(Arc<str>);

impl Sym {
    /// Creates a symbol from anything string-like.
    pub fn new(name: impl AsRef<str>) -> Self {
        Sym(Arc::from(name.as_ref()))
    }

    /// The symbol's textual name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Self {
        Sym::new(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Self {
        Sym::new(s)
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.0)
    }
}

/// A sort (type) name, e.g. `node` or `id` in the leader-election protocol.
///
/// # Examples
///
/// ```
/// use ivy_fol::Sort;
/// let node = Sort::new("node");
/// assert_eq!(node.name(), "node");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sort(Arc<str>);

impl Sort {
    /// Creates a sort from anything string-like.
    pub fn new(name: impl AsRef<str>) -> Self {
        Sort(Arc::from(name.as_ref()))
    }

    /// The sort's textual name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Sort {
    fn from(s: &str) -> Self {
        Sort::new(s)
    }
}

impl AsRef<str> for Sort {
    fn as_ref(&self) -> &str {
        self.name()
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sort({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sym_equality_and_display() {
        let a = Sym::new("pnd");
        let b = Sym::from("pnd");
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "pnd");
        assert_eq!(format!("{a:?}"), "Sym(pnd)");
    }

    #[test]
    fn sort_equality_and_display() {
        let a = Sort::new("node");
        assert_eq!(a, Sort::from("node"));
        assert_ne!(a, Sort::new("id"));
        assert_eq!(a.to_string(), "node");
    }

    #[test]
    fn syms_order_lexicographically() {
        let mut v = [Sym::new("z"), Sym::new("a"), Sym::new("m")];
        v.sort();
        let names: Vec<_> = v.iter().map(Sym::as_str).collect();
        assert_eq!(names, ["a", "m", "z"]);
    }
}
