//! Interned identifiers for sorts and symbols.
//!
//! Names live in a process-global symbol table: each distinct string is
//! stored once (leaked, so `&'static str` references stay valid for the
//! lifetime of the process) and assigned a dense `u32` id. A [`Sym`] or
//! [`Sort`] is then a `Copy` pair of that id and the canonical string
//! pointer, so equality and hashing are O(1) id compares — no `Arc<str>`
//! string walks inside grounder `BTreeMap` keys — while ordering stays
//! lexicographic (with an id fast path for the equal case) so every
//! `BTreeMap`/`BTreeSet` in the pipeline iterates in the same name order
//! as before.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{OnceLock, RwLock};

/// The process-global name table shared by [`Sym`] and [`Sort`].
///
/// Keys are the leaked canonical strings; values are dense ids. Interning a
/// name that is already present returns the canonical `&'static str`, so two
/// `Sym`s with equal text always carry pointer-identical names.
fn table() -> &'static RwLock<HashMap<&'static str, u32>> {
    static TABLE: OnceLock<RwLock<HashMap<&'static str, u32>>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Interns `name`, returning its id and canonical static string.
fn intern_name(name: &str) -> (u32, &'static str) {
    let t = table();
    if let Some((k, v)) = t.read().expect("name table poisoned").get_key_value(name) {
        return (*v, k);
    }
    let mut w = t.write().expect("name table poisoned");
    if let Some((k, v)) = w.get_key_value(name) {
        // Raced with another writer between the read and write locks.
        return (*v, k);
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    let id = u32::try_from(w.len()).expect("symbol table overflow");
    w.insert(leaked, id);
    (id, leaked)
}

/// A symbol name: a relation, function, constant, or logical-variable
/// identifier.
///
/// Interned: equality and hashing compare a `u32` id; ordering is still
/// lexicographic on the text.
///
/// # Examples
///
/// ```
/// use ivy_fol::Sym;
/// let s = Sym::new("leader");
/// assert_eq!(s.as_str(), "leader");
/// assert_eq!(s, Sym::from("leader"));
/// ```
#[derive(Clone, Copy)]
pub struct Sym {
    name: &'static str,
    id: u32,
}

impl Sym {
    /// Creates a symbol from anything string-like, interning the name.
    pub fn new(name: impl AsRef<str>) -> Self {
        let (id, name) = intern_name(name.as_ref());
        Sym { name, id }
    }

    /// The symbol's textual name (canonical interned string).
    pub fn as_str(&self) -> &'static str {
        self.name
    }

    /// The symbol's dense interned id.
    pub fn id(&self) -> u32 {
        self.id
    }
}

impl PartialEq for Sym {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Sym {}

impl Hash for Sym {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u32(self.id);
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.id == other.id {
            std::cmp::Ordering::Equal
        } else {
            self.name.cmp(other.name)
        }
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Self {
        Sym::new(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Self {
        Sym::new(s)
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.name)
    }
}

/// A sort (type) name, e.g. `node` or `id` in the leader-election protocol.
///
/// Interned like [`Sym`] (the two share one name table): O(1) equality and
/// hashing, lexicographic ordering.
///
/// # Examples
///
/// ```
/// use ivy_fol::Sort;
/// let node = Sort::new("node");
/// assert_eq!(node.name(), "node");
/// ```
#[derive(Clone, Copy)]
pub struct Sort {
    name: &'static str,
    id: u32,
}

impl Sort {
    /// Creates a sort from anything string-like, interning the name.
    pub fn new(name: impl AsRef<str>) -> Self {
        let (id, name) = intern_name(name.as_ref());
        Sort { name, id }
    }

    /// The sort's textual name (canonical interned string).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The sort's dense interned id.
    pub fn id(&self) -> u32 {
        self.id
    }
}

impl PartialEq for Sort {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Sort {}

impl Hash for Sort {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u32(self.id);
    }
}

impl Ord for Sort {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.id == other.id {
            std::cmp::Ordering::Equal
        } else {
            self.name.cmp(other.name)
        }
    }
}

impl PartialOrd for Sort {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl From<&str> for Sort {
    fn from(s: &str) -> Self {
        Sort::new(s)
    }
}

impl AsRef<str> for Sort {
    fn as_ref(&self) -> &str {
        self.name()
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

impl fmt::Debug for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sort({})", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sym_equality_and_display() {
        let a = Sym::new("pnd");
        let b = Sym::from("pnd");
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "pnd");
        assert_eq!(format!("{a:?}"), "Sym(pnd)");
    }

    #[test]
    fn sort_equality_and_display() {
        let a = Sort::new("node");
        assert_eq!(a, Sort::from("node"));
        assert_ne!(a, Sort::new("id"));
        assert_eq!(a.to_string(), "node");
    }

    #[test]
    fn syms_order_lexicographically() {
        let mut v = [Sym::new("z"), Sym::new("a"), Sym::new("m")];
        v.sort();
        let names: Vec<_> = v.iter().map(Sym::as_str).collect();
        assert_eq!(names, ["a", "m", "z"]);
    }

    #[test]
    fn interning_is_canonical() {
        let a = Sym::new("intern_canon_test");
        let b = Sym::new(String::from("intern_canon_test"));
        assert_eq!(a.id(), b.id());
        // Same text must yield the same canonical pointer.
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }

    #[test]
    fn sym_and_sort_share_ids_by_name() {
        // The table is shared; identical names get identical ids across the
        // two types (types still keep them apart statically).
        let sy = Sym::new("shared_name_test");
        let so = Sort::new("shared_name_test");
        assert_eq!(sy.id(), so.id());
    }
}
