//! Formula transformations: negation normal form, prenexing, Skolemization,
//! and `ite`-elimination.
//!
//! These are the bridge from RML verification conditions to the EPR decision
//! procedure: Lemma 3.2 of the paper says `wp` keeps formulas in `∀*∃*`, so
//! the negated VCs are `∃*∀*` and Skolemize to *constants* only.

use std::collections::BTreeSet;

use crate::formula::{Binding, Formula};
use crate::subst::{fresh_name, subst_vars};
use crate::term::Term;
use crate::{Signature, Sort, Sym};

/// Negation normal form: eliminates `->` and `<->`, pushes negation down to
/// atoms. Quantifiers are kept in place (and dualized under negation).
pub fn nnf(f: &Formula) -> Formula {
    nnf_polarity(f, true)
}

fn nnf_polarity(f: &Formula, positive: bool) -> Formula {
    match f {
        Formula::True => {
            if positive {
                Formula::True
            } else {
                Formula::False
            }
        }
        Formula::False => {
            if positive {
                Formula::False
            } else {
                Formula::True
            }
        }
        Formula::Rel(..) | Formula::Eq(..) => {
            if positive {
                f.clone()
            } else {
                Formula::Not(Box::new(f.clone()))
            }
        }
        Formula::Not(g) => nnf_polarity(g, !positive),
        Formula::And(fs) => {
            let parts = fs.iter().map(|g| nnf_polarity(g, positive));
            if positive {
                Formula::and(parts)
            } else {
                Formula::or(parts)
            }
        }
        Formula::Or(fs) => {
            let parts = fs.iter().map(|g| nnf_polarity(g, positive));
            if positive {
                Formula::or(parts)
            } else {
                Formula::and(parts)
            }
        }
        Formula::Implies(a, b) => {
            if positive {
                Formula::or([nnf_polarity(a, false), nnf_polarity(b, true)])
            } else {
                Formula::and([nnf_polarity(a, true), nnf_polarity(b, false)])
            }
        }
        Formula::Iff(a, b) => {
            // (a <-> b)  =  (a & b) | (~a & ~b);   ~(a <-> b) = (a & ~b) | (~a & b)
            let (pa, na) = (nnf_polarity(a, true), nnf_polarity(a, false));
            let (pb, nb) = (nnf_polarity(b, true), nnf_polarity(b, false));
            if positive {
                Formula::or([Formula::and([pa, pb]), Formula::and([na, nb])])
            } else {
                Formula::or([Formula::and([pa, nb]), Formula::and([na, pb])])
            }
        }
        Formula::Forall(bs, g) => {
            let body = nnf_polarity(g, positive);
            if positive {
                Formula::forall(bs.clone(), body)
            } else {
                Formula::exists(bs.clone(), body)
            }
        }
        Formula::Exists(bs, g) => {
            let body = nnf_polarity(g, positive);
            if positive {
                Formula::exists(bs.clone(), body)
            } else {
                Formula::forall(bs.clone(), body)
            }
        }
    }
}

/// One block of a quantifier prefix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Block {
    /// An `exists` block.
    Exists(Vec<Binding>),
    /// A `forall` block.
    Forall(Vec<Binding>),
}

impl Block {
    fn is_exists(&self) -> bool {
        matches!(self, Block::Exists(_))
    }

    fn bindings(&self) -> &[Binding] {
        match self {
            Block::Exists(b) | Block::Forall(b) => b,
        }
    }
}

/// A formula in prenex normal form: a quantifier prefix over a
/// quantifier-free matrix, with all bound variables renamed apart.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Prenex {
    /// The quantifier prefix, outermost first. Adjacent same-kind blocks are
    /// merged.
    pub prefix: Vec<Block>,
    /// The quantifier-free matrix.
    pub matrix: Formula,
}

impl Prenex {
    /// Rebuilds the ordinary formula.
    pub fn to_formula(&self) -> Formula {
        let mut f = self.matrix.clone();
        for block in self.prefix.iter().rev() {
            f = match block {
                Block::Exists(bs) => Formula::exists(bs.clone(), f),
                Block::Forall(bs) => Formula::forall(bs.clone(), f),
            };
        }
        f
    }

    /// Whether the prefix is `∃*∀*` (at most one alternation, `exists`
    /// outside). This is the fragment of EPR.
    pub fn is_ea(&self) -> bool {
        match self.prefix.as_slice() {
            [] | [_] => true,
            [a, b] => a.is_exists() && !b.is_exists(),
            _ => false,
        }
    }

    /// Whether the prefix is `∀*∃*`.
    pub fn is_ae(&self) -> bool {
        match self.prefix.as_slice() {
            [] | [_] => true,
            [a, b] => !a.is_exists() && b.is_exists(),
            _ => false,
        }
    }

    /// Total number of quantified variables.
    pub fn var_count(&self) -> usize {
        self.prefix.iter().map(|b| b.bindings().len()).sum()
    }
}

/// Converts a formula (in any shape) to prenex normal form. Internally
/// normalizes to NNF first; the prenexing merges sibling prefixes
/// `∃`-blocks-first, so formulas whose subformulas are all `∃*∀*` produce an
/// `∃*∀*` prefix (the closure property behind Theorem 3.3).
pub fn prenex(f: &Formula) -> Prenex {
    let f = nnf(f);
    // Seed with the free variables (which must never be captured); bound
    // variables keep their names unless a clash forces renaming.
    let mut used: BTreeSet<Sym> = f.free_vars();
    let mut p = prenex_rec(&f, &mut used);
    normalize_blocks(&mut p.prefix);
    p
}

fn normalize_blocks(prefix: &mut Vec<Block>) {
    let mut out: Vec<Block> = Vec::with_capacity(prefix.len());
    for block in prefix.drain(..) {
        if block.bindings().is_empty() {
            continue;
        }
        match (out.last_mut(), &block) {
            (Some(Block::Exists(a)), Block::Exists(b)) => a.extend(b.iter().cloned()),
            (Some(Block::Forall(a)), Block::Forall(b)) => a.extend(b.iter().cloned()),
            _ => out.push(block),
        }
    }
    *prefix = out;
}

fn prenex_rec(f: &Formula, used: &mut BTreeSet<Sym>) -> Prenex {
    match f {
        Formula::Forall(bs, g) | Formula::Exists(bs, g) => {
            // Rename the bound variables apart from everything seen so far.
            let mut renames = std::collections::BTreeMap::new();
            let mut fresh_bs = Vec::with_capacity(bs.len());
            for b in bs {
                let name = fresh_name(b.var.as_str(), used);
                if name != b.var {
                    renames.insert(b.var, Term::Var(name));
                }
                fresh_bs.push(Binding::new(name, b.sort));
            }
            let body = if renames.is_empty() {
                g.as_ref().clone()
            } else {
                subst_vars(g, &renames)
            };
            let mut inner = prenex_rec(&body, used);
            let block = if matches!(f, Formula::Forall(..)) {
                Block::Forall(fresh_bs)
            } else {
                Block::Exists(fresh_bs)
            };
            inner.prefix.insert(0, block);
            inner
        }
        Formula::And(fs) => merge_siblings(fs, used, true),
        Formula::Or(fs) => merge_siblings(fs, used, false),
        Formula::Not(_) | Formula::Rel(..) | Formula::Eq(..) | Formula::True | Formula::False => {
            Prenex {
                prefix: Vec::new(),
                matrix: f.clone(),
            }
        }
        Formula::Implies(..) | Formula::Iff(..) => {
            unreachable!("prenex_rec runs on NNF input with no -> or <->")
        }
    }
}

fn merge_siblings(fs: &[Formula], used: &mut BTreeSet<Sym>, conj: bool) -> Prenex {
    let mut children: Vec<Prenex> = fs.iter().map(|g| prenex_rec(g, used)).collect();
    // Merge prefixes round-robin, ∃ blocks first, alternating. Any
    // interleaving that preserves each child's internal order is sound;
    // ∃-first guarantees that when every child is ∃*∀*, the merge is ∃*∀*
    // (the closure property behind Theorem 3.3). A formula that is only
    // ∀*∃*-prenexable can come out with a longer prefix here — fragment
    // membership is decided by [`is_ae_sentence`]/[`is_ea_sentence`], not by
    // inspecting this prefix.
    let mut prefix = Vec::new();
    let mut want_exists = true;
    loop {
        let mut grabbed: Vec<Binding> = Vec::new();
        for child in &mut children {
            while child
                .prefix
                .first()
                .is_some_and(|b| b.is_exists() == want_exists)
            {
                let block = child.prefix.remove(0);
                grabbed.extend(block.bindings().iter().cloned());
            }
        }
        let done = children.iter().all(|c| c.prefix.is_empty());
        if !grabbed.is_empty() {
            prefix.push(if want_exists {
                Block::Exists(grabbed)
            } else {
                Block::Forall(grabbed)
            });
        }
        if done {
            break;
        }
        want_exists = !want_exists;
    }
    let parts = children.into_iter().map(|c| c.matrix);
    let matrix = if conj {
        Formula::and(parts)
    } else {
        Formula::or(parts)
    };
    Prenex { prefix, matrix }
}

/// Whether `f` is prenexable to `∃*∀*` (the EPR fragment). Compositional:
/// conjunction and disjunction preserve the fragment, and a `forall` requires
/// its body to be purely universal.
pub fn is_ea_sentence(f: &Formula) -> bool {
    fn ea(f: &Formula) -> bool {
        match f {
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(ea),
            Formula::Exists(_, g) => ea(g),
            Formula::Forall(_, g) => uni(g),
            _ => true, // atoms (NNF: negations sit on atoms)
        }
    }
    fn uni(f: &Formula) -> bool {
        match f {
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(uni),
            Formula::Forall(_, g) => uni(g),
            Formula::Exists(..) => false,
            _ => true,
        }
    }
    ea(&nnf(f))
}

/// Whether `f` is prenexable to `∀*∃*` — the fragment closed under `wp`
/// (Lemma 3.2). Dual to [`is_ea_sentence`].
pub fn is_ae_sentence(f: &Formula) -> bool {
    is_ea_sentence(&Formula::not(f.clone()))
}

/// Finds one ∀∃ alternation witness in `f` (after NNF): an existential
/// binding in the scope of a universal binding. `None` iff `f` is in the
/// `∃*∀*` fragment — this is [`is_ea_sentence`] upgraded from a boolean to
/// a diagnostic, naming the exact quantifier pair Skolemization would have
/// to turn into a function symbol.
pub fn ae_alternation(f: &Formula) -> Option<(Binding, Binding)> {
    fn walk(f: &Formula, outer: Option<&Binding>) -> Option<(Binding, Binding)> {
        match f {
            Formula::And(fs) | Formula::Or(fs) => fs.iter().find_map(|g| walk(g, outer)),
            Formula::Forall(bs, g) => walk(g, bs.first().or(outer)),
            Formula::Exists(bs, g) => match outer {
                Some(u) => {
                    let e = bs.first().expect("quantifier blocks are nonempty");
                    Some((u.clone(), e.clone()))
                }
                None => walk(g, None),
            },
            _ => None,
        }
    }
    walk(&nnf(f), None)
}

/// Errors from Skolemization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SkolemError {
    /// The formula has a free logical variable; only sentences Skolemize.
    OpenFormula(Sym),
    /// An `exists` occurs under a `forall`; Skolemization would need a
    /// function symbol, leaving the decidable fragment. Carries the
    /// witnessing quantifier pair.
    NotEA {
        /// The governing universal binding.
        universal: Binding,
        /// The existential binding in its scope.
        existential: Binding,
    },
}

impl std::fmt::Display for SkolemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SkolemError::OpenFormula(v) => write!(f, "cannot Skolemize open formula (free `{v}`)"),
            SkolemError::NotEA {
                universal,
                existential,
            } => write!(
                f,
                "formula is not in the ∃*∀* fragment: `exists {}:{}` under `forall {}:{}` \
                 would Skolemize to a function {} -> {}",
                existential.var,
                existential.sort,
                universal.var,
                universal.sort,
                universal.sort,
                existential.sort
            ),
        }
    }
}

impl std::error::Error for SkolemError {}

/// The result of Skolemizing a closed `∃*∀*` sentence.
#[derive(Clone, Debug)]
pub struct Skolemized {
    /// The remaining universally quantified formula (prefix `∀*` over a
    /// quantifier-free matrix).
    pub universal: Prenex,
    /// Fresh Skolem constants introduced, with their sorts.
    pub constants: Vec<(Sym, Sort)>,
}

/// Skolemizes a closed `∃*∀*` sentence: outermost existentials become fresh
/// constants (registered into `sig`).
///
/// # Errors
///
/// [`SkolemError::OpenFormula`] if the sentence has free variables;
/// [`SkolemError::NotEA`] if an existential occurs under a universal.
pub fn skolemize(f: &Formula, sig: &mut Signature) -> Result<Skolemized, SkolemError> {
    if let Some(v) = f.free_vars().into_iter().next() {
        return Err(SkolemError::OpenFormula(v));
    }
    if let Some((universal, existential)) = ae_alternation(f) {
        return Err(SkolemError::NotEA {
            universal,
            existential,
        });
    }
    let p = prenex(f);
    debug_assert!(p.is_ea(), "∃-first merge must realize the EA prefix");
    let mut constants = Vec::new();
    let mut matrix = p.matrix;
    let mut universal_prefix = Vec::new();
    for block in p.prefix {
        match block {
            Block::Exists(bs) => {
                let mut map = std::collections::BTreeMap::new();
                for b in bs {
                    let name = fresh_constant_name(sig, b.var.as_str());
                    sig.add_constant(name, b.sort)
                        .expect("fresh name cannot clash");
                    map.insert(b.var, Term::cst(name));
                    constants.push((name, b.sort));
                }
                matrix = subst_vars(&matrix, &map);
            }
            Block::Forall(bs) => universal_prefix.push(Block::Forall(bs)),
        }
    }
    Ok(Skolemized {
        universal: Prenex {
            prefix: universal_prefix,
            matrix,
        },
        constants,
    })
}

/// Picks a constant name based on `base` that is unused in `sig`.
pub fn fresh_constant_name(sig: &Signature, base: &str) -> Sym {
    let lowered = if base.starts_with(|c: char| c.is_ascii_uppercase()) {
        format!("sk_{}", base.to_ascii_lowercase())
    } else {
        format!("sk_{base}")
    };
    let mut candidate = Sym::new(&lowered);
    let mut i = 0;
    while sig.function(&candidate).is_some() || sig.relation(&candidate).is_some() {
        i += 1;
        candidate = Sym::new(format!("{lowered}_{i}"));
    }
    candidate
}

/// Eliminates `ite` terms by case-splitting the enclosing atom:
/// `p(ite(c, a, b))` becomes `(c & p(a)) | (~c & p(b))`.
///
/// The result contains no `ite` and is equivalent. Needed before grounding,
/// since `ite` is not part of classic first-order syntax.
pub fn eliminate_ite(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False => f.clone(),
        Formula::Rel(..) | Formula::Eq(..) => split_atom(f),
        Formula::Not(g) => Formula::not(eliminate_ite(g)),
        Formula::And(fs) => Formula::and(fs.iter().map(eliminate_ite)),
        Formula::Or(fs) => Formula::or(fs.iter().map(eliminate_ite)),
        Formula::Implies(a, b) => Formula::implies(eliminate_ite(a), eliminate_ite(b)),
        Formula::Iff(a, b) => Formula::iff(eliminate_ite(a), eliminate_ite(b)),
        Formula::Forall(bs, g) => Formula::forall(bs.clone(), eliminate_ite(g)),
        Formula::Exists(bs, g) => Formula::exists(bs.clone(), eliminate_ite(g)),
    }
}

fn split_atom(atom: &Formula) -> Formula {
    let args: Vec<&Term> = match atom {
        Formula::Rel(_, args) => args.iter().collect(),
        Formula::Eq(a, b) => vec![a, b],
        _ => unreachable!("split_atom only called on atoms"),
    };
    for (idx, t) in args.iter().enumerate() {
        if let Some((cond, then_t, else_t)) = find_ite(t) {
            let then_atom = replace_arg(atom, idx, replace_ite_once(args[idx], &then_t, true));
            let else_atom = replace_arg(atom, idx, replace_ite_once(args[idx], &else_t, false));
            let cond = eliminate_ite(&cond);
            return Formula::or([
                Formula::and([cond.clone(), split_atom(&then_atom)]),
                Formula::and([Formula::not(cond), split_atom(&else_atom)]),
            ]);
        }
    }
    atom.clone()
}

/// Finds the first (leftmost, outermost) `ite` in a term.
fn find_ite(t: &Term) -> Option<(Formula, Term, Term)> {
    match t {
        Term::Var(_) => None,
        Term::App(_, args) => args.iter().find_map(find_ite),
        Term::Ite(c, a, b) => Some((c.as_ref().clone(), a.as_ref().clone(), b.as_ref().clone())),
    }
}

/// Replaces the first `ite` in `t` by `branch` (the chosen arm).
/// `_then` records which arm was chosen, for clarity at call sites.
fn replace_ite_once(t: &Term, branch: &Term, _then: bool) -> Term {
    fn go(t: &Term, branch: &Term, done: &mut bool) -> Term {
        if *done {
            return t.clone();
        }
        match t {
            Term::Var(_) => t.clone(),
            Term::App(f, args) => Term::App(*f, args.iter().map(|a| go(a, branch, done)).collect()),
            Term::Ite(..) => {
                *done = true;
                branch.clone()
            }
        }
    }
    let mut done = false;
    go(t, branch, &mut done)
}

fn replace_arg(atom: &Formula, idx: usize, new_arg: Term) -> Formula {
    match atom {
        Formula::Rel(r, args) => {
            let mut args = args.clone();
            args[idx] = new_arg;
            Formula::Rel(*r, args)
        }
        Formula::Eq(a, b) => {
            if idx == 0 {
                Formula::Eq(new_arg, b.clone())
            } else {
                Formula::Eq(a.clone(), new_arg)
            }
        }
        _ => unreachable!("replace_arg only called on atoms"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_formula;

    #[test]
    fn nnf_pushes_negation() {
        let f = parse_formula("~(p & (q -> r))").unwrap();
        assert_eq!(nnf(&f).to_string(), "~p | q & ~r");
    }

    #[test]
    fn nnf_dualizes_quantifiers() {
        let f = parse_formula("~(forall X:s. p(X))").unwrap();
        assert_eq!(nnf(&f).to_string(), "exists X:s. ~p(X)");
    }

    #[test]
    fn prenex_merges_ea_children() {
        // (∃x∀y p) & (∃u∀v q) must prenex to ∃x,u∀y,v (p & q): still EA.
        let f =
            parse_formula("(exists X:s. forall Y:s. r(X, Y)) & (exists U:s. forall V:s. r(U, V))")
                .unwrap();
        let p = prenex(&f);
        assert!(p.is_ea());
        assert_eq!(p.prefix.len(), 2);
        assert_eq!(p.prefix[0].bindings().len(), 2);
        assert_eq!(p.prefix[1].bindings().len(), 2);
    }

    #[test]
    fn prenex_renames_shadowed_vars() {
        let f = parse_formula("(forall X:s. p(X)) & (forall X:s. q(X))").unwrap();
        let p = prenex(&f);
        assert_eq!(p.var_count(), 2);
        let names: BTreeSet<_> = p.prefix[0].bindings().iter().map(|b| b.var).collect();
        assert_eq!(names.len(), 2, "bound vars renamed apart");
    }

    #[test]
    fn prenex_roundtrip_preserves_shape() {
        let f = parse_formula("forall X:s. exists Y:s. r(X, Y)").unwrap();
        let p = prenex(&f);
        assert!(p.is_ae());
        assert!(!p.is_ea());
        assert_eq!(
            p.to_formula().to_string(),
            "forall X:s. exists Y:s. r(X, Y)"
        );
    }

    #[test]
    fn negating_ae_gives_ea() {
        let f = parse_formula("forall X:s. exists Y:s. r(X, Y)").unwrap();
        let p = prenex(&Formula::not(f));
        assert!(p.is_ea());
    }

    #[test]
    fn skolemize_introduces_constants() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_relation("r", ["s", "s"]).unwrap();
        let f = parse_formula("exists X:s. forall Y:s. r(X, Y)").unwrap();
        let sk = skolemize(&f, &mut sig).unwrap();
        assert_eq!(sk.constants.len(), 1);
        let (name, sort) = &sk.constants[0];
        assert_eq!(sort.name(), "s");
        assert!(sig.function(name).is_some());
        assert_eq!(sk.universal.prefix.len(), 1);
    }

    #[test]
    fn skolemize_rejects_ae() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_relation("r", ["s", "s"]).unwrap();
        let f = parse_formula("forall X:s. exists Y:s. r(X, Y)").unwrap();
        match skolemize(&f, &mut sig).unwrap_err() {
            SkolemError::NotEA {
                universal,
                existential,
            } => {
                assert_eq!(universal.var.as_str(), "X");
                assert_eq!(existential.var.as_str(), "Y");
            }
            other => panic!("expected NotEA, got {other:?}"),
        }
    }

    #[test]
    fn ae_alternation_names_the_pair() {
        // Alternation hidden under negation: ~(exists X. forall Y. ...) is
        // ∀∃ after NNF.
        let f = parse_formula("~(exists X:s. forall Y:s. r(X, Y))").unwrap();
        let (u, e) = ae_alternation(&f).expect("alternation after NNF");
        assert_eq!(u.var.as_str(), "X");
        assert_eq!(e.var.as_str(), "Y");
        // EA sentences have no witness.
        let ok = parse_formula("exists X:s. forall Y:s. r(X, Y)").unwrap();
        assert!(ae_alternation(&ok).is_none());
    }

    #[test]
    fn skolemize_rejects_open() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_relation("r", ["s", "s"]).unwrap();
        let f = parse_formula("r(X, X)").unwrap();
        assert!(matches!(
            skolemize(&f, &mut sig),
            Err(SkolemError::OpenFormula(_))
        ));
    }

    #[test]
    fn ite_elimination_splits_atoms() {
        let f = parse_formula("p(ite(q, a, b))").unwrap();
        let g = eliminate_ite(&f);
        assert_eq!(g.to_string(), "q & p(a) | ~q & p(b)");
    }

    #[test]
    fn nested_ite_elimination() {
        let f = parse_formula("p(ite(q, ite(r, a, b), c))").unwrap();
        let g = eliminate_ite(&f);
        // No ite remains.
        fn has_ite(f: &Formula) -> bool {
            match f {
                Formula::Rel(_, args) => args.iter().any(Term::has_ite),
                Formula::Eq(a, b) => a.has_ite() || b.has_ite(),
                Formula::Not(g) => has_ite(g),
                Formula::And(fs) | Formula::Or(fs) => fs.iter().any(has_ite),
                Formula::Implies(a, b) | Formula::Iff(a, b) => has_ite(a) || has_ite(b),
                Formula::Forall(_, g) | Formula::Exists(_, g) => has_ite(g),
                _ => false,
            }
        }
        assert!(!has_ite(&g));
    }
}
