//! Hash-consed arena for terms and formulas.
//!
//! Every structurally distinct term/formula node is stored once in a
//! process-global append-only arena and identified by a dense [`TermId`] /
//! [`FormulaId`]. Equality and hashing of ids are O(1), subformula sharing
//! is free, and per-node attributes (free variables, all variable names,
//! literal counts, `ite` presence) are computed once at intern time.
//!
//! The transformation passes of `subst`/`xform` have id-level counterparts
//! here ([`Interner::subst_vars`], [`Interner::nnf`], [`Interner::prenex`],
//! [`Interner::skolemize`], ...) that are *exact ports* of the tree
//! algorithms — byte-identical output modulo `intern`/`resolve` — with
//! persistent memo tables keyed by id, so repeated work (the wp/transition
//! clone storm, re-grounding in incremental sessions) collapses into map
//! lookups.
//!
//! Tree [`Formula`]/[`Term`] remain the parser-facing surface;
//! [`Interner::intern`] and [`Interner::resolve`] are lossless bridges
//! (variant-for-variant, no normalization), so `resolve(intern(f)) == f`.
//!
//! # Determinism
//!
//! Arena ids depend on global intern order, which depends on thread timing
//! under `QueryStrategy::Parallel`. Nothing user-visible may therefore
//! depend on *id order*: iteration that affects output must run over
//! name-ordered (`Sym`-keyed) structures or follow formula structure, never
//! over id-keyed maps. All code in this module observes that rule.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, Mutex, OnceLock};

use crate::formula::{Binding, Formula};
use crate::subst::fresh_name;
use crate::term::Term;
use crate::xform::{fresh_constant_name, Block, SkolemError};
use crate::{Signature, Sort, Sym};

/// Id of an interned [`Term`] in the global arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TermId(u32);

/// Id of an interned [`Formula`] in the global arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FormulaId(u32);

impl TermId {
    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl FormulaId {
    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interned term node: the [`Term`] shape with id children.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TermNode {
    /// A logical variable.
    Var(Sym),
    /// Function application (constants have empty argument lists).
    App(Sym, Vec<TermId>),
    /// If-then-else over a condition formula.
    Ite(FormulaId, TermId, TermId),
}

/// An interned formula node: the [`Formula`] shape with id children.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum FormulaNode {
    /// The true constant.
    True,
    /// The false constant.
    False,
    /// Relation membership.
    Rel(Sym, Vec<TermId>),
    /// Equality between terms.
    Eq(TermId, TermId),
    /// Negation.
    Not(FormulaId),
    /// N-ary conjunction.
    And(Vec<FormulaId>),
    /// N-ary disjunction.
    Or(Vec<FormulaId>),
    /// Implication.
    Implies(FormulaId, FormulaId),
    /// Bi-implication.
    Iff(FormulaId, FormulaId),
    /// Universal quantification.
    Forall(Vec<Binding>, FormulaId),
    /// Existential quantification.
    Exists(Vec<Binding>, FormulaId),
}

/// A prenex normal form over interned matrices (id-level [`crate::Prenex`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrenexI {
    /// The quantifier prefix, outermost first.
    pub prefix: Vec<Block>,
    /// The quantifier-free matrix.
    pub matrix: FormulaId,
}

impl PrenexI {
    /// Whether the prefix is `∃*∀*` (the EPR fragment).
    pub fn is_ea(&self) -> bool {
        match self.prefix.as_slice() {
            [] | [_] => true,
            [a, b] => a.is_exists_block() && !b.is_exists_block(),
            _ => false,
        }
    }
}

impl Block {
    fn is_exists_block(&self) -> bool {
        matches!(self, Block::Exists(_))
    }
}

/// The result of id-level Skolemization of a closed `∃*∀*` sentence.
#[derive(Clone, Debug)]
pub struct SkolemizedI {
    /// The remaining universally quantified part.
    pub universal: PrenexI,
    /// Fresh Skolem constants introduced, with their sorts.
    pub constants: Vec<(Sym, Sort)>,
    /// Fresh Skolem *functions* introduced for existentials under
    /// universals, as `(name, argument sorts, result sort)`. Always empty
    /// for [`Interner::skolemize`]; only
    /// [`Interner::skolemize_bounded`] emits them (they generally break
    /// stratification, which is exactly what the bounded-instantiation
    /// pipeline tolerates).
    pub functions: Vec<(Sym, Vec<Sort>, Sort)>,
}

struct TermData {
    node: TermNode,
    /// Free variables of the term (`Term::vars` semantics: `ite` conditions
    /// contribute their free variables).
    vars: Arc<BTreeSet<Sym>>,
    has_ite: bool,
}

struct FormulaData {
    node: FormulaNode,
    /// Free logical variables.
    free: Arc<BTreeSet<Sym>>,
    /// All variable names, free or bound (`subst::all_var_names` semantics).
    all_vars: Arc<BTreeSet<Sym>>,
    /// Literal occurrence count (`Formula::literal_count`).
    literals: usize,
}

/// The hash-consing arena plus persistent memo tables. One per process;
/// access through [`Interner::with`].
pub struct Interner {
    terms: Vec<TermData>,
    formulas: Vec<FormulaData>,
    term_dedup: HashMap<TermNode, TermId>,
    formula_dedup: HashMap<FormulaNode, FormulaId>,
    true_id: FormulaId,
    false_id: FormulaId,

    // Interned op contexts: canonical small keys for memo tables.
    subst_envs: HashMap<Vec<(Sym, TermId)>, u32>,
    rename_envs: HashMap<Vec<(Sym, Sym)>, u32>,
    rel_ctxs: HashMap<(Sym, Vec<Sym>, FormulaId), u32>,
    fun_ctxs: HashMap<(Sym, Vec<Sym>, TermId), u32>,

    memo_subst: HashMap<(FormulaId, u32), FormulaId>,
    memo_subst_term: HashMap<(TermId, u32), TermId>,
    memo_subst_const: HashMap<(FormulaId, Sym, TermId), FormulaId>,
    memo_subst_const_term: HashMap<(TermId, Sym, TermId), TermId>,
    memo_rename: HashMap<(FormulaId, u32), FormulaId>,
    memo_rename_term: HashMap<(TermId, u32), TermId>,
    memo_rw_rel: HashMap<(FormulaId, u32), FormulaId>,
    memo_rw_rel_term: HashMap<(TermId, u32), TermId>,
    memo_rw_fun: HashMap<(FormulaId, u32), FormulaId>,
    memo_rw_fun_term: HashMap<(TermId, u32), TermId>,
    memo_nnf: HashMap<(FormulaId, bool), FormulaId>,
    memo_ite: HashMap<FormulaId, FormulaId>,
    memo_mentions: HashMap<(FormulaId, Sym), bool>,
    memo_mentions_term: HashMap<(TermId, Sym), bool>,
    memo_ea: HashMap<FormulaId, bool>,
    memo_uni: HashMap<FormulaId, bool>,
    memo_prenex: HashMap<FormulaId, PrenexI>,

    /// Hash-consing hits: `mk`/`mk_term` calls answered from the dedup
    /// tables. Together with `cache_misses` this gives the intern-cache
    /// hit rate reported by the telemetry layer.
    cache_hits: u64,
    /// Hash-consing misses: calls that allocated a fresh arena node.
    cache_misses: u64,
}

fn empty_set() -> Arc<BTreeSet<Sym>> {
    static EMPTY: OnceLock<Arc<BTreeSet<Sym>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(BTreeSet::new())).clone()
}

/// Unions variable sets, sharing the `Arc` when at most one input is
/// non-empty or later inputs are subsets of the accumulator.
fn union_sets<'a>(sets: impl IntoIterator<Item = &'a Arc<BTreeSet<Sym>>>) -> Arc<BTreeSet<Sym>> {
    let mut acc: Option<Arc<BTreeSet<Sym>>> = None;
    for s in sets {
        if s.is_empty() {
            continue;
        }
        match &mut acc {
            None => acc = Some(s.clone()),
            Some(a) => {
                if !s.iter().all(|x| a.contains(x)) {
                    Arc::make_mut(a).extend(s.iter().copied());
                }
            }
        }
    }
    acc.unwrap_or_else(empty_set)
}

fn global() -> &'static Mutex<Interner> {
    static GLOBAL: OnceLock<Mutex<Interner>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Interner::new()))
}

impl Interner {
    fn new() -> Self {
        let mut it = Interner {
            terms: Vec::new(),
            formulas: Vec::new(),
            term_dedup: HashMap::new(),
            formula_dedup: HashMap::new(),
            true_id: FormulaId(0),
            false_id: FormulaId(1),
            subst_envs: HashMap::new(),
            rename_envs: HashMap::new(),
            rel_ctxs: HashMap::new(),
            fun_ctxs: HashMap::new(),
            memo_subst: HashMap::new(),
            memo_subst_term: HashMap::new(),
            memo_subst_const: HashMap::new(),
            memo_subst_const_term: HashMap::new(),
            memo_rename: HashMap::new(),
            memo_rename_term: HashMap::new(),
            memo_rw_rel: HashMap::new(),
            memo_rw_rel_term: HashMap::new(),
            memo_rw_fun: HashMap::new(),
            memo_rw_fun_term: HashMap::new(),
            memo_nnf: HashMap::new(),
            memo_ite: HashMap::new(),
            memo_mentions: HashMap::new(),
            memo_mentions_term: HashMap::new(),
            memo_ea: HashMap::new(),
            memo_uni: HashMap::new(),
            memo_prenex: HashMap::new(),
            cache_hits: 0,
            cache_misses: 0,
        };
        let t = it.mk(FormulaNode::True);
        let f = it.mk(FormulaNode::False);
        it.true_id = t;
        it.false_id = f;
        it
    }

    /// Runs `f` with exclusive access to the process-global interner.
    ///
    /// The lock is **not** reentrant: code inside the closure must use the
    /// `&mut Interner` it is given and never call the module-level wrappers
    /// (or any tree-level API that delegates to them, such as
    /// `subst::subst_vars`).
    pub fn with<R>(f: impl FnOnce(&mut Interner) -> R) -> R {
        let mut guard = global().lock().expect("interner poisoned");
        f(&mut guard)
    }

    // ------------------------------------------------------------------
    // Raw hash-consing constructors and accessors.
    // ------------------------------------------------------------------

    /// Interns a raw term node.
    pub fn mk_term(&mut self, node: TermNode) -> TermId {
        if let Some(&id) = self.term_dedup.get(&node) {
            self.cache_hits += 1;
            return id;
        }
        self.cache_misses += 1;
        let (vars, has_ite) = match &node {
            TermNode::Var(v) => (Arc::new(BTreeSet::from([*v])), false),
            TermNode::App(_, args) => (
                union_sets(args.iter().map(|a| &self.terms[a.index()].vars)),
                args.iter().any(|a| self.terms[a.index()].has_ite),
            ),
            TermNode::Ite(c, a, b) => (
                union_sets([
                    &self.formulas[c.index()].free,
                    &self.terms[a.index()].vars,
                    &self.terms[b.index()].vars,
                ]),
                true,
            ),
        };
        let id = TermId(u32::try_from(self.terms.len()).expect("term arena overflow"));
        self.terms.push(TermData {
            node: node.clone(),
            vars,
            has_ite,
        });
        self.term_dedup.insert(node, id);
        id
    }

    /// Interns a raw formula node. No normalization: use the smart
    /// constructors ([`Interner::and`], [`Interner::not`], ...) where the
    /// tree code used `Formula::and` etc.
    pub fn mk(&mut self, node: FormulaNode) -> FormulaId {
        if let Some(&id) = self.formula_dedup.get(&node) {
            self.cache_hits += 1;
            return id;
        }
        self.cache_misses += 1;
        let (free, all_vars, literals) = match &node {
            FormulaNode::True | FormulaNode::False => (empty_set(), empty_set(), 0),
            FormulaNode::Rel(_, args) => {
                let vs = union_sets(args.iter().map(|a| &self.terms[a.index()].vars));
                (vs.clone(), vs, 1)
            }
            FormulaNode::Eq(a, b) => {
                let vs = union_sets([&self.terms[a.index()].vars, &self.terms[b.index()].vars]);
                (vs.clone(), vs, 1)
            }
            FormulaNode::Not(g) => {
                let d = &self.formulas[g.index()];
                (d.free.clone(), d.all_vars.clone(), d.literals)
            }
            FormulaNode::And(fs) | FormulaNode::Or(fs) => (
                union_sets(fs.iter().map(|g| &self.formulas[g.index()].free)),
                union_sets(fs.iter().map(|g| &self.formulas[g.index()].all_vars)),
                fs.iter().map(|g| self.formulas[g.index()].literals).sum(),
            ),
            FormulaNode::Implies(a, b) | FormulaNode::Iff(a, b) => (
                union_sets([
                    &self.formulas[a.index()].free,
                    &self.formulas[b.index()].free,
                ]),
                union_sets([
                    &self.formulas[a.index()].all_vars,
                    &self.formulas[b.index()].all_vars,
                ]),
                self.formulas[a.index()].literals + self.formulas[b.index()].literals,
            ),
            FormulaNode::Forall(bs, g) | FormulaNode::Exists(bs, g) => {
                let d = &self.formulas[g.index()];
                let free = if bs.iter().any(|b| d.free.contains(&b.var)) {
                    let mut s = (*d.free).clone();
                    for b in bs {
                        s.remove(&b.var);
                    }
                    Arc::new(s)
                } else {
                    d.free.clone()
                };
                let mut av = (*d.all_vars).clone();
                av.extend(bs.iter().map(|b| b.var));
                (free, Arc::new(av), d.literals)
            }
        };
        let id = FormulaId(u32::try_from(self.formulas.len()).expect("formula arena overflow"));
        self.formulas.push(FormulaData {
            node: node.clone(),
            free,
            all_vars,
            literals,
        });
        self.formula_dedup.insert(node, id);
        id
    }

    /// The node of an interned formula.
    pub fn node(&self, f: FormulaId) -> &FormulaNode {
        &self.formulas[f.index()].node
    }

    /// The node of an interned term.
    pub fn term_node(&self, t: TermId) -> &TermNode {
        &self.terms[t.index()].node
    }

    /// The id of `true`.
    pub fn true_id(&self) -> FormulaId {
        self.true_id
    }

    /// The id of `false`.
    pub fn false_id(&self) -> FormulaId {
        self.false_id
    }

    /// Cached free variables of a formula.
    pub fn free_vars(&self, f: FormulaId) -> Arc<BTreeSet<Sym>> {
        self.formulas[f.index()].free.clone()
    }

    /// Cached set of all variable names (free or bound) of a formula.
    pub fn all_vars(&self, f: FormulaId) -> Arc<BTreeSet<Sym>> {
        self.formulas[f.index()].all_vars.clone()
    }

    /// Cached free variables of a term.
    pub fn term_vars(&self, t: TermId) -> Arc<BTreeSet<Sym>> {
        self.terms[t.index()].vars.clone()
    }

    /// Cached literal occurrence count.
    pub fn literal_count(&self, f: FormulaId) -> usize {
        self.formulas[f.index()].literals
    }

    /// Whether the term contains an `ite`.
    pub fn term_has_ite(&self, t: TermId) -> bool {
        self.terms[t.index()].has_ite
    }

    /// `(hits, misses)` of the hash-consing tables, cumulative for the
    /// process. The telemetry layer reports the hit rate per profile run
    /// by differencing two snapshots.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache_hits, self.cache_misses)
    }

    // ------------------------------------------------------------------
    // Lossless bridges.
    // ------------------------------------------------------------------

    /// Interns a tree term, variant for variant.
    pub fn intern_term(&mut self, t: &Term) -> TermId {
        match t {
            Term::Var(v) => self.mk_term(TermNode::Var(*v)),
            Term::App(f, args) => {
                let a: Vec<TermId> = args.iter().map(|x| self.intern_term(x)).collect();
                self.mk_term(TermNode::App(*f, a))
            }
            Term::Ite(c, a, b) => {
                let c = self.intern(c);
                let a = self.intern_term(a);
                let b = self.intern_term(b);
                self.mk_term(TermNode::Ite(c, a, b))
            }
        }
    }

    /// Interns a tree formula, variant for variant (no normalization), so
    /// `resolve(intern(f)) == f`.
    pub fn intern(&mut self, f: &Formula) -> FormulaId {
        match f {
            Formula::True => self.true_id,
            Formula::False => self.false_id,
            Formula::Rel(r, args) => {
                let a: Vec<TermId> = args.iter().map(|x| self.intern_term(x)).collect();
                self.mk(FormulaNode::Rel(*r, a))
            }
            Formula::Eq(a, b) => {
                let a = self.intern_term(a);
                let b = self.intern_term(b);
                self.mk(FormulaNode::Eq(a, b))
            }
            Formula::Not(g) => {
                let g = self.intern(g);
                self.mk(FormulaNode::Not(g))
            }
            Formula::And(fs) => {
                let gs: Vec<FormulaId> = fs.iter().map(|g| self.intern(g)).collect();
                self.mk(FormulaNode::And(gs))
            }
            Formula::Or(fs) => {
                let gs: Vec<FormulaId> = fs.iter().map(|g| self.intern(g)).collect();
                self.mk(FormulaNode::Or(gs))
            }
            Formula::Implies(a, b) => {
                let a = self.intern(a);
                let b = self.intern(b);
                self.mk(FormulaNode::Implies(a, b))
            }
            Formula::Iff(a, b) => {
                let a = self.intern(a);
                let b = self.intern(b);
                self.mk(FormulaNode::Iff(a, b))
            }
            Formula::Forall(bs, g) => {
                let g = self.intern(g);
                self.mk(FormulaNode::Forall(bs.clone(), g))
            }
            Formula::Exists(bs, g) => {
                let g = self.intern(g);
                self.mk(FormulaNode::Exists(bs.clone(), g))
            }
        }
    }

    /// Rebuilds the tree term.
    pub fn resolve_term(&self, t: TermId) -> Term {
        match &self.terms[t.index()].node {
            TermNode::Var(v) => Term::Var(*v),
            TermNode::App(f, args) => {
                Term::App(*f, args.iter().map(|a| self.resolve_term(*a)).collect())
            }
            TermNode::Ite(c, a, b) => Term::Ite(
                Box::new(self.resolve(*c)),
                Box::new(self.resolve_term(*a)),
                Box::new(self.resolve_term(*b)),
            ),
        }
    }

    /// Rebuilds the tree formula, variant for variant.
    pub fn resolve(&self, f: FormulaId) -> Formula {
        match &self.formulas[f.index()].node {
            FormulaNode::True => Formula::True,
            FormulaNode::False => Formula::False,
            FormulaNode::Rel(r, args) => {
                Formula::Rel(*r, args.iter().map(|a| self.resolve_term(*a)).collect())
            }
            FormulaNode::Eq(a, b) => Formula::Eq(self.resolve_term(*a), self.resolve_term(*b)),
            FormulaNode::Not(g) => Formula::Not(Box::new(self.resolve(*g))),
            FormulaNode::And(fs) => Formula::And(fs.iter().map(|g| self.resolve(*g)).collect()),
            FormulaNode::Or(fs) => Formula::Or(fs.iter().map(|g| self.resolve(*g)).collect()),
            FormulaNode::Implies(a, b) => {
                Formula::Implies(Box::new(self.resolve(*a)), Box::new(self.resolve(*b)))
            }
            FormulaNode::Iff(a, b) => {
                Formula::Iff(Box::new(self.resolve(*a)), Box::new(self.resolve(*b)))
            }
            FormulaNode::Forall(bs, g) => Formula::Forall(bs.clone(), Box::new(self.resolve(*g))),
            FormulaNode::Exists(bs, g) => Formula::Exists(bs.clone(), Box::new(self.resolve(*g))),
        }
    }

    // ------------------------------------------------------------------
    // Smart constructors (exact ports of the `Formula` ones).
    // ------------------------------------------------------------------

    /// A logical variable term.
    pub fn var(&mut self, v: Sym) -> TermId {
        self.mk_term(TermNode::Var(v))
    }

    /// A constant / program variable term.
    pub fn cst(&mut self, name: Sym) -> TermId {
        self.mk_term(TermNode::App(name, Vec::new()))
    }

    /// A function application term.
    pub fn app(&mut self, f: Sym, args: Vec<TermId>) -> TermId {
        self.mk_term(TermNode::App(f, args))
    }

    /// A relation atom.
    pub fn rel(&mut self, r: Sym, args: Vec<TermId>) -> FormulaId {
        self.mk(FormulaNode::Rel(r, args))
    }

    /// An equality atom.
    pub fn eq(&mut self, a: TermId, b: TermId) -> FormulaId {
        self.mk(FormulaNode::Eq(a, b))
    }

    /// Negation, simplifying double negations and constants (mirror of
    /// [`Formula::not`]).
    pub fn not(&mut self, f: FormulaId) -> FormulaId {
        match &self.formulas[f.index()].node {
            FormulaNode::True => self.false_id,
            FormulaNode::False => self.true_id,
            FormulaNode::Not(inner) => *inner,
            _ => self.mk(FormulaNode::Not(f)),
        }
    }

    /// Flattening conjunction (mirror of [`Formula::and`]).
    pub fn and(&mut self, fs: impl IntoIterator<Item = FormulaId>) -> FormulaId {
        let mut out: Vec<FormulaId> = Vec::new();
        for f in fs {
            match &self.formulas[f.index()].node {
                FormulaNode::True => {}
                FormulaNode::False => return self.false_id,
                FormulaNode::And(inner) => out.extend(inner.iter().copied()),
                _ => out.push(f),
            }
        }
        match out.len() {
            0 => self.true_id,
            1 => out[0],
            _ => self.mk(FormulaNode::And(out)),
        }
    }

    /// Flattening disjunction (mirror of [`Formula::or`]).
    pub fn or(&mut self, fs: impl IntoIterator<Item = FormulaId>) -> FormulaId {
        let mut out: Vec<FormulaId> = Vec::new();
        for f in fs {
            match &self.formulas[f.index()].node {
                FormulaNode::False => {}
                FormulaNode::True => return self.true_id,
                FormulaNode::Or(inner) => out.extend(inner.iter().copied()),
                _ => out.push(f),
            }
        }
        match out.len() {
            0 => self.false_id,
            1 => out[0],
            _ => self.mk(FormulaNode::Or(out)),
        }
    }

    /// Implication with constant simplification (mirror of
    /// [`Formula::implies`]).
    pub fn implies(&mut self, lhs: FormulaId, rhs: FormulaId) -> FormulaId {
        if lhs == self.true_id {
            return rhs;
        }
        if lhs == self.false_id || rhs == self.true_id {
            return self.true_id;
        }
        if rhs == self.false_id {
            return self.not(lhs);
        }
        self.mk(FormulaNode::Implies(lhs, rhs))
    }

    /// Bi-implication with constant simplification (mirror of
    /// [`Formula::iff`]).
    pub fn iff(&mut self, lhs: FormulaId, rhs: FormulaId) -> FormulaId {
        if lhs == self.true_id {
            return rhs;
        }
        if rhs == self.true_id {
            return lhs;
        }
        if lhs == self.false_id {
            return self.not(rhs);
        }
        if rhs == self.false_id {
            return self.not(lhs);
        }
        self.mk(FormulaNode::Iff(lhs, rhs))
    }

    /// Universal quantification with nested-quantifier merging (mirror of
    /// [`Formula::forall`]).
    pub fn forall(&mut self, bindings: Vec<Binding>, body: FormulaId) -> FormulaId {
        if bindings.is_empty() {
            return body;
        }
        if body == self.true_id {
            return self.true_id;
        }
        if body == self.false_id {
            return self.false_id;
        }
        let merged = match &self.formulas[body.index()].node {
            FormulaNode::Forall(inner, b) => Some((inner.clone(), *b)),
            _ => None,
        };
        match merged {
            Some((inner, b)) => {
                let mut bs = bindings;
                bs.extend(inner);
                self.mk(FormulaNode::Forall(bs, b))
            }
            None => self.mk(FormulaNode::Forall(bindings, body)),
        }
    }

    /// Existential quantification with nested-quantifier merging (mirror of
    /// [`Formula::exists`]).
    pub fn exists(&mut self, bindings: Vec<Binding>, body: FormulaId) -> FormulaId {
        if bindings.is_empty() {
            return body;
        }
        if body == self.true_id {
            return self.true_id;
        }
        if body == self.false_id {
            return self.false_id;
        }
        let merged = match &self.formulas[body.index()].node {
            FormulaNode::Exists(inner, b) => Some((inner.clone(), *b)),
            _ => None,
        };
        match merged {
            Some((inner, b)) => {
                let mut bs = bindings;
                bs.extend(inner);
                self.mk(FormulaNode::Exists(bs, b))
            }
            None => self.mk(FormulaNode::Exists(bindings, body)),
        }
    }

    /// The conjuncts of a top-level conjunction.
    pub fn conjuncts(&self, f: FormulaId) -> Vec<FormulaId> {
        match &self.formulas[f.index()].node {
            FormulaNode::And(fs) => fs.clone(),
            _ => vec![f],
        }
    }

    /// Whether the formula mentions relation/function symbol `name`
    /// (memoized).
    pub fn mentions(&mut self, f: FormulaId, name: Sym) -> bool {
        if let Some(&r) = self.memo_mentions.get(&(f, name)) {
            return r;
        }
        let node = self.formulas[f.index()].node.clone();
        let r = match node {
            FormulaNode::True | FormulaNode::False => false,
            FormulaNode::Rel(r, args) => {
                r == name || {
                    let mut found = false;
                    for t in args {
                        if self.term_mentions(t, name) {
                            found = true;
                            break;
                        }
                    }
                    found
                }
            }
            FormulaNode::Eq(a, b) => self.term_mentions(a, name) || self.term_mentions(b, name),
            FormulaNode::Not(g) | FormulaNode::Forall(_, g) | FormulaNode::Exists(_, g) => {
                self.mentions(g, name)
            }
            FormulaNode::And(fs) | FormulaNode::Or(fs) => {
                let mut found = false;
                for g in fs {
                    if self.mentions(g, name) {
                        found = true;
                        break;
                    }
                }
                found
            }
            FormulaNode::Implies(a, b) | FormulaNode::Iff(a, b) => {
                self.mentions(a, name) || self.mentions(b, name)
            }
        };
        self.memo_mentions.insert((f, name), r);
        r
    }

    /// Whether the term mentions function symbol or constant `name`
    /// (memoized).
    pub fn term_mentions(&mut self, t: TermId, name: Sym) -> bool {
        if let Some(&r) = self.memo_mentions_term.get(&(t, name)) {
            return r;
        }
        let node = self.terms[t.index()].node.clone();
        let r = match node {
            TermNode::Var(_) => false,
            TermNode::App(f, args) => {
                f == name || {
                    let mut found = false;
                    for a in args {
                        if self.term_mentions(a, name) {
                            found = true;
                            break;
                        }
                    }
                    found
                }
            }
            TermNode::Ite(c, a, b) => {
                self.mentions(c, name) || self.term_mentions(a, name) || self.term_mentions(b, name)
            }
        };
        self.memo_mentions_term.insert((t, name), r);
        r
    }
}

// ----------------------------------------------------------------------
// Module-level convenience wrappers (each takes the global lock once).
// ----------------------------------------------------------------------

/// Interns a tree formula into the global arena.
pub fn intern(f: &Formula) -> FormulaId {
    Interner::with(|it| it.intern(f))
}

/// Rebuilds the tree formula for an id in the global arena.
pub fn resolve(f: FormulaId) -> Formula {
    Interner::with(|it| it.resolve(f))
}

/// Interns a tree term into the global arena.
pub fn intern_term(t: &Term) -> TermId {
    Interner::with(|it| it.intern_term(t))
}

/// Rebuilds the tree term for an id in the global arena.
pub fn resolve_term(t: TermId) -> Term {
    Interner::with(|it| it.resolve_term(t))
}

/// The id of `Formula::True` in the global arena.
pub fn true_id() -> FormulaId {
    Interner::with(|it| it.true_id())
}

/// The id of `Formula::False` in the global arena.
pub fn false_id() -> FormulaId {
    Interner::with(|it| it.false_id())
}

/// `(hits, misses)` of the global hash-consing tables.
pub fn cache_stats() -> (u64, u64) {
    Interner::with(|it| it.cache_stats())
}

// ----------------------------------------------------------------------
// Substitution family: exact ports of `crate::subst` tree algorithms.
// ----------------------------------------------------------------------

impl Interner {
    /// Interns a substitution environment into a dense memo key.
    fn subst_env_key(&mut self, map: &BTreeMap<Sym, TermId>) -> u32 {
        let v: Vec<(Sym, TermId)> = map.iter().map(|(k, t)| (*k, *t)).collect();
        let next = u32::try_from(self.subst_envs.len()).expect("env table overflow");
        *self.subst_envs.entry(v).or_insert(next)
    }

    /// Substitutes logical variables in a term (port of
    /// `subst::subst_term_vars`).
    pub fn subst_term_vars(&mut self, t: TermId, map: &BTreeMap<Sym, TermId>) -> TermId {
        if map.is_empty() {
            return t;
        }
        let env = self.subst_env_key(map);
        self.subst_term_rec(t, map, env)
    }

    fn subst_term_rec(&mut self, t: TermId, map: &BTreeMap<Sym, TermId>, env: u32) -> TermId {
        if let Some(&r) = self.memo_subst_term.get(&(t, env)) {
            return r;
        }
        let node = self.terms[t.index()].node.clone();
        let out = match node {
            TermNode::Var(v) => map.get(&v).copied().unwrap_or(t),
            TermNode::App(f, args) => {
                let a: Vec<TermId> = args
                    .into_iter()
                    .map(|x| self.subst_term_rec(x, map, env))
                    .collect();
                self.mk_term(TermNode::App(f, a))
            }
            TermNode::Ite(c, a, b) => {
                let c = self.subst_rec(c, map, env);
                let a = self.subst_term_rec(a, map, env);
                let b = self.subst_term_rec(b, map, env);
                self.mk_term(TermNode::Ite(c, a, b))
            }
        };
        self.memo_subst_term.insert((t, env), out);
        out
    }

    /// Capture-avoiding substitution of logical variables by terms (port of
    /// `subst::subst_vars`, memoized by `(formula, environment)`).
    pub fn subst_vars(&mut self, f: FormulaId, map: &BTreeMap<Sym, TermId>) -> FormulaId {
        if map.is_empty() {
            return f;
        }
        let env = self.subst_env_key(map);
        self.subst_rec(f, map, env)
    }

    fn subst_rec(&mut self, f: FormulaId, map: &BTreeMap<Sym, TermId>, env: u32) -> FormulaId {
        if let Some(&r) = self.memo_subst.get(&(f, env)) {
            return r;
        }
        let node = self.formulas[f.index()].node.clone();
        let out = match node {
            FormulaNode::True | FormulaNode::False => f,
            FormulaNode::Rel(r, args) => {
                let a: Vec<TermId> = args
                    .into_iter()
                    .map(|t| self.subst_term_rec(t, map, env))
                    .collect();
                self.mk(FormulaNode::Rel(r, a))
            }
            FormulaNode::Eq(a, b) => {
                let a = self.subst_term_rec(a, map, env);
                let b = self.subst_term_rec(b, map, env);
                self.mk(FormulaNode::Eq(a, b))
            }
            FormulaNode::Not(g) => {
                let g = self.subst_rec(g, map, env);
                self.mk(FormulaNode::Not(g))
            }
            FormulaNode::And(fs) => {
                let gs: Vec<FormulaId> = fs
                    .into_iter()
                    .map(|g| self.subst_rec(g, map, env))
                    .collect();
                self.mk(FormulaNode::And(gs))
            }
            FormulaNode::Or(fs) => {
                let gs: Vec<FormulaId> = fs
                    .into_iter()
                    .map(|g| self.subst_rec(g, map, env))
                    .collect();
                self.mk(FormulaNode::Or(gs))
            }
            FormulaNode::Implies(a, b) => {
                let a = self.subst_rec(a, map, env);
                let b = self.subst_rec(b, map, env);
                self.mk(FormulaNode::Implies(a, b))
            }
            FormulaNode::Iff(a, b) => {
                let a = self.subst_rec(a, map, env);
                let b = self.subst_rec(b, map, env);
                self.mk(FormulaNode::Iff(a, b))
            }
            FormulaNode::Forall(bs, body) => {
                let (bs, body) = self.subst_under_binders(&bs, body, map);
                self.mk(FormulaNode::Forall(bs, body))
            }
            FormulaNode::Exists(bs, body) => {
                let (bs, body) = self.subst_under_binders(&bs, body, map);
                self.mk(FormulaNode::Exists(bs, body))
            }
        };
        self.memo_subst.insert((f, env), out);
        out
    }

    /// Port of `subst::subst_under_binders`: drop shadowed mappings, rename
    /// binders that would capture replacement variables (the cached
    /// `all_vars`/`term_vars` sets replace the tree walk over the body).
    fn subst_under_binders(
        &mut self,
        bs: &[Binding],
        body: FormulaId,
        map: &BTreeMap<Sym, TermId>,
    ) -> (Vec<Binding>, FormulaId) {
        let mut inner: BTreeMap<Sym, TermId> = map
            .iter()
            .filter(|(k, _)| !bs.iter().any(|b| &b.var == *k))
            .map(|(k, v)| (*k, *v))
            .collect();
        if inner.is_empty() {
            return (bs.to_vec(), body);
        }
        let mut replacement_vars: BTreeSet<Sym> = BTreeSet::new();
        for t in inner.values() {
            replacement_vars.extend(self.terms[t.index()].vars.iter().copied());
        }
        let mut used = replacement_vars.clone();
        used.extend(self.formulas[body.index()].all_vars.iter().copied());
        used.extend(inner.keys().copied());
        let mut new_bs = Vec::with_capacity(bs.len());
        for b in bs {
            if replacement_vars.contains(&b.var) {
                let fresh = fresh_name(b.var.as_str(), &mut used);
                let fv = self.var(fresh);
                inner.insert(b.var, fv);
                new_bs.push(Binding::new(fresh, b.sort));
            } else {
                new_bs.push(b.clone());
            }
        }
        let env = self.subst_env_key(&inner);
        let body = self.subst_rec(body, &inner, env);
        (new_bs, body)
    }

    /// Replaces the nullary function symbol `name` by `term`, renaming any
    /// binder that would capture a variable of `term` (port of
    /// `subst::subst_constant`, memoized by `(formula, name, term)`).
    pub fn subst_constant(&mut self, f: FormulaId, name: Sym, term: TermId) -> FormulaId {
        let tvars = self.terms[term.index()].vars.clone();
        self.subst_const_rec(f, name, term, &tvars)
    }

    fn subst_const_term(
        &mut self,
        t: TermId,
        name: Sym,
        term: TermId,
        tvars: &BTreeSet<Sym>,
    ) -> TermId {
        if let Some(&r) = self.memo_subst_const_term.get(&(t, name, term)) {
            return r;
        }
        let node = self.terms[t.index()].node.clone();
        let out = match node {
            TermNode::Var(_) => t,
            TermNode::App(g, args) if g == name && args.is_empty() => term,
            TermNode::App(g, args) => {
                let a: Vec<TermId> = args
                    .into_iter()
                    .map(|x| self.subst_const_term(x, name, term, tvars))
                    .collect();
                self.mk_term(TermNode::App(g, a))
            }
            TermNode::Ite(c, a, b) => {
                let c = self.subst_const_rec(c, name, term, tvars);
                let a = self.subst_const_term(a, name, term, tvars);
                let b = self.subst_const_term(b, name, term, tvars);
                self.mk_term(TermNode::Ite(c, a, b))
            }
        };
        self.memo_subst_const_term.insert((t, name, term), out);
        out
    }

    fn subst_const_rec(
        &mut self,
        f: FormulaId,
        name: Sym,
        term: TermId,
        tvars: &BTreeSet<Sym>,
    ) -> FormulaId {
        if let Some(&r) = self.memo_subst_const.get(&(f, name, term)) {
            return r;
        }
        let node = self.formulas[f.index()].node.clone();
        let out = match node {
            FormulaNode::True | FormulaNode::False => f,
            FormulaNode::Rel(r, args) => {
                let a: Vec<TermId> = args
                    .into_iter()
                    .map(|t| self.subst_const_term(t, name, term, tvars))
                    .collect();
                self.mk(FormulaNode::Rel(r, a))
            }
            FormulaNode::Eq(a, b) => {
                let a = self.subst_const_term(a, name, term, tvars);
                let b = self.subst_const_term(b, name, term, tvars);
                self.mk(FormulaNode::Eq(a, b))
            }
            FormulaNode::Not(g) => {
                let g = self.subst_const_rec(g, name, term, tvars);
                self.mk(FormulaNode::Not(g))
            }
            FormulaNode::And(fs) => {
                let gs: Vec<FormulaId> = fs
                    .into_iter()
                    .map(|g| self.subst_const_rec(g, name, term, tvars))
                    .collect();
                self.mk(FormulaNode::And(gs))
            }
            FormulaNode::Or(fs) => {
                let gs: Vec<FormulaId> = fs
                    .into_iter()
                    .map(|g| self.subst_const_rec(g, name, term, tvars))
                    .collect();
                self.mk(FormulaNode::Or(gs))
            }
            FormulaNode::Implies(a, b) => {
                let a = self.subst_const_rec(a, name, term, tvars);
                let b = self.subst_const_rec(b, name, term, tvars);
                self.mk(FormulaNode::Implies(a, b))
            }
            FormulaNode::Iff(a, b) => {
                let a = self.subst_const_rec(a, name, term, tvars);
                let b = self.subst_const_rec(b, name, term, tvars);
                self.mk(FormulaNode::Iff(a, b))
            }
            FormulaNode::Forall(bs, body) | FormulaNode::Exists(bs, body) => {
                let forall = matches!(self.formulas[f.index()].node, FormulaNode::Forall(..));
                if !self.mentions(f, name) {
                    f
                } else {
                    let needs_rename = bs.iter().any(|b| tvars.contains(&b.var));
                    let (bs, body) = if needs_rename {
                        let mut used = tvars.clone();
                        used.extend(self.formulas[body.index()].all_vars.iter().copied());
                        let mut renames = BTreeMap::new();
                        let mut new_bs = Vec::with_capacity(bs.len());
                        for b in &bs {
                            if tvars.contains(&b.var) {
                                let fresh = fresh_name(b.var.as_str(), &mut used);
                                let fv = self.var(fresh);
                                renames.insert(b.var, fv);
                                new_bs.push(Binding::new(fresh, b.sort));
                            } else {
                                new_bs.push(b.clone());
                            }
                        }
                        let body = self.subst_vars(body, &renames);
                        (new_bs, body)
                    } else {
                        (bs, body)
                    };
                    let new_body = self.subst_const_rec(body, name, term, tvars);
                    if forall {
                        self.mk(FormulaNode::Forall(bs, new_body))
                    } else {
                        self.mk(FormulaNode::Exists(bs, new_body))
                    }
                }
            }
        };
        self.memo_subst_const.insert((f, name, term), out);
        out
    }

    /// Replaces every atom `r(s̄)` by `body[s̄/params]` (port of
    /// `subst::rewrite_relation`, memoized by `(formula, rewrite context)`).
    pub fn rewrite_relation(
        &mut self,
        f: FormulaId,
        rel: Sym,
        params: &[Sym],
        body: FormulaId,
    ) -> FormulaId {
        let key = (rel, params.to_vec(), body);
        let next = u32::try_from(self.rel_ctxs.len()).expect("ctx table overflow");
        let ctx = *self.rel_ctxs.entry(key).or_insert(next);
        self.rw_rel(f, rel, params, body, ctx)
    }

    fn rw_rel(
        &mut self,
        f: FormulaId,
        rel: Sym,
        params: &[Sym],
        body: FormulaId,
        ctx: u32,
    ) -> FormulaId {
        if let Some(&r) = self.memo_rw_rel.get(&(f, ctx)) {
            return r;
        }
        let node = self.formulas[f.index()].node.clone();
        let out = match node {
            FormulaNode::True | FormulaNode::False => f,
            FormulaNode::Rel(r, args) => {
                let args: Vec<TermId> = args
                    .into_iter()
                    .map(|t| self.rw_rel_term(t, rel, params, body, ctx))
                    .collect();
                if r == rel {
                    debug_assert_eq!(args.len(), params.len(), "arity checked upstream");
                    let map: BTreeMap<Sym, TermId> = params.iter().copied().zip(args).collect();
                    self.subst_vars(body, &map)
                } else {
                    self.mk(FormulaNode::Rel(r, args))
                }
            }
            FormulaNode::Eq(a, b) => {
                let a = self.rw_rel_term(a, rel, params, body, ctx);
                let b = self.rw_rel_term(b, rel, params, body, ctx);
                self.mk(FormulaNode::Eq(a, b))
            }
            FormulaNode::Not(g) => {
                let g = self.rw_rel(g, rel, params, body, ctx);
                self.mk(FormulaNode::Not(g))
            }
            FormulaNode::And(fs) => {
                let gs: Vec<FormulaId> = fs
                    .into_iter()
                    .map(|g| self.rw_rel(g, rel, params, body, ctx))
                    .collect();
                self.mk(FormulaNode::And(gs))
            }
            FormulaNode::Or(fs) => {
                let gs: Vec<FormulaId> = fs
                    .into_iter()
                    .map(|g| self.rw_rel(g, rel, params, body, ctx))
                    .collect();
                self.mk(FormulaNode::Or(gs))
            }
            FormulaNode::Implies(a, b) => {
                let a = self.rw_rel(a, rel, params, body, ctx);
                let b = self.rw_rel(b, rel, params, body, ctx);
                self.mk(FormulaNode::Implies(a, b))
            }
            FormulaNode::Iff(a, b) => {
                let a = self.rw_rel(a, rel, params, body, ctx);
                let b = self.rw_rel(b, rel, params, body, ctx);
                self.mk(FormulaNode::Iff(a, b))
            }
            FormulaNode::Forall(bs, g) => {
                let (bs, g) = self.rw_rel_binders(&bs, g, rel, params, body, ctx);
                self.mk(FormulaNode::Forall(bs, g))
            }
            FormulaNode::Exists(bs, g) => {
                let (bs, g) = self.rw_rel_binders(&bs, g, rel, params, body, ctx);
                self.mk(FormulaNode::Exists(bs, g))
            }
        };
        self.memo_rw_rel.insert((f, ctx), out);
        out
    }

    fn rw_rel_binders(
        &mut self,
        bs: &[Binding],
        g: FormulaId,
        rel: Sym,
        params: &[Sym],
        body: FormulaId,
        ctx: u32,
    ) -> (Vec<Binding>, FormulaId) {
        let mut body_free = (*self.formulas[body.index()].free).clone();
        for p in params {
            body_free.remove(p);
        }
        if bs.iter().any(|b| body_free.contains(&b.var)) {
            let mut used = body_free.clone();
            used.extend(self.formulas[g.index()].all_vars.iter().copied());
            let mut renames = BTreeMap::new();
            let mut new_bs = Vec::with_capacity(bs.len());
            for b in bs {
                if body_free.contains(&b.var) {
                    let fresh = fresh_name(b.var.as_str(), &mut used);
                    let fv = self.var(fresh);
                    renames.insert(b.var, fv);
                    new_bs.push(Binding::new(fresh, b.sort));
                } else {
                    new_bs.push(b.clone());
                }
            }
            let g = self.subst_vars(g, &renames);
            let g = self.rw_rel(g, rel, params, body, ctx);
            (new_bs, g)
        } else {
            let g = self.rw_rel(g, rel, params, body, ctx);
            (bs.to_vec(), g)
        }
    }

    fn rw_rel_term(
        &mut self,
        t: TermId,
        rel: Sym,
        params: &[Sym],
        body: FormulaId,
        ctx: u32,
    ) -> TermId {
        if let Some(&r) = self.memo_rw_rel_term.get(&(t, ctx)) {
            return r;
        }
        let node = self.terms[t.index()].node.clone();
        let out = match node {
            TermNode::Var(_) => t,
            TermNode::App(g, args) => {
                let a: Vec<TermId> = args
                    .into_iter()
                    .map(|x| self.rw_rel_term(x, rel, params, body, ctx))
                    .collect();
                self.mk_term(TermNode::App(g, a))
            }
            TermNode::Ite(c, a, b) => {
                let c = self.rw_rel(c, rel, params, body, ctx);
                let a = self.rw_rel_term(a, rel, params, body, ctx);
                let b = self.rw_rel_term(b, rel, params, body, ctx);
                self.mk_term(TermNode::Ite(c, a, b))
            }
        };
        self.memo_rw_rel_term.insert((t, ctx), out);
        out
    }

    /// Replaces every application `func(s̄)` by `body[s̄/params]`
    /// simultaneously (port of `subst::rewrite_function`, memoized).
    pub fn rewrite_function(
        &mut self,
        f: FormulaId,
        func: Sym,
        params: &[Sym],
        body: TermId,
    ) -> FormulaId {
        let key = (func, params.to_vec(), body);
        let next = u32::try_from(self.fun_ctxs.len()).expect("ctx table overflow");
        let ctx = *self.fun_ctxs.entry(key).or_insert(next);
        self.rw_fun(f, func, params, body, ctx)
    }

    fn rw_fun(
        &mut self,
        f: FormulaId,
        func: Sym,
        params: &[Sym],
        body: TermId,
        ctx: u32,
    ) -> FormulaId {
        if let Some(&r) = self.memo_rw_fun.get(&(f, ctx)) {
            return r;
        }
        let node = self.formulas[f.index()].node.clone();
        let out = match node {
            FormulaNode::True | FormulaNode::False => f,
            FormulaNode::Rel(r, args) => {
                let a: Vec<TermId> = args
                    .into_iter()
                    .map(|t| self.rw_fun_term(t, func, params, body, ctx))
                    .collect();
                self.mk(FormulaNode::Rel(r, a))
            }
            FormulaNode::Eq(a, b) => {
                let a = self.rw_fun_term(a, func, params, body, ctx);
                let b = self.rw_fun_term(b, func, params, body, ctx);
                self.mk(FormulaNode::Eq(a, b))
            }
            FormulaNode::Not(g) => {
                let g = self.rw_fun(g, func, params, body, ctx);
                self.mk(FormulaNode::Not(g))
            }
            FormulaNode::And(fs) => {
                let gs: Vec<FormulaId> = fs
                    .into_iter()
                    .map(|g| self.rw_fun(g, func, params, body, ctx))
                    .collect();
                self.mk(FormulaNode::And(gs))
            }
            FormulaNode::Or(fs) => {
                let gs: Vec<FormulaId> = fs
                    .into_iter()
                    .map(|g| self.rw_fun(g, func, params, body, ctx))
                    .collect();
                self.mk(FormulaNode::Or(gs))
            }
            FormulaNode::Implies(a, b) => {
                let a = self.rw_fun(a, func, params, body, ctx);
                let b = self.rw_fun(b, func, params, body, ctx);
                self.mk(FormulaNode::Implies(a, b))
            }
            FormulaNode::Iff(a, b) => {
                let a = self.rw_fun(a, func, params, body, ctx);
                let b = self.rw_fun(b, func, params, body, ctx);
                self.mk(FormulaNode::Iff(a, b))
            }
            FormulaNode::Forall(bs, g) | FormulaNode::Exists(bs, g) => {
                let forall = matches!(self.formulas[f.index()].node, FormulaNode::Forall(..));
                let mut body_free = (*self.terms[body.index()].vars).clone();
                for p in params {
                    body_free.remove(p);
                }
                let (bs, g) = if bs.iter().any(|b| body_free.contains(&b.var)) {
                    let mut used = body_free.clone();
                    used.extend(self.formulas[g.index()].all_vars.iter().copied());
                    let mut renames = BTreeMap::new();
                    let mut new_bs = Vec::with_capacity(bs.len());
                    for b in &bs {
                        if body_free.contains(&b.var) {
                            let fresh = fresh_name(b.var.as_str(), &mut used);
                            let fv = self.var(fresh);
                            renames.insert(b.var, fv);
                            new_bs.push(Binding::new(fresh, b.sort));
                        } else {
                            new_bs.push(b.clone());
                        }
                    }
                    let g = self.subst_vars(g, &renames);
                    (new_bs, g)
                } else {
                    (bs, g)
                };
                let new_body = self.rw_fun(g, func, params, body, ctx);
                if forall {
                    self.mk(FormulaNode::Forall(bs, new_body))
                } else {
                    self.mk(FormulaNode::Exists(bs, new_body))
                }
            }
        };
        self.memo_rw_fun.insert((f, ctx), out);
        out
    }

    fn rw_fun_term(
        &mut self,
        t: TermId,
        func: Sym,
        params: &[Sym],
        body: TermId,
        ctx: u32,
    ) -> TermId {
        if let Some(&r) = self.memo_rw_fun_term.get(&(t, ctx)) {
            return r;
        }
        let node = self.terms[t.index()].node.clone();
        let out = match node {
            TermNode::Var(_) => t,
            TermNode::App(g, args) => {
                let args: Vec<TermId> = args
                    .into_iter()
                    .map(|x| self.rw_fun_term(x, func, params, body, ctx))
                    .collect();
                if g == func {
                    debug_assert_eq!(args.len(), params.len(), "arity checked upstream");
                    let map: BTreeMap<Sym, TermId> = params.iter().copied().zip(args).collect();
                    self.subst_term_vars(body, &map)
                } else {
                    self.mk_term(TermNode::App(g, args))
                }
            }
            TermNode::Ite(c, a, b) => {
                let c = self.rw_fun(c, func, params, body, ctx);
                let a = self.rw_fun_term(a, func, params, body, ctx);
                let b = self.rw_fun_term(b, func, params, body, ctx);
                self.mk_term(TermNode::Ite(c, a, b))
            }
        };
        self.memo_rw_fun_term.insert((t, ctx), out);
        out
    }

    /// Renames relation/function symbols (port of
    /// `ivy_rml::rename_symbols`; binders are untouched because symbol
    /// renaming cannot capture logical variables). Memoized persistently by
    /// `(formula, rename map)` — this is what collapses the transition
    /// compiler's repeated axiom re-renames into lookups.
    pub fn rename_symbols(&mut self, f: FormulaId, map: &BTreeMap<Sym, Sym>) -> FormulaId {
        if map.is_empty() {
            return f;
        }
        let v: Vec<(Sym, Sym)> = map.iter().map(|(k, t)| (*k, *t)).collect();
        let next = u32::try_from(self.rename_envs.len()).expect("env table overflow");
        let env = *self.rename_envs.entry(v).or_insert(next);
        self.rename_rec(f, map, env)
    }

    fn rename_rec(&mut self, f: FormulaId, map: &BTreeMap<Sym, Sym>, env: u32) -> FormulaId {
        if let Some(&r) = self.memo_rename.get(&(f, env)) {
            return r;
        }
        let node = self.formulas[f.index()].node.clone();
        let out = match node {
            FormulaNode::True | FormulaNode::False => f,
            FormulaNode::Rel(r, args) => {
                let r = map.get(&r).copied().unwrap_or(r);
                let a: Vec<TermId> = args
                    .into_iter()
                    .map(|t| self.rename_term_rec(t, map, env))
                    .collect();
                self.mk(FormulaNode::Rel(r, a))
            }
            FormulaNode::Eq(a, b) => {
                let a = self.rename_term_rec(a, map, env);
                let b = self.rename_term_rec(b, map, env);
                self.mk(FormulaNode::Eq(a, b))
            }
            FormulaNode::Not(g) => {
                let g = self.rename_rec(g, map, env);
                self.mk(FormulaNode::Not(g))
            }
            FormulaNode::And(fs) => {
                let gs: Vec<FormulaId> = fs
                    .into_iter()
                    .map(|g| self.rename_rec(g, map, env))
                    .collect();
                self.mk(FormulaNode::And(gs))
            }
            FormulaNode::Or(fs) => {
                let gs: Vec<FormulaId> = fs
                    .into_iter()
                    .map(|g| self.rename_rec(g, map, env))
                    .collect();
                self.mk(FormulaNode::Or(gs))
            }
            FormulaNode::Implies(a, b) => {
                let a = self.rename_rec(a, map, env);
                let b = self.rename_rec(b, map, env);
                self.mk(FormulaNode::Implies(a, b))
            }
            FormulaNode::Iff(a, b) => {
                let a = self.rename_rec(a, map, env);
                let b = self.rename_rec(b, map, env);
                self.mk(FormulaNode::Iff(a, b))
            }
            FormulaNode::Forall(bs, g) => {
                let g = self.rename_rec(g, map, env);
                self.mk(FormulaNode::Forall(bs, g))
            }
            FormulaNode::Exists(bs, g) => {
                let g = self.rename_rec(g, map, env);
                self.mk(FormulaNode::Exists(bs, g))
            }
        };
        self.memo_rename.insert((f, env), out);
        out
    }

    /// Term-level symbol renaming (port of `ivy_rml`'s `rename_term`).
    pub fn rename_term_symbols(&mut self, t: TermId, map: &BTreeMap<Sym, Sym>) -> TermId {
        if map.is_empty() {
            return t;
        }
        let v: Vec<(Sym, Sym)> = map.iter().map(|(k, s)| (*k, *s)).collect();
        let next = u32::try_from(self.rename_envs.len()).expect("env table overflow");
        let env = *self.rename_envs.entry(v).or_insert(next);
        self.rename_term_rec(t, map, env)
    }

    fn rename_term_rec(&mut self, t: TermId, map: &BTreeMap<Sym, Sym>, env: u32) -> TermId {
        if let Some(&r) = self.memo_rename_term.get(&(t, env)) {
            return r;
        }
        let node = self.terms[t.index()].node.clone();
        let out = match node {
            TermNode::Var(_) => t,
            TermNode::App(f, args) => {
                let f = map.get(&f).copied().unwrap_or(f);
                let a: Vec<TermId> = args
                    .into_iter()
                    .map(|x| self.rename_term_rec(x, map, env))
                    .collect();
                self.mk_term(TermNode::App(f, a))
            }
            TermNode::Ite(c, a, b) => {
                let c = self.rename_rec(c, map, env);
                let a = self.rename_term_rec(a, map, env);
                let b = self.rename_term_rec(b, map, env);
                self.mk_term(TermNode::Ite(c, a, b))
            }
        };
        self.memo_rename_term.insert((t, env), out);
        out
    }
}

// ----------------------------------------------------------------------
// Normal forms: exact ports of `crate::xform` tree algorithms.
// ----------------------------------------------------------------------

impl Interner {
    /// Negation normal form (port of `xform::nnf`, memoized by
    /// `(formula, polarity)`).
    pub fn nnf(&mut self, f: FormulaId) -> FormulaId {
        self.nnf_polarity(f, true)
    }

    fn nnf_polarity(&mut self, f: FormulaId, positive: bool) -> FormulaId {
        if let Some(&r) = self.memo_nnf.get(&(f, positive)) {
            return r;
        }
        let node = self.formulas[f.index()].node.clone();
        let out = match node {
            FormulaNode::True => {
                if positive {
                    self.true_id
                } else {
                    self.false_id
                }
            }
            FormulaNode::False => {
                if positive {
                    self.false_id
                } else {
                    self.true_id
                }
            }
            FormulaNode::Rel(..) | FormulaNode::Eq(..) => {
                if positive {
                    f
                } else {
                    self.mk(FormulaNode::Not(f))
                }
            }
            FormulaNode::Not(g) => self.nnf_polarity(g, !positive),
            FormulaNode::And(fs) => {
                let parts: Vec<FormulaId> = fs
                    .into_iter()
                    .map(|g| self.nnf_polarity(g, positive))
                    .collect();
                if positive {
                    self.and(parts)
                } else {
                    self.or(parts)
                }
            }
            FormulaNode::Or(fs) => {
                let parts: Vec<FormulaId> = fs
                    .into_iter()
                    .map(|g| self.nnf_polarity(g, positive))
                    .collect();
                if positive {
                    self.or(parts)
                } else {
                    self.and(parts)
                }
            }
            FormulaNode::Implies(a, b) => {
                if positive {
                    let na = self.nnf_polarity(a, false);
                    let pb = self.nnf_polarity(b, true);
                    self.or([na, pb])
                } else {
                    let pa = self.nnf_polarity(a, true);
                    let nb = self.nnf_polarity(b, false);
                    self.and([pa, nb])
                }
            }
            FormulaNode::Iff(a, b) => {
                let pa = self.nnf_polarity(a, true);
                let na = self.nnf_polarity(a, false);
                let pb = self.nnf_polarity(b, true);
                let nb = self.nnf_polarity(b, false);
                if positive {
                    let both = self.and([pa, pb]);
                    let neither = self.and([na, nb]);
                    self.or([both, neither])
                } else {
                    let left = self.and([pa, nb]);
                    let right = self.and([na, pb]);
                    self.or([left, right])
                }
            }
            FormulaNode::Forall(bs, g) => {
                let body = self.nnf_polarity(g, positive);
                if positive {
                    self.forall(bs, body)
                } else {
                    self.exists(bs, body)
                }
            }
            FormulaNode::Exists(bs, g) => {
                let body = self.nnf_polarity(g, positive);
                if positive {
                    self.exists(bs, body)
                } else {
                    self.forall(bs, body)
                }
            }
        };
        self.memo_nnf.insert((f, positive), out);
        out
    }

    /// Eliminates `ite` terms by case-splitting enclosing atoms (port of
    /// `xform::eliminate_ite`, memoized by id).
    pub fn eliminate_ite(&mut self, f: FormulaId) -> FormulaId {
        if let Some(&r) = self.memo_ite.get(&f) {
            return r;
        }
        let node = self.formulas[f.index()].node.clone();
        let out = match node {
            FormulaNode::True | FormulaNode::False => f,
            FormulaNode::Rel(..) | FormulaNode::Eq(..) => self.split_atom(f),
            FormulaNode::Not(g) => {
                let g = self.eliminate_ite(g);
                self.not(g)
            }
            FormulaNode::And(fs) => {
                let gs: Vec<FormulaId> = fs.into_iter().map(|g| self.eliminate_ite(g)).collect();
                self.and(gs)
            }
            FormulaNode::Or(fs) => {
                let gs: Vec<FormulaId> = fs.into_iter().map(|g| self.eliminate_ite(g)).collect();
                self.or(gs)
            }
            FormulaNode::Implies(a, b) => {
                let a = self.eliminate_ite(a);
                let b = self.eliminate_ite(b);
                self.implies(a, b)
            }
            FormulaNode::Iff(a, b) => {
                let a = self.eliminate_ite(a);
                let b = self.eliminate_ite(b);
                self.iff(a, b)
            }
            FormulaNode::Forall(bs, g) => {
                let g = self.eliminate_ite(g);
                self.forall(bs, g)
            }
            FormulaNode::Exists(bs, g) => {
                let g = self.eliminate_ite(g);
                self.exists(bs, g)
            }
        };
        self.memo_ite.insert(f, out);
        out
    }

    fn split_atom(&mut self, atom: FormulaId) -> FormulaId {
        let args: Vec<TermId> = match &self.formulas[atom.index()].node {
            FormulaNode::Rel(_, args) => args.clone(),
            FormulaNode::Eq(a, b) => vec![*a, *b],
            _ => unreachable!("split_atom only called on atoms"),
        };
        for (idx, t) in args.iter().enumerate() {
            if !self.terms[t.index()].has_ite {
                continue;
            }
            if let Some((cond, then_t, else_t)) = self.find_ite(*t) {
                let then_arg = self.replace_ite_once(args[idx], then_t);
                let else_arg = self.replace_ite_once(args[idx], else_t);
                let then_atom = self.replace_arg(atom, idx, then_arg);
                let else_atom = self.replace_arg(atom, idx, else_arg);
                let cond = self.eliminate_ite(cond);
                let then_split = self.split_atom(then_atom);
                let else_split = self.split_atom(else_atom);
                let ncond = self.not(cond);
                let pos = self.and([cond, then_split]);
                let neg = self.and([ncond, else_split]);
                return self.or([pos, neg]);
            }
        }
        atom
    }

    /// Finds the first (leftmost, outermost) `ite` in a term.
    fn find_ite(&self, t: TermId) -> Option<(FormulaId, TermId, TermId)> {
        match &self.terms[t.index()].node {
            TermNode::Var(_) => None,
            TermNode::App(_, args) => args.iter().find_map(|a| self.find_ite(*a)),
            TermNode::Ite(c, a, b) => Some((*c, *a, *b)),
        }
    }

    /// Replaces the first `ite` in `t` by `branch`.
    fn replace_ite_once(&mut self, t: TermId, branch: TermId) -> TermId {
        fn go(it: &mut Interner, t: TermId, branch: TermId, done: &mut bool) -> TermId {
            if *done {
                return t;
            }
            let node = it.terms[t.index()].node.clone();
            match node {
                TermNode::Var(_) => t,
                TermNode::App(f, args) => {
                    let a: Vec<TermId> =
                        args.into_iter().map(|x| go(it, x, branch, done)).collect();
                    it.mk_term(TermNode::App(f, a))
                }
                TermNode::Ite(..) => {
                    *done = true;
                    branch
                }
            }
        }
        let mut done = false;
        go(self, t, branch, &mut done)
    }

    fn replace_arg(&mut self, atom: FormulaId, idx: usize, new_arg: TermId) -> FormulaId {
        let node = self.formulas[atom.index()].node.clone();
        match node {
            FormulaNode::Rel(r, mut args) => {
                args[idx] = new_arg;
                self.mk(FormulaNode::Rel(r, args))
            }
            FormulaNode::Eq(a, b) => {
                if idx == 0 {
                    self.mk(FormulaNode::Eq(new_arg, b))
                } else {
                    self.mk(FormulaNode::Eq(a, new_arg))
                }
            }
            _ => unreachable!("replace_arg only called on atoms"),
        }
    }

    /// Prenex normal form (port of `xform::prenex`: NNF first, sibling
    /// prefixes merged ∃-blocks-first; memoized by input id — the whole
    /// computation is a pure function of the formula).
    pub fn prenex(&mut self, f: FormulaId) -> PrenexI {
        if let Some(p) = self.memo_prenex.get(&f) {
            return p.clone();
        }
        let n = self.nnf(f);
        let mut used: BTreeSet<Sym> = (*self.formulas[n.index()].free).clone();
        let mut p = self.prenex_rec(n, &mut used);
        normalize_blocks(&mut p.prefix);
        self.memo_prenex.insert(f, p.clone());
        p
    }

    fn prenex_rec(&mut self, f: FormulaId, used: &mut BTreeSet<Sym>) -> PrenexI {
        let node = self.formulas[f.index()].node.clone();
        match node {
            FormulaNode::Forall(bs, g) | FormulaNode::Exists(bs, g) => {
                let forall = matches!(self.formulas[f.index()].node, FormulaNode::Forall(..));
                let mut renames = BTreeMap::new();
                let mut fresh_bs = Vec::with_capacity(bs.len());
                for b in &bs {
                    let name = fresh_name(b.var.as_str(), used);
                    if name != b.var {
                        let fv = self.var(name);
                        renames.insert(b.var, fv);
                    }
                    fresh_bs.push(Binding::new(name, b.sort));
                }
                let body = if renames.is_empty() {
                    g
                } else {
                    self.subst_vars(g, &renames)
                };
                let mut inner = self.prenex_rec(body, used);
                let block = if forall {
                    Block::Forall(fresh_bs)
                } else {
                    Block::Exists(fresh_bs)
                };
                inner.prefix.insert(0, block);
                inner
            }
            FormulaNode::And(fs) => self.merge_siblings(&fs, used, true),
            FormulaNode::Or(fs) => self.merge_siblings(&fs, used, false),
            FormulaNode::Not(_)
            | FormulaNode::Rel(..)
            | FormulaNode::Eq(..)
            | FormulaNode::True
            | FormulaNode::False => PrenexI {
                prefix: Vec::new(),
                matrix: f,
            },
            FormulaNode::Implies(..) | FormulaNode::Iff(..) => {
                unreachable!("prenex_rec runs on NNF input with no -> or <->")
            }
        }
    }

    fn merge_siblings(
        &mut self,
        fs: &[FormulaId],
        used: &mut BTreeSet<Sym>,
        conj: bool,
    ) -> PrenexI {
        let mut children: Vec<PrenexI> = fs.iter().map(|g| self.prenex_rec(*g, used)).collect();
        let mut prefix = Vec::new();
        let mut want_exists = true;
        loop {
            let mut grabbed: Vec<Binding> = Vec::new();
            for child in &mut children {
                while child
                    .prefix
                    .first()
                    .is_some_and(|b| b.is_exists_block() == want_exists)
                {
                    let block = child.prefix.remove(0);
                    grabbed.extend(block.bindings_vec());
                }
            }
            let done = children.iter().all(|c| c.prefix.is_empty());
            if !grabbed.is_empty() {
                prefix.push(if want_exists {
                    Block::Exists(grabbed)
                } else {
                    Block::Forall(grabbed)
                });
            }
            if done {
                break;
            }
            want_exists = !want_exists;
        }
        let parts: Vec<FormulaId> = children.into_iter().map(|c| c.matrix).collect();
        let matrix = if conj {
            self.and(parts)
        } else {
            self.or(parts)
        };
        PrenexI { prefix, matrix }
    }

    /// Whether `f` is prenexable to `∃*∀*` (port of
    /// `xform::is_ea_sentence`; the per-node classification is cached).
    pub fn is_ea_sentence(&mut self, f: FormulaId) -> bool {
        let n = self.nnf(f);
        self.frag_ea(n)
    }

    /// Whether `f` is prenexable to `∀*∃*` (port of
    /// `xform::is_ae_sentence`).
    pub fn is_ae_sentence(&mut self, f: FormulaId) -> bool {
        let n = self.not(f);
        self.is_ea_sentence(n)
    }

    fn frag_ea(&mut self, f: FormulaId) -> bool {
        if let Some(&r) = self.memo_ea.get(&f) {
            return r;
        }
        let node = self.formulas[f.index()].node.clone();
        let r = match node {
            FormulaNode::And(fs) | FormulaNode::Or(fs) => {
                let mut all = true;
                for g in fs {
                    if !self.frag_ea(g) {
                        all = false;
                        break;
                    }
                }
                all
            }
            FormulaNode::Exists(_, g) => self.frag_ea(g),
            FormulaNode::Forall(_, g) => self.frag_uni(g),
            _ => true,
        };
        self.memo_ea.insert(f, r);
        r
    }

    fn frag_uni(&mut self, f: FormulaId) -> bool {
        if let Some(&r) = self.memo_uni.get(&f) {
            return r;
        }
        let node = self.formulas[f.index()].node.clone();
        let r = match node {
            FormulaNode::And(fs) | FormulaNode::Or(fs) => {
                let mut all = true;
                for g in fs {
                    if !self.frag_uni(g) {
                        all = false;
                        break;
                    }
                }
                all
            }
            FormulaNode::Forall(_, g) => self.frag_uni(g),
            FormulaNode::Exists(..) => false,
            _ => true,
        };
        self.memo_uni.insert(f, r);
        r
    }

    /// Skolemizes a closed `∃*∀*` sentence: outermost existentials become
    /// fresh constants registered into `sig` (port of `xform::skolemize`).
    ///
    /// Not memoized: the fresh constant names depend on the evolving
    /// signature.
    ///
    /// # Errors
    ///
    /// [`SkolemError::OpenFormula`] if the sentence has free variables;
    /// [`SkolemError::NotEA`] if an existential occurs under a universal.
    pub fn skolemize(
        &mut self,
        f: FormulaId,
        sig: &mut Signature,
    ) -> Result<SkolemizedI, SkolemError> {
        if let Some(v) = self.formulas[f.index()].free.iter().next() {
            return Err(SkolemError::OpenFormula(*v));
        }
        if !self.is_ea_sentence(f) {
            // Cold path: materialize the tree once to name the offending
            // quantifier pair in the diagnostic.
            let tree = self.resolve(f);
            let (universal, existential) = crate::xform::ae_alternation(&tree)
                .expect("non-EA sentence has an alternation witness");
            return Err(SkolemError::NotEA {
                universal,
                existential,
            });
        }
        let p = self.prenex(f);
        debug_assert!(p.is_ea(), "∃-first merge must realize the EA prefix");
        let mut constants = Vec::new();
        let mut matrix = p.matrix;
        let mut universal_prefix = Vec::new();
        for block in p.prefix {
            match block {
                Block::Exists(bs) => {
                    let mut map = BTreeMap::new();
                    for b in bs {
                        let name = fresh_constant_name(sig, b.var.as_str());
                        sig.add_constant(name, b.sort)
                            .expect("fresh name cannot clash");
                        let c = self.cst(name);
                        map.insert(b.var, c);
                        constants.push((name, b.sort));
                    }
                    matrix = self.subst_vars(matrix, &map);
                }
                Block::Forall(bs) => universal_prefix.push(Block::Forall(bs)),
            }
        }
        Ok(SkolemizedI {
            universal: PrenexI {
                prefix: universal_prefix,
                matrix,
            },
            constants,
            functions: Vec::new(),
        })
    }

    /// Skolemizes a closed sentence of *any* quantifier prefix: outermost
    /// existentials become constants as in [`Interner::skolemize`], while an
    /// existential under `n` universals becomes a fresh Skolem *function* of
    /// those `n` universally bound variables, registered into `sig`. The
    /// resulting signature is generally **not** stratified (e.g. `∀X:s. ∃Y:s`
    /// yields `sk : s -> s`), so the result is only usable by the
    /// bounded-instantiation pipeline, which grounds function applications up
    /// to a depth bound instead of relying on a finite closed universe.
    ///
    /// # Errors
    ///
    /// [`SkolemError::OpenFormula`] if the sentence has free variables. The
    /// `NotEA` case cannot occur.
    pub fn skolemize_bounded(
        &mut self,
        f: FormulaId,
        sig: &mut Signature,
    ) -> Result<SkolemizedI, SkolemError> {
        if let Some(v) = self.formulas[f.index()].free.iter().next() {
            return Err(SkolemError::OpenFormula(*v));
        }
        let p = self.prenex(f);
        let mut constants = Vec::new();
        let mut functions = Vec::new();
        let mut matrix = p.matrix;
        let mut universal_prefix = Vec::new();
        let mut universals: Vec<Binding> = Vec::new();
        for block in p.prefix {
            match block {
                Block::Exists(bs) => {
                    let mut map = BTreeMap::new();
                    for b in bs {
                        let name = fresh_constant_name(sig, b.var.as_str());
                        if universals.is_empty() {
                            sig.add_constant(name, b.sort)
                                .expect("fresh name cannot clash");
                            let c = self.cst(name);
                            map.insert(b.var, c);
                            constants.push((name, b.sort));
                        } else {
                            let arg_sorts: Vec<Sort> = universals.iter().map(|u| u.sort).collect();
                            sig.add_function(name, arg_sorts.clone(), b.sort)
                                .expect("fresh name cannot clash");
                            let args: Vec<TermId> =
                                universals.iter().map(|u| self.var(u.var)).collect();
                            let t = self.app(name, args);
                            map.insert(b.var, t);
                            functions.push((name, arg_sorts, b.sort));
                        }
                    }
                    matrix = self.subst_vars(matrix, &map);
                }
                Block::Forall(bs) => {
                    universals.extend(bs.iter().cloned());
                    universal_prefix.push(Block::Forall(bs));
                }
            }
        }
        Ok(SkolemizedI {
            universal: PrenexI {
                prefix: universal_prefix,
                matrix,
            },
            constants,
            functions,
        })
    }
}

impl Block {
    fn bindings_vec(&self) -> Vec<Binding> {
        match self {
            Block::Exists(b) | Block::Forall(b) => b.clone(),
        }
    }
}

/// Drops empty blocks and merges adjacent same-kind blocks (mirror of the
/// private `xform::normalize_blocks`).
fn normalize_blocks(prefix: &mut Vec<Block>) {
    let mut out: Vec<Block> = Vec::with_capacity(prefix.len());
    for block in prefix.drain(..) {
        let empty = match &block {
            Block::Exists(b) | Block::Forall(b) => b.is_empty(),
        };
        if empty {
            continue;
        }
        match (out.last_mut(), &block) {
            (Some(Block::Exists(a)), Block::Exists(b)) => a.extend(b.iter().cloned()),
            (Some(Block::Forall(a)), Block::Forall(b)) => a.extend(b.iter().cloned()),
            _ => out.push(block),
        }
    }
    *prefix = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_formula;

    fn roundtrip(src: &str) {
        let f = parse_formula(src).unwrap();
        let back = Interner::with(|it| {
            let id = it.intern(&f);
            let id2 = it.intern(&f);
            assert_eq!(id, id2, "hash-consing must dedup re-interned formulas");
            it.resolve(id)
        });
        assert_eq!(back, f, "resolve ∘ intern must be the identity");
    }

    #[test]
    fn intern_resolve_roundtrip() {
        for src in [
            "true",
            "leader(n)",
            "forall X:node, Y:node. leader(X) & leader(Y) -> X = Y",
            "exists I:id. pnd(I, n) | ~le(I, idf(n))",
            "p(ite(q, a, b))",
            "forall X:s. (p(X) <-> q(X))",
        ] {
            roundtrip(src);
        }
        // Raw nested structure the parser can't produce: an Iff over an
        // Exists, built directly — must survive unchanged (no smart-ctor
        // normalization on the bridge).
        let f = Formula::Iff(
            Box::new(parse_formula("p").unwrap()),
            Box::new(Formula::Exists(
                vec![Binding::new("Y", "s")],
                Box::new(parse_formula("q(Y)").unwrap()),
            )),
        );
        let back = Interner::with(|it| {
            let id = it.intern(&f);
            it.resolve(id)
        });
        assert_eq!(back, f);
    }

    #[test]
    fn cached_free_vars_match_tree() {
        let f = parse_formula("forall X:node. leader(X) & pnd(I, Y) & (exists Y:id. le(Y, I))")
            .unwrap();
        let tree_free = f.free_vars();
        let cached = Interner::with(|it| {
            let id = it.intern(&f);
            (*it.free_vars(id)).clone()
        });
        assert_eq!(cached, tree_free);
    }

    #[test]
    fn cached_all_vars_match_tree() {
        let f = parse_formula("forall X:s. le(X, Y) & (exists Z:s. le(Z, X))").unwrap();
        let mut tree_all = BTreeSet::new();
        crate::subst::all_var_names(&f, &mut tree_all);
        let cached = Interner::with(|it| {
            let id = it.intern(&f);
            (*it.all_vars(id)).clone()
        });
        assert_eq!(cached, tree_all);
    }

    #[test]
    fn literal_count_matches_tree() {
        let f = parse_formula("forall X:s. ~(p(X) & q(X)) | (r(X) -> s(X))").unwrap();
        let cached = Interner::with(|it| {
            let id = it.intern(&f);
            it.literal_count(id)
        });
        assert_eq!(cached, f.literal_count());
    }

    #[test]
    fn subst_vars_matches_tree_including_capture() {
        for (src, var, term) in [
            ("le(X, Y)", "X", Term::cst("a")),
            ("forall X:s. le(X, Y)", "X", Term::cst("a")),
            ("forall X:s. le(X, Y)", "Y", Term::var("X")),
        ] {
            let f = parse_formula(src).unwrap();
            let mut map = BTreeMap::new();
            map.insert(Sym::new(var), term.clone());
            let tree = crate::subst::subst_vars(&f, &map);
            let interned = Interner::with(|it| {
                let id = it.intern(&f);
                let m: BTreeMap<Sym, TermId> =
                    map.iter().map(|(k, v)| (*k, it.intern_term(v))).collect();
                let out = it.subst_vars(id, &m);
                it.resolve(out)
            });
            assert_eq!(interned, tree, "subst mismatch on {src}");
        }
    }

    #[test]
    fn nnf_matches_tree() {
        for src in [
            "~(p & (q -> r))",
            "~(forall X:s. p(X))",
            "(p <-> q) -> r",
            "~(p <-> (q | ~r))",
        ] {
            let f = parse_formula(src).unwrap();
            let tree = crate::xform::nnf(&f);
            let interned = Interner::with(|it| {
                let id = it.intern(&f);
                let out = it.nnf(id);
                it.resolve(out)
            });
            assert_eq!(interned, tree, "nnf mismatch on {src}");
        }
    }

    #[test]
    fn prenex_matches_tree() {
        for src in [
            "(exists X:s. forall Y:s. r(X, Y)) & (exists U:s. forall V:s. r(U, V))",
            "(forall X:s. p(X)) & (forall X:s. q(X))",
            "forall X:s. exists Y:s. r(X, Y)",
        ] {
            let f = parse_formula(src).unwrap();
            let tree = crate::xform::prenex(&f);
            let (prefix, matrix) = Interner::with(|it| {
                let id = it.intern(&f);
                let p = it.prenex(id);
                (p.prefix, it.resolve(p.matrix))
            });
            assert_eq!(prefix, tree.prefix, "prenex prefix mismatch on {src}");
            assert_eq!(matrix, tree.matrix, "prenex matrix mismatch on {src}");
        }
    }

    #[test]
    fn eliminate_ite_matches_tree() {
        for src in ["p(ite(q, a, b))", "p(ite(q, ite(r, a, b), c))"] {
            let f = parse_formula(src).unwrap();
            let tree = crate::xform::eliminate_ite(&f);
            let interned = Interner::with(|it| {
                let id = it.intern(&f);
                let out = it.eliminate_ite(id);
                it.resolve(out)
            });
            assert_eq!(interned, tree, "eliminate_ite mismatch on {src}");
        }
    }

    #[test]
    fn fragment_classification_matches_tree() {
        for src in [
            "exists X:s. forall Y:s. r(X, Y)",
            "forall X:s. exists Y:s. r(X, Y)",
            "(exists X:s. p(X)) & (forall Y:s. q(Y))",
        ] {
            let f = parse_formula(src).unwrap();
            let (ea, ae) = Interner::with(|it| {
                let id = it.intern(&f);
                (it.is_ea_sentence(id), it.is_ae_sentence(id))
            });
            assert_eq!(ea, crate::xform::is_ea_sentence(&f), "EA mismatch on {src}");
            assert_eq!(ae, crate::xform::is_ae_sentence(&f), "AE mismatch on {src}");
        }
    }

    #[test]
    fn skolemize_matches_tree() {
        let mk_sig = || {
            let mut sig = Signature::new();
            sig.add_sort("s").unwrap();
            sig.add_relation("r", ["s", "s"]).unwrap();
            sig
        };
        let f = parse_formula("exists X:s. forall Y:s. r(X, Y)").unwrap();
        let mut tree_sig = mk_sig();
        let tree = crate::xform::skolemize(&f, &mut tree_sig).unwrap();
        let mut int_sig = mk_sig();
        let (constants, prefix, matrix) = Interner::with(|it| {
            let id = it.intern(&f);
            let sk = it.skolemize(id, &mut int_sig).unwrap();
            (
                sk.constants,
                sk.universal.prefix,
                it.resolve(sk.universal.matrix),
            )
        });
        assert_eq!(constants, tree.constants);
        assert_eq!(prefix, tree.universal.prefix);
        assert_eq!(matrix, tree.universal.matrix);
    }

    #[test]
    fn rename_symbols_renames_heads_only() {
        let f = parse_formula("forall X:s. pnd(idf(X), n) -> leader(n)").unwrap();
        let mut map = BTreeMap::new();
        map.insert(Sym::new("pnd"), Sym::new("pnd__v1"));
        map.insert(Sym::new("n"), Sym::new("n__v1"));
        let out = Interner::with(|it| {
            let id = it.intern(&f);
            let r = it.rename_symbols(id, &map);
            it.resolve(r)
        });
        assert_eq!(
            out.to_string(),
            "forall X:s. pnd__v1(idf(X), n__v1) -> leader(n__v1)"
        );
    }
}
