//! Diagrams of partial structures and their induced conjectures
//! (Definitions 4 and 5 of the paper).
//!
//! The diagram `Diag(s)` of a partial structure existentially quantifies one
//! variable per *active* element, asserts pairwise distinctness (per sort),
//! and conjoins every defined fact. The induced conjecture `ϕ(s)` is the
//! universal formula equivalent to `¬Diag(s)`: it excludes every state that
//! contains `s` as a (partial) substructure.

use std::collections::BTreeMap;

use crate::formula::{Binding, Formula};
use crate::partial::{Fact, PartialStructure};
use crate::structure::Elem;
use crate::term::Term;
use crate::Sym;

/// The variable name used for element `e` in diagrams/conjectures:
/// uppercased sort name followed by the element index (e.g. `NODE0`).
/// Uppercase matters: the concrete syntax parses capitalised identifiers as
/// logical variables.
pub fn diagram_var(e: &Elem) -> Sym {
    Sym::new(format!("{}{}", e.sort.name().to_ascii_uppercase(), e.idx))
}

fn var_map(s: &PartialStructure) -> BTreeMap<Elem, Sym> {
    s.active_elements()
        .into_iter()
        .map(|e| {
            let v = diagram_var(&e);
            (e, v)
        })
        .collect()
}

fn fact_literal(fact: &Fact, vars: &BTreeMap<Elem, Sym>) -> Formula {
    let term = |e: &Elem| Term::Var(vars[e]);
    match fact {
        Fact::Rel { sym, tuple, value } => {
            let atom = Formula::rel(*sym, tuple.iter().map(term));
            if *value {
                atom
            } else {
                Formula::not(atom)
            }
        }
        Fact::Fun {
            sym,
            args,
            result,
            value,
        } => {
            let atom = Formula::eq(Term::app(*sym, args.iter().map(term)), term(result));
            if *value {
                atom
            } else {
                Formula::not(atom)
            }
        }
    }
}

fn distinctness(vars: &BTreeMap<Elem, Sym>) -> Vec<Formula> {
    let elems: Vec<&Elem> = vars.keys().collect();
    let mut out = Vec::new();
    for i in 0..elems.len() {
        for j in (i + 1)..elems.len() {
            // Distinctness is only meaningful within a sort.
            if elems[i].sort == elems[j].sort {
                out.push(Formula::neq(
                    Term::Var(vars[elems[i]]),
                    Term::Var(vars[elems[j]]),
                ));
            }
        }
    }
    out
}

fn bindings(vars: &BTreeMap<Elem, Sym>) -> Vec<Binding> {
    vars.iter().map(|(e, v)| Binding::new(*v, e.sort)).collect()
}

/// The diagram `Diag(s)` (Definition 4): an existential sentence satisfied
/// exactly by the states that contain `s` as a sub-configuration.
///
/// # Examples
///
/// ```
/// use ivy_fol::{Signature, Structure, PartialStructure, diagram};
/// use std::sync::Arc;
///
/// let mut sig = Signature::new();
/// sig.add_sort("node")?;
/// sig.add_relation("leader", ["node"])?;
/// let mut s = Structure::new(Arc::new(sig));
/// let n = s.add_element("node");
/// s.set_rel("leader", vec![n.clone()], true);
///
/// let mut p = PartialStructure::empty_over(&s);
/// p.define_rel("leader", vec![n], true);
/// assert_eq!(diagram(&p).to_string(), "exists NODE0:node. leader(NODE0)");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn diagram(s: &PartialStructure) -> Formula {
    let vars = var_map(s);
    let mut parts = distinctness(&vars);
    parts.extend(s.facts().iter().map(|f| fact_literal(f, &vars)));
    Formula::exists(bindings(&vars), Formula::and(parts))
}

/// The conjecture `ϕ(s)` associated with a partial structure
/// (Definition 5): the universal formula equivalent to `¬Diag(s)`.
///
/// By Lemma 4.2, any total structure that `s` generalizes falsifies the
/// conjecture; adding `ϕ(s)` to the candidate invariant therefore eliminates
/// the CTI that `s` was derived from.
pub fn conjecture(s: &PartialStructure) -> Formula {
    let vars = var_map(s);
    let mut parts = distinctness(&vars);
    parts.extend(s.facts().iter().map(|f| fact_literal(f, &vars)));
    Formula::forall(bindings(&vars), Formula::not(Formula::and(parts)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::Structure;
    use crate::{Signature, Sort};
    use std::sync::Arc;

    fn fig7_setting() -> (Structure, PartialStructure) {
        // Figure 7 of the paper: two nodes, two ids.
        let mut sig = Signature::new();
        sig.add_sort("node").unwrap();
        sig.add_sort("id").unwrap();
        sig.add_function("idf", ["node"], "id").unwrap();
        sig.add_relation("le", ["id", "id"]).unwrap();
        sig.add_relation("leader", ["node"]).unwrap();
        sig.add_relation("pnd", ["id", "node"]).unwrap();
        let mut s = Structure::new(Arc::new(sig));
        let n1 = s.add_element("node");
        let n2 = s.add_element("node");
        let i1 = s.add_element("id");
        let i2 = s.add_element("id");
        s.set_fun("idf", vec![n1.clone()], i1.clone());
        s.set_fun("idf", vec![n2.clone()], i2.clone());
        s.set_rel("le", vec![i1.clone(), i1.clone()], true);
        s.set_rel("le", vec![i2.clone(), i2.clone()], true);
        s.set_rel("le", vec![i1.clone(), i2.clone()], true);
        s.set_rel("leader", vec![n1.clone()], true);
        s.set_rel("pnd", vec![i2.clone(), n2.clone()], true);

        // Figure 7 (c): the generalization with only "node1 is a leader and
        // its id is le-below node2's id" retained.
        let mut p = PartialStructure::empty_over(&s);
        p.define_rel("leader", vec![n1.clone()], true);
        p.define_fun("idf", vec![n1.clone()], i1.clone());
        p.define_fun("idf", vec![n2.clone()], i2.clone());
        p.define_rel("le", vec![i1, i2], true);
        (s, p)
    }

    #[test]
    fn conjecture_matches_paper_c1_semantics() {
        let (cti, p) = fig7_setting();
        let c = conjecture(&p);
        // The conjecture is universal and closed.
        assert!(c.is_closed());
        assert!(matches!(c, Formula::Forall(..)));
        // The CTI it came from violates it (Lemma 4.2).
        assert!(!cti.eval_closed(&c).unwrap());
        // And the diagram is satisfied by the CTI.
        assert!(cti.eval_closed(&diagram(&p)).unwrap());
    }

    #[test]
    fn diagram_embeds_not_just_identity() {
        // A *larger* state containing the forbidden sub-configuration also
        // violates the conjecture: 3 nodes, node2 is leader with non-max id.
        let (cti, p) = fig7_setting();
        let sig = cti.signature().clone();
        let mut big = Structure::new(sig);
        let nodes: Vec<_> = (0..3).map(|_| big.add_element("node")).collect();
        let ids: Vec<_> = (0..3).map(|_| big.add_element("id")).collect();
        for (n, i) in nodes.iter().zip(&ids) {
            big.set_fun("idf", vec![n.clone()], i.clone());
        }
        // Total order id0 < id1 < id2.
        for a in 0..3 {
            for b in a..3 {
                big.set_rel("le", vec![ids[a].clone(), ids[b].clone()], true);
            }
        }
        big.set_rel("leader", vec![nodes[1].clone()], true);
        let c = conjecture(&p);
        assert!(!big.eval_closed(&c).unwrap(), "embedded violation detected");
    }

    #[test]
    fn more_general_partial_structure_gives_stronger_conjecture() {
        // ϕ(s2) ⇒ ϕ(s1) when s2 ⪯ s1: check on a sample of states.
        let (cti, p1) = fig7_setting();
        let mut p2 = p1.clone();
        // Generalize further: drop the le fact.
        p2.retain_facts(|f| f.symbol() != &Sym::new("le"));
        assert!(p2.generalizes(&p1));
        let (c1, c2) = (conjecture(&p1), conjecture(&p2));
        // On the CTI itself: c2 false there too (violates both).
        assert!(!cti.eval_closed(&c2).unwrap());
        // Any state satisfying c2 must satisfy c1; test the contrapositive on
        // a state violating c1 (the CTI): c2 is violated as well.
        assert!(!cti.eval_closed(&c1).unwrap());
    }

    #[test]
    fn distinctness_only_within_sorts() {
        let (_, p) = fig7_setting();
        let d = diagram(&p);
        let text = d.to_string();
        // NODE0 ~= NODE1 and ID0 ~= ID1 appear; no cross-sort disequality.
        assert!(text.contains("NODE0 ~= NODE1"));
        assert!(text.contains("ID0 ~= ID1"));
        assert!(!text.contains("NODE0 ~= ID"));
    }

    #[test]
    fn empty_partial_structure_conjecture_is_false() {
        // With no facts, Diag = true, so the conjecture is ~true = false.
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        let sig = Arc::new(sig);
        let s = Structure::new(sig.clone());
        let p = PartialStructure::empty_over(&s);
        assert_eq!(conjecture(&p), Formula::False);
        assert_eq!(diagram(&p), Formula::True);
        let _ = Sort::new("s");
    }

    #[test]
    fn conjecture_is_ea_negation() {
        let (_, p) = fig7_setting();
        let c = conjecture(&p);
        let pren = crate::prenex(&Formula::not(c));
        assert!(pren.is_ea(), "negated conjecture is ∃* (EPR-friendly)");
    }
}
