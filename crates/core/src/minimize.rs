//! Minimal-CTI search (Section 4.3, Algorithm 1 of the paper).
//!
//! Small CTIs are easier to understand and generalize better. The user picks
//! a tuple of [`Measure`]s; the search finds a CTI minimal in the induced
//! lexicographic order by conjoining cardinality constraints `ϕ_m(n)` —
//! themselves `∃*∀*` formulas — and growing `n` until satisfiable.

use ivy_epr::EprError;
use ivy_fol::{Binding, Formula, Sort, Sym, Term};

use crate::vc::{Conjecture, Cti, Verifier};

/// A minimization measure (Section 4.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Measure {
    /// Number of elements of a sort, `|D_S|`.
    SortSize(Sort),
    /// Number of positive tuples of a relation.
    PositiveTuples(Sym),
    /// Number of negative tuples of a relation.
    NegativeTuples(Sym),
}

impl Measure {
    /// The constraint `ϕ_m(n)`: "the value of this measure is at most `n`",
    /// as an `∃*∀*` sentence over the given signature.
    ///
    /// For a `k`-ary relation the paper's encoding is used:
    /// `∃x̄1..x̄n. ∀ȳ. r(ȳ) → ⋁ᵢ ȳ = x̄ᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if the measured relation is not declared.
    pub fn at_most(&self, sig: &ivy_fol::Signature, n: usize) -> Formula {
        match self {
            Measure::SortSize(sort) => {
                let ex: Vec<Binding> = (0..n)
                    .map(|i| Binding::new(format!("SZ{i}"), *sort))
                    .collect();
                let y = Binding::new("SZY", *sort);
                let body = Formula::or(
                    ex.iter()
                        .map(|b| Formula::eq(Term::var("SZY"), Term::Var(b.var))),
                );
                Formula::exists(ex, Formula::forall([y], body))
            }
            Measure::PositiveTuples(rel) | Measure::NegativeTuples(rel) => {
                let positive = matches!(self, Measure::PositiveTuples(_));
                let sorts = sig
                    .relation(rel)
                    .unwrap_or_else(|| panic!("unknown relation `{rel}` in measure"))
                    .to_vec();
                let arity = sorts.len();
                let mut ex = Vec::with_capacity(n * arity);
                for i in 0..n {
                    for (j, s) in sorts.iter().enumerate() {
                        ex.push(Binding::new(format!("T{i}_{j}"), *s));
                    }
                }
                let ys: Vec<Binding> = sorts
                    .iter()
                    .enumerate()
                    .map(|(j, s)| Binding::new(format!("TY{j}"), *s))
                    .collect();
                let atom = Formula::rel(*rel, ys.iter().map(|b| Term::Var(b.var)));
                let guard = if positive { atom } else { Formula::not(atom) };
                let matches_row = |i: usize| {
                    Formula::and((0..arity).map(|j| {
                        Formula::eq(Term::var(format!("TY{j}")), Term::var(format!("T{i}_{j}")))
                    }))
                };
                let body = Formula::implies(guard, Formula::or((0..n).map(matches_row)));
                Formula::exists(ex, Formula::forall(ys, body))
            }
        }
    }

    /// Evaluates the measure on a concrete structure (used by tests and to
    /// report minimization results).
    pub fn eval(&self, s: &ivy_fol::Structure) -> usize {
        match self {
            Measure::SortSize(sort) => s.domain_size(sort) as usize,
            Measure::PositiveTuples(rel) => s.rel_count(rel),
            Measure::NegativeTuples(rel) => {
                let sorts = s
                    .signature()
                    .relation(rel)
                    .expect("known relation")
                    .to_vec();
                let total: usize = sorts
                    .iter()
                    .map(|sort| s.domain_size(sort) as usize)
                    .product();
                total - s.rel_count(rel)
            }
        }
    }
}

impl<'p> Verifier<'p> {
    /// Finds a CTI minimal in the lexicographic order of `measures`
    /// (Algorithm 1). Returns `None` when the candidate invariant is
    /// inductive.
    ///
    /// Minimization applies to safety and consecution CTIs; an initiation
    /// CTI is returned unminimized (it signals a bad conjecture rather than
    /// a missing one).
    ///
    /// # Errors
    ///
    /// Propagates [`EprError`]. Measure constraints grow the Skolem universe
    /// slightly; over-tight instance limits may need raising.
    pub fn find_minimal_cti(
        &self,
        conjectures: &[Conjecture],
        measures: &[Measure],
    ) -> Result<Option<Cti>, EprError> {
        if let Some(cti) = self.check_initiation(conjectures)? {
            return Ok(Some(cti));
        }
        // Establish which check fails, then re-solve with growing
        // cardinality bounds. ψ_min accumulates per-measure constraints.
        let base_cti = match self.check_safety(conjectures)? {
            Some(cti) => cti,
            None => match self.check_consecution(conjectures)? {
                Some(cti) => cti,
                None => return Ok(None),
            },
        };
        let mut extra: Vec<Formula> = Vec::new();
        let mut best = base_cti;
        // Equality-heavy cardinality queries can be much harder than the
        // underlying CTI query; minimization is best-effort UX (a
        // non-minimal CTI is still a CTI). Each query runs under a
        // repair-round budget, each measure under a wall-clock budget, and
        // the search descends from the current witness value — one
        // (expensive) UNSAT query per measure instead of one per value.
        const ROUND_BUDGET: Option<usize> = Some(30);
        const MEASURE_BUDGET: std::time::Duration = std::time::Duration::from_secs(15);
        // One oracle handle carries the whole descent: the violation's frame
        // matches the inductiveness check that found it, and each candidate
        // bound below runs as a retirable constraint group. The oracle owns
        // the strategy — under `Fresh` the handle re-solves from scratch,
        // under the incremental strategies it recycles the grounding — so
        // minimization never branches on strategy. The violation kind and
        // conjecture never change across the descent (only the witness
        // shrinks), so the frame stays valid.
        let Some(mut session) =
            self.violation_session(conjectures, &best.violation, ROUND_BUDGET)?
        else {
            // The violation names no known safety case (cannot happen for a
            // CTI we just produced); return it unminimized.
            return Ok(Some(best));
        };
        for m in measures {
            let started = std::time::Instant::now();
            loop {
                if started.elapsed() > MEASURE_BUDGET {
                    break;
                }
                let current = m.eval(&best.state);
                if current == 0 {
                    break;
                }
                let constraint = m.at_most(&self.program().sig, current - 1);
                let mut candidate_extra = extra.clone();
                candidate_extra.push(constraint);
                match session.solve(&candidate_extra) {
                    Ok(Some(cti)) => best = cti,
                    Ok(None) => break,
                    Err(EprError::RepairLimit { .. })
                    | Err(EprError::TooManyInstances { .. })
                    | Err(EprError::Inconclusive(_)) => break,
                    Err(e) => return Err(e),
                }
            }
            // Pin this measure's value for the lexicographic order.
            extra.push(m.at_most(&self.program().sig, m.eval(&best.state)));
        }
        Ok(Some(best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_rml::{check_program, parse_program};

    /// Marking protocol where a CTI for "at most one marked" needs 2 marked
    /// nodes but solvers may return larger states.
    const SPREAD: &str = r#"
sort node
relation marked : node
relation junk : node
variable n : node
variable seed : node
safety seed_marked: marked(seed)
init { marked(X0) := X0 = seed; junk(X0) := false }
action mark { havoc n; marked.insert(n) }
action junkify { havoc n; junk.insert(n) }
"#;

    #[test]
    fn minimal_cti_shrinks_domain_and_relations() {
        let p = parse_program(SPREAD).unwrap();
        assert!(check_program(&p).is_empty());
        let v = Verifier::new(&p);
        let inv = vec![
            Conjecture::new("C0", ivy_fol::parse_formula("marked(seed)").unwrap()),
            Conjecture::new(
                "one",
                ivy_fol::parse_formula("forall X:node, Y:node. marked(X) & marked(Y) -> X = Y")
                    .unwrap(),
            ),
        ];
        let measures = [
            Measure::SortSize(Sort::new("node")),
            Measure::PositiveTuples(Sym::new("junk")),
            Measure::PositiveTuples(Sym::new("marked")),
        ];
        let cti = v.find_minimal_cti(&inv, &measures).unwrap().unwrap();
        // Minimal consecution CTI: one node (the seed, marked), marking a
        // second... with one node, mark(n) re-marks the seed and `one` still
        // holds; so two nodes are needed.
        assert_eq!(cti.state.domain_size(&Sort::new("node")), 2);
        assert_eq!(cti.state.rel_count(&Sym::new("junk")), 0);
        assert_eq!(cti.state.rel_count(&Sym::new("marked")), 1);
    }

    #[test]
    fn measures_evaluate_on_structures() {
        let p = parse_program(SPREAD).unwrap();
        let v = Verifier::new(&p);
        let cti = v
            .find_minimal_cti(
                &[Conjecture::new(
                    "C0",
                    ivy_fol::parse_formula("marked(seed)").unwrap(),
                )],
                &[],
            )
            .unwrap();
        assert!(cti.is_none(), "C0 alone is inductive for this program");
    }

    #[test]
    fn at_most_formulas_are_ea() {
        let p = parse_program(SPREAD).unwrap();
        for m in [
            Measure::SortSize(Sort::new("node")),
            Measure::PositiveTuples(Sym::new("marked")),
            Measure::NegativeTuples(Sym::new("marked")),
        ] {
            for n in 0..3 {
                let f = m.at_most(&p.sig, n);
                assert!(ivy_fol::is_ea_sentence(&f), "{f}");
                assert!(f.is_closed());
            }
        }
    }

    #[test]
    fn at_most_semantics() {
        use std::sync::Arc;
        let p = parse_program(SPREAD).unwrap();
        let mut s = ivy_fol::Structure::new(Arc::new(p.sig.clone()));
        let a = s.add_element("node");
        let b = s.add_element("node");
        s.set_fun("seed", vec![], a.clone());
        s.set_fun("n", vec![], a.clone());
        s.set_rel("marked", vec![a], true);
        s.set_rel("marked", vec![b], true);
        let m = Measure::PositiveTuples(Sym::new("marked"));
        assert!(!s.eval_closed(&m.at_most(&p.sig, 1)).unwrap());
        assert!(s.eval_closed(&m.at_most(&p.sig, 2)).unwrap());
        assert_eq!(m.eval(&s), 2);
        assert_eq!(Measure::NegativeTuples(Sym::new("marked")).eval(&s), 0);
        assert_eq!(Measure::SortSize(Sort::new("node")).eval(&s), 2);
    }
}
