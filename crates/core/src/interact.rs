//! The interactive search for a universal inductive invariant
//! (Figure 5 and Section 4.2 of the paper).
//!
//! The paper's graphical user interface boils down to a small set of choice
//! points, captured here by the [`User`] trait: examine a (minimal) CTI and
//! decide to strengthen / weaken / give up; pick an upper bound and a bound
//! `k` for *BMC + Auto Generalize*; accept or adjust the suggested
//! generalization. [`crate::users`] provides a scripted user (replaying the
//! paper's Figures 7–9 session) and an oracle user (an ideal user guided by
//! a known inductive invariant, used to reproduce Figure 14's G column).

use std::sync::Arc;

use ivy_epr::EprError;
use ivy_fol::{conjecture, PartialStructure};
use ivy_rml::Program;

use crate::bmc::Trace;
use crate::generalize::{AutoGen, Generalizer};
use crate::minimize::Measure;
use crate::oracle::Oracle;
use crate::vc::{Conjecture, Cti, Verifier};

/// Read-only view of the session handed to user callbacks.
#[derive(Debug)]
pub struct SessionCtx<'a> {
    /// The program under verification.
    pub program: &'a Program,
    /// The current candidate invariant.
    pub conjectures: &'a [Conjecture],
    /// 1-based CTI counter (the paper's G column counts these).
    pub iteration: usize,
}

/// The user's reaction to a CTI (the three options of Section 2.3).
#[derive(Debug)]
pub enum CtiDecision {
    /// The CTI is judged unreachable: strengthen by generalizing from it.
    Generalize {
        /// The coarse manual generalization `s_u` (Section 4.5).
        upper_bound: PartialStructure,
        /// The BMC bound `k` for auto-generalization.
        bound: usize,
    },
    /// Some conjectures are judged wrong: weaken by removing them.
    Weaken {
        /// Names of conjectures to remove.
        remove: Vec<String>,
    },
    /// Give up (e.g. the model itself needs fixing).
    Stop,
}

/// The user's reaction when their upper bound excluded a reachable state.
#[derive(Debug)]
pub enum TooStrongDecision {
    /// Try again with a less general upper bound or a different `k`.
    Retry {
        /// New upper bound.
        upper_bound: PartialStructure,
        /// New BMC bound.
        bound: usize,
    },
    /// Weaken the invariant instead.
    Weaken {
        /// Names of conjectures to remove.
        remove: Vec<String>,
    },
    /// Give up.
    Stop,
}

/// A generalization proposed by *BMC + Auto Generalize*.
#[derive(Clone, Debug)]
pub struct Proposal {
    /// The ⪯-smallest `k`-invariant generalization found.
    pub partial: PartialStructure,
    /// Its conjecture `ϕ(s_m)`.
    pub conjecture: ivy_fol::Formula,
    /// The upper bound it came from.
    pub upper_bound: PartialStructure,
}

/// The user's verdict on a proposal.
#[derive(Debug)]
pub enum ProposalDecision {
    /// Add `ϕ(s_m)` to the invariant.
    Accept,
    /// Auto-generalization went too far (a bogus conjecture): add the upper
    /// bound's own conjecture `ϕ(s_u)` instead.
    AcceptUpperBound,
    /// Try again with different parameters.
    Retry {
        /// New upper bound.
        upper_bound: PartialStructure,
        /// New BMC bound.
        bound: usize,
    },
    /// Give up.
    Stop,
}

/// The interactive participant. Every choice the paper's GUI offers is one
/// of these callbacks.
pub trait User {
    /// A (minimal) CTI was found; decide how to proceed.
    fn on_cti(&mut self, ctx: &SessionCtx<'_>, cti: &Cti) -> CtiDecision;

    /// The chosen upper bound excluded a reachable state; the trace shows
    /// how it is reached.
    fn on_too_strong(
        &mut self,
        ctx: &SessionCtx<'_>,
        attempted: &PartialStructure,
        trace: &Trace,
    ) -> TooStrongDecision;

    /// Auto-generalization succeeded; inspect and decide.
    fn on_proposal(&mut self, ctx: &SessionCtx<'_>, proposal: &Proposal) -> ProposalDecision;
}

/// How a session ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionOutcome {
    /// An inductive invariant was found: the program is safe.
    Proved,
    /// The user stopped.
    Stopped,
    /// The CTI budget ran out.
    OutOfBudget,
}

/// Counters reported by a session (the measurements behind Figure 14).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// CTIs shown to the user (the paper's G column counts CTIs and
    /// generalizations).
    pub ctis: usize,
    /// Auto-generalization runs.
    pub generalizations: usize,
    /// Conjectures accepted into the invariant.
    pub accepted: usize,
    /// Conjectures removed by weakening.
    pub weakened: usize,
}

/// An interactive invariant-search session (the loop of Figure 5).
///
/// The verifier and the generalizer share one [`Oracle`]: the inductiveness
/// frames grounded while finding a CTI stay pooled for the minimization
/// descent, and the generalizer's reachability frames stay warm across the
/// user's repeated generalization attempts.
pub struct Session<'p> {
    verifier: Verifier<'p>,
    generalizer: Generalizer<'p>,
    oracle: Arc<Oracle>,
    program: &'p Program,
    measures: Vec<Measure>,
    conjectures: Vec<Conjecture>,
    fresh_index: usize,
    stats: SessionStats,
}

impl<'p> Session<'p> {
    /// Starts a session from an initial conjecture set (commonly the safety
    /// properties, the paper's `C0`).
    pub fn new(
        program: &'p Program,
        initial: Vec<Conjecture>,
        measures: Vec<Measure>,
    ) -> Session<'p> {
        Session::with_oracle(program, initial, measures, Arc::new(Oracle::new()))
    }

    /// Starts a session whose engines issue every query through `oracle`.
    pub fn with_oracle(
        program: &'p Program,
        initial: Vec<Conjecture>,
        measures: Vec<Measure>,
        oracle: Arc<Oracle>,
    ) -> Session<'p> {
        let fresh_index = initial.len();
        Session {
            verifier: Verifier::with_oracle(program, oracle.clone()),
            generalizer: Generalizer::with_oracle(program, oracle.clone()),
            oracle,
            program,
            measures,
            conjectures: initial,
            fresh_index,
            stats: SessionStats::default(),
        }
    }

    /// Caps grounding size per query. Derives a reconfigured view of the
    /// shared oracle (cloning shares the session pool, so warm groundings
    /// survive the change).
    pub fn set_instance_limit(&mut self, limit: u64) {
        let mut o = Oracle::clone(&self.oracle);
        o.set_instance_limit(limit);
        let o = Arc::new(o);
        self.oracle = o.clone();
        self.verifier.set_oracle(o.clone());
        self.generalizer.set_oracle(o);
    }

    /// The session's shared oracle.
    pub fn oracle(&self) -> &Arc<Oracle> {
        &self.oracle
    }

    /// The current candidate invariant.
    pub fn conjectures(&self) -> &[Conjecture] {
        &self.conjectures
    }

    /// Session counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Runs the interactive loop until an inductive invariant is found, the
    /// user stops, or `max_ctis` counterexamples have been processed.
    ///
    /// # Errors
    ///
    /// Propagates [`EprError`].
    pub fn run(
        &mut self,
        user: &mut dyn User,
        max_ctis: usize,
    ) -> Result<SessionOutcome, EprError> {
        loop {
            let Some(cti) = self
                .verifier
                .find_minimal_cti(&self.conjectures, &self.measures)?
            else {
                return Ok(SessionOutcome::Proved);
            };
            self.stats.ctis += 1;
            if self.stats.ctis > max_ctis {
                return Ok(SessionOutcome::OutOfBudget);
            }
            let ctx = SessionCtx {
                program: self.program,
                conjectures: &self.conjectures,
                iteration: self.stats.ctis,
            };
            let mut decision = user.on_cti(&ctx, &cti);
            loop {
                match decision {
                    CtiDecision::Stop => return Ok(SessionOutcome::Stopped),
                    CtiDecision::Weaken { remove } => {
                        let before = self.conjectures.len();
                        self.conjectures.retain(|c| !remove.contains(&c.name));
                        self.stats.weakened += before - self.conjectures.len();
                        break;
                    }
                    CtiDecision::Generalize { upper_bound, bound } => {
                        self.stats.generalizations += 1;
                        match self.generalizer.auto_generalize(&upper_bound, bound)? {
                            AutoGen::TooStrong(trace) => {
                                let ctx = SessionCtx {
                                    program: self.program,
                                    conjectures: &self.conjectures,
                                    iteration: self.stats.ctis,
                                };
                                decision = match user.on_too_strong(&ctx, &upper_bound, &trace) {
                                    TooStrongDecision::Retry { upper_bound, bound } => {
                                        CtiDecision::Generalize { upper_bound, bound }
                                    }
                                    TooStrongDecision::Weaken { remove } => {
                                        CtiDecision::Weaken { remove }
                                    }
                                    TooStrongDecision::Stop => CtiDecision::Stop,
                                };
                                continue;
                            }
                            AutoGen::Generalized {
                                partial,
                                conjecture: phi,
                            } => {
                                let proposal = Proposal {
                                    partial,
                                    conjecture: phi,
                                    upper_bound: upper_bound.clone(),
                                };
                                let ctx = SessionCtx {
                                    program: self.program,
                                    conjectures: &self.conjectures,
                                    iteration: self.stats.ctis,
                                };
                                match user.on_proposal(&ctx, &proposal) {
                                    ProposalDecision::Accept => {
                                        self.push_conjecture(proposal.conjecture);
                                        break;
                                    }
                                    ProposalDecision::AcceptUpperBound => {
                                        self.push_conjecture(conjecture(&upper_bound));
                                        break;
                                    }
                                    ProposalDecision::Retry { upper_bound, bound } => {
                                        decision = CtiDecision::Generalize { upper_bound, bound };
                                        continue;
                                    }
                                    ProposalDecision::Stop => return Ok(SessionOutcome::Stopped),
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn push_conjecture(&mut self, phi: ivy_fol::Formula) {
        let name = format!("C{}", self.fresh_index);
        self.fresh_index += 1;
        self.stats.accepted += 1;
        self.conjectures.push(Conjecture::new(name, phi));
    }
}
