//! Interactive generalization from CTIs (Sections 4.4–4.5 of the paper):
//! the *BMC + Auto Generalize* procedure.
//!
//! The user coarsely generalizes a CTI into a partial structure `s_u` (the
//! *upper bound*), dropping elements and fact polarities they judge
//! irrelevant. This module then:
//!
//! 1. checks that the induced conjecture `ϕ(s_u)` is `k`-invariant — if not,
//!    the user's generalization excludes a reachable state and a concrete
//!    counterexample trace is returned;
//! 2. if it is, computes a ⪯-smallest generalization `s_m ⪯ s_u` whose
//!    conjecture is still `k`-invariant, seeding from the solver's minimal
//!    UNSAT core over the diagram's fact literals and finishing with
//!    deletion-based minimization;
//! 3. re-verifies `ϕ(s_m)` (dropping facts also drops distinctness of
//!    newly-inactive elements, which cores alone do not account for).

use std::collections::BTreeMap;

use ivy_epr::{EprCheck, EprError, EprOutcome};
use ivy_fol::{conjecture, Elem, Fact, Formula, PartialStructure, Signature, Sym, Term};
use ivy_rml::{rename_symbols, unroll, Program, SymMap, Unrolling};

use crate::bmc::Trace;

/// The result of *BMC + Auto Generalize*.
#[derive(Clone, Debug)]
pub enum AutoGen {
    /// The upper bound's conjecture excludes a reachable state: here is the
    /// trace. The user should generalize less (or has found a protocol bug).
    TooStrong(Trace),
    /// A ⪯-smallest `k`-invariant generalization of the upper bound,
    /// together with its conjecture.
    Generalized {
        /// The generalized partial structure `s_m ⪯ s_u`.
        partial: PartialStructure,
        /// `ϕ(s_m)`, the conjecture to add to the invariant.
        conjecture: Formula,
    },
}

/// The *BMC + Auto Generalize* engine for one program.
#[derive(Clone, Debug)]
pub struct Generalizer<'p> {
    program: &'p Program,
    instance_limit: u64,
    budget: ivy_epr::Budget,
}

impl<'p> Generalizer<'p> {
    /// Creates a generalizer.
    pub fn new(program: &'p Program) -> Self {
        Generalizer {
            program,
            instance_limit: ivy_epr::DEFAULT_INSTANCE_LIMIT,
            budget: ivy_epr::Budget::UNLIMITED,
        }
    }

    /// Caps grounding size per query.
    pub fn set_instance_limit(&mut self, limit: u64) {
        self.instance_limit = limit;
    }

    /// Installs a resource budget applied to every embedding query;
    /// exceeding it surfaces as [`EprError::Inconclusive`] rather than a
    /// wrong minimization step.
    pub fn set_budget(&mut self, budget: ivy_epr::Budget) {
        self.budget = budget;
    }

    /// Runs BMC + Auto Generalize on the upper bound `s_u` with bound `k`.
    ///
    /// # Errors
    ///
    /// Propagates [`EprError`].
    pub fn auto_generalize(&self, s_u: &PartialStructure, k: usize) -> Result<AutoGen, EprError> {
        let u = unroll(self.program, k);
        // Check k-invariance of ϕ(s_u) with per-fact labels, collecting the
        // union of UNSAT cores across depths.
        let facts: Vec<Fact> = s_u.facts().iter().cloned().collect();
        let mut core_union: Vec<bool> = vec![false; facts.len()];
        for j in 0..=k {
            match self.query_embedding(&u, j, &facts, None)? {
                QueryResult::Sat(model) => {
                    // Reachable state contains s_u: report the trace.
                    let trace = self.trace_from(&u, j, &model);
                    return Ok(AutoGen::TooStrong(trace));
                }
                QueryResult::Unsat(core) => {
                    for (i, in_core) in core.into_iter().enumerate() {
                        if in_core {
                            core_union[i] = true;
                        }
                    }
                }
            }
        }
        // Candidate from the cores.
        let seeded: Vec<usize> = (0..facts.len()).filter(|&i| core_union[i]).collect();
        let mut kept: Vec<usize> =
            if seeded.len() < facts.len() && self.invariant_with(&u, k, &facts, &seeded)? {
                seeded
            } else {
                (0..facts.len()).collect()
            };
        // Deletion-based minimization on the remaining facts.
        let mut i = 0;
        while i < kept.len() {
            let mut candidate = kept.clone();
            candidate.remove(i);
            if self.invariant_with(&u, k, &facts, &candidate)? {
                kept = candidate;
            } else {
                i += 1;
            }
        }
        let mut partial = s_u.clone();
        let keep_set: std::collections::BTreeSet<&Fact> = kept.iter().map(|&i| &facts[i]).collect();
        partial.retain_facts(|f| keep_set.contains(f));
        // Drop elements no longer mentioned by any fact; they only added
        // distinctness constraints.
        let active = partial.active_elements();
        for e in partial.domain().clone() {
            if !active.contains(&e) {
                partial.drop_element(&e);
            }
        }
        let conj = conjecture(&partial);
        Ok(AutoGen::Generalized {
            partial,
            conjecture: conj,
        })
    }

    /// Checks whether the conjecture of `s_u` restricted to the given fact
    /// subset is `k`-invariant.
    fn invariant_with(
        &self,
        u: &Unrolling,
        k: usize,
        facts: &[Fact],
        subset: &[usize],
    ) -> Result<bool, EprError> {
        for j in 0..=k {
            match self.query_embedding(u, j, facts, Some(subset))? {
                QueryResult::Sat(_) => return Ok(false),
                QueryResult::Unsat(_) => {}
            }
        }
        Ok(true)
    }

    /// Solves: "some state reachable in exactly `j` steps embeds the given
    /// facts of `s_u`". The diagram's existential element variables become
    /// explicit fresh constants so each fact can be labeled individually
    /// for UNSAT cores.
    ///
    /// With `subset = Some(is)`, only those facts are asserted (plus
    /// distinctness over *their* active elements); with `None`, all facts
    /// and full distinctness.
    fn query_embedding(
        &self,
        u: &Unrolling,
        j: usize,
        facts: &[Fact],
        subset: Option<&[usize]>,
    ) -> Result<QueryResult, EprError> {
        let selected: Vec<usize> = match subset {
            Some(is) => is.to_vec(),
            None => (0..facts.len()).collect(),
        };
        // Fresh constants per active element.
        let mut sig = u.sig.clone();
        let mut elem_const: BTreeMap<Elem, Sym> = BTreeMap::new();
        for &i in &selected {
            for e in facts[i].elements() {
                if !elem_const.contains_key(e) {
                    let name = ivy_fol::xform::fresh_constant_name(
                        &sig,
                        &format!("emb_{}{}", e.sort, e.idx),
                    );
                    sig.add_constant(name, e.sort).expect("fresh name");
                    elem_const.insert(e.clone(), name);
                }
            }
        }
        let mut q = EprCheck::new(&sig)?;
        q.set_instance_limit(self.instance_limit);
        q.set_budget(self.budget);
        q.assert_id("base", u.base)?;
        for (i, step) in u.steps.iter().take(j).enumerate() {
            q.assert_id(format!("step{i}"), *step)?;
        }
        // Distinctness among same-sort active elements (kept hard: partial
        // structures identify elements, not the facts about them).
        let mut distinct_parts = Vec::new();
        for (a, ca) in &elem_const {
            for (b, cb) in &elem_const {
                if a < b && a.sort == b.sort {
                    distinct_parts.push(Formula::neq(Term::cst(*ca), Term::cst(*cb)));
                }
            }
        }
        q.assert_labeled("distinct", &Formula::and(distinct_parts))?;
        // The facts, each individually labeled, at state j's vocabulary.
        for &i in &selected {
            let f = fact_formula(&facts[i], &elem_const, &u.maps[j]);
            q.assert_labeled(format!("fact{i}"), &f)?;
        }
        match q.check()? {
            EprOutcome::Sat(model) => Ok(QueryResult::Sat(model.structure)),
            EprOutcome::Unsat(core) => {
                let mut flags = vec![false; facts.len()];
                for label in core {
                    if let Some(i) = label.strip_prefix("fact").and_then(|s| s.parse().ok()) {
                        let i: usize = i;
                        if i < facts.len() {
                            flags[i] = true;
                        }
                    }
                }
                Ok(QueryResult::Unsat(flags))
            }
            EprOutcome::Unknown(r) => Err(EprError::Inconclusive(r)),
        }
    }

    fn trace_from(&self, u: &Unrolling, j: usize, model: &ivy_fol::Structure) -> Trace {
        let mut states = Vec::with_capacity(j + 1);
        for map in u.maps.iter().take(j + 1) {
            states.push(ivy_rml::project_state(model, &self.program.sig, map));
        }
        let mut actions = Vec::with_capacity(j);
        for step in u.step_paths.iter().take(j) {
            let name = step
                .iter()
                .find(|(_, f)| {
                    model
                        .eval_closed(&ivy_fol::intern::resolve(*f))
                        .unwrap_or(false)
                })
                .map(|(n, _)| n.clone())
                .unwrap_or_default();
            actions.push(name);
        }
        Trace {
            states,
            actions,
            violated: "generalization excludes a reachable state".into(),
        }
    }
}

enum QueryResult {
    Sat(ivy_fol::Structure),
    Unsat(Vec<bool>),
}

/// Translates a partial-structure fact into a formula over embedding
/// constants, renamed to a state vocabulary.
fn fact_formula(fact: &Fact, elem_const: &BTreeMap<Elem, Sym>, map: &SymMap) -> Formula {
    let term = |e: &Elem| Term::cst(elem_const[e]);
    let raw = match fact {
        Fact::Rel { sym, tuple, value } => {
            let atom = Formula::rel(*sym, tuple.iter().map(term));
            if *value {
                atom
            } else {
                Formula::not(atom)
            }
        }
        Fact::Fun {
            sym,
            args,
            result,
            value,
        } => {
            let atom = Formula::eq(Term::app(*sym, args.iter().map(term)), term(result));
            if *value {
                atom
            } else {
                Formula::not(atom)
            }
        }
    };
    rename_symbols(&raw, map)
}

/// Convenience check used by oracle users and tests: is `phi` implied by
/// `hypotheses` together with the program's axioms? (Decidable whenever
/// `¬phi` is `∃*∀*`, i.e. `phi` universal.)
///
/// # Errors
///
/// Propagates [`EprError`].
pub fn implied(
    sig: &Signature,
    axioms: &Formula,
    hypotheses: &[Formula],
    phi: &Formula,
) -> Result<bool, EprError> {
    let mut q = EprCheck::new(sig)?;
    q.assert_labeled("axioms", axioms)?;
    for (i, h) in hypotheses.iter().enumerate() {
        q.assert_labeled(format!("h{i}"), h)?;
    }
    q.assert_labeled("neg", &Formula::not(phi.clone()))?;
    match q.check()? {
        EprOutcome::Sat(_) => Ok(false),
        EprOutcome::Unsat(_) => Ok(true),
        EprOutcome::Unknown(r) => Err(EprError::Inconclusive(r)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vc::{Conjecture, Verifier};
    use ivy_rml::{check_program, parse_program};

    const SPREAD: &str = r#"
sort node
relation marked : node
relation blue : node
variable n : node
variable seed : node
safety seed_marked: marked(seed)
init { marked(X0) := X0 = seed; blue(X0) := false }
action mark { havoc n; marked.insert(n) }
"#;

    fn spread() -> Program {
        let p = parse_program(SPREAD).unwrap();
        assert!(check_program(&p).is_empty());
        p
    }

    #[test]
    fn too_strong_generalization_yields_trace() {
        let p = spread();
        let g = Generalizer::new(&p);
        let v = Verifier::new(&p);
        // CTI for the bogus conjecture "at most one marked node".
        let inv = vec![
            Conjecture::new("C0", ivy_fol::parse_formula("marked(seed)").unwrap()),
            Conjecture::new(
                "one",
                ivy_fol::parse_formula("forall X:node, Y:node. marked(X) & marked(Y) -> X = Y")
                    .unwrap(),
            ),
        ];
        let cti = v.find_minimal_cti(&inv, &[]).unwrap().unwrap();
        // Upper bound: the full CTI. Its conjecture excludes the CTI state,
        // which IS reachable (any 1-marked state is): expect TooStrong.
        let s_u = PartialStructure::from_structure(&cti.state);
        match g.auto_generalize(&s_u, 2).unwrap() {
            AutoGen::TooStrong(trace) => {
                assert!(!trace.states.is_empty());
            }
            AutoGen::Generalized { conjecture, .. } => {
                panic!("reachable configuration accepted: {conjecture}")
            }
        }
    }

    #[test]
    fn unreachable_configuration_generalizes() {
        let p = spread();
        let g = Generalizer::new(&p);
        // Configuration: a blue node. Nothing ever inserts into blue, so it
        // is unreachable at any depth; the minimal core keeps just that fact.
        use std::sync::Arc;
        let mut s = ivy_fol::Structure::new(Arc::new(p.sig.clone()));
        let a = s.add_element("node");
        let b = s.add_element("node");
        s.set_fun("seed", vec![], a.clone());
        s.set_fun("n", vec![], a.clone());
        s.set_rel("marked", vec![a.clone()], true);
        s.set_rel("blue", vec![b.clone()], true);
        let mut s_u = PartialStructure::empty_over(&s);
        s_u.define_rel("blue", vec![b.clone()], true);
        s_u.define_rel("marked", vec![a.clone()], true);
        match g.auto_generalize(&s_u, 2).unwrap() {
            AutoGen::Generalized {
                partial,
                conjecture,
            } => {
                // Auto-generalization drops the irrelevant `marked` fact:
                // "no blue node anywhere" is the strongest k-invariant
                // conjecture below s_u.
                assert_eq!(partial.fact_count(), 1);
                assert_eq!(conjecture.to_string(), "forall NODE1:node. ~blue(NODE1)");
            }
            AutoGen::TooStrong(_) => panic!("blue nodes are unreachable"),
        }
    }

    #[test]
    fn implied_checks_consequence() {
        let p = spread();
        let ax = p.axiom();
        let strong = ivy_fol::parse_formula("forall X:node. ~marked(X)").unwrap();
        let weak = ivy_fol::parse_formula("forall X:node, Y:node. marked(X) & marked(Y) -> X = Y")
            .unwrap();
        assert!(implied(&p.sig, &ax, std::slice::from_ref(&strong), &weak).unwrap());
        assert!(!implied(&p.sig, &ax, &[weak], &strong).unwrap());
    }
}
