//! Interactive generalization from CTIs (Sections 4.4–4.5 of the paper):
//! the *BMC + Auto Generalize* procedure.
//!
//! The user coarsely generalizes a CTI into a partial structure `s_u` (the
//! *upper bound*), dropping elements and fact polarities they judge
//! irrelevant. This module then:
//!
//! 1. checks that the induced conjecture `ϕ(s_u)` is `k`-invariant — if not,
//!    the user's generalization excludes a reachable state and a concrete
//!    counterexample trace is returned;
//! 2. if it is, computes a ⪯-smallest generalization `s_m ⪯ s_u` whose
//!    conjecture is still `k`-invariant, seeding from the solver's minimal
//!    UNSAT core over the diagram's fact literals and finishing with
//!    deletion-based minimization;
//! 3. re-verifies `ϕ(s_m)` (dropping facts also drops distinctness of
//!    newly-inactive elements, which cores alone do not account for).
//!
//! Every embedding query goes through the engine's [`Oracle`]: the
//! per-depth reachability frames are built once over one extended signature
//! (a fresh constant per diagram element), so the dozens of subset queries
//! issued during deletion minimization all hit the same pooled groundings —
//! and fan out across worker threads under [`QueryStrategy::Parallel`].
//!
//! [`QueryStrategy::Parallel`]: crate::oracle::QueryStrategy::Parallel

use std::collections::BTreeMap;
use std::sync::Arc;

use ivy_epr::{EprError, EprOutcome};
use ivy_fol::intern::{FormulaId, Interner};
use ivy_fol::{conjecture, Elem, Fact, Formula, PartialStructure, Signature, Sym, Term};
use ivy_rml::{rename_symbols, unroll, Program, SymMap, Unrolling};

use crate::bmc::Trace;
use crate::oracle::{Frame, Goal, Oracle};

/// Interns a formula (embedding goals are built in formula space, queries
/// run in id space).
fn intern_formula(f: &Formula) -> FormulaId {
    Interner::with(|it| it.intern(f))
}

/// The result of *BMC + Auto Generalize*.
#[derive(Clone, Debug)]
pub enum AutoGen {
    /// The upper bound's conjecture excludes a reachable state: here is the
    /// trace. The user should generalize less (or has found a protocol bug).
    TooStrong(Trace),
    /// A ⪯-smallest `k`-invariant generalization of the upper bound,
    /// together with its conjecture.
    Generalized {
        /// The generalized partial structure `s_m ⪯ s_u`.
        partial: PartialStructure,
        /// `ϕ(s_m)`, the conjecture to add to the invariant.
        conjecture: Formula,
    },
}

/// The *BMC + Auto Generalize* engine for one program.
#[derive(Clone, Debug)]
pub struct Generalizer<'p> {
    program: &'p Program,
    oracle: Arc<Oracle>,
}

impl<'p> Generalizer<'p> {
    /// Creates a generalizer with its own default [`Oracle`].
    pub fn new(program: &'p Program) -> Self {
        Generalizer::with_oracle(program, Arc::new(Oracle::new()))
    }

    /// Creates a generalizer issuing every query through `oracle` — sharing
    /// it with other engines shares the frame-keyed session cache too.
    pub fn with_oracle(program: &'p Program, oracle: Arc<Oracle>) -> Self {
        Generalizer { program, oracle }
    }

    /// The engine's oracle.
    pub fn oracle(&self) -> &Arc<Oracle> {
        &self.oracle
    }

    /// Replaces the oracle (e.g. after reconfiguring a shared one).
    pub fn set_oracle(&mut self, oracle: Arc<Oracle>) {
        self.oracle = oracle;
    }

    /// Caps grounding size per query.
    pub fn set_instance_limit(&mut self, limit: u64) {
        Arc::make_mut(&mut self.oracle).set_instance_limit(limit);
    }

    /// Installs a resource budget applied to every embedding query;
    /// exceeding it surfaces as [`EprError::Inconclusive`] rather than a
    /// wrong minimization step.
    pub fn set_budget(&mut self, budget: ivy_epr::Budget) {
        Arc::make_mut(&mut self.oracle).set_budget(budget);
    }

    /// Runs BMC + Auto Generalize on the upper bound `s_u` with bound `k`.
    ///
    /// # Errors
    ///
    /// Propagates [`EprError`].
    pub fn auto_generalize(&self, s_u: &PartialStructure, k: usize) -> Result<AutoGen, EprError> {
        let u = unroll(self.program, k);
        let facts: Vec<Fact> = s_u.facts().iter().cloned().collect();
        // One extended signature with a fresh constant per element of ANY
        // fact. Constants left unconstrained by a subset query never change
        // EPR satisfiability, so every subset shares the signature — which
        // keeps the per-depth frames (and their pooled groundings) stable
        // across the whole minimization.
        let mut sig = u.sig.clone();
        let mut elem_const: BTreeMap<Elem, Sym> = BTreeMap::new();
        for fact in &facts {
            for e in fact.elements() {
                if !elem_const.contains_key(e) {
                    let name = ivy_fol::xform::fresh_constant_name(
                        &sig,
                        &format!("emb_{}{}", e.sort, e.idx),
                    );
                    sig.add_constant(name, e.sort).expect("fresh name");
                    elem_const.insert(e.clone(), name);
                }
            }
        }
        // Per-depth frames: base plus the first j transition steps.
        let mut frames: Vec<Frame> = Vec::with_capacity(k + 1);
        let mut frame = Frame::new(&sig);
        frame.push("base", u.base);
        for j in 0..=k {
            if j > 0 {
                frame.push(format!("step{}", j - 1), u.steps[j - 1]);
            }
            frames.push(frame.clone());
        }
        // Check k-invariance of ϕ(s_u) with per-fact labels, collecting the
        // union of UNSAT cores across depths.
        let all: Vec<usize> = (0..facts.len()).collect();
        let mut core_union: Vec<bool> = vec![false; facts.len()];
        for (j, frame) in frames.iter().enumerate() {
            match self.query_embedding(frame, &u.maps[j], &facts, &all, &elem_const)? {
                QueryResult::Sat(model) => {
                    // Reachable state contains s_u: report the trace.
                    let trace = self.trace_from(&u, j, &model);
                    return Ok(AutoGen::TooStrong(trace));
                }
                QueryResult::Unsat(core) => {
                    for (i, in_core) in core.into_iter().enumerate() {
                        if in_core {
                            core_union[i] = true;
                        }
                    }
                }
            }
        }
        // Candidate from the cores.
        let seeded: Vec<usize> = (0..facts.len()).filter(|&i| core_union[i]).collect();
        let mut kept: Vec<usize> = if seeded.len() < facts.len()
            && self.invariant_with(&frames, &u, &facts, &seeded, &elem_const)?
        {
            seeded
        } else {
            all
        };
        // Deletion-based minimization on the remaining facts.
        let mut i = 0;
        while i < kept.len() {
            let mut candidate = kept.clone();
            candidate.remove(i);
            if self.invariant_with(&frames, &u, &facts, &candidate, &elem_const)? {
                kept = candidate;
            } else {
                i += 1;
            }
        }
        let mut partial = s_u.clone();
        let keep_set: std::collections::BTreeSet<&Fact> = kept.iter().map(|&i| &facts[i]).collect();
        partial.retain_facts(|f| keep_set.contains(f));
        // Drop elements no longer mentioned by any fact; they only added
        // distinctness constraints.
        let active = partial.active_elements();
        for e in partial.domain().clone() {
            if !active.contains(&e) {
                partial.drop_element(&e);
            }
        }
        let conj = conjecture(&partial);
        Ok(AutoGen::Generalized {
            partial,
            conjecture: conj,
        })
    }

    /// Checks whether the conjecture of `s_u` restricted to the given fact
    /// subset is `k`-invariant: no depth's frame embeds the subset. One
    /// query family over the per-depth frames — fanned out in parallel
    /// under [`crate::oracle::QueryStrategy::Parallel`].
    fn invariant_with(
        &self,
        frames: &[Frame],
        u: &Unrolling,
        facts: &[Fact],
        subset: &[usize],
        elem_const: &BTreeMap<Elem, Sym>,
    ) -> Result<bool, EprError> {
        let found = self.oracle.first_sat_frames(
            frames.len(),
            |j| {
                (
                    &frames[j],
                    embed_goal(facts, subset, elem_const, &u.maps[j]),
                )
            },
            |_, _| (),
        )?;
        Ok(found.is_none())
    }

    /// Solves: "some state reachable under `frame` embeds the given facts
    /// of `s_u`" — the diagram's existential element variables are the
    /// frame signature's embedding constants, so each fact carries its own
    /// label for UNSAT cores.
    fn query_embedding(
        &self,
        frame: &Frame,
        map: &SymMap,
        facts: &[Fact],
        selected: &[usize],
        elem_const: &BTreeMap<Elem, Sym>,
    ) -> Result<QueryResult, EprError> {
        let goal = embed_goal(facts, selected, elem_const, map);
        match self.oracle.solve(frame, &goal)? {
            EprOutcome::Sat(model) => Ok(QueryResult::Sat(model.structure)),
            EprOutcome::Unsat(core) => {
                let mut flags = vec![false; facts.len()];
                for label in core {
                    if let Some(i) = label.strip_prefix("fact").and_then(|s| s.parse().ok()) {
                        let i: usize = i;
                        if i < facts.len() {
                            flags[i] = true;
                        }
                    }
                }
                Ok(QueryResult::Unsat(flags))
            }
            EprOutcome::Unknown(r) => Err(EprError::Inconclusive(r)),
        }
    }

    fn trace_from(&self, u: &Unrolling, j: usize, model: &ivy_fol::Structure) -> Trace {
        let mut states = Vec::with_capacity(j + 1);
        for map in u.maps.iter().take(j + 1) {
            states.push(ivy_rml::project_state(model, &self.program.sig, map));
        }
        let mut actions = Vec::with_capacity(j);
        for step in u.step_paths.iter().take(j) {
            let name = step
                .iter()
                .find(|(_, f)| {
                    model
                        .eval_closed(&ivy_fol::intern::resolve(*f))
                        .unwrap_or(false)
                })
                .map(|(n, _)| n.clone())
                .unwrap_or_default();
            actions.push(name);
        }
        Trace {
            states,
            actions,
            violated: "generalization excludes a reachable state".into(),
        }
    }
}

enum QueryResult {
    Sat(ivy_fol::Structure),
    Unsat(Vec<bool>),
}

/// The embedding goal for one fact subset at one state vocabulary:
/// distinctness among the *selected* facts' active elements (kept hard:
/// partial structures identify elements, not the facts about them), plus
/// each selected fact individually labeled for UNSAT cores.
fn embed_goal(
    facts: &[Fact],
    selected: &[usize],
    elem_const: &BTreeMap<Elem, Sym>,
    map: &SymMap,
) -> Goal {
    let mut active: Vec<(&Elem, &Sym)> = Vec::new();
    for &i in selected {
        for e in facts[i].elements() {
            let c = &elem_const[e];
            if !active.iter().any(|(a, _)| *a == e) {
                active.push((e, c));
            }
        }
    }
    let mut distinct_parts = Vec::new();
    for (ai, (a, ca)) in active.iter().enumerate() {
        for (b, cb) in active.iter().skip(ai + 1) {
            if a.sort == b.sort {
                distinct_parts.push(Formula::neq(Term::cst(**ca), Term::cst(**cb)));
            }
        }
    }
    let mut goal = Goal::new("distinct", intern_formula(&Formula::and(distinct_parts)));
    for &i in selected {
        let f = fact_formula(&facts[i], elem_const, map);
        goal.push(format!("fact{i}"), intern_formula(&f));
    }
    goal
}

/// Translates a partial-structure fact into a formula over embedding
/// constants, renamed to a state vocabulary.
fn fact_formula(fact: &Fact, elem_const: &BTreeMap<Elem, Sym>, map: &SymMap) -> Formula {
    let term = |e: &Elem| Term::cst(elem_const[e]);
    let raw = match fact {
        Fact::Rel { sym, tuple, value } => {
            let atom = Formula::rel(*sym, tuple.iter().map(term));
            if *value {
                atom
            } else {
                Formula::not(atom)
            }
        }
        Fact::Fun {
            sym,
            args,
            result,
            value,
        } => {
            let atom = Formula::eq(Term::app(*sym, args.iter().map(term)), term(result));
            if *value {
                atom
            } else {
                Formula::not(atom)
            }
        }
    };
    rename_symbols(&raw, map)
}

/// Convenience check used by oracle users and tests: is `phi` implied by
/// `hypotheses` together with the program's axioms? (Decidable whenever
/// `¬phi` is `∃*∀*`, i.e. `phi` universal.)
///
/// # Errors
///
/// Propagates [`EprError`].
pub fn implied(
    sig: &Signature,
    axioms: &Formula,
    hypotheses: &[Formula],
    phi: &Formula,
) -> Result<bool, EprError> {
    let oracle = Oracle::new();
    let mut frame = Frame::new(sig);
    frame.push("axioms", intern_formula(axioms));
    for (i, h) in hypotheses.iter().enumerate() {
        frame.push(format!("h{i}"), intern_formula(h));
    }
    let goal = Goal::new("neg", intern_formula(&Formula::not(phi.clone())));
    match oracle.solve(&frame, &goal)? {
        EprOutcome::Sat(_) => Ok(false),
        EprOutcome::Unsat(_) => Ok(true),
        EprOutcome::Unknown(r) => Err(EprError::Inconclusive(r)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vc::{Conjecture, Verifier};
    use ivy_rml::{check_program, parse_program};

    const SPREAD: &str = r#"
sort node
relation marked : node
relation blue : node
variable n : node
variable seed : node
safety seed_marked: marked(seed)
init { marked(X0) := X0 = seed; blue(X0) := false }
action mark { havoc n; marked.insert(n) }
"#;

    fn spread() -> Program {
        let p = parse_program(SPREAD).unwrap();
        assert!(check_program(&p).is_empty());
        p
    }

    #[test]
    fn too_strong_generalization_yields_trace() {
        let p = spread();
        let g = Generalizer::new(&p);
        let v = Verifier::new(&p);
        // CTI for the bogus conjecture "at most one marked node".
        let inv = vec![
            Conjecture::new("C0", ivy_fol::parse_formula("marked(seed)").unwrap()),
            Conjecture::new(
                "one",
                ivy_fol::parse_formula("forall X:node, Y:node. marked(X) & marked(Y) -> X = Y")
                    .unwrap(),
            ),
        ];
        let cti = v.find_minimal_cti(&inv, &[]).unwrap().unwrap();
        // Upper bound: the full CTI. Its conjecture excludes the CTI state,
        // which IS reachable (any 1-marked state is): expect TooStrong.
        let s_u = PartialStructure::from_structure(&cti.state);
        match g.auto_generalize(&s_u, 2).unwrap() {
            AutoGen::TooStrong(trace) => {
                assert!(!trace.states.is_empty());
            }
            AutoGen::Generalized { conjecture, .. } => {
                panic!("reachable configuration accepted: {conjecture}")
            }
        }
    }

    #[test]
    fn unreachable_configuration_generalizes() {
        let p = spread();
        let g = Generalizer::new(&p);
        // Configuration: a blue node. Nothing ever inserts into blue, so it
        // is unreachable at any depth; the minimal core keeps just that fact.
        use std::sync::Arc;
        let mut s = ivy_fol::Structure::new(Arc::new(p.sig.clone()));
        let a = s.add_element("node");
        let b = s.add_element("node");
        s.set_fun("seed", vec![], a.clone());
        s.set_fun("n", vec![], a.clone());
        s.set_rel("marked", vec![a.clone()], true);
        s.set_rel("blue", vec![b.clone()], true);
        let mut s_u = PartialStructure::empty_over(&s);
        s_u.define_rel("blue", vec![b.clone()], true);
        s_u.define_rel("marked", vec![a.clone()], true);
        match g.auto_generalize(&s_u, 2).unwrap() {
            AutoGen::Generalized {
                partial,
                conjecture,
            } => {
                // Auto-generalization drops the irrelevant `marked` fact:
                // "no blue node anywhere" is the strongest k-invariant
                // conjecture below s_u.
                assert_eq!(partial.fact_count(), 1);
                assert_eq!(conjecture.to_string(), "forall NODE1:node. ~blue(NODE1)");
            }
            AutoGen::TooStrong(_) => panic!("blue nodes are unreachable"),
        }
    }

    #[test]
    fn generalizer_strategies_agree() {
        let p = spread();
        use std::sync::Arc;
        let mut s = ivy_fol::Structure::new(Arc::new(p.sig.clone()));
        let a = s.add_element("node");
        let b = s.add_element("node");
        s.set_fun("seed", vec![], a.clone());
        s.set_fun("n", vec![], a.clone());
        s.set_rel("marked", vec![a.clone()], true);
        s.set_rel("blue", vec![b.clone()], true);
        let mut s_u = PartialStructure::empty_over(&s);
        s_u.define_rel("blue", vec![b.clone()], true);
        s_u.define_rel("marked", vec![a.clone()], true);
        for strategy in [
            crate::oracle::QueryStrategy::Fresh,
            crate::oracle::QueryStrategy::Session,
            crate::oracle::QueryStrategy::Parallel(3),
        ] {
            let mut oracle = Oracle::new();
            oracle.set_strategy(strategy);
            let g = Generalizer::with_oracle(&p, Arc::new(oracle));
            match g.auto_generalize(&s_u, 2).unwrap() {
                AutoGen::Generalized { conjecture, .. } => {
                    assert_eq!(
                        conjecture.to_string(),
                        "forall NODE1:node. ~blue(NODE1)",
                        "{strategy:?}"
                    );
                }
                AutoGen::TooStrong(_) => panic!("{strategy:?}: blue nodes are unreachable"),
            }
        }
    }

    #[test]
    fn implied_checks_consequence() {
        let p = spread();
        let ax = p.axiom();
        let strong = ivy_fol::parse_formula("forall X:node. ~marked(X)").unwrap();
        let weak = ivy_fol::parse_formula("forall X:node, Y:node. marked(X) & marked(Y) -> X = Y")
            .unwrap();
        assert!(implied(&p.sig, &ax, std::slice::from_ref(&strong), &weak).unwrap());
        assert!(!implied(&p.sig, &ax, &[weak], &strong).unwrap());
    }
}
