//! The Ivy verification engine: interactive safety verification by
//! generalization from counterexamples to induction (PLDI 2016).
//!
//! * [`vc`]: inductiveness checking (Equation 2) producing CTIs.
//! * [`bmc`]: bounded verification / `k`-invariance (Section 4.1).
#![warn(missing_docs)]

pub mod bmc;
pub mod generalize;
pub mod houdini;
pub mod infer;
pub mod interact;
pub mod minimize;
pub mod oracle;
pub mod users;
pub mod vc;
pub mod viz;

pub use bmc::{Bmc, Trace};
pub use generalize::{implied, AutoGen, Generalizer};
pub use houdini::{
    enumerate_candidates, houdini, houdini_budgeted, houdini_with_oracle, houdini_with_template,
    HoudiniResult,
};
pub use infer::{
    generate_clauses, generate_clauses_into, infer, InferOptions, InferReport, InferStatus,
    TemplateSpec,
};
pub use interact::{
    CtiDecision, Proposal, ProposalDecision, Session, SessionCtx, SessionOutcome, SessionStats,
    TooStrongDecision, User,
};
pub use minimize::Measure;
pub use oracle::{Frame, FrameGroup, FrameSession, Goal, Oracle, QueryStrategy};
pub use users::{violation_witness, OracleUser, ScriptedUser};
pub use vc::{Conjecture, Cti, Inductiveness, Verifier, Violation};
pub use viz::{
    partial_to_dot, structure_to_dot, trace_to_dot, trace_to_text, Projection, VizOptions,
};
