//! Graphical display of states, partial structures, and traces
//! (Section 2.1 of the paper).
//!
//! The paper's Ivy renders states in an IPython GUI: vertices per element
//! (shaped by sort), unary relations as vertex labels, binary relations and
//! functions as edges, and higher-arity relations through user-chosen
//! binary *projections* (the `btw` ring is displayed as the derived `next`
//! edge). This module reproduces those displays as Graphviz DOT documents
//! and plain-text summaries.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use ivy_fol::{Elem, Formula, PartialStructure, Structure, Sym};

use crate::bmc::Trace;

/// A derived binary relation used to display a higher-arity relation, e.g.
/// `next(X, Y)` derived from the ternary ring order `btw` in the paper's
/// figures. The formula has exactly the free variables `X` and `Y`.
#[derive(Clone, Debug)]
pub struct Projection {
    /// Edge label in the rendering.
    pub name: String,
    /// Defining formula with free variables `X` and `Y` (same sort).
    pub formula: Formula,
    /// The sort of `X` and `Y`.
    pub sort: ivy_fol::Sort,
}

/// Rendering options.
#[derive(Clone, Debug, Default)]
pub struct VizOptions {
    /// Symbols to hide (e.g. scratch locals, or a relation replaced by a
    /// projection).
    pub hide: Vec<Sym>,
    /// Derived binary relations to display.
    pub projections: Vec<Projection>,
    /// Show negative unary facts (`~leader`) as labels, as in Figure 7.
    pub show_negative_unary: bool,
}

impl VizOptions {
    /// Hides a symbol.
    pub fn hide(mut self, sym: impl Into<Sym>) -> Self {
        self.hide.push(sym.into());
        self
    }

    /// Adds a projection.
    pub fn project(mut self, p: Projection) -> Self {
        self.projections.push(p);
        self
    }
}

const SHAPES: &[&str] = &["ellipse", "box", "diamond", "hexagon", "trapezium"];

fn node_id(e: &Elem) -> String {
    format!("{}_{}", e.sort, e.idx)
}

/// Renders a structure as a Graphviz DOT document.
pub fn structure_to_dot(s: &Structure, opts: &VizOptions) -> String {
    let mut out = String::from("digraph state {\n  rankdir=LR;\n");
    let sig = s.signature().clone();
    // Vertices: one per element, shaped by sort, labeled with the element
    // name plus its unary relation memberships.
    for (si, sort) in sig.sorts().iter().enumerate() {
        for e in s.elements(sort).collect::<Vec<_>>() {
            let mut labels = vec![format!("{e}")];
            for (rel, args) in sig.relations() {
                if opts.hide.contains(rel) || args.len() != 1 || &args[0] != sort {
                    continue;
                }
                if s.rel_holds(rel, std::slice::from_ref(&e)) {
                    labels.push(rel.to_string());
                } else if opts.show_negative_unary {
                    labels.push(format!("~{rel}"));
                }
            }
            let _ = writeln!(
                out,
                "  {} [shape={}, label=\"{}\"];",
                node_id(&e),
                SHAPES[si % SHAPES.len()],
                labels.join("\\n")
            );
        }
    }
    // Binary relations as edges.
    for (rel, args) in sig.relations() {
        if opts.hide.contains(rel) || args.len() != 2 {
            continue;
        }
        for tuple in s.rel_tuples(rel) {
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{rel}\"];",
                node_id(&tuple[0]),
                node_id(&tuple[1])
            );
        }
    }
    // Unary functions as edges; constants as standalone labels.
    for (fun, decl) in sig.functions() {
        if opts.hide.contains(fun) {
            continue;
        }
        match decl.arity() {
            0 => {
                if let Some(v) = s.fun_app(fun, &[]) {
                    let _ = writeln!(
                        out,
                        "  {fun} [shape=plaintext, label=\"{fun}\"];\n  {fun} -> {} [style=dotted];",
                        node_id(&v)
                    );
                }
            }
            1 => {
                for (args, res) in s.fun_entries(fun) {
                    let _ = writeln!(
                        out,
                        "  {} -> {} [label=\"{fun}\", style=dashed];",
                        node_id(&args[0]),
                        node_id(res)
                    );
                }
            }
            _ => {} // displayed via projections or the text summary
        }
    }
    // Projections of higher-arity relations (the paper's `next` for `btw`).
    for p in &opts.projections {
        let elems: Vec<Elem> = s.elements(&p.sort).collect();
        for a in &elems {
            for b in &elems {
                if a == b {
                    continue;
                }
                let mut env = BTreeMap::new();
                env.insert(Sym::new("X"), a.clone());
                env.insert(Sym::new("Y"), b.clone());
                if s.eval(&p.formula, &env).unwrap_or(false) {
                    let _ = writeln!(
                        out,
                        "  {} -> {} [label=\"{}\", color=gray];",
                        node_id(a),
                        node_id(b),
                        p.name
                    );
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a partial structure (a generalization) as DOT: only *defined*
/// facts appear, negative facts dashed-red, exactly like the paper's (b)/(c)
/// panels.
pub fn partial_to_dot(p: &PartialStructure, opts: &VizOptions) -> String {
    let mut out = String::from("digraph generalization {\n  rankdir=LR;\n");
    let sig = p.signature().clone();
    let sort_index: BTreeMap<_, _> = sig
        .sorts()
        .iter()
        .enumerate()
        .map(|(i, s)| (*s, i))
        .collect();
    // Labels from unary facts.
    let mut labels: BTreeMap<Elem, Vec<String>> = BTreeMap::new();
    for e in p.domain() {
        labels.insert(e.clone(), vec![format!("{e}")]);
    }
    for fact in p.facts() {
        if let ivy_fol::Fact::Rel { sym, tuple, value } = fact {
            if tuple.len() == 1 && !opts.hide.contains(sym) {
                let label = if *value {
                    sym.to_string()
                } else {
                    format!("~{sym}")
                };
                labels.entry(tuple[0].clone()).or_default().push(label);
            }
        }
    }
    for (e, label_parts) in &labels {
        let _ = writeln!(
            out,
            "  {} [shape={}, label=\"{}\"];",
            node_id(e),
            SHAPES[sort_index.get(&e.sort).copied().unwrap_or(0) % SHAPES.len()],
            label_parts.join("\\n")
        );
    }
    for fact in p.facts() {
        match fact {
            ivy_fol::Fact::Rel { sym, tuple, value } if tuple.len() == 2 => {
                if opts.hide.contains(sym) {
                    continue;
                }
                let style = if *value { "solid" } else { "dashed, color=red" };
                let _ = writeln!(
                    out,
                    "  {} -> {} [label=\"{}{sym}\", style={style}];",
                    node_id(&tuple[0]),
                    node_id(&tuple[1]),
                    if *value { "" } else { "~" },
                );
            }
            ivy_fol::Fact::Fun {
                sym,
                args,
                result,
                value,
            } if args.len() == 1 && *value => {
                if opts.hide.contains(sym) {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  {} -> {} [label=\"{sym}\", style=dashed];",
                    node_id(&args[0]),
                    node_id(result)
                );
            }
            _ => {}
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a BMC/CTI trace as a multi-line text document, one state per
/// step with the action taken in between (the textual form of Figure 4).
pub fn trace_to_text(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "violation: {}", trace.violated);
    for (i, state) in trace.states.iter().enumerate() {
        let _ = writeln!(out, "state {i}: {state}");
        if i < trace.actions.len() {
            let action = if trace.actions[i].is_empty() {
                "?"
            } else {
                &trace.actions[i]
            };
            let _ = writeln!(out, "  --[{action}]-->");
        }
    }
    out
}

/// Renders a trace as one DOT document per state, concatenated (callers can
/// split on `digraph`).
pub fn trace_to_dot(trace: &Trace, opts: &VizOptions) -> String {
    let mut out = String::new();
    for (i, state) in trace.states.iter().enumerate() {
        let _ = writeln!(out, "// state {i}");
        out.push_str(&structure_to_dot(state, opts));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_fol::{parse_formula, Signature, Sort};
    use std::sync::Arc;

    fn ring_state() -> Structure {
        let mut sig = Signature::new();
        sig.add_sort("node").unwrap();
        sig.add_sort("id").unwrap();
        sig.add_function("idf", ["node"], "id").unwrap();
        sig.add_relation("leader", ["node"]).unwrap();
        sig.add_relation("btw", ["node", "node", "node"]).unwrap();
        sig.add_relation("pnd", ["id", "node"]).unwrap();
        let mut s = Structure::new(Arc::new(sig));
        let nodes: Vec<_> = (0..3).map(|_| s.add_element("node")).collect();
        let ids: Vec<_> = (0..3).map(|_| s.add_element("id")).collect();
        for (n, i) in nodes.iter().zip(&ids) {
            s.set_fun("idf", vec![n.clone()], i.clone());
        }
        s.set_rel("leader", vec![nodes[0].clone()], true);
        // Ring 0 -> 1 -> 2 -> 0.
        for (a, b, c) in [(0, 1, 2), (1, 2, 0), (2, 0, 1)] {
            s.set_rel(
                "btw",
                vec![nodes[a].clone(), nodes[b].clone(), nodes[c].clone()],
                true,
            );
        }
        s
    }

    fn next_projection() -> Projection {
        Projection {
            name: "next".into(),
            formula: parse_formula("forall Z:node. Z ~= X & Z ~= Y -> btw(X, Y, Z)").unwrap(),
            sort: Sort::new("node"),
        }
    }

    #[test]
    fn dot_contains_elements_and_edges() {
        let s = ring_state();
        let opts = VizOptions::default().hide("btw").project(next_projection());
        let dot = structure_to_dot(&s, &opts);
        assert!(dot.contains("node_0"), "{dot}");
        assert!(dot.contains("leader"));
        assert!(dot.contains("label=\"idf\""));
        // btw hidden, next projected: node0 -> node1 via next.
        assert!(!dot.contains("btw"));
        assert!(dot.contains("node_0 -> node_1 [label=\"next\""));
        assert!(dot.contains("node_2 -> node_0 [label=\"next\""));
    }

    #[test]
    fn negative_unary_labels_optional() {
        let s = ring_state();
        let opts = VizOptions {
            show_negative_unary: true,
            ..VizOptions::default()
        };
        let dot = structure_to_dot(&s, &opts);
        assert!(dot.contains("~leader"));
        let dot2 = structure_to_dot(&s, &VizOptions::default());
        assert!(!dot2.contains("~leader"));
    }

    #[test]
    fn partial_structure_renders_defined_facts_only() {
        let s = ring_state();
        let mut p = PartialStructure::empty_over(&s);
        let n0 = Elem::new("node", 0);
        let n1 = Elem::new("node", 1);
        p.define_rel("leader", vec![n0.clone()], true);
        p.define_rel("leader", vec![n1.clone()], false);
        let dot = partial_to_dot(&p, &VizOptions::default());
        assert!(dot.contains("leader"));
        assert!(dot.contains("~leader"));
        assert!(!dot.contains("idf"), "undefined facts must not render");
    }

    #[test]
    fn trace_text_lists_states_and_actions() {
        let trace = Trace {
            states: vec![ring_state(), ring_state()],
            actions: vec!["send".into()],
            violated: "at_most_one_leader".into(),
        };
        let text = trace_to_text(&trace);
        assert!(text.contains("state 0"));
        assert!(text.contains("--[send]-->"));
        assert!(text.contains("at_most_one_leader"));
        let dot = trace_to_dot(&trace, &VizOptions::default());
        assert_eq!(dot.matches("digraph").count(), 2);
    }
}
