//! Programmable [`User`] implementations.
//!
//! The paper evaluates Ivy with a human in the loop; for a reproducible
//! evaluation we provide:
//!
//! * [`ScriptedUser`] — replays a fixed sequence of decisions (used to
//!   re-enact the paper's Figures 7–9 leader-election session verbatim);
//! * [`OracleUser`] — an *ideal user*: it knows a correct inductive
//!   invariant and plays the role the paper assigns to human intuition,
//!   picking, for each CTI, the facts relevant to a violated target clause.
//!   The interaction counts it produces are the reproduction of Figure 14's
//!   G column.

use std::collections::{BTreeMap, VecDeque};

use ivy_fol::{nnf, prenex, Block, Elem, Formula, PartialStructure, Structure, Sym, Term};

use crate::bmc::Trace;
use crate::generalize::implied;
use crate::interact::{
    CtiDecision, Proposal, ProposalDecision, SessionCtx, TooStrongDecision, User,
};
use crate::vc::Cti;

/// Closure type for scripted CTI decisions.
pub type CtiScript = Box<dyn FnMut(&SessionCtx<'_>, &Cti) -> CtiDecision>;
/// Closure type for scripted proposal decisions.
pub type ProposalScript = Box<dyn FnMut(&SessionCtx<'_>, &Proposal) -> ProposalDecision>;

/// Replays scripted decisions; stops when the script runs dry.
#[derive(Default)]
pub struct ScriptedUser {
    cti_steps: VecDeque<CtiScript>,
    proposal_steps: VecDeque<ProposalScript>,
}

impl ScriptedUser {
    /// An empty script (stops at the first CTI).
    pub fn new() -> Self {
        ScriptedUser::default()
    }

    /// Appends a CTI decision.
    pub fn push_cti(
        &mut self,
        f: impl FnMut(&SessionCtx<'_>, &Cti) -> CtiDecision + 'static,
    ) -> &mut Self {
        self.cti_steps.push_back(Box::new(f));
        self
    }

    /// Appends a proposal decision (when absent, proposals are accepted).
    pub fn push_proposal(
        &mut self,
        f: impl FnMut(&SessionCtx<'_>, &Proposal) -> ProposalDecision + 'static,
    ) -> &mut Self {
        self.proposal_steps.push_back(Box::new(f));
        self
    }
}

impl User for ScriptedUser {
    fn on_cti(&mut self, ctx: &SessionCtx<'_>, cti: &Cti) -> CtiDecision {
        match self.cti_steps.pop_front() {
            Some(mut f) => f(ctx, cti),
            None => CtiDecision::Stop,
        }
    }

    fn on_too_strong(
        &mut self,
        _ctx: &SessionCtx<'_>,
        _attempted: &PartialStructure,
        _trace: &Trace,
    ) -> TooStrongDecision {
        TooStrongDecision::Stop
    }

    fn on_proposal(&mut self, ctx: &SessionCtx<'_>, proposal: &Proposal) -> ProposalDecision {
        match self.proposal_steps.pop_front() {
            Some(mut f) => f(ctx, proposal),
            None => ProposalDecision::Accept,
        }
    }
}

/// An ideal user guided by a known inductive invariant.
///
/// On each CTI it finds a *target* clause the CTI violates, reads off the
/// facts of the CTI state that witness the violation (including the function
/// edges the paper's GUI would display), and submits them as the upper
/// bound. Proposed generalizations are accepted when they are implied by
/// the target invariant (plus axioms), otherwise the upper bound's own
/// conjecture is used — mirroring the paper's advice to reject "bogus"
/// over-generalizations.
pub struct OracleUser {
    target: Vec<Formula>,
    bound: usize,
}

impl OracleUser {
    /// Creates an oracle from the clauses of a known inductive invariant.
    pub fn new(target: Vec<Formula>, bound: usize) -> Self {
        OracleUser { target, bound }
    }
}

impl User for OracleUser {
    fn on_cti(&mut self, ctx: &SessionCtx<'_>, cti: &Cti) -> CtiDecision {
        for phi in &self.target {
            if cti.state.eval_closed(phi).unwrap_or(true) {
                continue;
            }
            if let Some(upper_bound) = violation_witness(&cti.state, phi) {
                return CtiDecision::Generalize {
                    upper_bound,
                    bound: self.bound,
                };
            }
        }
        // The CTI satisfies the whole target invariant: by inductiveness of
        // the target this cannot happen for consecution CTIs; for weakening
        // scenarios remove non-target conjectures.
        let remove: Vec<String> = ctx
            .conjectures
            .iter()
            .filter(|c| !cti.state.eval_closed(&c.formula).unwrap_or(true))
            .map(|c| c.name.clone())
            .collect();
        if remove.is_empty() {
            CtiDecision::Stop
        } else {
            CtiDecision::Weaken { remove }
        }
    }

    fn on_too_strong(
        &mut self,
        _ctx: &SessionCtx<'_>,
        _attempted: &PartialStructure,
        _trace: &Trace,
    ) -> TooStrongDecision {
        // Target clauses hold in all reachable states, so their witnesses
        // can never be reachable; reaching this means the target invariant
        // is wrong.
        TooStrongDecision::Stop
    }

    fn on_proposal(&mut self, ctx: &SessionCtx<'_>, proposal: &Proposal) -> ProposalDecision {
        let axioms = ctx.program.axiom();
        match implied(
            &ctx.program.sig,
            &axioms,
            &self.target,
            &proposal.conjecture,
        ) {
            Ok(true) => ProposalDecision::Accept,
            _ => ProposalDecision::AcceptUpperBound,
        }
    }
}

/// Extracts a partial structure witnessing `state ⊭ phi`: the facts of the
/// state corresponding to the atoms of `¬phi` under a satisfying assignment
/// of its existential variables, with function applications decomposed into
/// explicit function facts (the edges a user sees in the paper's GUI).
pub fn violation_witness(state: &Structure, phi: &Formula) -> Option<PartialStructure> {
    let neg = nnf(&Formula::not(phi.clone()));
    let pren = prenex(&neg);
    let mut bindings = Vec::new();
    for block in &pren.prefix {
        match block {
            Block::Exists(bs) => bindings.extend(bs.iter().cloned()),
            // A universal block inside ¬phi (phi with existentials) is out
            // of scope for this extractor.
            Block::Forall(_) => return None,
        }
    }
    // Enumerate assignments to find a witness.
    let mut env: BTreeMap<Sym, Elem> = BTreeMap::new();
    if !assign(state, &pren.matrix, &bindings, 0, &mut env) {
        return None;
    }
    let mut out = PartialStructure::empty_over(state);
    collect_facts(state, &pren.matrix, &env, &mut out);
    // Keep only elements mentioned by facts.
    let active = out.active_elements();
    for e in out.domain().clone() {
        if !active.contains(&e) {
            out.drop_element(&e);
        }
    }
    Some(out)
}

fn assign(
    state: &Structure,
    matrix: &Formula,
    bindings: &[ivy_fol::Binding],
    i: usize,
    env: &mut BTreeMap<Sym, Elem>,
) -> bool {
    if i == bindings.len() {
        return state.eval(matrix, env).unwrap_or(false);
    }
    let b = &bindings[i];
    for e in state.elements(&b.sort).collect::<Vec<_>>() {
        env.insert(b.var, e);
        if assign(state, matrix, bindings, i + 1, env) {
            return true;
        }
    }
    env.remove(&b.var);
    false
}

/// Records the truth value of every atom of `f` under `env` as facts,
/// decomposing function applications.
fn collect_facts(
    state: &Structure,
    f: &Formula,
    env: &BTreeMap<Sym, Elem>,
    out: &mut PartialStructure,
) {
    match f {
        Formula::True | Formula::False => {}
        Formula::Rel(r, args) => {
            let mut tuple = Vec::with_capacity(args.len());
            for a in args {
                let Some(e) = term_elem(state, a, env, out) else {
                    return;
                };
                tuple.push(e);
            }
            let value = state.rel_holds(r, &tuple);
            out.define_rel(*r, tuple, value);
        }
        Formula::Eq(a, b) => {
            // Equalities between pure variables are captured by element
            // identity/distinctness; function applications become facts.
            let _ = term_elem(state, a, env, out);
            let _ = term_elem(state, b, env, out);
        }
        Formula::Not(g) => collect_facts(state, g, env, out),
        Formula::And(fs) | Formula::Or(fs) => {
            fs.iter().for_each(|g| collect_facts(state, g, env, out));
        }
        Formula::Implies(a, b) | Formula::Iff(a, b) => {
            collect_facts(state, a, env, out);
            collect_facts(state, b, env, out);
        }
        // Matrix is quantifier-free by construction.
        Formula::Forall(..) | Formula::Exists(..) => {}
    }
}

fn term_elem(
    state: &Structure,
    t: &Term,
    env: &BTreeMap<Sym, Elem>,
    out: &mut PartialStructure,
) -> Option<Elem> {
    match t {
        Term::Var(v) => env.get(v).cloned(),
        Term::App(f, args) => {
            let mut elems = Vec::with_capacity(args.len());
            for a in args {
                elems.push(term_elem(state, a, env, out)?);
            }
            let result = state.fun_app(f, &elems)?;
            out.define_fun(*f, elems, result.clone());
            Some(result)
        }
        Term::Ite(c, a, b) => {
            collect_facts(state, c, env, out);
            if state.eval(c, env).ok()? {
                term_elem(state, a, env, out)
            } else {
                term_elem(state, b, env, out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_fol::{parse_formula, Signature};
    use std::sync::Arc;

    fn two_node_state() -> Structure {
        let mut sig = Signature::new();
        sig.add_sort("node").unwrap();
        sig.add_sort("id").unwrap();
        sig.add_function("idf", ["node"], "id").unwrap();
        sig.add_relation("le", ["id", "id"]).unwrap();
        sig.add_relation("leader", ["node"]).unwrap();
        let mut s = Structure::new(Arc::new(sig));
        let n1 = s.add_element("node");
        let n2 = s.add_element("node");
        let i1 = s.add_element("id");
        let i2 = s.add_element("id");
        s.set_fun("idf", vec![n1.clone()], i1.clone());
        s.set_fun("idf", vec![n2.clone()], i2.clone());
        s.set_rel("le", vec![i1.clone(), i1.clone()], true);
        s.set_rel("le", vec![i2.clone(), i2.clone()], true);
        s.set_rel("le", vec![i1, i2], true);
        s.set_rel("leader", vec![n1], true);
        s
    }

    #[test]
    fn witness_extracts_relevant_facts() {
        // C1 is violated: a leader with a non-maximal id. The witness should
        // contain leader(n1), le(id1, id2), idf edges — and nothing else.
        let s = two_node_state();
        let c1 = parse_formula(
            "forall N1:node, N2:node. ~(N1 ~= N2 & leader(N1) & le(idf(N1), idf(N2)))",
        )
        .unwrap();
        assert!(!s.eval_closed(&c1).unwrap());
        let w = violation_witness(&s, &c1).unwrap();
        // Facts: leader(node0)=true, le(id0,id1)=true, idf(node0)=id0,
        // idf(node1)=id1.
        assert_eq!(w.fact_count(), 4, "{w}");
        // The conjecture excludes the state.
        let conj = ivy_fol::conjecture(&w);
        assert!(!s.eval_closed(&conj).unwrap());
    }

    #[test]
    fn witness_none_when_satisfied() {
        let s = two_node_state();
        let c0 =
            parse_formula("forall N1:node, N2:node. leader(N1) & leader(N2) -> N1 = N2").unwrap();
        assert!(s.eval_closed(&c0).unwrap());
        assert!(violation_witness(&s, &c0).is_none());
    }

    #[test]
    fn witness_records_negative_facts() {
        // Violate "some node is a leader"... that has an existential; use
        // instead: ~leader(n2) appears when the clause mentions it
        // negatively.
        let s = two_node_state();
        let phi = parse_formula("forall N1:node, N2:node. ~(leader(N1) & ~leader(N2) & N1 ~= N2)")
            .unwrap();
        assert!(!s.eval_closed(&phi).unwrap());
        let w = violation_witness(&s, &phi).unwrap();
        let has_negative = w.facts().iter().any(|f| !f.value());
        assert!(has_negative, "{w}");
    }
}
