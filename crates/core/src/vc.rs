//! Inductive-invariant checking (Equation 2 of the paper) and
//! counterexamples to induction (CTIs).
//!
//! A candidate invariant is a set of universally quantified *conjectures*.
//! Checking is decidable (Theorem 3.3); on failure a finite CTI state is
//! produced: a state satisfying the axioms and every conjecture that either
//! violates safety, or steps to a state violating some conjecture.
//!
//! Every query goes through the crate's solver [`Oracle`]: the three
//! inductiveness conditions are three query families — a frame (base,
//! invariant hypotheses, transition step) plus one violation goal per
//! conjecture or safety case — and the oracle decides how to discharge
//! them (fresh, frame-cached session, or parallel fan-out).

use std::fmt;
use std::sync::Arc;

use ivy_epr::{Budget, EprError};
use ivy_fol::intern::{self, FormulaId, Interner};
use ivy_fol::{Formula, Structure};
use ivy_rml::{project_state, unroll, unroll_free, Program, SymMap, Unrolling};

use crate::oracle::{sat_model, Frame, FrameSession, Goal, Oracle, QueryStrategy};

/// Interns `phi` renamed through `map` — the pervasive "conjecture at a
/// vocabulary" operation. Renames are memoized in the interner, so repeated
/// calls over the same conjecture/map pair are cheap.
pub(crate) fn renamed_id(phi: &Formula, map: &SymMap) -> FormulaId {
    Interner::with(|it| {
        let f = it.intern(phi);
        it.rename_symbols(f, map)
    })
}

/// `¬(phi[map])`, interned: the violation formula of a conjecture.
pub(crate) fn not_renamed(phi: &Formula, map: &SymMap) -> FormulaId {
    Interner::with(|it| {
        let f = it.intern(phi);
        let r = it.rename_symbols(f, map);
        it.not(r)
    })
}

/// A named conjecture of the candidate invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Conjecture {
    /// Display name (e.g. `C1`).
    pub name: String,
    /// The universally quantified formula.
    pub formula: Formula,
}

impl Conjecture {
    /// Creates a conjecture.
    pub fn new(name: impl Into<String>, formula: Formula) -> Self {
        Conjecture {
            name: name.into(),
            formula,
        }
    }
}

impl fmt::Display for Conjecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.formula)
    }
}

/// Which inductiveness condition a CTI violates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// An initial state violates the named conjecture.
    Initiation {
        /// The conjecture failing initiation.
        conjecture: String,
    },
    /// A state satisfying the invariant violates the named safety property
    /// (or reaches an abort, named `"abort in ..."`).
    Safety {
        /// The failing property.
        property: String,
    },
    /// A state satisfying the invariant steps (via `action`) to a state
    /// violating the named conjecture.
    Consecution {
        /// The conjecture broken in the successor state.
        conjecture: String,
        /// The action taken.
        action: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Initiation { conjecture } => {
                write!(f, "initiation of `{conjecture}` fails")
            }
            Violation::Safety { property } => write!(f, "safety `{property}` fails"),
            Violation::Consecution { conjecture, action } => write!(
                f,
                "consecution of `{conjecture}` fails via action `{action}`"
            ),
        }
    }
}

/// A counterexample to induction.
#[derive(Clone, Debug)]
pub struct Cti {
    /// The offending state (for initiation: the post-init state).
    pub state: Structure,
    /// The successor state, for consecution violations (the paper's `(a2)`
    /// displays).
    pub successor: Option<Structure>,
    /// What failed.
    pub violation: Violation,
}

/// Result of an inductiveness check.
#[derive(Clone, Debug)]
pub enum Inductiveness {
    /// All three conditions hold: the conjunction is an inductive invariant
    /// and the program is safe.
    Inductive,
    /// A counterexample to induction.
    Cti(Box<Cti>),
}

impl Inductiveness {
    /// Whether the candidate was proven inductive.
    pub fn is_inductive(&self) -> bool {
        matches!(self, Inductiveness::Inductive)
    }
}

/// The inductiveness checker for one program.
#[derive(Clone, Debug)]
pub struct Verifier<'p> {
    program: &'p Program,
    oracle: Arc<Oracle>,
}

impl<'p> Verifier<'p> {
    /// Creates a verifier with its own default [`Oracle`].
    pub fn new(program: &'p Program) -> Verifier<'p> {
        Verifier::with_oracle(program, Arc::new(Oracle::new()))
    }

    /// Creates a verifier issuing every query through `oracle` — sharing it
    /// with other engines shares the frame-keyed session cache too.
    pub fn with_oracle(program: &'p Program, oracle: Arc<Oracle>) -> Verifier<'p> {
        Verifier { program, oracle }
    }

    /// The program under verification.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The verifier's oracle.
    pub fn oracle(&self) -> &Arc<Oracle> {
        &self.oracle
    }

    /// Replaces the oracle (e.g. after reconfiguring a shared one).
    pub fn set_oracle(&mut self, oracle: Arc<Oracle>) {
        self.oracle = oracle;
    }

    /// Caps grounding size per query (cumulative per session under
    /// [`QueryStrategy::Session`]).
    pub fn set_instance_limit(&mut self, limit: u64) {
        Arc::make_mut(&mut self.oracle).set_instance_limit(limit);
    }

    /// Selects how query families are discharged.
    pub fn set_strategy(&mut self, strategy: QueryStrategy) {
        Arc::make_mut(&mut self.oracle).set_strategy(strategy);
    }

    /// Installs a resource budget applied to every underlying EPR query.
    /// Exceeding it surfaces as [`EprError::Inconclusive`] rather than a
    /// wrong verdict.
    pub fn set_budget(&mut self, budget: Budget) {
        Arc::make_mut(&mut self.oracle).set_budget(budget);
    }

    /// The active resource budget.
    pub fn budget(&self) -> Budget {
        self.oracle.budget()
    }

    /// The active query strategy.
    pub fn strategy(&self) -> QueryStrategy {
        self.oracle.strategy()
    }

    /// Checks whether the conjunction of `conjectures` is an inductive
    /// invariant establishing the program's safety (Equation 2):
    /// initiation, safety, and consecution — in that order, returning the
    /// first CTI found.
    ///
    /// # Errors
    ///
    /// Propagates [`EprError`] (e.g. a conjecture outside `∀*∃*` makes the
    /// consecution query leave EPR).
    pub fn check(&self, conjectures: &[Conjecture]) -> Result<Inductiveness, EprError> {
        if let Some(cti) = self.check_initiation(conjectures)? {
            return Ok(Inductiveness::Cti(Box::new(cti)));
        }
        if let Some(cti) = self.check_safety(conjectures)? {
            return Ok(Inductiveness::Cti(Box::new(cti)));
        }
        if let Some(cti) = self.check_consecution(conjectures)? {
            return Ok(Inductiveness::Cti(Box::new(cti)));
        }
        Ok(Inductiveness::Inductive)
    }

    /// Checks `A ⇒ wp(C_init, ϕ)` for each conjecture.
    ///
    /// # Errors
    ///
    /// Propagates [`EprError`].
    pub fn check_initiation(&self, conjectures: &[Conjecture]) -> Result<Option<Cti>, EprError> {
        let u = unroll(self.program, 0);
        let frame = init_frame(&u);
        self.oracle.first_sat(
            &frame,
            conjectures.len(),
            |i| {
                Goal::new(
                    "violation",
                    not_renamed(&conjectures[i].formula, &u.maps[0]),
                )
            },
            |i, model| Cti {
                state: project_state(&model.structure, &self.program.sig, &u.maps[0]),
                successor: None,
                violation: Violation::Initiation {
                    conjecture: conjectures[i].name.clone(),
                },
            },
        )
    }

    /// Checks that invariant states satisfy the safety properties and cannot
    /// abort (via the body or the finalization command).
    ///
    /// # Errors
    ///
    /// Propagates [`EprError`].
    pub fn check_safety(&self, conjectures: &[Conjecture]) -> Result<Option<Cti>, EprError> {
        let u = unroll_free(self.program, 1);
        let frame = self.invariant_frame(&u, conjectures);
        let cases = safety_cases(self.program, &u);
        self.oracle.first_sat(
            &frame,
            cases.len(),
            |i| Goal::new("violation", cases[i].1),
            |i, model| Cti {
                state: project_state(&model.structure, &self.program.sig, &u.maps[0]),
                successor: None,
                violation: Violation::Safety {
                    property: cases[i].0.clone(),
                },
            },
        )
    }

    /// Checks `A ∧ I ⇒ wp(C_body, ϕ)` for each conjecture `ϕ` of `I`.
    ///
    /// # Errors
    ///
    /// Propagates [`EprError`].
    pub fn check_consecution(&self, conjectures: &[Conjecture]) -> Result<Option<Cti>, EprError> {
        let u = unroll_free(self.program, 1);
        let mut frame = self.invariant_frame(&u, conjectures);
        // The transition step is shared by every conjecture's query: it is
        // frame, not goal.
        frame.push("step", u.steps[0]);
        self.oracle.first_sat(
            &frame,
            conjectures.len(),
            |i| {
                Goal::new(
                    "violation",
                    not_renamed(&conjectures[i].formula, &u.maps[1]),
                )
            },
            |i, model| self.consecution_cti(&u, &conjectures[i], &model.structure),
        )
    }

    /// Builds the two-state CTI for a consecution violation from a model of
    /// the step query, labeling the step with the action whose path formula
    /// the model satisfies.
    fn consecution_cti(&self, u: &Unrolling, c: &Conjecture, model: &Structure) -> Cti {
        let action = u.step_paths[0]
            .iter()
            .find(|(_, f)| model.eval_closed(&intern::resolve(*f)).unwrap_or(false))
            .map(|(n, _)| n.clone())
            .unwrap_or_default();
        Cti {
            state: project_state(model, &self.program.sig, &u.maps[0]),
            successor: Some(project_state(model, &self.program.sig, &u.maps[1])),
            violation: Violation::Consecution {
                conjecture: c.name.clone(),
                action,
            },
        }
    }

    /// Opens a persistent handle for re-solving one specific violation
    /// under varying extra constraints — the workhorse of minimal-CTI search
    /// (Algorithm 1). The frame matches the corresponding inductiveness
    /// check's frame (so under [`QueryStrategy::Session`] the descent
    /// recycles the very grounding that found the CTI), and the violation
    /// rides on top as a handle group; each [`ViolationSession::solve`]
    /// call only adds the candidate constraint as a retirable group.
    /// Returns `None` when the violation does not name a known safety case.
    pub(crate) fn violation_session(
        &self,
        conjectures: &[Conjecture],
        violation: &Violation,
        round_limit: Option<usize>,
    ) -> Result<Option<ViolationSession<'p, '_>>, EprError> {
        let (u, frame, bad) = match violation {
            Violation::Initiation { conjecture } => {
                let u = unroll(self.program, 0);
                let frame = init_frame(&u);
                let bad = not_renamed(&find_formula(conjectures, conjecture), &u.maps[0]);
                (u, frame, bad)
            }
            Violation::Safety { property } => {
                let u = unroll_free(self.program, 1);
                let Some((_, bad)) = safety_cases(self.program, &u)
                    .into_iter()
                    .find(|(label, _)| label == property)
                else {
                    return Ok(None);
                };
                let frame = self.invariant_frame(&u, conjectures);
                (u, frame, bad)
            }
            Violation::Consecution { conjecture, .. } => {
                let u = unroll_free(self.program, 1);
                let mut frame = self.invariant_frame(&u, conjectures);
                frame.push("step", u.steps[0]);
                let bad = not_renamed(&find_formula(conjectures, conjecture), &u.maps[1]);
                (u, frame, bad)
            }
        };
        let mut handle = self.oracle.open(&frame)?;
        handle.set_lazy_round_limit(round_limit);
        handle.assert("violation", bad)?;
        Ok(Some(ViolationSession {
            program: self.program,
            u,
            handle,
            violation: violation.clone(),
        }))
    }

    /// The shared one-step frame: the unrolling base plus every invariant
    /// conjunct as a hypothesis at the pre-state vocabulary.
    fn invariant_frame(&self, u: &Unrolling, conjectures: &[Conjecture]) -> Frame {
        let mut frame = Frame::new(&u.sig);
        frame.push("base", u.base);
        for c in conjectures {
            frame.push(
                format!("inv:{}", c.name),
                renamed_id(&c.formula, &u.maps[0]),
            );
        }
        frame
    }
}

/// The initiation frame: just the depth-0 unrolling base.
fn init_frame(u: &Unrolling) -> Frame {
    let mut frame = Frame::new(&u.sig);
    frame.push("base", u.base);
    frame
}

/// An incremental re-solver for one fixed violation (see
/// [`Verifier::violation_session`]).
pub(crate) struct ViolationSession<'p, 'o> {
    program: &'p Program,
    u: Unrolling,
    handle: FrameSession<'o>,
    violation: Violation,
}

impl ViolationSession<'_, '_> {
    /// Re-solves the violation with `extra` constraints (over the base
    /// vocabulary) conjoined at the CTI state. The constraint group is
    /// retired afterwards — also on a repair-limit error, so the handle
    /// survives best-effort budgeted queries.
    pub(crate) fn solve(&mut self, extra: &[Formula]) -> Result<Option<Cti>, EprError> {
        let state_map = &self.u.maps[0];
        let constraint = Interner::with(|it| {
            let parts: Vec<FormulaId> = extra
                .iter()
                .map(|e| {
                    let f = it.intern(e);
                    it.rename_symbols(f, state_map)
                })
                .collect();
            it.and(parts)
        });
        let group = self.handle.assert("constraint", constraint)?;
        let outcome = self.handle.check();
        self.handle.retire(group);
        match sat_model(outcome?)? {
            Some(model) => {
                let m = &model.structure;
                let (successor, violation) = match &self.violation {
                    Violation::Consecution { conjecture, .. } => {
                        let action = self.u.step_paths[0]
                            .iter()
                            .find(|(_, f)| m.eval_closed(&intern::resolve(*f)).unwrap_or(false))
                            .map(|(n, _)| n.clone())
                            .unwrap_or_default();
                        (
                            Some(project_state(m, &self.program.sig, &self.u.maps[1])),
                            Violation::Consecution {
                                conjecture: conjecture.clone(),
                                action,
                            },
                        )
                    }
                    v => (None, v.clone()),
                };
                Ok(Some(Cti {
                    state: project_state(m, &self.program.sig, &self.u.maps[0]),
                    successor,
                    violation,
                }))
            }
            None => Ok(None),
        }
    }
}

/// The violation cases checked as "safety" at an arbitrary invariant state:
/// each declared safety property, plus abort reachability through the body
/// and the finalization command. Returns `(label, bad formula)` pairs over
/// the vocabulary of `u.maps[0]`.
fn safety_cases(program: &Program, u: &ivy_rml::Unrolling) -> Vec<(String, FormulaId)> {
    let state_map = &u.maps[0];
    let mut out: Vec<(String, FormulaId)> = program
        .safety
        .iter()
        .map(|(label, phi)| (label.clone(), not_renamed(phi, state_map)))
        .collect();
    let false_id = intern::false_id();
    for (action, err) in &u.step_errors[0] {
        if *err != false_id {
            out.push((format!("abort in action `{action}`"), *err));
        }
    }
    if u.final_errors[0] != false_id {
        out.push(("abort in final".into(), u.final_errors[0]));
    }
    out
}

fn find_formula(conjectures: &[Conjecture], name: &str) -> Formula {
    conjectures
        .iter()
        .find(|c| c.name == name)
        .map(|c| c.formula.clone())
        .unwrap_or(Formula::True)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_fol::parse_formula;
    use ivy_rml::{check_program, parse_program};

    /// Mark-spreading with a seed; "seed stays marked" is inductive,
    /// "at most one marked" is not.
    const SPREAD: &str = r#"
sort node
relation marked : node
variable n : node
variable seed : node
safety seed_marked: marked(seed)
init { marked(X0) := X0 = seed }
action mark { havoc n; marked.insert(n) }
"#;

    fn spread() -> Program {
        let p = parse_program(SPREAD).unwrap();
        assert!(check_program(&p).is_empty(), "{:?}", check_program(&p));
        p
    }

    #[test]
    fn good_invariant_is_inductive() {
        let p = spread();
        let v = Verifier::new(&p);
        let inv = vec![Conjecture::new(
            "C0",
            parse_formula("marked(seed)").unwrap(),
        )];
        assert!(v.check(&inv).unwrap().is_inductive());
    }

    #[test]
    fn exhausted_budget_is_inconclusive_not_inductive() {
        // The same invariant that proves inductive above must NOT be
        // reported inductive when the budget runs out first — degradation
        // surfaces as an error, never a verdict.
        let p = spread();
        let mut v = Verifier::new(&p);
        v.set_budget(ivy_epr::Budget::UNLIMITED.with_max_conflicts(0));
        let inv = vec![Conjecture::new(
            "C0",
            parse_formula("marked(seed)").unwrap(),
        )];
        let err = v.check(&inv).unwrap_err();
        assert!(
            matches!(
                err,
                ivy_epr::EprError::Inconclusive(ivy_epr::StopReason::ConflictBudget)
            ),
            "{err}"
        );
    }

    #[test]
    fn empty_invariant_fails_safety() {
        let p = spread();
        let v = Verifier::new(&p);
        match v.check(&[]).unwrap() {
            Inductiveness::Cti(cti) => {
                assert_eq!(
                    cti.violation,
                    Violation::Safety {
                        property: "seed_marked".into()
                    }
                );
                // The CTI state indeed violates the safety property.
                let phi = parse_formula("marked(seed)").unwrap();
                assert!(!cti.state.eval_closed(&phi).unwrap());
            }
            Inductiveness::Inductive => panic!("expected CTI"),
        }
    }

    #[test]
    fn non_inductive_conjecture_yields_consecution_cti() {
        let p = spread();
        let v = Verifier::new(&p);
        let inv = vec![
            Conjecture::new("C0", parse_formula("marked(seed)").unwrap()),
            Conjecture::new(
                "C1",
                parse_formula("forall X:node, Y:node. marked(X) & marked(Y) -> X = Y").unwrap(),
            ),
        ];
        match v.check(&inv).unwrap() {
            Inductiveness::Cti(cti) => {
                let Violation::Consecution { conjecture, action } = &cti.violation else {
                    panic!("expected consecution, got {}", cti.violation);
                };
                assert_eq!(conjecture, "C1");
                assert_eq!(action, "mark");
                // Pre-state satisfies all conjectures; successor violates C1.
                for c in &inv {
                    assert!(cti.state.eval_closed(&c.formula).unwrap(), "{c}");
                }
                let succ = cti.successor.as_ref().unwrap();
                assert!(!succ.eval_closed(&inv[1].formula).unwrap());
            }
            Inductiveness::Inductive => panic!("expected CTI"),
        }
    }

    #[test]
    fn initiation_violation_detected() {
        let p = spread();
        let v = Verifier::new(&p);
        // "nothing is marked" is false right after init.
        let inv = vec![
            Conjecture::new("C0", parse_formula("marked(seed)").unwrap()),
            Conjecture::new("Cbad", parse_formula("forall X:node. ~marked(X)").unwrap()),
        ];
        match v.check(&inv).unwrap() {
            Inductiveness::Cti(cti) => {
                assert_eq!(
                    cti.violation,
                    Violation::Initiation {
                        conjecture: "Cbad".into()
                    }
                );
            }
            Inductiveness::Inductive => panic!("expected CTI"),
        }
    }

    #[test]
    fn abort_reachability_counts_as_safety() {
        let src = r#"
sort node
relation marked : node
variable n : node
init { marked(X0) := false }
action bad { havoc n; assume marked(n); abort }
"#;
        let p = parse_program(src).unwrap();
        assert!(check_program(&p).is_empty());
        let v = Verifier::new(&p);
        // Without an invariant, a state with a marked node reaches abort.
        match v.check(&[]).unwrap() {
            Inductiveness::Cti(cti) => {
                assert!(matches!(cti.violation, Violation::Safety { .. }));
            }
            Inductiveness::Inductive => panic!("expected CTI"),
        }
        // With the invariant "nothing marked", the program is inductive-safe.
        let inv = vec![Conjecture::new(
            "none",
            parse_formula("forall X:node. ~marked(X)").unwrap(),
        )];
        assert!(v.check(&inv).unwrap().is_inductive());
    }

    #[test]
    fn strategies_agree_on_verdict_and_violation() {
        let p = spread();
        // Candidate sets covering all three violation kinds plus the
        // inductive case.
        let suites: Vec<Vec<Conjecture>> = vec![
            vec![Conjecture::new(
                "C0",
                parse_formula("marked(seed)").unwrap(),
            )],
            vec![],
            vec![
                Conjecture::new("C0", parse_formula("marked(seed)").unwrap()),
                Conjecture::new(
                    "C1",
                    parse_formula("forall X:node, Y:node. marked(X) & marked(Y) -> X = Y").unwrap(),
                ),
            ],
            vec![
                Conjecture::new("C0", parse_formula("marked(seed)").unwrap()),
                Conjecture::new("Cbad", parse_formula("forall X:node. ~marked(X)").unwrap()),
            ],
        ];
        for inv in &suites {
            let mut reference = Verifier::new(&p);
            reference.set_strategy(QueryStrategy::Fresh);
            let expected = reference.check(inv).unwrap();
            for strategy in [QueryStrategy::Session, QueryStrategy::Parallel(4)] {
                let mut v = Verifier::new(&p);
                v.set_strategy(strategy);
                let got = v.check(inv).unwrap();
                match (&expected, &got) {
                    (Inductiveness::Inductive, Inductiveness::Inductive) => {}
                    (Inductiveness::Cti(a), Inductiveness::Cti(b)) => {
                        assert_eq!(a.violation, b.violation, "{strategy:?}");
                    }
                    _ => panic!("{strategy:?} disagrees with Fresh on {inv:?}"),
                }
            }
        }
    }

    #[test]
    fn parallel_fan_out_is_deterministic() {
        let p = spread();
        // Several non-inductive conjectures: every thread count and repeated
        // runs must report the same (lowest-index) violation.
        let inv = vec![
            Conjecture::new("C0", parse_formula("marked(seed)").unwrap()),
            Conjecture::new(
                "A",
                parse_formula("forall X:node, Y:node. marked(X) & marked(Y) -> X = Y").unwrap(),
            ),
            Conjecture::new(
                "B",
                parse_formula("forall X:node. marked(X) -> X = seed").unwrap(),
            ),
        ];
        let mut first: Option<Violation> = None;
        for threads in [1, 2, 8] {
            for _run in 0..3 {
                let mut v = Verifier::new(&p);
                v.set_strategy(QueryStrategy::Parallel(threads));
                let Inductiveness::Cti(cti) = v.check(&inv).unwrap() else {
                    panic!("expected CTI");
                };
                match &first {
                    None => first = Some(cti.violation.clone()),
                    Some(expected) => assert_eq!(
                        expected, &cti.violation,
                        "nondeterministic CTI with {threads} threads"
                    ),
                }
            }
        }
        // The winner is the lowest-index failing conjecture, "A".
        assert_eq!(
            first.unwrap(),
            Violation::Consecution {
                conjecture: "A".into(),
                action: "mark".into()
            }
        );
    }

    #[test]
    fn shared_oracle_reuses_frames_across_checks() {
        let p = spread();
        let oracle = Arc::new(Oracle::new());
        let v = Verifier::with_oracle(&p, oracle.clone());
        let inv = vec![Conjecture::new(
            "C0",
            parse_formula("marked(seed)").unwrap(),
        )];
        assert!(v.check(&inv).unwrap().is_inductive());
        let cold = oracle.rollup();
        assert!(cold.frame_misses >= 1);
        // Re-checking the same candidate hits every frame in the cache.
        assert!(v.check(&inv).unwrap().is_inductive());
        let warm = oracle.rollup();
        assert_eq!(warm.frame_misses, cold.frame_misses, "no new groundings");
        assert!(warm.frame_hits > cold.frame_hits);
    }
}
