//! Inductive-invariant checking (Equation 2 of the paper) and
//! counterexamples to induction (CTIs).
//!
//! A candidate invariant is a set of universally quantified *conjectures*.
//! Checking is decidable (Theorem 3.3); on failure a finite CTI state is
//! produced: a state satisfying the axioms and every conjecture that either
//! violates safety, or steps to a state violating some conjecture.

use std::fmt;

use ivy_epr::{Budget, EprCheck, EprError, EprOutcome, EprSession, DEFAULT_INSTANCE_LIMIT};
use ivy_fol::intern::{self, FormulaId, Interner};
use ivy_fol::{Formula, Structure};
use ivy_rml::{project_state, unroll, unroll_free, Program, SymMap, Unrolling};

/// Interns `phi` renamed through `map` — the pervasive "conjecture at a
/// vocabulary" operation. Renames are memoized in the interner, so repeated
/// calls over the same conjecture/map pair are cheap.
pub(crate) fn renamed_id(phi: &Formula, map: &SymMap) -> FormulaId {
    Interner::with(|it| {
        let f = it.intern(phi);
        it.rename_symbols(f, map)
    })
}

/// `¬(phi[map])`, interned: the violation formula of a conjecture.
pub(crate) fn not_renamed(phi: &Formula, map: &SymMap) -> FormulaId {
    Interner::with(|it| {
        let f = it.intern(phi);
        let r = it.rename_symbols(f, map);
        it.not(r)
    })
}

/// Extracts the SAT model of an outcome, mapping a budget-exhausted
/// [`EprOutcome::Unknown`] to [`EprError::Inconclusive`] so callers can
/// never mistake "ran out of budget" for "no counterexample".
pub(crate) fn sat_model(outcome: EprOutcome) -> Result<Option<ivy_epr::Model>, EprError> {
    match outcome {
        EprOutcome::Sat(model) => Ok(Some(*model)),
        EprOutcome::Unsat(_) => Ok(None),
        EprOutcome::Unknown(r) => Err(EprError::Inconclusive(r)),
    }
}

/// A named conjecture of the candidate invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Conjecture {
    /// Display name (e.g. `C1`).
    pub name: String,
    /// The universally quantified formula.
    pub formula: Formula,
}

impl Conjecture {
    /// Creates a conjecture.
    pub fn new(name: impl Into<String>, formula: Formula) -> Self {
        Conjecture {
            name: name.into(),
            formula,
        }
    }
}

impl fmt::Display for Conjecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.formula)
    }
}

/// Which inductiveness condition a CTI violates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// An initial state violates the named conjecture.
    Initiation {
        /// The conjecture failing initiation.
        conjecture: String,
    },
    /// A state satisfying the invariant violates the named safety property
    /// (or reaches an abort, named `"abort in ..."`).
    Safety {
        /// The failing property.
        property: String,
    },
    /// A state satisfying the invariant steps (via `action`) to a state
    /// violating the named conjecture.
    Consecution {
        /// The conjecture broken in the successor state.
        conjecture: String,
        /// The action taken.
        action: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Initiation { conjecture } => {
                write!(f, "initiation of `{conjecture}` fails")
            }
            Violation::Safety { property } => write!(f, "safety `{property}` fails"),
            Violation::Consecution { conjecture, action } => write!(
                f,
                "consecution of `{conjecture}` fails via action `{action}`"
            ),
        }
    }
}

/// A counterexample to induction.
#[derive(Clone, Debug)]
pub struct Cti {
    /// The offending state (for initiation: the post-init state).
    pub state: Structure,
    /// The successor state, for consecution violations (the paper's `(a2)`
    /// displays).
    pub successor: Option<Structure>,
    /// What failed.
    pub violation: Violation,
}

/// Result of an inductiveness check.
#[derive(Clone, Debug)]
pub enum Inductiveness {
    /// All three conditions hold: the conjunction is an inductive invariant
    /// and the program is safe.
    Inductive,
    /// A counterexample to induction.
    Cti(Box<Cti>),
}

impl Inductiveness {
    /// Whether the candidate was proven inductive.
    pub fn is_inductive(&self) -> bool {
        matches!(self, Inductiveness::Inductive)
    }
}

/// How a [`Verifier`] discharges its families of per-conjecture queries.
///
/// All three strategies return the same verdict and report the same
/// violation (the one with the lowest conjecture/case index); only the
/// witnessing model may differ, as SAT models are not unique.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueryStrategy {
    /// One fresh [`EprCheck`] per query: the frame (axioms, unrolling,
    /// invariant hypotheses) is re-grounded and re-encoded every time. The
    /// reference implementation.
    Fresh,
    /// One incremental [`EprSession`] per check call: the frame is grounded
    /// once and each conjecture's violation runs as an assumption-guarded
    /// group on the same solver, reusing learnt clauses and repaired
    /// equality axioms across queries. The default.
    #[default]
    Session,
    /// Fresh per-query checks fanned out over (up to) the given number of
    /// worker threads, in waves. Deterministic: each wave's results are
    /// inspected in conjecture order, so the lowest-index CTI wins
    /// regardless of thread timing.
    Parallel(usize),
}

/// The inductiveness checker for one program.
#[derive(Clone, Debug)]
pub struct Verifier<'p> {
    program: &'p Program,
    instance_limit: u64,
    strategy: QueryStrategy,
    budget: Budget,
}

impl<'p> Verifier<'p> {
    /// Creates a verifier.
    pub fn new(program: &'p Program) -> Verifier<'p> {
        Verifier {
            program,
            instance_limit: DEFAULT_INSTANCE_LIMIT,
            strategy: QueryStrategy::default(),
            budget: Budget::UNLIMITED,
        }
    }

    /// The program under verification.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Caps grounding size per query (cumulative per check call under
    /// [`QueryStrategy::Session`]).
    pub fn set_instance_limit(&mut self, limit: u64) {
        self.instance_limit = limit;
    }

    /// Selects how query families are discharged.
    pub fn set_strategy(&mut self, strategy: QueryStrategy) {
        self.strategy = strategy;
    }

    /// Installs a resource budget applied to every underlying EPR query.
    /// Exceeding it surfaces as [`EprError::Inconclusive`] rather than a
    /// wrong verdict.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The active resource budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// The active query strategy.
    pub fn strategy(&self) -> QueryStrategy {
        self.strategy
    }

    /// Checks whether the conjunction of `conjectures` is an inductive
    /// invariant establishing the program's safety (Equation 2):
    /// initiation, safety, and consecution — in that order, returning the
    /// first CTI found.
    ///
    /// # Errors
    ///
    /// Propagates [`EprError`] (e.g. a conjecture outside `∀*∃*` makes the
    /// consecution query leave EPR).
    pub fn check(&self, conjectures: &[Conjecture]) -> Result<Inductiveness, EprError> {
        if let Some(cti) = self.check_initiation(conjectures)? {
            return Ok(Inductiveness::Cti(Box::new(cti)));
        }
        if let Some(cti) = self.check_safety(conjectures)? {
            return Ok(Inductiveness::Cti(Box::new(cti)));
        }
        if let Some(cti) = self.check_consecution(conjectures)? {
            return Ok(Inductiveness::Cti(Box::new(cti)));
        }
        Ok(Inductiveness::Inductive)
    }

    /// Checks `A ⇒ wp(C_init, ϕ)` for each conjecture.
    ///
    /// # Errors
    ///
    /// Propagates [`EprError`].
    pub fn check_initiation(&self, conjectures: &[Conjecture]) -> Result<Option<Cti>, EprError> {
        let u = unroll(self.program, 0);
        match self.strategy {
            QueryStrategy::Fresh => {
                for c in conjectures {
                    if let Some(cti) = self.initiation_query(&u, c)? {
                        return Ok(Some(cti));
                    }
                }
                Ok(None)
            }
            QueryStrategy::Session => {
                let mut s = self.session(&u.sig, None)?;
                s.assert_id("base", u.base)?;
                for c in conjectures {
                    let bad = not_renamed(&c.formula, &u.maps[0]);
                    let group = s.assert_id("violation", bad)?;
                    let outcome = s.check()?;
                    s.retire(group);
                    if let Some(model) = sat_model(outcome)? {
                        return Ok(Some(Cti {
                            state: project_state(&model.structure, &self.program.sig, &u.maps[0]),
                            successor: None,
                            violation: Violation::Initiation {
                                conjecture: c.name.clone(),
                            },
                        }));
                    }
                }
                Ok(None)
            }
            QueryStrategy::Parallel(threads) => parallel_first(threads, conjectures.len(), |i| {
                self.initiation_query(&u, &conjectures[i])
            }),
        }
    }

    /// One fresh initiation query for a single conjecture.
    fn initiation_query(&self, u: &Unrolling, c: &Conjecture) -> Result<Option<Cti>, EprError> {
        let mut q = self.query(&u.sig)?;
        q.assert_id("base", u.base)?;
        q.assert_id("violation", not_renamed(&c.formula, &u.maps[0]))?;
        if let Some(model) = sat_model(q.check()?)? {
            return Ok(Some(Cti {
                state: project_state(&model.structure, &self.program.sig, &u.maps[0]),
                successor: None,
                violation: Violation::Initiation {
                    conjecture: c.name.clone(),
                },
            }));
        }
        Ok(None)
    }

    /// Checks that invariant states satisfy the safety properties and cannot
    /// abort (via the body or the finalization command).
    ///
    /// # Errors
    ///
    /// Propagates [`EprError`].
    pub fn check_safety(&self, conjectures: &[Conjecture]) -> Result<Option<Cti>, EprError> {
        let u = unroll_free(self.program, 1);
        let state_map = u.maps[0].clone();
        let cases = safety_cases(self.program, &u);
        match self.strategy {
            QueryStrategy::Fresh => {
                for (label, bad) in cases {
                    if let Some(state) =
                        self.solve_state(&u.sig, u.base, conjectures, &state_map, bad)?
                    {
                        return Ok(Some(Cti {
                            state,
                            successor: None,
                            violation: Violation::Safety { property: label },
                        }));
                    }
                }
                Ok(None)
            }
            QueryStrategy::Session => {
                let mut s = self.frame_session(&u, conjectures, None)?;
                for (label, bad) in cases {
                    let group = s.assert_id("violation", bad)?;
                    let outcome = s.check()?;
                    s.retire(group);
                    if let Some(model) = sat_model(outcome)? {
                        return Ok(Some(Cti {
                            state: project_state(&model.structure, &self.program.sig, &state_map),
                            successor: None,
                            violation: Violation::Safety { property: label },
                        }));
                    }
                }
                Ok(None)
            }
            QueryStrategy::Parallel(threads) => parallel_first(threads, cases.len(), |i| {
                let (label, bad) = &cases[i];
                Ok(self
                    .solve_state(&u.sig, u.base, conjectures, &state_map, *bad)?
                    .map(|state| Cti {
                        state,
                        successor: None,
                        violation: Violation::Safety {
                            property: label.clone(),
                        },
                    }))
            }),
        }
    }

    /// Checks `A ∧ I ⇒ wp(C_body, ϕ)` for each conjecture `ϕ` of `I`.
    ///
    /// # Errors
    ///
    /// Propagates [`EprError`].
    pub fn check_consecution(&self, conjectures: &[Conjecture]) -> Result<Option<Cti>, EprError> {
        let u = unroll_free(self.program, 1);
        match self.strategy {
            QueryStrategy::Fresh => {
                for c in conjectures {
                    if let Some(cti) = self.consecution_query(&u, conjectures, c)? {
                        return Ok(Some(cti));
                    }
                }
                Ok(None)
            }
            QueryStrategy::Session => {
                let mut s = self.frame_session(&u, conjectures, None)?;
                // The transition step is shared by every conjecture's query:
                // ground it once, as its own persistent group.
                s.assert_id("step", u.steps[0])?;
                for c in conjectures {
                    let bad = not_renamed(&c.formula, &u.maps[1]);
                    let group = s.assert_id("violation", bad)?;
                    let outcome = s.check()?;
                    s.retire(group);
                    if let Some(model) = sat_model(outcome)? {
                        return Ok(Some(self.consecution_cti(&u, c, &model.structure)));
                    }
                }
                Ok(None)
            }
            QueryStrategy::Parallel(threads) => parallel_first(threads, conjectures.len(), |i| {
                self.consecution_query(&u, conjectures, &conjectures[i])
            }),
        }
    }

    /// One fresh consecution query for a single conjecture.
    fn consecution_query(
        &self,
        u: &Unrolling,
        conjectures: &[Conjecture],
        c: &Conjecture,
    ) -> Result<Option<Cti>, EprError> {
        let step = u.steps[0];
        let bad = Interner::with(|it| {
            let f = it.intern(&c.formula);
            let r = it.rename_symbols(f, &u.maps[1]);
            let n = it.not(r);
            it.and([step, n])
        });
        if let Some(model) = self.solve_model(&u.sig, u.base, conjectures, &u.maps[0], bad)? {
            return Ok(Some(self.consecution_cti(u, c, &model)));
        }
        Ok(None)
    }

    /// Builds the two-state CTI for a consecution violation from a model of
    /// the step query, labeling the step with the action whose path formula
    /// the model satisfies.
    fn consecution_cti(&self, u: &Unrolling, c: &Conjecture, model: &Structure) -> Cti {
        let action = u.step_paths[0]
            .iter()
            .find(|(_, f)| model.eval_closed(&intern::resolve(*f)).unwrap_or(false))
            .map(|(n, _)| n.clone())
            .unwrap_or_default();
        Cti {
            state: project_state(model, &self.program.sig, &u.maps[0]),
            successor: Some(project_state(model, &self.program.sig, &u.maps[1])),
            violation: Violation::Consecution {
                conjecture: c.name.clone(),
                action,
            },
        }
    }

    /// Re-solves a specific violation with extra constraints conjoined at
    /// the CTI state's vocabulary — the workhorse of minimal-CTI search
    /// (Algorithm 1). `extra` formulas are over the *base* vocabulary.
    pub(crate) fn check_violation_constrained(
        &self,
        conjectures: &[Conjecture],
        violation: &Violation,
        extra: &[Formula],
        round_limit: Option<usize>,
    ) -> Result<Option<Cti>, EprError> {
        match violation {
            Violation::Initiation { conjecture } => {
                let u = unroll(self.program, 0);
                let bad = Interner::with(|it| {
                    let f = it.intern(&find_formula(conjectures, conjecture));
                    let r = it.rename_symbols(f, &u.maps[0]);
                    let mut parts = vec![it.not(r)];
                    for e in extra {
                        let e = it.intern(e);
                        parts.push(it.rename_symbols(e, &u.maps[0]));
                    }
                    it.and(parts)
                });
                let mut q = self.query_limited(&u.sig, round_limit)?;
                q.assert_id("base", u.base)?;
                q.assert_id("violation", bad)?;
                Ok(sat_model(q.check()?)?.map(|model| Cti {
                    state: project_state(&model.structure, &self.program.sig, &u.maps[0]),
                    successor: None,
                    violation: violation.clone(),
                }))
            }
            Violation::Safety { property } => {
                let u = unroll_free(self.program, 1);
                let state_map = u.maps[0].clone();
                let Some((_, bad)) = safety_cases(self.program, &u)
                    .into_iter()
                    .find(|(label, _)| label == property)
                else {
                    return Ok(None);
                };
                let combined = Interner::with(|it| {
                    let mut all = vec![bad];
                    for e in extra {
                        let e = it.intern(e);
                        all.push(it.rename_symbols(e, &state_map));
                    }
                    it.and(all)
                });
                Ok(self
                    .solve_state_limited(
                        &u.sig,
                        u.base,
                        conjectures,
                        &state_map,
                        combined,
                        round_limit,
                    )?
                    .map(|state| Cti {
                        state,
                        successor: None,
                        violation: violation.clone(),
                    }))
            }
            Violation::Consecution { conjecture, .. } => {
                let u = unroll_free(self.program, 1);
                let bad = Interner::with(|it| {
                    let f = it.intern(&find_formula(conjectures, conjecture));
                    let r = it.rename_symbols(f, &u.maps[1]);
                    let mut parts = vec![u.steps[0], it.not(r)];
                    for e in extra {
                        let e = it.intern(e);
                        parts.push(it.rename_symbols(e, &u.maps[0]));
                    }
                    it.and(parts)
                });
                if let Some(model) = self.solve_model_limited(
                    &u.sig,
                    u.base,
                    conjectures,
                    &u.maps[0],
                    bad,
                    round_limit,
                )? {
                    let action = u.step_paths[0]
                        .iter()
                        .find(|(_, f)| model.eval_closed(&intern::resolve(*f)).unwrap_or(false))
                        .map(|(n, _)| n.clone())
                        .unwrap_or_default();
                    return Ok(Some(Cti {
                        state: project_state(&model, &self.program.sig, &u.maps[0]),
                        successor: Some(project_state(&model, &self.program.sig, &u.maps[1])),
                        violation: Violation::Consecution {
                            conjecture: conjecture.clone(),
                            action,
                        },
                    }));
                }
                Ok(None)
            }
        }
    }

    /// Opens a persistent session for re-solving one specific violation
    /// under varying extra constraints — the workhorse of minimal-CTI search
    /// (Algorithm 1). The frame (base, invariant hypotheses, transition
    /// step, and the violation itself) is grounded once; each
    /// [`ViolationSession::solve`] call only adds the candidate constraint
    /// as a retirable group. Returns `None` when the violation does not name
    /// a known safety case.
    pub(crate) fn violation_session(
        &self,
        conjectures: &[Conjecture],
        violation: &Violation,
        round_limit: Option<usize>,
    ) -> Result<Option<ViolationSession<'p>>, EprError> {
        let (u, session) = match violation {
            Violation::Initiation { conjecture } => {
                let u = unroll(self.program, 0);
                let mut s = self.session(&u.sig, round_limit)?;
                s.assert_id("base", u.base)?;
                s.assert_id(
                    "violation",
                    not_renamed(&find_formula(conjectures, conjecture), &u.maps[0]),
                )?;
                (u, s)
            }
            Violation::Safety { property } => {
                let u = unroll_free(self.program, 1);
                let Some((_, bad)) = safety_cases(self.program, &u)
                    .into_iter()
                    .find(|(label, _)| label == property)
                else {
                    return Ok(None);
                };
                let mut s = self.frame_session(&u, conjectures, round_limit)?;
                s.assert_id("violation", bad)?;
                (u, s)
            }
            Violation::Consecution { conjecture, .. } => {
                let u = unroll_free(self.program, 1);
                let mut s = self.frame_session(&u, conjectures, round_limit)?;
                s.assert_id("step", u.steps[0])?;
                s.assert_id(
                    "violation",
                    not_renamed(&find_formula(conjectures, conjecture), &u.maps[1]),
                )?;
                (u, s)
            }
        };
        Ok(Some(ViolationSession {
            program: self.program,
            u,
            session,
            violation: violation.clone(),
        }))
    }

    /// A fresh incremental session over `sig` with this verifier's limits.
    fn session(
        &self,
        sig: &ivy_fol::Signature,
        round_limit: Option<usize>,
    ) -> Result<EprSession, EprError> {
        let mut s = EprSession::new(sig)?;
        s.set_instance_limit(self.instance_limit);
        s.set_lazy_round_limit(round_limit);
        s.set_budget(self.budget);
        Ok(s)
    }

    /// A session pre-loaded with the shared one-step frame: the unrolling
    /// base plus every invariant conjunct as a hypothesis at the pre-state
    /// vocabulary.
    fn frame_session(
        &self,
        u: &Unrolling,
        conjectures: &[Conjecture],
        round_limit: Option<usize>,
    ) -> Result<EprSession, EprError> {
        let mut s = self.session(&u.sig, round_limit)?;
        s.assert_id("base", u.base)?;
        for c in conjectures {
            s.assert_id(
                format!("inv:{}", c.name),
                renamed_id(&c.formula, &u.maps[0]),
            )?;
        }
        Ok(s)
    }

    fn query(&self, sig: &ivy_fol::Signature) -> Result<EprCheck, EprError> {
        self.query_limited(sig, None)
    }

    fn query_limited(
        &self,
        sig: &ivy_fol::Signature,
        round_limit: Option<usize>,
    ) -> Result<EprCheck, EprError> {
        let mut q = EprCheck::new(sig)?;
        q.set_instance_limit(self.instance_limit);
        q.set_lazy_round_limit(round_limit);
        q.set_budget(self.budget);
        Ok(q)
    }

    fn solve_state(
        &self,
        sig: &ivy_fol::Signature,
        base: FormulaId,
        conjectures: &[Conjecture],
        state_map: &ivy_rml::SymMap,
        bad: FormulaId,
    ) -> Result<Option<Structure>, EprError> {
        self.solve_state_limited(sig, base, conjectures, state_map, bad, None)
    }

    fn solve_state_limited(
        &self,
        sig: &ivy_fol::Signature,
        base: FormulaId,
        conjectures: &[Conjecture],
        state_map: &ivy_rml::SymMap,
        bad: FormulaId,
        round_limit: Option<usize>,
    ) -> Result<Option<Structure>, EprError> {
        Ok(self
            .solve_model_limited(sig, base, conjectures, state_map, bad, round_limit)?
            .map(|m| project_state(&m, &self.program.sig, state_map)))
    }

    fn solve_model(
        &self,
        sig: &ivy_fol::Signature,
        base: FormulaId,
        conjectures: &[Conjecture],
        state_map: &ivy_rml::SymMap,
        bad: FormulaId,
    ) -> Result<Option<Structure>, EprError> {
        self.solve_model_limited(sig, base, conjectures, state_map, bad, None)
    }

    fn solve_model_limited(
        &self,
        sig: &ivy_fol::Signature,
        base: FormulaId,
        conjectures: &[Conjecture],
        state_map: &ivy_rml::SymMap,
        bad: FormulaId,
        round_limit: Option<usize>,
    ) -> Result<Option<Structure>, EprError> {
        let mut q = self.query_limited(sig, round_limit)?;
        q.assert_id("base", base)?;
        for c in conjectures {
            q.assert_id(format!("inv:{}", c.name), renamed_id(&c.formula, state_map))?;
        }
        q.assert_id("violation", bad)?;
        Ok(sat_model(q.check()?)?.map(|model| model.structure))
    }
}

/// An incremental re-solver for one fixed violation (see
/// [`Verifier::violation_session`]).
pub(crate) struct ViolationSession<'p> {
    program: &'p Program,
    u: Unrolling,
    session: EprSession,
    violation: Violation,
}

impl ViolationSession<'_> {
    /// Re-solves the violation with `extra` constraints (over the base
    /// vocabulary) conjoined at the CTI state. The constraint group is
    /// retired afterwards — also on a repair-limit error, so the session
    /// survives best-effort budgeted queries.
    pub(crate) fn solve(&mut self, extra: &[Formula]) -> Result<Option<Cti>, EprError> {
        let state_map = &self.u.maps[0];
        let constraint = Interner::with(|it| {
            let parts: Vec<FormulaId> = extra
                .iter()
                .map(|e| {
                    let f = it.intern(e);
                    it.rename_symbols(f, state_map)
                })
                .collect();
            it.and(parts)
        });
        let group = self.session.assert_id("constraint", constraint)?;
        let outcome = self.session.check();
        self.session.retire(group);
        match sat_model(outcome?)? {
            Some(model) => {
                let m = &model.structure;
                let (successor, violation) = match &self.violation {
                    Violation::Consecution { conjecture, .. } => {
                        let action = self.u.step_paths[0]
                            .iter()
                            .find(|(_, f)| m.eval_closed(&intern::resolve(*f)).unwrap_or(false))
                            .map(|(n, _)| n.clone())
                            .unwrap_or_default();
                        (
                            Some(project_state(m, &self.program.sig, &self.u.maps[1])),
                            Violation::Consecution {
                                conjecture: conjecture.clone(),
                                action,
                            },
                        )
                    }
                    v => (None, v.clone()),
                };
                Ok(Some(Cti {
                    state: project_state(m, &self.program.sig, &self.u.maps[0]),
                    successor,
                    violation,
                }))
            }
            None => Ok(None),
        }
    }
}

/// Runs `count` independent queries across up to `threads` scoped worker
/// threads, in waves. Both results and errors are inspected in index order,
/// so the outcome (the lowest-index CTI, or the lowest-index error) is
/// deterministic regardless of thread scheduling.
fn parallel_first<T, F>(threads: usize, count: usize, query: F) -> Result<Option<T>, EprError>
where
    T: Send,
    F: Fn(usize) -> Result<Option<T>, EprError> + Sync,
{
    let threads = threads.max(1);
    let mut start = 0;
    while start < count {
        let end = usize::min(start + threads, count);
        let wave: Vec<Result<Option<T>, EprError>> = std::thread::scope(|scope| {
            let query = &query;
            let handles: Vec<_> = (start..end)
                .map(|i| scope.spawn(move || query(i)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("query thread panicked"))
                .collect()
        });
        for result in wave {
            if let Some(found) = result? {
                return Ok(Some(found));
            }
        }
        start = end;
    }
    Ok(None)
}

/// The violation cases checked as "safety" at an arbitrary invariant state:
/// each declared safety property, plus abort reachability through the body
/// and the finalization command. Returns `(label, bad formula)` pairs over
/// the vocabulary of `u.maps[0]`.
fn safety_cases(program: &Program, u: &ivy_rml::Unrolling) -> Vec<(String, FormulaId)> {
    let state_map = &u.maps[0];
    let mut out: Vec<(String, FormulaId)> = program
        .safety
        .iter()
        .map(|(label, phi)| (label.clone(), not_renamed(phi, state_map)))
        .collect();
    let false_id = intern::false_id();
    for (action, err) in &u.step_errors[0] {
        if *err != false_id {
            out.push((format!("abort in action `{action}`"), *err));
        }
    }
    if u.final_errors[0] != false_id {
        out.push(("abort in final".into(), u.final_errors[0]));
    }
    out
}

fn find_formula(conjectures: &[Conjecture], name: &str) -> Formula {
    conjectures
        .iter()
        .find(|c| c.name == name)
        .map(|c| c.formula.clone())
        .unwrap_or(Formula::True)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_fol::parse_formula;
    use ivy_rml::{check_program, parse_program};

    /// Mark-spreading with a seed; "seed stays marked" is inductive,
    /// "at most one marked" is not.
    const SPREAD: &str = r#"
sort node
relation marked : node
variable n : node
variable seed : node
safety seed_marked: marked(seed)
init { marked(X0) := X0 = seed }
action mark { havoc n; marked.insert(n) }
"#;

    fn spread() -> Program {
        let p = parse_program(SPREAD).unwrap();
        assert!(check_program(&p).is_empty(), "{:?}", check_program(&p));
        p
    }

    #[test]
    fn good_invariant_is_inductive() {
        let p = spread();
        let v = Verifier::new(&p);
        let inv = vec![Conjecture::new(
            "C0",
            parse_formula("marked(seed)").unwrap(),
        )];
        assert!(v.check(&inv).unwrap().is_inductive());
    }

    #[test]
    fn exhausted_budget_is_inconclusive_not_inductive() {
        // The same invariant that proves inductive above must NOT be
        // reported inductive when the budget runs out first — degradation
        // surfaces as an error, never a verdict.
        let p = spread();
        let mut v = Verifier::new(&p);
        v.set_budget(ivy_epr::Budget::UNLIMITED.with_max_conflicts(0));
        let inv = vec![Conjecture::new(
            "C0",
            parse_formula("marked(seed)").unwrap(),
        )];
        let err = v.check(&inv).unwrap_err();
        assert!(
            matches!(
                err,
                ivy_epr::EprError::Inconclusive(ivy_epr::StopReason::ConflictBudget)
            ),
            "{err}"
        );
    }

    #[test]
    fn empty_invariant_fails_safety() {
        let p = spread();
        let v = Verifier::new(&p);
        match v.check(&[]).unwrap() {
            Inductiveness::Cti(cti) => {
                assert_eq!(
                    cti.violation,
                    Violation::Safety {
                        property: "seed_marked".into()
                    }
                );
                // The CTI state indeed violates the safety property.
                let phi = parse_formula("marked(seed)").unwrap();
                assert!(!cti.state.eval_closed(&phi).unwrap());
            }
            Inductiveness::Inductive => panic!("expected CTI"),
        }
    }

    #[test]
    fn non_inductive_conjecture_yields_consecution_cti() {
        let p = spread();
        let v = Verifier::new(&p);
        let inv = vec![
            Conjecture::new("C0", parse_formula("marked(seed)").unwrap()),
            Conjecture::new(
                "C1",
                parse_formula("forall X:node, Y:node. marked(X) & marked(Y) -> X = Y").unwrap(),
            ),
        ];
        match v.check(&inv).unwrap() {
            Inductiveness::Cti(cti) => {
                let Violation::Consecution { conjecture, action } = &cti.violation else {
                    panic!("expected consecution, got {}", cti.violation);
                };
                assert_eq!(conjecture, "C1");
                assert_eq!(action, "mark");
                // Pre-state satisfies all conjectures; successor violates C1.
                for c in &inv {
                    assert!(cti.state.eval_closed(&c.formula).unwrap(), "{c}");
                }
                let succ = cti.successor.as_ref().unwrap();
                assert!(!succ.eval_closed(&inv[1].formula).unwrap());
            }
            Inductiveness::Inductive => panic!("expected CTI"),
        }
    }

    #[test]
    fn initiation_violation_detected() {
        let p = spread();
        let v = Verifier::new(&p);
        // "nothing is marked" is false right after init.
        let inv = vec![
            Conjecture::new("C0", parse_formula("marked(seed)").unwrap()),
            Conjecture::new("Cbad", parse_formula("forall X:node. ~marked(X)").unwrap()),
        ];
        match v.check(&inv).unwrap() {
            Inductiveness::Cti(cti) => {
                assert_eq!(
                    cti.violation,
                    Violation::Initiation {
                        conjecture: "Cbad".into()
                    }
                );
            }
            Inductiveness::Inductive => panic!("expected CTI"),
        }
    }

    #[test]
    fn abort_reachability_counts_as_safety() {
        let src = r#"
sort node
relation marked : node
variable n : node
init { marked(X0) := false }
action bad { havoc n; assume marked(n); abort }
"#;
        let p = parse_program(src).unwrap();
        assert!(check_program(&p).is_empty());
        let v = Verifier::new(&p);
        // Without an invariant, a state with a marked node reaches abort.
        match v.check(&[]).unwrap() {
            Inductiveness::Cti(cti) => {
                assert!(matches!(cti.violation, Violation::Safety { .. }));
            }
            Inductiveness::Inductive => panic!("expected CTI"),
        }
        // With the invariant "nothing marked", the program is inductive-safe.
        let inv = vec![Conjecture::new(
            "none",
            parse_formula("forall X:node. ~marked(X)").unwrap(),
        )];
        assert!(v.check(&inv).unwrap().is_inductive());
    }

    #[test]
    fn strategies_agree_on_verdict_and_violation() {
        let p = spread();
        // Candidate sets covering all three violation kinds plus the
        // inductive case.
        let suites: Vec<Vec<Conjecture>> = vec![
            vec![Conjecture::new(
                "C0",
                parse_formula("marked(seed)").unwrap(),
            )],
            vec![],
            vec![
                Conjecture::new("C0", parse_formula("marked(seed)").unwrap()),
                Conjecture::new(
                    "C1",
                    parse_formula("forall X:node, Y:node. marked(X) & marked(Y) -> X = Y").unwrap(),
                ),
            ],
            vec![
                Conjecture::new("C0", parse_formula("marked(seed)").unwrap()),
                Conjecture::new("Cbad", parse_formula("forall X:node. ~marked(X)").unwrap()),
            ],
        ];
        for inv in &suites {
            let mut reference = Verifier::new(&p);
            reference.set_strategy(QueryStrategy::Fresh);
            let expected = reference.check(inv).unwrap();
            for strategy in [QueryStrategy::Session, QueryStrategy::Parallel(4)] {
                let mut v = Verifier::new(&p);
                v.set_strategy(strategy);
                let got = v.check(inv).unwrap();
                match (&expected, &got) {
                    (Inductiveness::Inductive, Inductiveness::Inductive) => {}
                    (Inductiveness::Cti(a), Inductiveness::Cti(b)) => {
                        assert_eq!(a.violation, b.violation, "{strategy:?}");
                    }
                    _ => panic!("{strategy:?} disagrees with Fresh on {inv:?}"),
                }
            }
        }
    }

    #[test]
    fn parallel_fan_out_is_deterministic() {
        let p = spread();
        // Several non-inductive conjectures: every thread count and repeated
        // runs must report the same (lowest-index) violation.
        let inv = vec![
            Conjecture::new("C0", parse_formula("marked(seed)").unwrap()),
            Conjecture::new(
                "A",
                parse_formula("forall X:node, Y:node. marked(X) & marked(Y) -> X = Y").unwrap(),
            ),
            Conjecture::new(
                "B",
                parse_formula("forall X:node. marked(X) -> X = seed").unwrap(),
            ),
        ];
        let mut first: Option<Violation> = None;
        for threads in [1, 2, 8] {
            for _run in 0..3 {
                let mut v = Verifier::new(&p);
                v.set_strategy(QueryStrategy::Parallel(threads));
                let Inductiveness::Cti(cti) = v.check(&inv).unwrap() else {
                    panic!("expected CTI");
                };
                match &first {
                    None => first = Some(cti.violation.clone()),
                    Some(expected) => assert_eq!(
                        expected, &cti.violation,
                        "nondeterministic CTI with {threads} threads"
                    ),
                }
            }
        }
        // The winner is the lowest-index failing conjecture, "A".
        assert_eq!(
            first.unwrap(),
            Violation::Consecution {
                conjecture: "A".into(),
                action: "mark".into()
            }
        );
    }
}
