//! Automatic invariant inference (`ivy infer`).
//!
//! The paper bootstraps its Chord proof by running Houdini over a clause
//! template (Section 5.1); this module grows that seed into a synthesis
//! loop that rediscovers an inductive invariant from the safety properties
//! alone, in the enumerate-and-filter style of Schultz et al. (*Plain and
//! Simple Inductive Invariant Inference in TLA+*):
//!
//! 1. **Generate** — [`generate_clauses`] enumerates universal clauses over
//!    a bounded template (configurable variables per sort × literal count)
//!    whose atoms are built over *interned* formulas, with canonical-form
//!    symmetry reduction ([`ivy_fol::canonical_clause`]) so alpha-variant
//!    clauses are emitted once. Template variables use the `V_`-prefixed
//!    [`ivy_fol::template_var`] names, disjoint from diagram variables.
//! 2. **Filter** — [`houdini_with_oracle`] drops every candidate falsified
//!    by an initiation counterexample or a consecution CTI successor. All
//!    queries go through one shared [`Oracle`], so probes are batched
//!    [`Oracle::first_sat`] sweeps that fan out under
//!    [`crate::QueryStrategy::Parallel`] and reuse frame-cached sessions.
//! 3. **Block** — when the surviving set fails to prove safety, the loop
//!    does not restart: it asks the [`Verifier`] for a CTI, turns the CTI
//!    state into a blocking conjecture with the diagram machinery of
//!    [`Generalizer::auto_generalize`] (Definitions 4–5), and re-runs the
//!    filter with the enlarged set. When generalization stagnates the
//!    template itself is enlarged incrementally — only clauses whose
//!    canonical key was never seen before are added.
//!
//! Budgets degrade the whole loop to `Unknown`
//! ([`EprError::Inconclusive`]), never to a wrong verdict.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;

use ivy_epr::EprError;
use ivy_fol::intern::intern;
use ivy_fol::{
    canonical_clause, sort_permutations, template_var, Binding, Formula, FormulaId,
    PartialStructure, Signature, Sort, Sym, Term,
};
use ivy_rml::Program;
use ivy_rml::{project_state, unroll};

use crate::generalize::{AutoGen, Generalizer};
use crate::houdini::houdini_with_oracle;
use crate::minimize::Measure;
use crate::oracle::{Frame, Goal, Oracle};
use crate::vc::not_renamed;
use crate::vc::{Conjecture, Verifier, Violation};

// ---------------------------------------------------------------------------
// Template specification and clause generation
// ---------------------------------------------------------------------------

/// What the clause template ranges over.
#[derive(Clone, Debug)]
pub struct TemplateSpec {
    /// Quantified variables per sort (`V_SORT0`, `V_SORT1`, …).
    pub vars_per_sort: usize,
    /// Maximum literals per clause.
    pub max_literals: usize,
    /// Include signature constants (nullary functions) as atom arguments.
    pub include_constants: bool,
    /// Include nullary relations as atoms.
    pub include_nullary: bool,
    /// Symbols excluded from the vocabulary (scratch locals carry no
    /// protocol state and only bloat the template).
    pub exclude: BTreeSet<Sym>,
}

impl TemplateSpec {
    /// The full vocabulary used by `ivy infer`, with `program.locals`
    /// excluded.
    pub fn for_program(program: &Program, vars_per_sort: usize, max_literals: usize) -> Self {
        TemplateSpec {
            vars_per_sort,
            max_literals,
            include_constants: true,
            include_nullary: true,
            exclude: program.locals.clone(),
        }
    }

    /// The vocabulary of the original `enumerate_candidates`: variables,
    /// depth-1 unary function applications, relation atoms and same-sort
    /// variable equalities — no constants, no nullary relations.
    pub fn legacy(vars_per_sort: usize, max_literals: usize) -> Self {
        TemplateSpec {
            vars_per_sort,
            max_literals,
            include_constants: false,
            include_nullary: false,
            exclude: BTreeSet::new(),
        }
    }
}

/// Enumerates the template's clauses as named conjectures, one per
/// alpha-equivalence class. See [`generate_clauses_into`] for the
/// incremental variant.
pub fn generate_clauses(sig: &Signature, spec: &TemplateSpec) -> Vec<Conjecture> {
    let mut seen = HashSet::new();
    generate_clauses_into(sig, spec, &mut seen, &mut 0)
}

/// Enumerates the template's clauses, skipping any clause whose canonical
/// key is already in `seen` (and recording the new ones). Passing the same
/// `seen` set across calls with growing specs yields only the *delta* of an
/// enlarged template; `index` numbers conjectures uniquely across calls.
pub fn generate_clauses_into(
    sig: &Signature,
    spec: &TemplateSpec,
    seen: &mut HashSet<Vec<FormulaId>>,
    index: &mut usize,
) -> Vec<Conjecture> {
    // Typed template variables per sort.
    let mut bindings: Vec<Binding> = Vec::new();
    for sort in sig.sorts() {
        for i in 0..spec.vars_per_sort {
            bindings.push(Binding::new(template_var(sort, i), *sort));
        }
    }
    let vars_of = |sort: &Sort| -> Vec<Term> {
        bindings
            .iter()
            .filter(|b| &b.sort == sort)
            .map(|b| Term::Var(b.var))
            .collect()
    };
    // Term pools per sort: variables, constants, then depth-1 unary
    // function applications to variables.
    let mut terms: BTreeMap<Sort, Vec<Term>> = BTreeMap::new();
    for sort in sig.sorts() {
        terms.insert(*sort, vars_of(sort));
    }
    for (fun, decl) in sig.functions() {
        if spec.exclude.contains(fun) {
            continue;
        }
        if spec.include_constants && decl.arity() == 0 {
            terms
                .get_mut(&decl.ret)
                .expect("sort known")
                .push(Term::cst(*fun));
        }
    }
    for (fun, decl) in sig.functions() {
        if spec.exclude.contains(fun) {
            continue;
        }
        if decl.arity() == 1 {
            let apps: Vec<Term> = vars_of(&decl.args[0])
                .into_iter()
                .map(|v| Term::app(*fun, [v]))
                .collect();
            terms.get_mut(&decl.ret).expect("sort known").extend(apps);
        }
    }
    // Atoms: nullary relations, relation applications over the term pools,
    // and equalities between distinct same-sort variables.
    let mut atoms: Vec<Formula> = Vec::new();
    for (rel, arg_sorts) in sig.relations() {
        if spec.exclude.contains(rel) {
            continue;
        }
        if arg_sorts.is_empty() {
            if spec.include_nullary {
                atoms.push(Formula::rel(*rel, Vec::<Term>::new()));
            }
            continue;
        }
        let mut tuples: Vec<Vec<Term>> = vec![Vec::new()];
        for s in arg_sorts {
            let pool = terms.get(s).cloned().unwrap_or_default();
            let mut next = Vec::new();
            for prefix in &tuples {
                for t in &pool {
                    let mut row = prefix.clone();
                    row.push(t.clone());
                    next.push(row);
                }
            }
            tuples = next;
        }
        for tuple in tuples {
            atoms.push(Formula::rel(*rel, tuple));
        }
    }
    for sort in sig.sorts() {
        let vars = vars_of(sort);
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                atoms.push(Formula::eq(vars[i].clone(), vars[j].clone()));
            }
        }
    }
    // Literals, interned. Literal 2k is the k-th atom, 2k+1 its negation.
    let literals: Vec<Formula> = atoms
        .iter()
        .flat_map(|a| [a.clone(), Formula::not(a.clone())])
        .collect();
    let lit_ids: Vec<FormulaId> = literals.iter().map(intern).collect();
    // Dense renaming table: renamed[p][l] is literal l under permutation p.
    // Substitution is memoized in the interner, and the table makes the
    // per-clause canonical key a pure integer computation.
    let perms = sort_permutations(&bindings);
    let renamed: Vec<Vec<FormulaId>> = perms
        .iter()
        .map(|perm| {
            lit_ids
                .iter()
                .map(|&l| canonical_clause(&[l], std::slice::from_ref(perm))[0])
                .collect()
        })
        .collect();
    let canonical_key = |combo: &[usize]| -> Vec<FormulaId> {
        let mut best: Option<Vec<FormulaId>> = None;
        for row in &renamed {
            let mut key: Vec<FormulaId> = combo.iter().map(|&i| row[i]).collect();
            key.sort_unstable();
            key.dedup();
            match &best {
                Some(b) if *b <= key => {}
                _ => best = Some(key),
            }
        }
        best.unwrap_or_default()
    };

    let mut out = Vec::new();
    let mut combo: Vec<usize> = Vec::new();
    #[allow(clippy::too_many_arguments)]
    fn emit(
        literals: &[Formula],
        bindings: &[Binding],
        canonical_key: &dyn Fn(&[usize]) -> Vec<FormulaId>,
        seen: &mut HashSet<Vec<FormulaId>>,
        combo: &mut Vec<usize>,
        start: usize,
        left: usize,
        out: &mut Vec<Conjecture>,
        index: &mut usize,
    ) {
        if !combo.is_empty() {
            // Skip tautologies (an atom and its negation in one clause).
            let tautology = combo
                .iter()
                .any(|&i| i % 2 == 0 && combo.contains(&(i + 1)));
            if !tautology && seen.insert(canonical_key(combo)) {
                let parts: Vec<Formula> = combo.iter().map(|&i| literals[i].clone()).collect();
                let body = Formula::or(parts);
                let fv = body.free_vars();
                let needed: Vec<Binding> = bindings
                    .iter()
                    .filter(|b| fv.contains(&b.var))
                    .cloned()
                    .collect();
                let clause = Formula::forall(needed, body);
                out.push(Conjecture::new(format!("H{index}"), clause));
                *index += 1;
            }
        }
        if left == 0 {
            return;
        }
        for i in start..literals.len() {
            combo.push(i);
            emit(
                literals,
                bindings,
                canonical_key,
                seen,
                combo,
                i + 1,
                left - 1,
                out,
                index,
            );
            combo.pop();
        }
    }
    emit(
        &literals,
        &bindings,
        &canonical_key,
        seen,
        &mut combo,
        0,
        spec.max_literals,
        &mut out,
        index,
    );
    out
}

// ---------------------------------------------------------------------------
// The inference loop
// ---------------------------------------------------------------------------

/// Tuning knobs for [`infer`].
#[derive(Clone, Debug)]
pub struct InferOptions {
    /// Template variables per sort to start from.
    pub vars_per_sort: usize,
    /// Literals per clause to start from.
    pub max_literals: usize,
    /// Ceiling for incremental literal enlargement.
    pub literal_cap: usize,
    /// Ceiling for incremental variable enlargement.
    pub var_cap: usize,
    /// Maximum CTI-guided blocking rounds before giving up.
    pub max_rounds: usize,
    /// Depth of the reachability pre-filter: before Houdini ever asserts a
    /// hypothesis, every candidate violated in some state reachable within
    /// this many steps is mass-eliminated with goal-only batched probes.
    pub reach_depth: usize,
    /// BMC bound `k` for checking blocking conjectures (the paper's
    /// `k`-invariance of generalizations).
    pub generalize_bound: usize,
    /// CTI minimization measures (Section 4.3, Algorithm 1). Small CTI
    /// states yield narrow diagrams — and narrow blocking clauses ground
    /// cheaply when asserted as Houdini hypotheses. When empty, one
    /// [`Measure::SortSize`] per signature sort is used.
    pub measures: Vec<Measure>,
    /// Include signature constants as atom arguments in the template.
    /// Protocols whose signature carries many constants (Chord's ring
    /// anchors) blow the candidate count up by an order of magnitude;
    /// disabling this restricts the template to the paper's Section 5.1
    /// relation-only vocabulary, leaving constant-specific facts to
    /// CTI-guided blocking.
    pub include_constants: bool,
}

impl Default for InferOptions {
    fn default() -> Self {
        InferOptions {
            vars_per_sort: 2,
            max_literals: 2,
            literal_cap: 3,
            var_cap: 3,
            max_rounds: 64,
            reach_depth: 2,
            generalize_bound: 2,
            measures: Vec::new(),
            include_constants: true,
        }
    }
}

/// Why [`infer`] stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InferStatus {
    /// The returned invariant is inductive and proves every safety
    /// property.
    Proved,
    /// A safety property is violated in a reachable state (within the
    /// generalization bound) — a protocol bug, not an inference failure.
    ReachableCounterexample,
    /// Template and blocking enlargement were exhausted (or the round
    /// limit was hit) without proving safety. The returned invariant is
    /// still the strongest inductive subset found.
    Exhausted,
}

impl InferStatus {
    /// Stable lower-case tag used in JSON output.
    pub fn tag(&self) -> &'static str {
        match self {
            InferStatus::Proved => "proved",
            InferStatus::ReachableCounterexample => "reachable_cex",
            InferStatus::Exhausted => "exhausted",
        }
    }
}

/// Emits a diagnostic line when `IVY_INFER_DEBUG` is set.
fn debug(msg: impl FnOnce() -> String) {
    if std::env::var_os("IVY_INFER_DEBUG").is_some() {
        eprintln!("infer: {}", msg());
    }
}

/// How many extra reachability-filter depths [`infer`] may explore beyond
/// [`InferOptions::reach_depth`] when Houdini's consecution frame would
/// exceed the oracle's instance limit. Each extra depth mass-eliminates
/// more candidates before the retry, shrinking the hypothesis set instead
/// of raising the limit.
const MAX_REACH_DEEPENING: usize = 4;

/// How far past [`InferOptions::generalize_bound`] the loop may deepen the
/// generalization BMC bound. A blocking clause that is `k`-invariant but
/// excludes a state reachable in more than `k` steps is only discovered
/// when a later CTI retires it; deepening the bound makes the regenerated
/// clause weaker (more facts survive the minimization) instead of
/// re-learning the refuted one forever.
const MAX_GEN_DEEPENING: usize = 4;

/// The outcome of one [`infer`] run.
#[derive(Clone, Debug)]
pub struct InferReport {
    /// How the run ended.
    pub status: InferStatus,
    /// The inferred conjunction (includes the safety properties when
    /// `status` is [`InferStatus::Proved`]).
    pub invariant: Vec<Conjecture>,
    /// Clauses emitted by the template generator (after symmetry dedup).
    pub generated: usize,
    /// Candidates eliminated by the reachability pre-filter.
    pub filtered_out: usize,
    /// Witness states the reachability pre-filter batch-dropped against.
    pub filter_states: usize,
    /// CTI-guided blocking conjectures added from diagrams.
    pub blocked: usize,
    /// Incremental template enlargements.
    pub enlargements: usize,
    /// Houdini filter runs.
    pub houdini_runs: usize,
    /// CTIs processed inside the Houdini runs.
    pub houdini_iterations: usize,
    /// Oracle queries issued by this run (rollup delta).
    pub queries: u64,
}

/// Drops every candidate violated in some state reachable within `depth`
/// steps. Pure goal-only probing: the per-depth unrolling is grounded once
/// and each candidate's violation is probed as a batched, retire-immediately
/// goal ([`Oracle::first_sat`]), so no hypothesis is ever asserted — the
/// frame stays small no matter how many candidates there are. Every SAT
/// witness batch-drops all candidates it falsifies.
///
/// This is the mass-elimination stage: Houdini's consecution pass asserts
/// one hypothesis per surviving candidate, so it must only ever see the
/// (much smaller) set of candidates that at least *look* invariant out to
/// `depth` steps.
fn reachability_filter(
    program: &Program,
    oracle: &Arc<Oracle>,
    set: &mut Vec<Conjecture>,
    depth: usize,
    states: &mut usize,
) -> Result<(), EprError> {
    for d in 0..=depth {
        reachability_filter_at(program, oracle, set, d, states)?;
    }
    Ok(())
}

/// One depth of [`reachability_filter`]: drops candidates violated in some
/// state reachable in exactly `d` steps.
fn reachability_filter_at(
    program: &Program,
    oracle: &Arc<Oracle>,
    set: &mut Vec<Conjecture>,
    d: usize,
    states: &mut usize,
) -> Result<(), EprError> {
    {
        let u = unroll(program, d);
        let mut frame = Frame::new(&u.sig);
        frame.push("base", u.base);
        for (i, step) in u.steps.iter().enumerate() {
            frame.push(format!("step{i}"), *step);
        }
        let map = &u.maps[d];
        let mut done = 0;
        while done < set.len() {
            let found = match oracle.first_sat(
                &frame,
                set.len() - done,
                |i| Goal::new("violation", not_renamed(&set[done + i].formula, map)),
                |i, model| (i, project_state(&model.structure, &program.sig, map)),
            ) {
                Ok(found) => found,
                // The filter is best-effort mass elimination: a depth whose
                // own unrolling exceeds the instance limit is skipped, not
                // fatal (budget exhaustion still propagates).
                Err(EprError::TooManyInstances { .. }) => {
                    debug(|| format!("reach filter depth {d} over the instance limit, skipped"));
                    return Ok(());
                }
                Err(e) => return Err(e),
            };
            let Some((offset, state)) = found else {
                break;
            };
            *states += 1;
            // Batch-drop everything false in the witnessing reachable state
            // (including the violated candidate itself). Candidates before
            // the hit were just proven unviolable at this depth and always
            // survive, so the scan resumes in place.
            set.retain(|c| state.eval_closed(&c.formula).unwrap_or(false));
            done += offset;
        }
    }
    Ok(())
}

/// Rediscovers an inductive invariant proving `program`'s safety from its
/// safety properties alone. Every solver query is issued through `oracle`,
/// so strategy (sequential, parallel fan-out, portfolio), budgets, and the
/// frame-keyed session cache are all inherited — and shared with any other
/// engine holding the same oracle.
///
/// # Errors
///
/// Propagates [`EprError`]; budget exhaustion surfaces as
/// [`EprError::Inconclusive`], never as a wrong verdict.
pub fn infer(
    program: &Program,
    oracle: &Arc<Oracle>,
    opts: &InferOptions,
) -> Result<InferReport, EprError> {
    let queries_before = oracle.rollup().report.queries;
    let safety: Vec<Conjecture> = program
        .safety
        .iter()
        .map(|(label, f)| Conjecture::new(format!("S_{label}"), f.clone()))
        .collect();
    let mut spec = TemplateSpec::for_program(program, opts.vars_per_sort, opts.max_literals);
    spec.include_constants = opts.include_constants;
    let mut seen: HashSet<Vec<FormulaId>> = HashSet::new();
    let mut next_index = 0usize;
    let mut pool = generate_clauses_into(&program.sig, &spec, &mut seen, &mut next_index);

    let mut report = InferReport {
        status: InferStatus::Exhausted,
        invariant: Vec::new(),
        generated: pool.len(),
        filtered_out: 0,
        filter_states: 0,
        blocked: 0,
        enlargements: 0,
        houdini_runs: 0,
        houdini_iterations: 0,
        queries: 0,
    };

    let before = pool.len();
    reachability_filter(
        program,
        oracle,
        &mut pool,
        opts.reach_depth,
        &mut report.filter_states,
    )?;
    report.filtered_out += before - pool.len();
    debug(|| format!("pool {} -> {} after reach filter", before, pool.len()));

    let verifier = Verifier::with_oracle(program, oracle.clone());
    let generalizer = Generalizer::with_oracle(program, oracle.clone());
    // Small CTIs generalize better (Section 4.3) *and* keep the learned
    // blocking clauses narrow: a diagram over `e` elements quantifies `e`
    // variables, and an `e`-variable hypothesis grounds to |U|^e instances
    // in every later Houdini frame.
    let measures: Vec<Measure> = if opts.measures.is_empty() {
        program
            .sig
            .sorts()
            .iter()
            .map(|s| Measure::SortSize(*s))
            .collect()
    } else {
        opts.measures.clone()
    };
    let mut blocking: Vec<Conjecture> = Vec::new();
    let mut blocked_ids: HashSet<FormulaId> = HashSet::new();
    let mut rounds = 0usize;
    let mut reach = opts.reach_depth;
    let mut gen_bound = opts.generalize_bound;
    let gen_cap = opts.generalize_bound + MAX_GEN_DEEPENING;

    loop {
        // Filter: safety + blocking conjectures + template pool. Houdini
        // returns the strongest inductive subset; between rounds the pool
        // shrinks to the survivors, so candidates already eliminated are
        // never re-filtered (incremental, not a restart). When the pool is
        // still so large that the consecution frame would blow the oracle's
        // instance limit, the reachability filter is deepened step by step —
        // each new depth's witness states mass-eliminate more candidates —
        // and Houdini retried, rather than failing hard.
        let hres = loop {
            let mut candidates = safety.clone();
            candidates.extend(blocking.iter().cloned());
            candidates.extend(pool.iter().cloned());
            debug(|| {
                format!(
                    "houdini over {} candidates ({} blocking, reach={reach})",
                    candidates.len(),
                    blocking.len()
                )
            });
            match houdini_with_oracle(program, candidates, oracle) {
                Ok(h) => break h,
                Err(EprError::TooManyInstances { .. })
                    if reach >= opts.reach_depth + MAX_REACH_DEEPENING || pool.is_empty() =>
                {
                    // Deepening is exhausted and the hypothesis set still
                    // grounds over the instance limit: degrade to Unknown —
                    // never a wrong verdict, and never a hard failure for a
                    // resource limit the caller can raise.
                    return Err(EprError::Inconclusive(ivy_epr::StopReason::InstanceBudget));
                }
                Err(EprError::TooManyInstances { .. }) => {
                    reach += 1;
                    let before = pool.len();
                    reachability_filter_at(
                        program,
                        oracle,
                        &mut pool,
                        reach,
                        &mut report.filter_states,
                    )?;
                    report.filtered_out += before - pool.len();
                    debug(|| {
                        format!(
                            "deepened filter to {reach}: pool {before} -> {}",
                            pool.len()
                        )
                    });
                    // If nothing was eliminated the retry will fail again;
                    // once `reach` hits the cap the error propagates.
                }
                Err(e) => return Err(e),
            }
        };
        report.houdini_runs += 1;
        report.houdini_iterations += hres.iterations;
        let survivors = hres.invariant;
        // Shrink the pool to its surviving partition. Blocking conjectures
        // are *aspirational*: a single blocking clause is rarely inductive
        // by itself (its consecution needs the clauses that will be learned
        // from later CTIs), so Houdini dropping one does not retire it — it
        // stays in the candidate set until the accumulated frontier makes
        // it inductive, exactly as in the paper's interactive sessions.
        let is_safety = |c: &Conjecture| c.name.starts_with("S_");
        let is_blocking = |c: &Conjecture| c.name.starts_with("B");
        pool = survivors
            .iter()
            .filter(|c| !is_safety(c) && !is_blocking(c))
            .cloned()
            .collect();

        let safety_survived = safety
            .iter()
            .all(|s| survivors.iter().any(|c| c.name == s.name));
        if safety_survived && hres.proves_safety {
            report.status = InferStatus::Proved;
            report.invariant = survivors;
            break;
        }

        if rounds >= opts.max_rounds {
            report.invariant = survivors;
            break;
        }
        rounds += 1;

        // Block: ask for a CTI of the full aspirational set (safety ∪
        // blocking ∪ surviving pool) and generalize its pre-state into a
        // new blocking conjecture (the diagram machinery of Definitions
        // 4–5, minimized under k-invariance). Because the pre-state of the
        // CTI satisfies every blocking clause learned so far and the new
        // clause excludes it, each round's frontier state is genuinely new.
        let mut full = safety.clone();
        full.extend(blocking.iter().cloned());
        full.extend(pool.iter().cloned());
        let cti = match verifier.find_minimal_cti(&full, &measures) {
            Ok(None) => {
                report.status = InferStatus::Proved;
                report.invariant = full;
                break;
            }
            Ok(Some(cti)) => cti,
            // The aspirational set (unlike Houdini's surviving subset)
            // can ground over the instance limit — e.g. a learned blocking
            // clause with many variables. Degrade to Unknown, never a hard
            // failure for a resource limit the caller can raise.
            Err(EprError::TooManyInstances { .. }) => {
                return Err(EprError::Inconclusive(ivy_epr::StopReason::InstanceBudget));
            }
            Err(e) => return Err(e),
        };
        if let Violation::Initiation { conjecture } = &cti.violation {
            if conjecture.starts_with("S_") {
                // An initial state violates a safety property: a real bug.
                report.status = InferStatus::ReachableCounterexample;
                report.invariant = survivors;
                break;
            }
            // A candidate excludes an initial state — it can never be part
            // of the invariant, so retire it for good (its interned id
            // stays in `blocked_ids`, so it is never regenerated).
            debug(|| {
                format!("round {rounds}: retiring `{conjecture}` (excludes an initial state)")
            });
            blocking.retain(|b| &b.name != conjecture);
            pool.retain(|c| &c.name != conjecture);
            continue;
        }
        let s_u = PartialStructure::from_structure_without(&cti.state, &program.locals);
        let auto = match generalizer.auto_generalize(&s_u, gen_bound) {
            Ok(auto) => auto,
            // Generalizing a wide CTI can blow the instance limit while
            // checking k-unreachability of a candidate diagram; like the
            // frame cases above, an exhausted budget is Unknown, not a bug.
            Err(EprError::TooManyInstances { .. }) => {
                return Err(EprError::Inconclusive(ivy_epr::StopReason::InstanceBudget));
            }
            Err(e) => return Err(e),
        };
        let progress = match auto {
            AutoGen::TooStrong(_) => {
                // The CTI pre-state is reachable within the bound, so its
                // successor is too. If that successor violates safety the
                // protocol is buggy; if it violates a candidate, the
                // candidate excludes a reachable state and is retired.
                match &cti.violation {
                    Violation::Safety { .. } => {
                        report.status = InferStatus::ReachableCounterexample;
                        report.invariant = survivors;
                        break;
                    }
                    Violation::Consecution { conjecture, .. } if !conjecture.starts_with("S_") => {
                        debug(|| {
                            format!(
                                "round {rounds}: retiring `{conjecture}` (blocks a reachable state)"
                            )
                        });
                        blocking.retain(|b| &b.name != conjecture);
                        pool.retain(|c| &c.name != conjecture);
                        // The retired clause passed the `gen_bound`-step
                        // check when it was learned, so the bound is too
                        // shallow — deepen it for subsequent rounds.
                        gen_bound = (gen_bound + 1).min(gen_cap);
                        true
                    }
                    _ => {
                        // A reachable state steps to a safety violation.
                        report.status = InferStatus::ReachableCounterexample;
                        report.invariant = survivors;
                        break;
                    }
                }
            }
            AutoGen::Generalized { conjecture, .. } => {
                let id = intern(&conjecture);
                if blocked_ids.insert(id) {
                    report.blocked += 1;
                    debug(|| format!("round {rounds}: blocking B{}: {conjecture}", report.blocked));
                    blocking.push(Conjecture::new(format!("B{}", report.blocked), conjecture));
                    true
                } else if gen_bound < gen_cap {
                    // Generalization re-derived a conjecture that was
                    // already learned (and, if retired, refuted). A deeper
                    // bound makes the minimization keep more facts, so the
                    // same CTI state yields a strictly weaker clause.
                    gen_bound += 1;
                    debug(|| format!("round {rounds}: duplicate diagram, bound -> {gen_bound}"));
                    true
                } else {
                    false
                }
            }
        };
        if !progress {
            // Generalization stagnated: enlarge the template incrementally
            // (literals first, then variables) and add only clauses whose
            // canonical key is new.
            if spec.max_literals < opts.literal_cap {
                spec.max_literals += 1;
            } else if spec.vars_per_sort < opts.var_cap {
                spec.vars_per_sort += 1;
            } else {
                report.invariant = survivors;
                break;
            }
            report.enlargements += 1;
            let mut delta = generate_clauses_into(&program.sig, &spec, &mut seen, &mut next_index);
            report.generated += delta.len();
            let before = delta.len();
            reachability_filter(
                program,
                oracle,
                &mut delta,
                reach,
                &mut report.filter_states,
            )?;
            report.filtered_out += before - delta.len();
            pool.extend(delta);
        }
    }

    report.queries = oracle.rollup().report.queries - queries_before;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_fol::diagram;
    use ivy_rml::{check_program, parse_program};

    const SPREAD: &str = r#"
sort node
relation marked : node
relation blue : node
local n : node
variable seed : node
safety seed_marked: marked(seed)
init { marked(X0) := X0 = seed; blue(X0) := false }
action mark { havoc n; marked.insert(n) }
"#;

    #[test]
    fn template_vars_do_not_collide_with_diagram_vars() {
        // Regression: template variables used to be named `NODE0`, … — the
        // exact names `diagram_var` gives diagram variables, silently
        // identifying distinct variables when a template clause is
        // conjoined with a diagram-derived conjecture.
        let p = parse_program(SPREAD).unwrap();
        let clauses = generate_clauses(&p.sig, &TemplateSpec::legacy(2, 2));
        let mut s = ivy_fol::Structure::new(std::sync::Arc::new(p.sig.clone()));
        let n0 = s.add_element("node");
        s.set_rel(Sym::new("marked"), vec![n0.clone()], true);
        s.set_fun(Sym::new("seed"), vec![], n0);
        let diag = diagram(&PartialStructure::from_structure(&s));
        let (diag_vars, clause_vars) = ivy_fol::Interner::with(|it| {
            let d = it.intern(&diag);
            let dv = it.all_vars(d).as_ref().clone();
            let cv: Vec<_> = clauses
                .iter()
                .map(|c| {
                    let f = it.intern(&c.formula);
                    it.all_vars(f).as_ref().clone()
                })
                .collect();
            (dv, cv)
        });
        assert!(!diag_vars.is_empty());
        for (c, vars) in clauses.iter().zip(&clause_vars) {
            for v in vars {
                assert!(
                    !diag_vars.contains(v),
                    "template variable {v} collides with a diagram variable in {}",
                    c.formula
                );
            }
        }
    }

    #[test]
    fn generation_dedups_alpha_variants() {
        let p = parse_program(SPREAD).unwrap();
        let spec = TemplateSpec::legacy(2, 2);
        let clauses = generate_clauses(&p.sig, &spec);
        // Every pair of emitted clauses must have distinct canonical keys.
        let mut bindings = Vec::new();
        for sort in p.sig.sorts() {
            for i in 0..2 {
                bindings.push(Binding::new(template_var(sort, i), *sort));
            }
        }
        let perms = sort_permutations(&bindings);
        let mut keys = HashSet::new();
        for c in &clauses {
            let body = match &c.formula {
                Formula::Forall(_, body) => body.as_ref(),
                other => other,
            };
            let lits = disjuncts(body);
            assert!(
                keys.insert(canonical_clause(&lits, &perms)),
                "duplicate alpha-class: {}",
                c.formula
            );
        }
    }

    fn disjuncts(f: &Formula) -> Vec<FormulaId> {
        match f {
            Formula::Or(parts) => parts.iter().map(intern).collect(),
            other => vec![intern(other)],
        }
    }

    #[test]
    fn infer_proves_spread_from_safety_alone() {
        let p = parse_program(SPREAD).unwrap();
        assert!(check_program(&p).is_empty());
        let oracle = Arc::new(Oracle::new());
        let report = infer(&p, &oracle, &InferOptions::default()).unwrap();
        assert_eq!(report.status, InferStatus::Proved, "{report:?}");
        // The invariant must include the safety property and be inductive.
        let v = Verifier::new(&p);
        assert!(v.check(&report.invariant).unwrap().is_inductive());
        assert!(report.queries > 0);
    }

    #[test]
    fn locals_are_excluded_from_the_vocabulary() {
        let p = parse_program(SPREAD).unwrap();
        let spec = TemplateSpec::for_program(&p, 1, 1);
        let clauses = generate_clauses(&p.sig, &spec);
        let (mentions_local, mentions_seed) = ivy_fol::Interner::with(|it| {
            let mut local = false;
            let mut seed = false;
            for c in &clauses {
                let f = it.intern(&c.formula);
                local |= it.mentions(f, Sym::new("n"));
                seed |= it.mentions(f, Sym::new("seed"));
            }
            (local, seed)
        });
        assert!(!mentions_local, "local leaked into template");
        assert!(mentions_seed, "constants missing from template");
    }
}
