//! `ivy` — the command-line front end of the verifier.
//!
//! ```text
//! ivy check  MODEL.rml                      parse + validate the model
//! ivy bmc    MODEL.rml -k N                 bounded verification to depth N
//! ivy kinv   MODEL.rml -k N "FORMULA"       k-invariance of a property
//! ivy prove  MODEL.rml [INV.inv]            check an inductive invariant
//! ivy cti    MODEL.rml [INV.inv]            show a (minimal) CTI
//! ivy dot    MODEL.rml [INV.inv]            render a CTI state as DOT
//! ivy houdini MODEL.rml [--vars V --lits L] infer an invariant by template
//! ivy infer   MODEL.rml [--vars V --lits L]  synthesize an inductive
//!             [--no-constants]               invariant from safety alone
//! ivy serve   --listen ADDR | --socket PATH  run the verification daemon
//! ivy client  --connect ADDR CMD [args]      drive a running daemon
//! ```
//!
//! Invariant files (`.inv`) contain one conjecture per line:
//! `name: formula` (blank lines and `#` comments ignored). Without an
//! invariant file, the model's safety properties are used.
//!
//! Global flags (any command):
//!
//! * `--timeout SECS` — wall-clock budget. On expiry the run prints
//!   `unknown (deadline exceeded)` and exits with code 3; it never
//!   reports a wrong verdict or panics.
//! * `--strategy fresh|session|parallel|portfolio` — how the solver
//!   oracle discharges queries: re-ground per query, reuse frame-cached
//!   incremental sessions (the default), fan out fresh queries over
//!   worker threads, or race diversified SAT solvers inside each query.
//! * `--jobs N` — worker threads for the parallel strategy, or racing
//!   solver threads for the portfolio strategy (implies
//!   `--strategy parallel` when given alone).
//! * `--bound N` — bounded quantifier instantiation: ground terms are
//!   built only to nesting depth N, which admits models *outside* the
//!   EPR fragment (unstratified functions, `∀∃` alternations). UNSAT
//!   results — `inductive`, `safe` — remain verdicts (the bounded
//!   clause set is a subset of the full instantiation); a SAT answer
//!   that leaned on the bound degrades to `unknown (instantiation
//!   bound reached)` with exit code 3, never a wrong verdict. For
//!   `serve` this sets the server-wide default bound; for `client` it
//!   is forwarded as the request's `bound` field.
//! * `--profile OUT.json` — write an `ivy-profile-v1` JSON report
//!   (timing phases, query/grounding/SAT counters, cache hit rates; see
//!   DESIGN.md §4e), including partial statistics on timeout.
//!
//! Every command routes its queries through ONE shared [`Oracle`]
//! configured by these flags, so e.g. `prove` and the CTI minimization it
//! may trigger reuse the same frame-keyed session cache.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ivy_core::{
    houdini_with_oracle, Bmc, Conjecture, Inductiveness, Oracle, QueryStrategy, Verifier,
};
use ivy_epr::{Budget, EprError, InstantiationMode, QueryReport};
use ivy_fol::parse_formula;
use ivy_rml::{check_program, parse_program, CheckError, Program};
use ivy_serve::{Client, Endpoint, Json, Listener, ServeConfig, Server};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let profile_path = match take_flag(&mut args, "--profile") {
        Ok(v) => v,
        Err(e) => return usage_error(&e),
    };
    let timeout = match take_flag(&mut args, "--timeout") {
        Ok(v) => v,
        Err(e) => return usage_error(&e),
    };
    let timeout_secs = match timeout.as_deref().map(str::parse::<f64>) {
        None => None,
        Some(Ok(secs)) if secs >= 0.0 && secs.is_finite() => Some(secs),
        Some(_) => {
            return usage_error("--timeout expects a non-negative number of seconds");
        }
    };
    let budget = match timeout_secs {
        None => Budget::UNLIMITED,
        Some(secs) => Budget::with_timeout(Duration::from_secs_f64(secs)),
    };
    let strategy_flag = match take_flag(&mut args, "--strategy") {
        Ok(v) => v,
        Err(e) => return usage_error(&e),
    };
    let jobs_flag = match take_flag(&mut args, "--jobs") {
        Ok(v) => v,
        Err(e) => return usage_error(&e),
    };
    let jobs = match jobs_flag.as_deref().map(str::parse) {
        None => None,
        Some(Ok(n)) if n >= 1 => Some(n),
        Some(_) => {
            return usage_error("--jobs expects a positive integer");
        }
    };
    let bound_flag = match take_flag(&mut args, "--bound") {
        Ok(v) => v,
        Err(e) => return usage_error(&e),
    };
    let bound = match bound_flag.as_deref().map(str::parse::<usize>) {
        None => None,
        Some(Ok(n)) if n >= 1 => Some(n),
        Some(_) => {
            return usage_error("--bound expects a positive instantiation depth");
        }
    };
    let strategy = match strategy_flag.as_deref() {
        None => match jobs {
            Some(n) => QueryStrategy::Parallel(n),
            None => QueryStrategy::Session,
        },
        Some("fresh") if jobs.is_none() => QueryStrategy::Fresh,
        Some("session") if jobs.is_none() => QueryStrategy::Session,
        Some("parallel") => QueryStrategy::Parallel(jobs.unwrap_or_else(default_jobs)),
        Some("portfolio") => QueryStrategy::Portfolio(jobs.unwrap_or_else(default_jobs).max(2)),
        Some(other @ ("fresh" | "session")) => {
            eprintln!(
                "error: --jobs is only meaningful with --strategy parallel or portfolio,                  not `{other}`"
            );
            return ExitCode::from(2);
        }
        Some(other) => {
            eprintln!(
                "error: unknown --strategy `{other}` (expected fresh|session|parallel|portfolio)"
            );
            return ExitCode::from(2);
        }
    };
    // The daemon and its thin driver bypass the one-shot oracle path:
    // `serve` owns a long-lived shared oracle, `client` owns none.
    match args.first().map(String::as_str) {
        Some("serve") => {
            if profile_path.is_some() {
                return usage_error(
                    "--profile is not supported with `serve`; every response carries a profile",
                );
            }
            let default_timeout = timeout_secs.map(Duration::from_secs_f64);
            return cmd_serve(&args[1..], strategy, default_timeout, bound);
        }
        Some("client") => {
            if profile_path.is_some() {
                return usage_error(
                    "--profile is not supported with `client`; every response carries a profile",
                );
            }
            let timeout_ms = timeout_secs.map(|s| (s * 1e3).ceil() as u64);
            return cmd_client(&args[1..], timeout_ms, bound);
        }
        _ => {}
    }
    let mut oracle = Oracle::new();
    oracle.set_budget(budget);
    oracle.set_strategy(strategy);
    if let Some(depth) = bound {
        oracle.set_mode(InstantiationMode::Bounded(depth));
    }
    let oracle = Arc::new(oracle);
    if profile_path.is_some() {
        ivy_telemetry::reset();
        ivy_telemetry::set_enabled(true);
    }
    let started = Instant::now();
    let result = run(&args, &oracle, bound);
    let (code, verdict, stop) = match result {
        Ok((code, verdict)) => (code, verdict, None),
        Err(e) => match e.downcast_ref::<EprError>() {
            Some(EprError::Inconclusive(r)) => {
                println!("unknown ({r})");
                (ExitCode::from(3), "unknown", Some(*r))
            }
            _ => {
                eprintln!("error: {e}");
                (ExitCode::from(2), "error", None)
            }
        },
    };
    if let Some(path) = &profile_path {
        if let Err(e) = write_profile(path, &args, verdict, stop, started.elapsed()) {
            eprintln!("profile: {e}");
            return ExitCode::from(2);
        }
    }
    code
}

/// Worker-thread default for `--strategy parallel|portfolio` without
/// `--jobs`.
fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Removes `flag VALUE` from `args`, returning the value when present.
/// A repeated flag or a flag missing its value is a usage error — silently
/// picking one value (or reparsing the flag as a positional argument)
/// masks caller typos.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} expects a value"));
    }
    let value = args.remove(i + 1);
    args.remove(i);
    if args.iter().any(|a| a == flag) {
        return Err(format!("{flag} given more than once"));
    }
    Ok(Some(value))
}

/// Prints a usage error and yields exit code 2.
fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(2)
}

/// Writes the `ivy-profile-v1` report: the cumulative query counters
/// republished from the global registry, plus wall time, outcome, and
/// cache-layer stats only the front end can see.
fn write_profile(
    path: &str,
    args: &[String],
    verdict: &str,
    stop: Option<ivy_epr::StopReason>,
    wall: Duration,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut report = QueryReport::from_global_counters();
    report.outcome = verdict.to_string();
    report.stop = stop;
    report.wall_nanos = wall.as_nanos();
    let (hits, misses) = ivy_fol::intern::cache_stats();
    report.intern_hits = hits;
    report.intern_misses = misses;
    let command = args.first().map(String::as_str).unwrap_or("");
    let model = args.get(1).map(String::as_str).unwrap_or("");
    let json = report.to_json_with(&[("command", command), ("model", model)]);
    std::fs::write(path, json)?;
    Ok(())
}

fn usage() -> Result<(ExitCode, &'static str), Box<dyn std::error::Error>> {
    eprintln!(
        "usage: ivy <check|bmc|kinv|prove|cti|dot|houdini|infer|serve|client> MODEL.rml [args] \
         [--timeout SECS] [--strategy fresh|session|parallel|portfolio] [--jobs N] \
         [--bound N] [--profile OUT.json]\n\
         ivy serve  --listen ADDR | --socket PATH [--workers N] [--queue N] \
         [--max-timeout SECS] [--max-instances N]\n\
         ivy client --connect ADDR|unix:PATH <prove|bmc|houdini|infer|generalize|status|shutdown> \
         [MODEL.rml] [INV.inv] [--raw]\n\
         see `crates/core/src/bin/ivy.rs` and docs/serve-protocol.md for details"
    );
    Ok((ExitCode::from(2), "usage"))
}

/// Loads and validates a model, returning the program together with its
/// *fragment* problems (unstratified functions, `∀∃`/`∃∀` alternations —
/// exactly what `--bound N` tolerates). Hard problems — unknown symbols,
/// sort errors, malformed updates — still refuse the model outright.
fn load(path: &str) -> Result<(Program, Vec<CheckError>), Box<dyn std::error::Error>> {
    let src = std::fs::read_to_string(path)?;
    let program = parse_program(&src)?;
    let (fragment, hard): (Vec<CheckError>, Vec<CheckError>) = check_program(&program)
        .into_iter()
        .partition(CheckError::is_fragment);
    if !hard.is_empty() {
        for p in &hard {
            eprintln!("validation: {p}");
        }
        return Err(format!("{} validation problem(s)", hard.len()).into());
    }
    Ok((program, fragment))
}

/// `ivy check`'s fragment verdict: names the alternation cycle (via the
/// stratification analysis, which identifies the function edges closing
/// it) and any quantifier-alternation violations, without running a
/// single query.
fn print_fragment_report(program: &Program, fragment: &[CheckError], bound: Option<usize>) {
    let strat = program.sig.analyze_stratification();
    if strat.is_stratified() && fragment.is_empty() {
        println!("fragment: EPR (stratified functions; full instantiation decides all queries)");
        return;
    }
    if !strat.is_stratified() {
        let cycle: Vec<String> = strat.cycle.iter().map(ToString::to_string).collect();
        let edges: Vec<String> = strat.edges.iter().map(ToString::to_string).collect();
        println!(
            "fragment: outside EPR — sort cycle {} ({})",
            cycle.join(" -> "),
            edges.join("; ")
        );
    }
    for p in fragment {
        // The stratification line above already names the cycle in more
        // detail than the validation problem restating it.
        if !matches!(p, CheckError::NotStratified(_)) {
            println!("fragment: {p}");
        }
    }
    match bound {
        Some(depth) => println!(
            "fragment: bounded instantiation at depth {depth} applies \
             (UNSAT-backed verdicts remain sound)"
        ),
        None => println!("fragment: use --bound N for bounded (sound-for-UNSAT) checking"),
    }
}

fn load_invariant(
    program: &Program,
    path: Option<&str>,
) -> Result<Vec<Conjecture>, Box<dyn std::error::Error>> {
    match path {
        None => Ok(program
            .safety
            .iter()
            .map(|(l, f)| Conjecture::new(l.clone(), f.clone()))
            .collect()),
        Some(p) => {
            let text = std::fs::read_to_string(p)?;
            let mut out = Vec::new();
            for (lineno, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let (name, formula) = line
                    .split_once(':')
                    .ok_or_else(|| format!("line {}: expected `name: formula`", lineno + 1))?;
                out.push(Conjecture::new(name.trim(), parse_formula(formula)?));
            }
            Ok(out)
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn run(
    args: &[String],
    oracle: &Arc<Oracle>,
    bound: Option<usize>,
) -> Result<(ExitCode, &'static str), Box<dyn std::error::Error>> {
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage(),
    };
    // A repeated flag is ambiguous; refuse rather than silently pick one.
    for (i, a) in rest.iter().enumerate() {
        if a.len() > 1 && a.starts_with('-') && rest[i + 1..].contains(a) {
            return Err(format!("{a} given more than once").into());
        }
    }
    let Some(model_path) = rest.first() else {
        return usage();
    };
    let (program, fragment) = load(model_path)?;
    // `check` is pure analysis — it reports fragment membership instead
    // of refusing. Every querying command needs the fragment problems
    // resolved: admitted under a bound (as notes), refused otherwise.
    if cmd != "check" && !fragment.is_empty() {
        match bound {
            Some(depth) => {
                for p in &fragment {
                    eprintln!("note: outside EPR (admitted by --bound {depth}): {p}");
                }
            }
            None => {
                for p in &fragment {
                    eprintln!("validation: {p}");
                }
                return Err(format!(
                    "{} fragment violation(s); bounded instantiation \
                     (--bound N) can still check this model",
                    fragment.len()
                )
                .into());
            }
        }
    }
    match cmd {
        "check" => {
            println!(
                "ok: {} sorts, {} symbols, {} actions, {} axioms, {} safety properties",
                program.sig.sorts().len(),
                program.sig.symbol_count(),
                program.actions.len(),
                program.axioms.len(),
                program.safety.len()
            );
            print_fragment_report(&program, &fragment, bound);
            Ok((ExitCode::SUCCESS, "ok"))
        }
        "bmc" => {
            let k: usize = flag_value(rest, "-k").unwrap_or("3").parse()?;
            let bmc = Bmc::with_oracle(&program, oracle.clone());
            match bmc.check_safety(k)? {
                None => {
                    println!("safe within {k} loop iterations (any domain size)");
                    Ok((ExitCode::SUCCESS, "safe"))
                }
                Some(trace) => {
                    print!("{}", ivy_core::trace_to_text(&trace));
                    Ok((ExitCode::FAILURE, "trace"))
                }
            }
        }
        "kinv" => {
            let k: usize = flag_value(rest, "-k").unwrap_or("3").parse()?;
            let formula_src = rest
                .iter()
                .skip(1)
                .find(|a| !a.starts_with('-') && flag_value(rest, "-k") != Some(a.as_str()))
                .ok_or("kinv needs a formula argument")?;
            let phi = parse_formula(formula_src)?;
            let bmc = Bmc::with_oracle(&program, oracle.clone());
            match bmc.check_k_invariance(&phi, k)? {
                None => {
                    println!("{k}-invariant");
                    Ok((ExitCode::SUCCESS, "invariant"))
                }
                Some(trace) => {
                    print!("{}", ivy_core::trace_to_text(&trace));
                    Ok((ExitCode::FAILURE, "trace"))
                }
            }
        }
        "prove" => {
            let inv = load_invariant(&program, rest.get(1).map(String::as_str))?;
            let v = Verifier::with_oracle(&program, oracle.clone());
            match v.check(&inv)? {
                Inductiveness::Inductive => {
                    println!(
                        "inductive: the {} conjecture(s) prove safety for any domain size",
                        inv.len()
                    );
                    Ok((ExitCode::SUCCESS, "inductive"))
                }
                Inductiveness::Cti(cti) => {
                    println!("not inductive: {}", cti.violation);
                    println!("CTI state: {}", cti.state);
                    if let Some(s) = &cti.successor {
                        println!("successor: {s}");
                    }
                    Ok((ExitCode::FAILURE, "cti"))
                }
            }
        }
        "cti" | "dot" => {
            let inv = load_invariant(&program, rest.get(1).map(String::as_str))?;
            let v = Verifier::with_oracle(&program, oracle.clone());
            let measures: Vec<ivy_core::Measure> = program
                .sig
                .sorts()
                .iter()
                .map(|s| ivy_core::Measure::SortSize(*s))
                .collect();
            match v.find_minimal_cti(&inv, &measures)? {
                None => {
                    println!("inductive: no CTI");
                    Ok((ExitCode::SUCCESS, "inductive"))
                }
                Some(cti) => {
                    if cmd == "dot" {
                        println!(
                            "{}",
                            ivy_core::structure_to_dot(
                                &cti.state,
                                &ivy_core::VizOptions::default()
                            )
                        );
                    } else {
                        println!("{}", cti.violation);
                        println!("state: {}", cti.state);
                        if let Some(s) = &cti.successor {
                            println!("successor: {s}");
                        }
                    }
                    Ok((ExitCode::FAILURE, "cti"))
                }
            }
        }
        "houdini" => {
            let vars: usize = flag_value(rest, "--vars").unwrap_or("2").parse()?;
            let lits: usize = flag_value(rest, "--lits").unwrap_or("2").parse()?;
            let candidates = ivy_core::enumerate_candidates(&program.sig, vars, lits);
            let result = houdini_with_oracle(&program, candidates, oracle)?;
            println!(
                "{} clause(s) survive after {} CTI(s); proves safety: {}",
                result.invariant.len(),
                result.iterations,
                result.proves_safety
            );
            for c in &result.invariant {
                println!("  {c}");
            }
            Ok(if result.proves_safety {
                (ExitCode::SUCCESS, "safe")
            } else {
                (ExitCode::FAILURE, "not_proved")
            })
        }
        "infer" => {
            let vars: usize = flag_value(rest, "--vars").unwrap_or("2").parse()?;
            let lits: usize = flag_value(rest, "--literals")
                .or_else(|| flag_value(rest, "--lits"))
                .unwrap_or("2")
                .parse()?;
            let opts = ivy_core::InferOptions {
                vars_per_sort: vars,
                max_literals: lits,
                include_constants: !rest.iter().any(|a| a == "--no-constants"),
                ..ivy_core::InferOptions::default()
            };
            let report = ivy_core::infer(&program, oracle, &opts)?;
            println!(
                "{}: {} clause(s) ({} generated, {} blocked from CTIs, \
                 {} enlargement(s), {} Houdini run(s), {} queries)",
                report.status.tag(),
                report.invariant.len(),
                report.generated,
                report.blocked,
                report.enlargements,
                report.houdini_runs,
                report.queries
            );
            for c in &report.invariant {
                println!("  {c}");
            }
            Ok(match report.status {
                ivy_core::InferStatus::Proved => (ExitCode::SUCCESS, "proved"),
                ivy_core::InferStatus::ReachableCounterexample => {
                    (ExitCode::FAILURE, "reachable_cex")
                }
                ivy_core::InferStatus::Exhausted => (ExitCode::FAILURE, "not_proved"),
            })
        }
        _ => usage(),
    }
}

/// `ivy serve`: run the verification daemon (see `docs/serve-protocol.md`).
///
/// The global `--timeout` flag becomes the server's *default* per-request
/// budget; `--max-timeout` caps what clients may ask for. `--strategy`
/// configures the shared oracle.
fn cmd_serve(
    rest: &[String],
    strategy: QueryStrategy,
    default_timeout: Option<Duration>,
    default_bound: Option<usize>,
) -> ExitCode {
    match serve_inner(rest, strategy, default_timeout, default_bound) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn serve_inner(
    rest: &[String],
    strategy: QueryStrategy,
    default_timeout: Option<Duration>,
    default_bound: Option<usize>,
) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut rest = rest.to_vec();
    let listen = take_flag(&mut rest, "--listen")?;
    let socket = take_flag(&mut rest, "--socket")?;
    let workers = take_flag(&mut rest, "--workers")?
        .map(|s| s.parse::<usize>())
        .transpose()?;
    let queue = take_flag(&mut rest, "--queue")?
        .map(|s| s.parse::<usize>())
        .transpose()?;
    let max_timeout = take_flag(&mut rest, "--max-timeout")?
        .map(|s| s.parse::<f64>())
        .transpose()?;
    let max_instances = take_flag(&mut rest, "--max-instances")?
        .map(|s| s.parse::<u64>())
        .transpose()?;
    if !rest.is_empty() {
        return Err(format!("serve: unexpected arguments: {}", rest.join(" ")).into());
    }
    let mut config = ServeConfig {
        strategy,
        default_timeout,
        default_bound,
        ..ServeConfig::default()
    };
    if let Some(w) = workers {
        if w == 0 {
            return Err("--workers expects a positive integer".into());
        }
        config.workers = w;
        config.queue = w * 4;
        config.pool_capacity = (w * 24).max(64);
    }
    if let Some(q) = queue {
        config.queue = q;
    }
    if let Some(secs) = max_timeout {
        if !(secs > 0.0 && secs.is_finite()) {
            return Err("--max-timeout expects a positive number of seconds".into());
        }
        config.max_timeout = Some(Duration::from_secs_f64(secs));
    }
    config.instance_cap = max_instances;
    let listener = match (&listen, &socket) {
        (Some(addr), None) => Listener::bind_tcp(addr.as_str())?,
        (None, Some(path)) => {
            #[cfg(unix)]
            {
                Listener::bind_unix(std::path::Path::new(path))?
            }
            #[cfg(not(unix))]
            {
                return Err("--socket is only available on Unix platforms".into());
            }
        }
        _ => return Err("serve needs exactly one of --listen ADDR or --socket PATH".into()),
    };
    // The address line is a contract: tests and scripts bind port 0 and
    // parse the ephemeral port from here.
    println!("ivy-serve listening on {}", listener.describe());
    let server = Arc::new(Server::new(config));
    server.serve_listener(listener)?;
    println!("ivy-serve: shutdown complete");
    Ok(ExitCode::SUCCESS)
}

/// `ivy client`: one request against a running daemon, CLI-shaped.
///
/// The model file is read locally and sent inline, so the server needs no
/// shared filesystem. Exit codes mirror the one-shot CLI: 0 for
/// favorable verdicts, 1 for counterexamples, 3 for budget exhaustion,
/// 2 for everything else.
fn cmd_client(rest: &[String], timeout_ms: Option<u64>, bound: Option<usize>) -> ExitCode {
    match client_inner(rest, timeout_ms, bound) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn client_inner(
    rest: &[String],
    timeout_ms: Option<u64>,
    bound: Option<usize>,
) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut rest = rest.to_vec();
    let connect = take_flag(&mut rest, "--connect")?
        .ok_or("client needs --connect HOST:PORT or --connect unix:PATH")?;
    let raw = match rest.iter().position(|a| a == "--raw") {
        Some(i) => {
            rest.remove(i);
            true
        }
        None => false,
    };
    let k = take_flag(&mut rest, "-k")?
        .map(|s| s.parse::<u64>())
        .transpose()?;
    let vars = take_flag(&mut rest, "--vars")?
        .map(|s| s.parse::<u64>())
        .transpose()?;
    let lits = take_flag(&mut rest, "--lits")?
        .map(|s| s.parse::<u64>())
        .transpose()?;
    let max_instances = take_flag(&mut rest, "--max-instances")?
        .map(|s| s.parse::<u64>())
        .transpose()?;
    let (cmd, cargs) = rest
        .split_first()
        .ok_or("client needs a command: prove|bmc|houdini|infer|generalize|status|shutdown")?;
    let wire_cmd = match cmd.as_str() {
        "prove" | "verify" => "verify",
        "bmc" => "bmc",
        "houdini" => "houdini",
        "infer" => "infer",
        "generalize" => "generalize",
        "status" => "status",
        "shutdown" => "shutdown",
        other => return Err(format!("client: unknown command `{other}`").into()),
    };

    let mut fields: Vec<(&'static str, Json)> =
        vec![("id", Json::str("cli")), ("cmd", Json::str(wire_cmd))];
    if !matches!(wire_cmd, "status" | "shutdown") {
        let model_path = cargs
            .first()
            .ok_or_else(|| format!("client {cmd}: needs a MODEL.rml argument"))?;
        fields.push(("model", Json::str(std::fs::read_to_string(model_path)?)));
        if matches!(wire_cmd, "verify" | "generalize" | "houdini") {
            if let Some(inv_path) = cargs.get(1) {
                fields.push(("invariant", Json::str(std::fs::read_to_string(inv_path)?)));
            }
        }
    }
    if let Some(k) = k {
        fields.push(("depth", Json::num(k as f64)));
    }
    if let Some(v) = vars {
        fields.push(("vars", Json::num(v as f64)));
    }
    if let Some(l) = lits {
        fields.push(("lits", Json::num(l as f64)));
    }
    if let Some(ms) = timeout_ms {
        fields.push(("timeout_ms", Json::num(ms as f64)));
    }
    if let Some(mi) = max_instances {
        fields.push(("max_instances", Json::num(mi as f64)));
    }
    if let Some(depth) = bound {
        fields.push(("bound", Json::num(depth as f64)));
    }

    let mut client = Client::connect(&Endpoint::parse(&connect))?;
    let response = client.roundtrip(&Json::obj(fields).to_string())?;
    if raw {
        println!("{response}");
    }
    let parsed = Json::parse(&response)
        .map_err(|e| format!("malformed server response: {e}: {response}"))?;
    let ok = parsed.get("ok").and_then(Json::as_bool).unwrap_or(false);
    let verdict = parsed.get("verdict").and_then(Json::as_str).unwrap_or("");
    if !raw {
        print_client_response(&parsed, ok, verdict);
    }
    Ok(if ok {
        match verdict {
            "inductive" | "safe" | "ok" | "generalized" => ExitCode::SUCCESS,
            _ => ExitCode::FAILURE,
        }
    } else {
        let code = parsed
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .unwrap_or("");
        if code == "budget" {
            ExitCode::from(3)
        } else {
            ExitCode::from(2)
        }
    })
}

/// Human-readable rendering of a server response.
fn print_client_response(parsed: &Json, ok: bool, verdict: &str) {
    if !ok {
        let msg = parsed
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or("unknown error");
        println!("error: {msg}");
    }
    if !verdict.is_empty() {
        println!("verdict: {verdict}");
    }
    for key in [
        "violation",
        "state",
        "successor",
        "trace",
        "conjecture",
        "iterations",
        "depth",
        "facts",
    ] {
        if let Some(v) = parsed.get(key) {
            match v.as_str() {
                Some(s) if s.contains('\n') => println!("{key}:\n{s}"),
                Some(s) => println!("{key}: {s}"),
                None => println!("{key}: {v}"),
            }
        }
    }
    if let Some(survivors) = parsed.get("survivors").and_then(Json::as_arr) {
        println!("survivors: {}", survivors.len());
        for s in survivors {
            if let Some(s) = s.as_str() {
                println!("  {s}");
            }
        }
    }
    if let Some(cache) = parsed.get("cache") {
        let hits = cache.get("frame_hits").and_then(Json::as_u64).unwrap_or(0);
        let misses = cache
            .get("frame_misses")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        println!("cache: {hits} frame hit(s), {misses} miss(es)");
    }
    if let Some(ms) = parsed.get("wall_ms").and_then(Json::as_f64) {
        println!("wall: {ms:.1} ms");
    }
}
