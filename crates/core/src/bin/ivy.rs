//! `ivy` — the command-line front end of the verifier.
//!
//! ```text
//! ivy check  MODEL.rml                      parse + validate the model
//! ivy bmc    MODEL.rml -k N                 bounded verification to depth N
//! ivy kinv   MODEL.rml -k N "FORMULA"       k-invariance of a property
//! ivy prove  MODEL.rml [INV.inv]            check an inductive invariant
//! ivy cti    MODEL.rml [INV.inv]            show a (minimal) CTI
//! ivy dot    MODEL.rml [INV.inv]            render a CTI state as DOT
//! ivy houdini MODEL.rml [--vars V --lits L] infer an invariant by template
//! ```
//!
//! Invariant files (`.inv`) contain one conjecture per line:
//! `name: formula` (blank lines and `#` comments ignored). Without an
//! invariant file, the model's safety properties are used.

use std::process::ExitCode;

use ivy_core::{houdini_with_template, Bmc, Conjecture, Inductiveness, Verifier};
use ivy_fol::parse_formula;
use ivy_rml::{check_program, parse_program, Program};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ivy <check|bmc|kinv|prove|cti|dot|houdini> MODEL.rml [args]\n\
         see `crates/core/src/bin/ivy.rs` for details"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Program, Box<dyn std::error::Error>> {
    let src = std::fs::read_to_string(path)?;
    let program = parse_program(&src)?;
    let problems = check_program(&program);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("validation: {p}");
        }
        return Err(format!("{} validation problem(s)", problems.len()).into());
    }
    Ok(program)
}

fn load_invariant(
    program: &Program,
    path: Option<&str>,
) -> Result<Vec<Conjecture>, Box<dyn std::error::Error>> {
    match path {
        None => Ok(program
            .safety
            .iter()
            .map(|(l, f)| Conjecture::new(l.clone(), f.clone()))
            .collect()),
        Some(p) => {
            let text = std::fs::read_to_string(p)?;
            let mut out = Vec::new();
            for (lineno, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let (name, formula) = line
                    .split_once(':')
                    .ok_or_else(|| format!("line {}: expected `name: formula`", lineno + 1))?;
                out.push(Conjecture::new(name.trim(), parse_formula(formula)?));
            }
            Ok(out)
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn run(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return Ok(usage()),
    };
    let Some(model_path) = rest.first() else {
        return Ok(usage());
    };
    let program = load(model_path)?;
    match cmd {
        "check" => {
            println!(
                "ok: {} sorts, {} symbols, {} actions, {} axioms, {} safety properties",
                program.sig.sorts().len(),
                program.sig.symbol_count(),
                program.actions.len(),
                program.axioms.len(),
                program.safety.len()
            );
            Ok(ExitCode::SUCCESS)
        }
        "bmc" => {
            let k: usize = flag_value(rest, "-k").unwrap_or("3").parse()?;
            let bmc = Bmc::new(&program);
            match bmc.check_safety(k)? {
                None => {
                    println!("safe within {k} loop iterations (any domain size)");
                    Ok(ExitCode::SUCCESS)
                }
                Some(trace) => {
                    print!("{}", ivy_core::trace_to_text(&trace));
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        "kinv" => {
            let k: usize = flag_value(rest, "-k").unwrap_or("3").parse()?;
            let formula_src = rest
                .iter()
                .skip(1)
                .find(|a| !a.starts_with('-') && flag_value(rest, "-k") != Some(a.as_str()))
                .ok_or("kinv needs a formula argument")?;
            let phi = parse_formula(formula_src)?;
            let bmc = Bmc::new(&program);
            match bmc.check_k_invariance(&phi, k)? {
                None => {
                    println!("{k}-invariant");
                    Ok(ExitCode::SUCCESS)
                }
                Some(trace) => {
                    print!("{}", ivy_core::trace_to_text(&trace));
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        "prove" => {
            let inv = load_invariant(&program, rest.get(1).map(String::as_str))?;
            let v = Verifier::new(&program);
            match v.check(&inv)? {
                Inductiveness::Inductive => {
                    println!(
                        "inductive: the {} conjecture(s) prove safety for any domain size",
                        inv.len()
                    );
                    Ok(ExitCode::SUCCESS)
                }
                Inductiveness::Cti(cti) => {
                    println!("not inductive: {}", cti.violation);
                    println!("CTI state: {}", cti.state);
                    if let Some(s) = &cti.successor {
                        println!("successor: {s}");
                    }
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        "cti" | "dot" => {
            let inv = load_invariant(&program, rest.get(1).map(String::as_str))?;
            let v = Verifier::new(&program);
            let measures: Vec<ivy_core::Measure> = program
                .sig
                .sorts()
                .iter()
                .map(|s| ivy_core::Measure::SortSize(*s))
                .collect();
            match v.find_minimal_cti(&inv, &measures)? {
                None => {
                    println!("inductive: no CTI");
                    Ok(ExitCode::SUCCESS)
                }
                Some(cti) => {
                    if cmd == "dot" {
                        println!(
                            "{}",
                            ivy_core::structure_to_dot(
                                &cti.state,
                                &ivy_core::VizOptions::default()
                            )
                        );
                    } else {
                        println!("{}", cti.violation);
                        println!("state: {}", cti.state);
                        if let Some(s) = &cti.successor {
                            println!("successor: {s}");
                        }
                    }
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        "houdini" => {
            let vars: usize = flag_value(rest, "--vars").unwrap_or("2").parse()?;
            let lits: usize = flag_value(rest, "--lits").unwrap_or("2").parse()?;
            let result =
                houdini_with_template(&program, vars, lits, ivy_epr::DEFAULT_INSTANCE_LIMIT)?;
            println!(
                "{} clause(s) survive after {} CTI(s); proves safety: {}",
                result.invariant.len(),
                result.iterations,
                result.proves_safety
            );
            for c in &result.invariant {
                println!("  {c}");
            }
            Ok(if result.proves_safety {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        _ => Ok(usage()),
    }
}
