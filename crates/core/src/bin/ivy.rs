//! `ivy` — the command-line front end of the verifier.
//!
//! ```text
//! ivy check  MODEL.rml                      parse + validate the model
//! ivy bmc    MODEL.rml -k N                 bounded verification to depth N
//! ivy kinv   MODEL.rml -k N "FORMULA"       k-invariance of a property
//! ivy prove  MODEL.rml [INV.inv]            check an inductive invariant
//! ivy cti    MODEL.rml [INV.inv]            show a (minimal) CTI
//! ivy dot    MODEL.rml [INV.inv]            render a CTI state as DOT
//! ivy houdini MODEL.rml [--vars V --lits L] infer an invariant by template
//! ```
//!
//! Invariant files (`.inv`) contain one conjecture per line:
//! `name: formula` (blank lines and `#` comments ignored). Without an
//! invariant file, the model's safety properties are used.
//!
//! Global flags (any command):
//!
//! * `--timeout SECS` — wall-clock budget. On expiry the run prints
//!   `unknown (deadline exceeded)` and exits with code 3; it never
//!   reports a wrong verdict or panics.
//! * `--strategy fresh|session|parallel|portfolio` — how the solver
//!   oracle discharges queries: re-ground per query, reuse frame-cached
//!   incremental sessions (the default), fan out fresh queries over
//!   worker threads, or race diversified SAT solvers inside each query.
//! * `--jobs N` — worker threads for the parallel strategy, or racing
//!   solver threads for the portfolio strategy (implies
//!   `--strategy parallel` when given alone).
//! * `--profile OUT.json` — write an `ivy-profile-v1` JSON report
//!   (timing phases, query/grounding/SAT counters, cache hit rates; see
//!   DESIGN.md §4e), including partial statistics on timeout.
//!
//! Every command routes its queries through ONE shared [`Oracle`]
//! configured by these flags, so e.g. `prove` and the CTI minimization it
//! may trigger reuse the same frame-keyed session cache.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ivy_core::{
    houdini_with_oracle, Bmc, Conjecture, Inductiveness, Oracle, QueryStrategy, Verifier,
};
use ivy_epr::{Budget, EprError, QueryReport};
use ivy_fol::parse_formula;
use ivy_rml::{check_program, parse_program, Program};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let profile_path = take_flag(&mut args, "--profile");
    let timeout = take_flag(&mut args, "--timeout");
    let budget = match timeout.as_deref().map(str::parse::<f64>) {
        None => Budget::UNLIMITED,
        Some(Ok(secs)) if secs >= 0.0 && secs.is_finite() => {
            Budget::with_timeout(Duration::from_secs_f64(secs))
        }
        Some(_) => {
            eprintln!("error: --timeout expects a non-negative number of seconds");
            return ExitCode::from(2);
        }
    };
    let strategy_flag = take_flag(&mut args, "--strategy");
    let jobs = match take_flag(&mut args, "--jobs").as_deref().map(str::parse) {
        None => None,
        Some(Ok(n)) if n >= 1 => Some(n),
        Some(_) => {
            eprintln!("error: --jobs expects a positive integer");
            return ExitCode::from(2);
        }
    };
    let strategy = match strategy_flag.as_deref() {
        None => match jobs {
            Some(n) => QueryStrategy::Parallel(n),
            None => QueryStrategy::Session,
        },
        Some("fresh") if jobs.is_none() => QueryStrategy::Fresh,
        Some("session") if jobs.is_none() => QueryStrategy::Session,
        Some("parallel") => QueryStrategy::Parallel(jobs.unwrap_or_else(default_jobs)),
        Some("portfolio") => QueryStrategy::Portfolio(jobs.unwrap_or_else(default_jobs).max(2)),
        Some(other @ ("fresh" | "session")) => {
            eprintln!(
                "error: --jobs is only meaningful with --strategy parallel or portfolio,                  not `{other}`"
            );
            return ExitCode::from(2);
        }
        Some(other) => {
            eprintln!(
                "error: unknown --strategy `{other}` (expected fresh|session|parallel|portfolio)"
            );
            return ExitCode::from(2);
        }
    };
    let mut oracle = Oracle::new();
    oracle.set_budget(budget);
    oracle.set_strategy(strategy);
    let oracle = Arc::new(oracle);
    if profile_path.is_some() {
        ivy_telemetry::reset();
        ivy_telemetry::set_enabled(true);
    }
    let started = Instant::now();
    let result = run(&args, &oracle);
    let (code, verdict, stop) = match result {
        Ok((code, verdict)) => (code, verdict, None),
        Err(e) => match e.downcast_ref::<EprError>() {
            Some(EprError::Inconclusive(r)) => {
                println!("unknown ({r})");
                (ExitCode::from(3), "unknown", Some(*r))
            }
            _ => {
                eprintln!("error: {e}");
                (ExitCode::from(2), "error", None)
            }
        },
    };
    if let Some(path) = &profile_path {
        if let Err(e) = write_profile(path, &args, verdict, stop, started.elapsed()) {
            eprintln!("profile: {e}");
            return ExitCode::from(2);
        }
    }
    code
}

/// Worker-thread default for `--strategy parallel|portfolio` without
/// `--jobs`.
fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Removes `flag VALUE` from `args`, returning the value when present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        return None;
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

/// Writes the `ivy-profile-v1` report: the cumulative query counters
/// republished from the global registry, plus wall time, outcome, and
/// cache-layer stats only the front end can see.
fn write_profile(
    path: &str,
    args: &[String],
    verdict: &str,
    stop: Option<ivy_epr::StopReason>,
    wall: Duration,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut report = QueryReport::from_global_counters();
    report.outcome = verdict.to_string();
    report.stop = stop;
    report.wall_nanos = wall.as_nanos();
    let (hits, misses) = ivy_fol::intern::cache_stats();
    report.intern_hits = hits;
    report.intern_misses = misses;
    let command = args.first().map(String::as_str).unwrap_or("");
    let model = args.get(1).map(String::as_str).unwrap_or("");
    let json = report.to_json_with(&[("command", command), ("model", model)]);
    std::fs::write(path, json)?;
    Ok(())
}

fn usage() -> Result<(ExitCode, &'static str), Box<dyn std::error::Error>> {
    eprintln!(
        "usage: ivy <check|bmc|kinv|prove|cti|dot|houdini> MODEL.rml [args] \
         [--timeout SECS] [--strategy fresh|session|parallel|portfolio] [--jobs N] \
         [--profile OUT.json]\n\
         see `crates/core/src/bin/ivy.rs` for details"
    );
    Ok((ExitCode::from(2), "usage"))
}

fn load(path: &str) -> Result<Program, Box<dyn std::error::Error>> {
    let src = std::fs::read_to_string(path)?;
    let program = parse_program(&src)?;
    let problems = check_program(&program);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("validation: {p}");
        }
        return Err(format!("{} validation problem(s)", problems.len()).into());
    }
    Ok(program)
}

fn load_invariant(
    program: &Program,
    path: Option<&str>,
) -> Result<Vec<Conjecture>, Box<dyn std::error::Error>> {
    match path {
        None => Ok(program
            .safety
            .iter()
            .map(|(l, f)| Conjecture::new(l.clone(), f.clone()))
            .collect()),
        Some(p) => {
            let text = std::fs::read_to_string(p)?;
            let mut out = Vec::new();
            for (lineno, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let (name, formula) = line
                    .split_once(':')
                    .ok_or_else(|| format!("line {}: expected `name: formula`", lineno + 1))?;
                out.push(Conjecture::new(name.trim(), parse_formula(formula)?));
            }
            Ok(out)
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn run(
    args: &[String],
    oracle: &Arc<Oracle>,
) -> Result<(ExitCode, &'static str), Box<dyn std::error::Error>> {
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage(),
    };
    let Some(model_path) = rest.first() else {
        return usage();
    };
    let program = load(model_path)?;
    match cmd {
        "check" => {
            println!(
                "ok: {} sorts, {} symbols, {} actions, {} axioms, {} safety properties",
                program.sig.sorts().len(),
                program.sig.symbol_count(),
                program.actions.len(),
                program.axioms.len(),
                program.safety.len()
            );
            Ok((ExitCode::SUCCESS, "ok"))
        }
        "bmc" => {
            let k: usize = flag_value(rest, "-k").unwrap_or("3").parse()?;
            let bmc = Bmc::with_oracle(&program, oracle.clone());
            match bmc.check_safety(k)? {
                None => {
                    println!("safe within {k} loop iterations (any domain size)");
                    Ok((ExitCode::SUCCESS, "safe"))
                }
                Some(trace) => {
                    print!("{}", ivy_core::trace_to_text(&trace));
                    Ok((ExitCode::FAILURE, "trace"))
                }
            }
        }
        "kinv" => {
            let k: usize = flag_value(rest, "-k").unwrap_or("3").parse()?;
            let formula_src = rest
                .iter()
                .skip(1)
                .find(|a| !a.starts_with('-') && flag_value(rest, "-k") != Some(a.as_str()))
                .ok_or("kinv needs a formula argument")?;
            let phi = parse_formula(formula_src)?;
            let bmc = Bmc::with_oracle(&program, oracle.clone());
            match bmc.check_k_invariance(&phi, k)? {
                None => {
                    println!("{k}-invariant");
                    Ok((ExitCode::SUCCESS, "invariant"))
                }
                Some(trace) => {
                    print!("{}", ivy_core::trace_to_text(&trace));
                    Ok((ExitCode::FAILURE, "trace"))
                }
            }
        }
        "prove" => {
            let inv = load_invariant(&program, rest.get(1).map(String::as_str))?;
            let v = Verifier::with_oracle(&program, oracle.clone());
            match v.check(&inv)? {
                Inductiveness::Inductive => {
                    println!(
                        "inductive: the {} conjecture(s) prove safety for any domain size",
                        inv.len()
                    );
                    Ok((ExitCode::SUCCESS, "inductive"))
                }
                Inductiveness::Cti(cti) => {
                    println!("not inductive: {}", cti.violation);
                    println!("CTI state: {}", cti.state);
                    if let Some(s) = &cti.successor {
                        println!("successor: {s}");
                    }
                    Ok((ExitCode::FAILURE, "cti"))
                }
            }
        }
        "cti" | "dot" => {
            let inv = load_invariant(&program, rest.get(1).map(String::as_str))?;
            let v = Verifier::with_oracle(&program, oracle.clone());
            let measures: Vec<ivy_core::Measure> = program
                .sig
                .sorts()
                .iter()
                .map(|s| ivy_core::Measure::SortSize(*s))
                .collect();
            match v.find_minimal_cti(&inv, &measures)? {
                None => {
                    println!("inductive: no CTI");
                    Ok((ExitCode::SUCCESS, "inductive"))
                }
                Some(cti) => {
                    if cmd == "dot" {
                        println!(
                            "{}",
                            ivy_core::structure_to_dot(
                                &cti.state,
                                &ivy_core::VizOptions::default()
                            )
                        );
                    } else {
                        println!("{}", cti.violation);
                        println!("state: {}", cti.state);
                        if let Some(s) = &cti.successor {
                            println!("successor: {s}");
                        }
                    }
                    Ok((ExitCode::FAILURE, "cti"))
                }
            }
        }
        "houdini" => {
            let vars: usize = flag_value(rest, "--vars").unwrap_or("2").parse()?;
            let lits: usize = flag_value(rest, "--lits").unwrap_or("2").parse()?;
            let candidates = ivy_core::enumerate_candidates(&program.sig, vars, lits);
            let result = houdini_with_oracle(&program, candidates, oracle)?;
            println!(
                "{} clause(s) survive after {} CTI(s); proves safety: {}",
                result.invariant.len(),
                result.iterations,
                result.proves_safety
            );
            for c in &result.invariant {
                println!("  {c}");
            }
            Ok(if result.proves_safety {
                (ExitCode::SUCCESS, "safe")
            } else {
                (ExitCode::FAILURE, "not_proved")
            })
        }
        _ => usage(),
    }
}
