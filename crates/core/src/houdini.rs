//! Houdini-style invariant inference (Flanagan & Leino), the technique the
//! paper reports using for the Chord proof: "we described a class of
//! formulas using a template, and used abstract interpretation to construct
//! the strongest inductive invariant in this class" (Section 5.1).
//!
//! Starting from a finite set of candidate universal clauses, repeatedly
//! drop every candidate falsified by an initiation counterexample or by the
//! successor state of a consecution CTI, until the surviving set is
//! inductive. The result is the strongest inductive invariant within the
//! candidate set; safety is then checked separately.

use std::sync::Arc;

use ivy_epr::{Budget, EprError, EprOutcome};
use ivy_fol::{Binding, Formula, Signature, Sort, Term};
use ivy_rml::{project_state, unroll, unroll_free, Program};

use crate::oracle::{Frame, FrameGroup, Goal, Oracle};
use crate::vc::{not_renamed, renamed_id, Conjecture, Verifier};

/// Result of a Houdini run.
#[derive(Clone, Debug)]
pub struct HoudiniResult {
    /// The strongest inductive subset of the candidates.
    pub invariant: Vec<Conjecture>,
    /// CTIs processed (each drops at least one candidate).
    pub iterations: usize,
    /// Whether the surviving invariant establishes the program's safety.
    pub proves_safety: bool,
}

/// Runs Houdini on `candidates`.
///
/// # Errors
///
/// Propagates [`EprError`].
pub fn houdini(
    program: &Program,
    candidates: Vec<Conjecture>,
    instance_limit: u64,
) -> Result<HoudiniResult, EprError> {
    houdini_budgeted(program, candidates, instance_limit, Budget::UNLIMITED)
}

/// [`houdini`] under a resource budget: every underlying query inherits the
/// deadline/conflict/instance caps, and exhausting them aborts inference
/// with [`EprError::Inconclusive`] — a partial candidate set is never
/// reported as the strongest inductive invariant.
///
/// # Errors
///
/// Propagates [`EprError`].
pub fn houdini_budgeted(
    program: &Program,
    candidates: Vec<Conjecture>,
    instance_limit: u64,
    budget: Budget,
) -> Result<HoudiniResult, EprError> {
    let mut oracle = Oracle::new();
    oracle.set_instance_limit(instance_limit);
    oracle.set_budget(budget);
    houdini_with_oracle(program, candidates, &Arc::new(oracle))
}

/// [`houdini`] issuing every query through `oracle`: its strategy governs
/// how candidate sweeps run (incrementally, fresh, or fanned out in
/// parallel), and its frame-keyed session cache is shared with any other
/// engine holding the same oracle — e.g. the final safety check reuses the
/// one-step frame grounded during consecution filtering.
///
/// # Errors
///
/// Propagates [`EprError`].
pub fn houdini_with_oracle(
    program: &Program,
    candidates: Vec<Conjecture>,
    oracle: &Arc<Oracle>,
) -> Result<HoudiniResult, EprError> {
    let mut set = candidates;
    let mut iterations = 0usize;

    // Initiation. Each query asks "can init violate this candidate?" — the
    // frame is just the init unrolling, independent of the candidate set, so
    // a single pass over the family suffices: a drop cannot invalidate an
    // earlier UNSAT answer. `done` counts the verified prefix; verified
    // candidates always survive a batch-drop (the witnessing state is an
    // init state, and their violations were just proven init-unsatisfiable),
    // so the scan resumes in place after each CTI.
    {
        let u = unroll(program, 0);
        let mut frame = Frame::new(&u.sig);
        frame.push("base", u.base);
        let mut done = 0;
        while done < set.len() {
            let found = oracle.first_sat(
                &frame,
                set.len() - done,
                |i| Goal::new("violation", not_renamed(&set[done + i].formula, &u.maps[0])),
                |i, model| (i, project_state(&model.structure, &program.sig, &u.maps[0])),
            )?;
            let Some((offset, state)) = found else {
                break;
            };
            iterations += 1;
            // Batch-drop everything false in the witnessing state (including
            // the violated candidate itself).
            set.retain(|c| state.eval_closed(&c.formula).unwrap_or(false));
            done += offset;
        }
    }

    // Consecution: one oracle handle across all drop-loop rounds. The base
    // and the transition step are grounded once; each candidate contributes
    // a hypothesis group at the pre-state (retired when the candidate
    // drops). Its post-state violation is probed as a per-query *goal*, not
    // a persistent group: a violation is existential, so keeping N of them
    // on the session would pile up N sets of Skolem constants and
    // re-instantiate every hypothesis over all of them, whereas goal groups
    // are retired immediately and the session recycles their Skolems — the
    // ground universe stays the size of one violation, as under fresh
    // grounding.
    {
        let u = unroll_free(program, 1);
        let mut frame = Frame::new(&u.sig);
        frame.push("base", u.base);
        frame.push("step", u.steps[0]);
        let mut h = oracle.open(&frame)?;
        let mut entries: Vec<(Conjecture, FrameGroup)> = Vec::new();
        for c in set.drain(..) {
            let hyp = h.assert(
                format!("inv:{}", c.name),
                renamed_id(&c.formula, &u.maps[0]),
            )?;
            entries.push((c, hyp));
        }
        let mut i = 0;
        while i < entries.len() {
            let bad = not_renamed(&entries[i].0.formula, &u.maps[1]);
            match h.solve_goal(&Goal::new("violation", bad))? {
                EprOutcome::Unsat(_) => i += 1,
                EprOutcome::Sat(model) => {
                    iterations += 1;
                    let successor = project_state(&model.structure, &program.sig, &u.maps[1]);
                    let before = entries.len();
                    entries.retain(|(c, hyp)| {
                        if successor.eval_closed(&c.formula).unwrap_or(false) {
                            true
                        } else {
                            h.retire(*hyp);
                            false
                        }
                    });
                    assert!(
                        entries.len() < before,
                        "consecution CTI must falsify some candidate"
                    );
                    // Weaker hypotheses can newly admit CTIs for candidates
                    // already checked, so restart the pass (the fresh
                    // fixpoint does the same). Reaching the end therefore
                    // means a full clean pass: the set is inductive.
                    i = 0;
                }
                EprOutcome::Unknown(r) => return Err(EprError::Inconclusive(r)),
            }
        }
        set = entries.into_iter().map(|(c, _)| c).collect();
    }

    let verifier = Verifier::with_oracle(program, oracle.clone());
    let proves_safety = verifier.check_safety(&set)?.is_none();
    Ok(HoudiniResult {
        invariant: set,
        iterations,
        proves_safety,
    })
}

/// Enumerates candidate universal clauses over a template: all disjunctions
/// of at most `max_literals` literals whose atoms use the given variables
/// (a fixed number per sort), relation symbols, equalities, and depth-1
/// function applications.
///
/// The candidate count grows combinatorially; keep `vars_per_sort` and
/// `max_literals` small (2–3).
pub fn enumerate_candidates(
    sig: &Signature,
    vars_per_sort: usize,
    max_literals: usize,
) -> Vec<Conjecture> {
    // Typed variables per sort.
    let mut bindings: Vec<Binding> = Vec::new();
    for sort in sig.sorts() {
        for i in 0..vars_per_sort {
            bindings.push(Binding::new(
                format!("{}{}", sort.name().to_ascii_uppercase(), i),
                *sort,
            ));
        }
    }
    let vars_of = |sort: &Sort| -> Vec<Term> {
        bindings
            .iter()
            .filter(|b| &b.sort == sort)
            .map(|b| Term::Var(b.var))
            .collect()
    };
    // Terms per sort: variables plus unary function applications to
    // variables (depth 1).
    let mut terms: std::collections::BTreeMap<Sort, Vec<Term>> = std::collections::BTreeMap::new();
    for sort in sig.sorts() {
        terms.insert(*sort, vars_of(sort));
    }
    for (fun, decl) in sig.functions() {
        if decl.arity() == 1 {
            let apps: Vec<Term> = vars_of(&decl.args[0])
                .into_iter()
                .map(|v| Term::app(*fun, [v]))
                .collect();
            terms.get_mut(&decl.ret).expect("sort known").extend(apps);
        }
    }
    // Atoms: relation applications over the term pools, plus equalities
    // between distinct variables of the same sort.
    let mut atoms: Vec<Formula> = Vec::new();
    for (rel, arg_sorts) in sig.relations() {
        let mut tuples: Vec<Vec<Term>> = vec![Vec::new()];
        for s in arg_sorts {
            let pool = terms.get(s).cloned().unwrap_or_default();
            let mut next = Vec::new();
            for prefix in &tuples {
                for t in &pool {
                    let mut row = prefix.clone();
                    row.push(t.clone());
                    next.push(row);
                }
            }
            tuples = next;
        }
        for tuple in tuples {
            atoms.push(Formula::rel(*rel, tuple));
        }
    }
    for sort in sig.sorts() {
        let vars = vars_of(sort);
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                atoms.push(Formula::eq(vars[i].clone(), vars[j].clone()));
            }
        }
    }
    // Literals and clauses.
    let literals: Vec<Formula> = atoms
        .iter()
        .flat_map(|a| [a.clone(), Formula::not(a.clone())])
        .collect();
    let mut out = Vec::new();
    let mut index = 0usize;
    let mut combo: Vec<usize> = Vec::new();
    fn emit(
        literals: &[Formula],
        bindings: &[Binding],
        combo: &mut Vec<usize>,
        start: usize,
        left: usize,
        out: &mut Vec<Conjecture>,
        index: &mut usize,
    ) {
        if !combo.is_empty() {
            let parts: Vec<Formula> = combo.iter().map(|&i| literals[i].clone()).collect();
            // Skip tautologies (l and ~l in one clause).
            let tautology = combo
                .iter()
                .any(|&i| combo.contains(&(i ^ 1)) && i % 2 == 0);
            if !tautology {
                let body = Formula::or(parts);
                let fv = body.free_vars();
                let needed: Vec<Binding> = bindings
                    .iter()
                    .filter(|b| fv.contains(&b.var))
                    .cloned()
                    .collect();
                let clause = Formula::forall(needed, body);
                out.push(Conjecture::new(format!("H{index}"), clause));
                *index += 1;
            }
        }
        if left == 0 {
            return;
        }
        for i in start..literals.len() {
            combo.push(i);
            emit(literals, bindings, combo, i + 1, left - 1, out, index);
            combo.pop();
        }
    }
    emit(
        &literals,
        &bindings,
        &mut combo,
        0,
        max_literals,
        &mut out,
        &mut index,
    );
    out
}

/// Convenience: enumerate candidates and run Houdini.
///
/// # Errors
///
/// Propagates [`EprError`].
pub fn houdini_with_template(
    program: &Program,
    vars_per_sort: usize,
    max_literals: usize,
    instance_limit: u64,
) -> Result<HoudiniResult, EprError> {
    let candidates = enumerate_candidates(&program.sig, vars_per_sort, max_literals);
    houdini(program, candidates, instance_limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_rml::{check_program, parse_program};

    const SPREAD: &str = r#"
sort node
relation marked : node
relation blue : node
local n : node
variable seed : node
safety seed_marked: marked(seed)
init { marked(X0) := X0 = seed; blue(X0) := false }
action mark { havoc n; marked.insert(n) }
"#;

    #[test]
    fn houdini_finds_strongest_inductive_subset() {
        let p = parse_program(SPREAD).unwrap();
        assert!(check_program(&p).is_empty());
        let candidates = vec![
            Conjecture::new("good1", ivy_fol::parse_formula("marked(seed)").unwrap()),
            Conjecture::new(
                "good2",
                ivy_fol::parse_formula("forall X:node. ~blue(X)").unwrap(),
            ),
            // Not preserved: marking a second node kills it.
            Conjecture::new(
                "bad_consec",
                ivy_fol::parse_formula("forall X:node, Y:node. marked(X) & marked(Y) -> X = Y")
                    .unwrap(),
            ),
            // Not initial.
            Conjecture::new(
                "bad_init",
                ivy_fol::parse_formula("forall X:node. ~marked(X)").unwrap(),
            ),
        ];
        let result = houdini(&p, candidates, ivy_epr::DEFAULT_INSTANCE_LIMIT).unwrap();
        let names: Vec<&str> = result.invariant.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"good1"), "{names:?}");
        assert!(names.contains(&"good2"));
        assert!(!names.contains(&"bad_consec"));
        assert!(!names.contains(&"bad_init"));
        assert!(result.proves_safety);
        assert!(result.iterations >= 2);
    }

    #[test]
    fn exhausted_budget_is_inconclusive_not_a_proof() {
        // Houdini must not pass off a partially-filtered candidate set as
        // the strongest invariant when the budget trips mid-run.
        let p = parse_program(SPREAD).unwrap();
        let candidates = vec![Conjecture::new(
            "good1",
            ivy_fol::parse_formula("marked(seed)").unwrap(),
        )];
        let err = houdini_budgeted(
            &p,
            candidates,
            ivy_epr::DEFAULT_INSTANCE_LIMIT,
            ivy_epr::Budget::UNLIMITED.with_max_conflicts(0),
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                ivy_epr::EprError::Inconclusive(ivy_epr::StopReason::ConflictBudget)
            ),
            "{err}"
        );
    }

    #[test]
    fn template_enumeration_is_well_sorted() {
        let p = parse_program(SPREAD).unwrap();
        let candidates = enumerate_candidates(&p.sig, 2, 2);
        assert!(!candidates.is_empty());
        for c in &candidates {
            c.formula
                .well_sorted(&p.sig, &std::collections::BTreeMap::new())
                .unwrap_or_else(|e| panic!("{}: {e}", c.formula));
            assert!(c.formula.is_closed());
        }
    }

    #[test]
    fn template_houdini_proves_spread_safety() {
        let p = parse_program(SPREAD).unwrap();
        // 1 variable per sort, 2 literals: enough for marked(seed) — which
        // needs the constant... constants do not appear in the template, so
        // safety is NOT provable from this template; Houdini still returns
        // the strongest inductive subset.
        let result = houdini_with_template(&p, 1, 1, ivy_epr::DEFAULT_INSTANCE_LIMIT).unwrap();
        // "forall X. ~blue(X)" is in the template and survives.
        assert!(result
            .invariant
            .iter()
            .any(|c| c.formula.to_string().contains("~blue")));
    }
}
