//! Houdini-style invariant inference (Flanagan & Leino), the technique the
//! paper reports using for the Chord proof: "we described a class of
//! formulas using a template, and used abstract interpretation to construct
//! the strongest inductive invariant in this class" (Section 5.1).
//!
//! Starting from a finite set of candidate universal clauses, repeatedly
//! drop every candidate falsified by an initiation counterexample or by the
//! successor state of a consecution CTI, until the surviving set is
//! inductive. The result is the strongest inductive invariant within the
//! candidate set; safety is then checked separately.

use std::sync::Arc;

use ivy_epr::{Budget, EprError, EprOutcome};
use ivy_fol::Signature;
use ivy_rml::{project_state, unroll, unroll_free, Program};

use crate::oracle::{Frame, FrameGroup, Goal, Oracle};
use crate::vc::{not_renamed, renamed_id, Conjecture, Verifier};

/// Result of a Houdini run.
#[derive(Clone, Debug)]
pub struct HoudiniResult {
    /// The strongest inductive subset of the candidates.
    pub invariant: Vec<Conjecture>,
    /// CTIs processed (each drops at least one candidate).
    pub iterations: usize,
    /// Whether the surviving invariant establishes the program's safety.
    pub proves_safety: bool,
}

/// Runs Houdini on `candidates`.
///
/// # Errors
///
/// Propagates [`EprError`].
pub fn houdini(
    program: &Program,
    candidates: Vec<Conjecture>,
    instance_limit: u64,
) -> Result<HoudiniResult, EprError> {
    houdini_budgeted(program, candidates, instance_limit, Budget::UNLIMITED)
}

/// [`houdini`] under a resource budget: every underlying query inherits the
/// deadline/conflict/instance caps, and exhausting them aborts inference
/// with [`EprError::Inconclusive`] — a partial candidate set is never
/// reported as the strongest inductive invariant.
///
/// # Errors
///
/// Propagates [`EprError`].
pub fn houdini_budgeted(
    program: &Program,
    candidates: Vec<Conjecture>,
    instance_limit: u64,
    budget: Budget,
) -> Result<HoudiniResult, EprError> {
    let mut oracle = Oracle::new();
    oracle.set_instance_limit(instance_limit);
    oracle.set_budget(budget);
    houdini_with_oracle(program, candidates, &Arc::new(oracle))
}

/// [`houdini`] issuing every query through `oracle`: its strategy governs
/// how candidate sweeps run (incrementally, fresh, or fanned out in
/// parallel), and its frame-keyed session cache is shared with any other
/// engine holding the same oracle — e.g. the final safety check reuses the
/// one-step frame grounded during consecution filtering.
///
/// # Errors
///
/// Propagates [`EprError`].
pub fn houdini_with_oracle(
    program: &Program,
    candidates: Vec<Conjecture>,
    oracle: &Arc<Oracle>,
) -> Result<HoudiniResult, EprError> {
    let mut set = candidates;
    let mut iterations = 0usize;

    // Initiation. Each query asks "can init violate this candidate?" — the
    // frame is just the init unrolling, independent of the candidate set, so
    // a single pass over the family suffices: a drop cannot invalidate an
    // earlier UNSAT answer. `done` counts the verified prefix; verified
    // candidates always survive a batch-drop (the witnessing state is an
    // init state, and their violations were just proven init-unsatisfiable),
    // so the scan resumes in place after each CTI.
    {
        let u = unroll(program, 0);
        let mut frame = Frame::new(&u.sig);
        frame.push("base", u.base);
        let mut done = 0;
        while done < set.len() {
            let found = oracle.first_sat(
                &frame,
                set.len() - done,
                |i| Goal::new("violation", not_renamed(&set[done + i].formula, &u.maps[0])),
                |i, model| (i, project_state(&model.structure, &program.sig, &u.maps[0])),
            )?;
            let Some((offset, state)) = found else {
                break;
            };
            iterations += 1;
            // Batch-drop everything false in the witnessing state (including
            // the violated candidate itself).
            set.retain(|c| state.eval_closed(&c.formula).unwrap_or(false));
            done += offset;
        }
    }

    // Consecution: one oracle handle across all drop-loop rounds. The base
    // and the transition step are grounded once; each candidate contributes
    // a hypothesis group at the pre-state (retired when the candidate
    // drops). Its post-state violation is probed as a per-query *goal*, not
    // a persistent group: a violation is existential, so keeping N of them
    // on the session would pile up N sets of Skolem constants and
    // re-instantiate every hypothesis over all of them, whereas goal groups
    // are retired immediately and the session recycles their Skolems — the
    // ground universe stays the size of one violation, as under fresh
    // grounding.
    {
        let u = unroll_free(program, 1);
        let mut frame = Frame::new(&u.sig);
        frame.push("base", u.base);
        frame.push("step", u.steps[0]);
        let mut h = oracle.open(&frame)?;
        let mut entries: Vec<(Conjecture, FrameGroup)> = Vec::new();
        for c in set.drain(..) {
            let hyp = h.assert(
                format!("inv:{}", c.name),
                renamed_id(&c.formula, &u.maps[0]),
            )?;
            entries.push((c, hyp));
        }
        let mut i = 0;
        while i < entries.len() {
            let bad = not_renamed(&entries[i].0.formula, &u.maps[1]);
            match h.solve_goal(&Goal::new("violation", bad))? {
                EprOutcome::Unsat(_) => i += 1,
                EprOutcome::Sat(model) => {
                    iterations += 1;
                    let successor = project_state(&model.structure, &program.sig, &u.maps[1]);
                    drop_nonpreserved(&mut entries, &successor, |hyp| h.retire(*hyp))?;
                    // Weaker hypotheses can newly admit CTIs for candidates
                    // already checked, so restart the pass (the fresh
                    // fixpoint does the same). Reaching the end therefore
                    // means a full clean pass: the set is inductive.
                    i = 0;
                }
                EprOutcome::Unknown(r) => return Err(EprError::Inconclusive(r)),
            }
        }
        set = entries.into_iter().map(|(c, _)| c).collect();
    }

    let verifier = Verifier::with_oracle(program, oracle.clone());
    let proves_safety = verifier.check_safety(&set)?.is_none();
    Ok(HoudiniResult {
        invariant: set,
        iterations,
        proves_safety,
    })
}

/// Batch-drops every candidate falsified by `successor` (the projected
/// post-state of a consecution CTI), retiring its hypothesis group. The CTI
/// must falsify at least one candidate for the drop loop to make progress;
/// when the projection to the program vocabulary loses the interpretations
/// that witnessed the violation (so nothing evaluates to false), inference
/// cannot continue and degrades to an inconclusive verdict rather than
/// looping or reporting a partial set as strongest.
fn drop_nonpreserved<G>(
    entries: &mut Vec<(Conjecture, G)>,
    successor: &ivy_fol::Structure,
    mut retire: impl FnMut(&G),
) -> Result<(), EprError> {
    let before = entries.len();
    entries.retain(|(c, hyp)| {
        if successor.eval_closed(&c.formula).unwrap_or(false) {
            true
        } else {
            retire(hyp);
            false
        }
    });
    if entries.len() == before {
        return Err(EprError::Inconclusive(ivy_epr::StopReason::ProjectionLoss));
    }
    Ok(())
}

/// Enumerates candidate universal clauses over a template: all disjunctions
/// of at most `max_literals` literals whose atoms use the given variables
/// (a fixed number per sort), relation symbols, equalities, and depth-1
/// function applications.
///
/// Template variables are named `V_SORT0`, `V_SORT1`, … (see
/// [`ivy_fol::template_var`]) — deliberately disjoint from the `NODE0`-style
/// names [`ivy_fol::diagram_var`] gives diagram variables — and clauses
/// that are alpha-variants of one another (equal up to permuting same-sort
/// variables) are emitted once.
///
/// The candidate count grows combinatorially; keep `vars_per_sort` and
/// `max_literals` small (2–3). The richer, incremental generator behind
/// `ivy infer` is [`crate::infer::generate_clauses`]; this entry point
/// keeps the original vocabulary (no constants, no nullary relations).
pub fn enumerate_candidates(
    sig: &Signature,
    vars_per_sort: usize,
    max_literals: usize,
) -> Vec<Conjecture> {
    crate::infer::generate_clauses(
        sig,
        &crate::infer::TemplateSpec::legacy(vars_per_sort, max_literals),
    )
}

/// Convenience: enumerate candidates and run Houdini.
///
/// # Errors
///
/// Propagates [`EprError`].
pub fn houdini_with_template(
    program: &Program,
    vars_per_sort: usize,
    max_literals: usize,
    instance_limit: u64,
) -> Result<HoudiniResult, EprError> {
    let candidates = enumerate_candidates(&program.sig, vars_per_sort, max_literals);
    houdini(program, candidates, instance_limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_rml::{check_program, parse_program};

    const SPREAD: &str = r#"
sort node
relation marked : node
relation blue : node
local n : node
variable seed : node
safety seed_marked: marked(seed)
init { marked(X0) := X0 = seed; blue(X0) := false }
action mark { havoc n; marked.insert(n) }
"#;

    #[test]
    fn houdini_finds_strongest_inductive_subset() {
        let p = parse_program(SPREAD).unwrap();
        assert!(check_program(&p).is_empty());
        let candidates = vec![
            Conjecture::new("good1", ivy_fol::parse_formula("marked(seed)").unwrap()),
            Conjecture::new(
                "good2",
                ivy_fol::parse_formula("forall X:node. ~blue(X)").unwrap(),
            ),
            // Not preserved: marking a second node kills it.
            Conjecture::new(
                "bad_consec",
                ivy_fol::parse_formula("forall X:node, Y:node. marked(X) & marked(Y) -> X = Y")
                    .unwrap(),
            ),
            // Not initial.
            Conjecture::new(
                "bad_init",
                ivy_fol::parse_formula("forall X:node. ~marked(X)").unwrap(),
            ),
        ];
        let result = houdini(&p, candidates, ivy_epr::DEFAULT_INSTANCE_LIMIT).unwrap();
        let names: Vec<&str> = result.invariant.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"good1"), "{names:?}");
        assert!(names.contains(&"good2"));
        assert!(!names.contains(&"bad_consec"));
        assert!(!names.contains(&"bad_init"));
        assert!(result.proves_safety);
        assert!(result.iterations >= 2);
    }

    #[test]
    fn exhausted_budget_is_inconclusive_not_a_proof() {
        // Houdini must not pass off a partially-filtered candidate set as
        // the strongest invariant when the budget trips mid-run.
        let p = parse_program(SPREAD).unwrap();
        let candidates = vec![Conjecture::new(
            "good1",
            ivy_fol::parse_formula("marked(seed)").unwrap(),
        )];
        let err = houdini_budgeted(
            &p,
            candidates,
            ivy_epr::DEFAULT_INSTANCE_LIMIT,
            ivy_epr::Budget::UNLIMITED.with_max_conflicts(0),
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                ivy_epr::EprError::Inconclusive(ivy_epr::StopReason::ConflictBudget)
            ),
            "{err}"
        );
    }

    #[test]
    fn lossy_projection_is_inconclusive_not_a_panic() {
        // Regression: the consecution drop pass used to `assert!` that the
        // projected successor falsifies some candidate and panicked when
        // the projection lost the interpretations witnessing the violation
        // (every candidate evaluating true, or erroring asymmetrically).
        // Simulate that partial-projection outcome directly: a successor
        // state in which the single candidate still evaluates to true.
        let p = parse_program(SPREAD).unwrap();
        let mut state = ivy_fol::Structure::new(std::sync::Arc::new(p.sig.clone()));
        let n0 = state.add_element("node");
        state.set_rel(ivy_fol::Sym::new("marked"), vec![n0.clone()], true);
        state.set_fun(ivy_fol::Sym::new("seed"), vec![], n0.clone());
        state.set_fun(ivy_fol::Sym::new("n"), vec![], n0);
        let mut entries = vec![(
            Conjecture::new("good1", ivy_fol::parse_formula("marked(seed)").unwrap()),
            (),
        )];
        let err = drop_nonpreserved(&mut entries, &state, |_| {}).unwrap_err();
        assert!(
            matches!(
                err,
                EprError::Inconclusive(ivy_epr::StopReason::ProjectionLoss)
            ),
            "{err}"
        );
        // The candidate set is left intact for the caller to report.
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn template_enumeration_is_well_sorted() {
        let p = parse_program(SPREAD).unwrap();
        let candidates = enumerate_candidates(&p.sig, 2, 2);
        assert!(!candidates.is_empty());
        for c in &candidates {
            c.formula
                .well_sorted(&p.sig, &std::collections::BTreeMap::new())
                .unwrap_or_else(|e| panic!("{}: {e}", c.formula));
            assert!(c.formula.is_closed());
        }
    }

    #[test]
    fn template_houdini_proves_spread_safety() {
        let p = parse_program(SPREAD).unwrap();
        // 1 variable per sort, 2 literals: enough for marked(seed) — which
        // needs the constant... constants do not appear in the template, so
        // safety is NOT provable from this template; Houdini still returns
        // the strongest inductive subset.
        let result = houdini_with_template(&p, 1, 1, ivy_epr::DEFAULT_INSTANCE_LIMIT).unwrap();
        // "forall X. ~blue(X)" is in the template and survives.
        assert!(result
            .invariant
            .iter()
            .any(|c| c.formula.to_string().contains("~blue")));
    }
}
