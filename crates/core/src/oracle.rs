//! The unified solver oracle: one frame-cached, strategy-aware query
//! layer under every proof engine.
//!
//! Every engine in this crate — inductiveness checking ([`crate::vc`]),
//! bounded verification ([`crate::bmc`]), Houdini ([`mod@crate::houdini`]),
//! minimal-CTI search ([`crate::minimize`]), and BMC + Auto Generalize
//! ([`crate::generalize`]) — is ultimately a stream of EPR queries against
//! a shared *frame*: the axioms, the unrolling, and the background
//! hypotheses that stay fixed while only a small per-query *goal* changes.
//! This module factors that observation into three types:
//!
//! * [`Frame`]: a signature plus an ordered list of labeled, interned
//!   assertions, content-fingerprinted via [`ivy_epr::frame_fingerprint`].
//! * [`Goal`]: the per-query assertions, labeled for UNSAT cores.
//! * [`Oracle`]: owns the [`QueryStrategy`], the resource [`Budget`],
//!   instance/lazy-round limits, a telemetry rollup, and a
//!   frame-fingerprint-keyed pool of grounded [`EprSession`]s, so engines
//!   querying the same frame — even different engines, at different times —
//!   reuse one grounding instead of re-grounding it per query family.
//!
//! # Cache invalidation rules
//!
//! A pooled session is keyed by its frame's fingerprint: the signature
//! content plus the ordered `(label, FormulaId)` assertion list. Any change
//! to the frame — one more hypothesis, a different unrolling depth, a grown
//! signature — changes the fingerprint, so stale reuse is impossible by
//! construction. Per-query state never enters the pool: a checked-out
//! [`FrameSession`] retires all of its groups on drop, restoring the
//! session to frame-only state before check-in. Budgets and limits are
//! re-applied at checkout (a pooled session may carry stale deadlines).
//! Sessions carry a *cumulative* instantiation budget; when a recycled
//! session has too little left for a new group, the oracle transparently
//! rebuilds it from the frame and replays the handle's groups, so verdicts
//! match fresh grounding exactly. The pool holds at most
//! [`MAX_POOLED_SESSIONS`] sessions by default (oldest evicted first;
//! see [`Oracle::set_pool_capacity`]).
//!
//! # Sharing across threads and tenants
//!
//! An `Oracle` is `Sync`: `solve`/`first_sat`/`open` take `&self`, and the
//! pool hands each checked-out session to exactly one [`FrameSession`] (a
//! checkout *removes* the session, so double-handing is impossible by
//! ownership). Cloning produces a *view* sharing the pool and rollup with
//! per-view configuration — the `ivy serve` daemon derives one view per
//! request to enforce per-request budgets while all clients warm one
//! cache. Concurrent checkouts of the same frame simply miss and ground
//! extra sessions, all of which are pooled on check-in; under a steady
//! concurrent load the pool converges to about one session per worker per
//! hot frame.

use std::fmt;
use std::sync::{Arc, Mutex};

use ivy_epr::{
    frame_fingerprint, frame_fingerprint_with_mode, Budget, EprCheck, EprError, EprOutcome,
    EprSession, GroupId, InstantiationMode, Model, SolverConfig, DEFAULT_INSTANCE_LIMIT,
};
use ivy_fol::intern::FormulaId;
use ivy_fol::Signature;
use ivy_telemetry::{counter_add, OracleRollup, QueryReport, StopReason};

/// Extracts the SAT model of an outcome, mapping a budget-exhausted
/// [`EprOutcome::Unknown`] to [`EprError::Inconclusive`] so callers can
/// never mistake "ran out of budget" for "no counterexample".
pub(crate) fn sat_model(outcome: EprOutcome) -> Result<Option<Model>, EprError> {
    match outcome {
        EprOutcome::Sat(model) => Ok(Some(*model)),
        EprOutcome::Unsat(_) => Ok(None),
        EprOutcome::Unknown(r) => Err(EprError::Inconclusive(r)),
    }
}

/// How an [`Oracle`] discharges its families of per-goal queries.
///
/// All three strategies return the same verdict and report the same
/// first-found witness (the one with the lowest goal index); only the
/// witnessing model may differ, as SAT models are not unique.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueryStrategy {
    /// One fresh [`EprCheck`] per query: the frame is re-grounded and
    /// re-encoded every time. The reference implementation.
    Fresh,
    /// Incremental [`EprSession`]s, pooled by frame fingerprint: the frame
    /// is grounded once and each goal runs as an assumption-guarded group
    /// on the same solver, reusing learnt clauses and repaired equality
    /// axioms across queries — and across engines. The default.
    #[default]
    Session,
    /// Fresh per-query checks fanned out over (up to) the given number of
    /// worker threads, in waves. Deterministic: each wave's results are
    /// inspected in goal order, so the lowest-index witness wins regardless
    /// of thread timing.
    Parallel(usize),
    /// Pooled incremental sessions (like [`QueryStrategy::Session`]) whose
    /// SAT queries each race the given number of diversified solver threads
    /// *inside* the query, sharing glue clauses (see
    /// [`ivy_epr::SolverConfig::portfolio`]). Verdicts are identical to the
    /// sequential strategies; only witnesses/cores may differ, within their
    /// usual nondeterminism.
    Portfolio(usize),
}

/// The persistent part of a query family: a signature plus an ordered list
/// of labeled, interned assertions (axioms, unrolling, background
/// hypotheses). Content-fingerprinted so oracles can pool grounded
/// sessions per frame.
#[derive(Clone, Debug)]
pub struct Frame {
    sig: Signature,
    asserts: Vec<(String, FormulaId)>,
}

impl Frame {
    /// An empty frame over `sig`.
    pub fn new(sig: &Signature) -> Frame {
        Frame {
            sig: sig.clone(),
            asserts: Vec::new(),
        }
    }

    /// Appends one labeled assertion.
    pub fn push(&mut self, label: impl Into<String>, id: FormulaId) {
        self.asserts.push((label.into(), id));
    }

    /// The frame's signature.
    pub fn sig(&self) -> &Signature {
        &self.sig
    }

    /// The labeled assertions, in insertion order.
    pub fn asserts(&self) -> &[(String, FormulaId)] {
        &self.asserts
    }

    /// The frame's content fingerprint (process-local; see
    /// [`ivy_epr::frame_fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        frame_fingerprint(&self.sig, &self.asserts)
    }

    /// The fingerprint keyed additionally by an [`InstantiationMode`]:
    /// bounded and full groundings of the same frame (and bounded
    /// groundings at different depths) are distinct cache entries, so
    /// pooled sessions are never shared across modes.
    pub fn fingerprint_with_mode(&self, mode: InstantiationMode) -> u64 {
        frame_fingerprint_with_mode(&self.sig, &self.asserts, mode)
    }
}

/// The per-query part: labeled assertions conjoined with a frame for one
/// query, labeled individually so UNSAT cores can name them.
#[derive(Clone, Debug, Default)]
pub struct Goal {
    asserts: Vec<(String, FormulaId)>,
}

impl Goal {
    /// A goal with one labeled assertion.
    pub fn new(label: impl Into<String>, id: FormulaId) -> Goal {
        let mut g = Goal::default();
        g.push(label, id);
        g
    }

    /// Appends one labeled assertion.
    pub fn push(&mut self, label: impl Into<String>, id: FormulaId) {
        self.asserts.push((label.into(), id));
    }

    /// The labeled assertions, in insertion order.
    pub fn asserts(&self) -> &[(String, FormulaId)] {
        &self.asserts
    }
}

/// Default bound on pooled sessions per oracle; the oldest is evicted
/// first. Long-running multi-tenant processes (the `ivy serve` daemon)
/// raise it via [`Oracle::set_pool_capacity`] so concurrent clients over
/// many frames do not thrash the cache.
pub const MAX_POOLED_SESSIONS: usize = 8;

/// A [`FrameSession`] that asserted more handle groups than this is *not*
/// returned to the pool on drop. Retiring a group disables its assumption
/// but keeps its clauses, so a handle with heavy group churn (Houdini's
/// per-candidate hypothesis juggling, a long minimization descent) leaves a
/// session whose dead clauses tax every later tenant — re-grounding the
/// frame is cheaper than inheriting them. Goal asserts are not counted:
/// they are one or two groups per query by construction.
pub const MAX_POOLED_HANDLE_GROUPS: usize = 8;

/// The shared half of an oracle: the session pool and the telemetry
/// rollup, common to every view cloned from the same root oracle.
struct OracleShared {
    pool: Mutex<Vec<(u64, EprSession)>>,
    pool_capacity: Mutex<usize>,
    rollup: Mutex<OracleRollup>,
}

impl OracleShared {
    fn new() -> OracleShared {
        OracleShared {
            pool: Mutex::new(Vec::new()),
            pool_capacity: Mutex::new(MAX_POOLED_SESSIONS),
            rollup: Mutex::new(OracleRollup::new()),
        }
    }
}

/// The solver oracle: every engine's single point of contact with the EPR
/// layer (see the module docs).
///
/// Cloning an oracle produces a *view*: an independent copy of the
/// configuration (strategy, budget, limits) that shares the original's
/// session pool and telemetry rollup. This is the seam a multi-tenant
/// server needs — each request derives a view with its own admission
/// budget, while every view warms (and is warmed by) the same
/// frame-keyed cache. Checked-out sessions are owned by exactly one
/// [`FrameSession`] at a time (the pool *removes* on checkout), so views
/// on different threads can never hand one solver to two requests. Use
/// [`Oracle::detached`] for the old semantics: a configuration copy with
/// an empty pool and fresh telemetry.
pub struct Oracle {
    strategy: QueryStrategy,
    mode: InstantiationMode,
    budget: Budget,
    instance_limit: u64,
    lazy_round_limit: Option<usize>,
    solver_config: SolverConfig,
    shared: Arc<OracleShared>,
}

impl Clone for Oracle {
    fn clone(&self) -> Oracle {
        Oracle {
            strategy: self.strategy,
            mode: self.mode,
            budget: self.budget,
            instance_limit: self.instance_limit,
            lazy_round_limit: self.lazy_round_limit,
            solver_config: self.solver_config,
            shared: Arc::clone(&self.shared),
        }
    }
}

impl fmt::Debug for Oracle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Oracle")
            .field("strategy", &self.strategy)
            .field("budget", &self.budget)
            .field("instance_limit", &self.instance_limit)
            .field("lazy_round_limit", &self.lazy_round_limit)
            .field("pooled_sessions", &self.shared.pool.lock().unwrap().len())
            .finish()
    }
}

impl Default for Oracle {
    fn default() -> Oracle {
        Oracle::new()
    }
}

impl Oracle {
    /// An oracle with the default strategy ([`QueryStrategy::Session`]),
    /// no budget, and the default instance limit.
    pub fn new() -> Oracle {
        Oracle {
            strategy: QueryStrategy::default(),
            mode: InstantiationMode::default(),
            budget: Budget::UNLIMITED,
            instance_limit: DEFAULT_INSTANCE_LIMIT,
            lazy_round_limit: None,
            solver_config: SolverConfig::default(),
            shared: Arc::new(OracleShared::new()),
        }
    }

    /// A *view* of this oracle: an independent configuration copy sharing
    /// the session pool and telemetry rollup (an explicit name for what
    /// [`Clone`] does). A server derives one per request to apply
    /// per-request budgets while every request hits the same frame cache.
    pub fn view(&self) -> Oracle {
        self.clone()
    }

    /// An oracle with this oracle's configuration but an *empty* session
    /// pool and fresh telemetry — a fully independent instance.
    pub fn detached(&self) -> Oracle {
        Oracle {
            shared: Arc::new(OracleShared::new()),
            ..self.clone()
        }
    }

    /// Bounds the shared session pool (shared by every view; excess
    /// oldest sessions are evicted immediately). The default is
    /// [`MAX_POOLED_SESSIONS`], sized for one CLI run; a daemon serving
    /// many concurrent clients over many frames should scale this to
    /// roughly `workers × live frames` to avoid cache thrash.
    pub fn set_pool_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        *self.shared.pool_capacity.lock().unwrap() = capacity;
        let mut pool = self.shared.pool.lock().unwrap();
        while pool.len() > capacity {
            pool.remove(0);
        }
    }

    /// The shared session pool's current capacity.
    pub fn pool_capacity(&self) -> usize {
        *self.shared.pool_capacity.lock().unwrap()
    }

    /// Selects how query families are discharged.
    pub fn set_strategy(&mut self, strategy: QueryStrategy) {
        self.strategy = strategy;
    }

    /// The active query strategy.
    pub fn strategy(&self) -> QueryStrategy {
        self.strategy
    }

    /// Selects the [`InstantiationMode`] of every query.
    /// [`InstantiationMode::Bounded`] admits unstratified signatures and
    /// `∀∃` assertions; verdicts whose soundness depended on the bound
    /// surface as [`EprError::Inconclusive`] with
    /// [`StopReason::BoundReached`], never as a wrong answer. The mode is
    /// part of the session-pool key, so bounded and full queries over the
    /// same frame never share pooled state.
    pub fn set_mode(&mut self, mode: InstantiationMode) {
        self.mode = mode;
    }

    /// The active instantiation mode.
    pub fn mode(&self) -> InstantiationMode {
        self.mode
    }

    /// Installs a resource budget applied to every query. Exceeding it
    /// surfaces as [`EprError::Inconclusive`] rather than a wrong verdict.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The active resource budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Caps grounding size per query (cumulative per session under
    /// [`QueryStrategy::Session`]; the oracle rebuilds exhausted recycled
    /// sessions transparently).
    pub fn set_instance_limit(&mut self, limit: u64) {
        self.instance_limit = limit;
    }

    /// The active instance limit.
    pub fn instance_limit(&self) -> u64 {
        self.instance_limit
    }

    /// Bounds the lazy equality repair loop per query; exceeding it yields
    /// [`EprError::RepairLimit`]. `None` (the default) never gives up.
    pub fn set_lazy_round_limit(&mut self, limit: Option<usize>) {
        self.lazy_round_limit = limit;
    }

    /// Sets the SAT solver configuration (CDCL feature toggles) applied to
    /// every query. The portfolio fan-out is governed by the strategy:
    /// [`QueryStrategy::Portfolio`] overrides
    /// [`ivy_epr::SolverConfig::portfolio`] with its thread count, and every
    /// other strategy forces it to 0 (sequential).
    pub fn set_solver_config(&mut self, config: SolverConfig) {
        self.solver_config = config;
    }

    /// The configured solver feature toggles (before the strategy's
    /// portfolio override).
    pub fn solver_config(&self) -> SolverConfig {
        self.solver_config
    }

    /// The solver configuration actually handed to sessions and checks:
    /// the configured toggles with the portfolio fan-out derived from the
    /// strategy.
    fn effective_solver_config(&self) -> SolverConfig {
        let mut config = self.solver_config;
        config.portfolio = match self.strategy {
            QueryStrategy::Portfolio(n) => n.max(2),
            _ => 0,
        };
        config
    }

    /// Discharges one `frame ∧ goal` query under the active strategy.
    ///
    /// # Errors
    ///
    /// Propagates [`EprError`].
    pub fn solve(&self, frame: &Frame, goal: &Goal) -> Result<EprOutcome, EprError> {
        let result = match self.strategy {
            QueryStrategy::Session | QueryStrategy::Portfolio(_) => {
                self.open(frame)?.solve_goal(goal)
            }
            _ => self.fresh_goal(frame, goal),
        };
        result.map_err(|e| self.soften(e))
    }

    /// In bounded mode every resource refusal is best-effort by contract:
    /// an instantiation-budget overflow degrades to
    /// [`EprError::Inconclusive`] (with [`StopReason::InstanceBudget`])
    /// like any other exhausted bound, instead of surfacing as a hard
    /// error. Full mode keeps [`EprError::TooManyInstances`] as an error —
    /// the query should be restructured. Applied at the oracle's *public*
    /// boundaries only: the internal recycled-session rebuild logic needs
    /// to see the raw error.
    fn soften(&self, e: EprError) -> EprError {
        match e {
            EprError::TooManyInstances { .. } if self.mode.is_bounded() => {
                EprError::Inconclusive(StopReason::InstanceBudget)
            }
            e => e,
        }
    }

    /// Discharges the query family `frame ∧ goal(0..count)` and returns the
    /// lowest-index satisfiable goal's witness, or `None` when every goal is
    /// unsatisfiable. Under [`QueryStrategy::Parallel`] the goals fan out
    /// over worker threads in waves; the result is deterministic (lowest
    /// index wins).
    ///
    /// # Errors
    ///
    /// Propagates [`EprError`]; a budget-exhausted `Unknown` surfaces as
    /// [`EprError::Inconclusive`].
    pub fn first_sat<T, G, W>(
        &self,
        frame: &Frame,
        count: usize,
        goal: G,
        witness: W,
    ) -> Result<Option<T>, EprError>
    where
        T: Send,
        G: Fn(usize) -> Goal + Sync,
        W: Fn(usize, &Model) -> T + Sync,
    {
        let result = match self.strategy {
            QueryStrategy::Parallel(threads) => parallel_first(threads, count, |i| {
                Ok(sat_model(self.fresh_goal(frame, &goal(i))?)?.map(|m| witness(i, &m)))
            }),
            QueryStrategy::Session | QueryStrategy::Portfolio(_) => (|| {
                let mut h = self.open(frame)?;
                for i in 0..count {
                    if let Some(m) = sat_model(h.solve_goal(&goal(i))?)? {
                        return Ok(Some(witness(i, &m)));
                    }
                }
                Ok(None)
            })(),
            QueryStrategy::Fresh => (|| {
                for i in 0..count {
                    if let Some(m) = sat_model(self.fresh_goal(frame, &goal(i))?)? {
                        return Ok(Some(witness(i, &m)));
                    }
                }
                Ok(None)
            })(),
        };
        result.map_err(|e| self.soften(e))
    }

    /// Like [`Oracle::first_sat`], but each query may probe a *different*
    /// frame (e.g. one per unrolling depth). Under
    /// [`QueryStrategy::Session`] each frame's session comes from the pool,
    /// so repeated families over the same frames stay warm.
    ///
    /// # Errors
    ///
    /// As for [`Oracle::first_sat`].
    pub fn first_sat_frames<'f, T, P, W>(
        &self,
        count: usize,
        probe: P,
        witness: W,
    ) -> Result<Option<T>, EprError>
    where
        T: Send,
        P: Fn(usize) -> (&'f Frame, Goal) + Sync,
        W: Fn(usize, &Model) -> T + Sync,
    {
        let result = match self.strategy {
            QueryStrategy::Parallel(threads) => parallel_first(threads, count, |i| {
                let (frame, goal) = probe(i);
                Ok(sat_model(self.fresh_goal(frame, &goal)?)?.map(|m| witness(i, &m)))
            }),
            _ => (|| {
                for i in 0..count {
                    let (frame, goal) = probe(i);
                    if let Some(m) = sat_model(self.solve(frame, &goal)?)? {
                        return Ok(Some(witness(i, &m)));
                    }
                }
                Ok(None)
            })(),
        };
        result.map_err(|e| self.soften(e))
    }

    /// Opens a handle for a *stateful* query family over one frame: the
    /// caller asserts, toggles, and retires its own groups on top of the
    /// frame (Houdini's hypothesis juggling, BMC's deepening step scan,
    /// minimization's constraint descent). Under [`QueryStrategy::Fresh`]
    /// the handle records groups and re-grounds per query; otherwise it
    /// holds a live session (pooled on drop).
    ///
    /// # Errors
    ///
    /// Propagates [`EprError`] from grounding the frame.
    pub fn open(&self, frame: &Frame) -> Result<FrameSession<'_>, EprError> {
        let key = frame.fingerprint_with_mode(self.mode);
        let live = match self.strategy {
            QueryStrategy::Fresh => None,
            _ => {
                let (session, reused) = self.checkout(frame, key).map_err(|e| self.soften(e))?;
                Some(LiveState {
                    session,
                    map: Vec::new(),
                    reused,
                })
            }
        };
        Ok(FrameSession {
            oracle: self,
            frame: frame.clone(),
            key,
            round_limit: self.lazy_round_limit,
            groups: Vec::new(),
            live,
        })
    }

    /// A snapshot of the oracle's aggregated telemetry (shared across
    /// views).
    pub fn rollup(&self) -> OracleRollup {
        self.shared.rollup.lock().unwrap().clone()
    }

    /// Drops every pooled session (configuration unchanged; affects all
    /// views).
    pub fn clear_cache(&self) {
        self.shared.pool.lock().unwrap().clear();
    }

    /// One fresh `EprCheck` for `frame ∧ goal` with the oracle's limits.
    fn fresh_goal(&self, frame: &Frame, goal: &Goal) -> Result<EprOutcome, EprError> {
        self.fresh_outcome(frame, &[], goal, self.lazy_round_limit)
    }

    /// One fresh `EprCheck` over the frame, a handle's live groups, and a
    /// goal — the re-grounding reference path shared by
    /// [`QueryStrategy::Fresh`] queries and fresh [`FrameSession`] handles.
    fn fresh_outcome(
        &self,
        frame: &Frame,
        groups: &[GroupRec],
        goal: &Goal,
        round_limit: Option<usize>,
    ) -> Result<EprOutcome, EprError> {
        let mut q = EprCheck::with_mode(frame.sig(), self.mode)?;
        q.set_instance_limit(self.instance_limit);
        q.set_budget(self.budget);
        q.set_lazy_round_limit(round_limit);
        q.set_solver_config(self.effective_solver_config());
        for (label, id) in frame.asserts() {
            q.assert_id(label.clone(), *id)?;
        }
        for rec in groups {
            if rec.retired || !rec.enabled {
                continue;
            }
            for id in &rec.ids {
                q.assert_id(rec.label.clone(), *id)?;
            }
        }
        for (label, id) in goal.asserts() {
            q.assert_id(label.clone(), *id)?;
        }
        let outcome = q.check()?;
        self.record(q.report());
        Ok(outcome)
    }

    /// Takes a session for `frame` from the pool, or grounds one. The
    /// boolean is true when the session was recycled (its cumulative
    /// instantiation budget may be partly spent).
    fn checkout(&self, frame: &Frame, key: u64) -> Result<(EprSession, bool), EprError> {
        let cached = {
            let mut pool = self.shared.pool.lock().unwrap();
            pool.iter()
                .rposition(|(k, _)| *k == key)
                .map(|i| pool.remove(i).1)
        };
        match cached {
            Some(mut s) => {
                // Budgets and limits are configuration, not frame content:
                // re-apply them, the pooled values may be stale.
                s.set_budget(self.budget);
                s.set_instance_limit(self.instance_limit);
                s.set_lazy_round_limit(self.lazy_round_limit);
                s.set_solver_config(self.effective_solver_config());
                self.note_checkout(true);
                Ok((s, true))
            }
            None => {
                self.note_checkout(false);
                Ok((
                    self.build_session(frame, key, self.lazy_round_limit)?,
                    false,
                ))
            }
        }
    }

    /// Grounds a fresh session for `frame`.
    fn build_session(
        &self,
        frame: &Frame,
        key: u64,
        round_limit: Option<usize>,
    ) -> Result<EprSession, EprError> {
        let mut s = EprSession::with_mode(frame.sig(), self.mode)?;
        s.set_frame_key(key);
        s.set_instance_limit(self.instance_limit);
        s.set_budget(self.budget);
        s.set_lazy_round_limit(round_limit);
        s.set_solver_config(self.effective_solver_config());
        for (label, id) in frame.asserts() {
            s.assert_id(label.clone(), *id)?;
        }
        self.shared.rollup.lock().unwrap().record_session_built();
        ivy_telemetry::local_record_session_built();
        counter_add("oracle.sessions_built", 1);
        Ok(s)
    }

    /// Returns a frame-only session to the pool.
    fn checkin(&self, key: u64, session: EprSession) {
        debug_assert_eq!(session.frame_key(), Some(key));
        let capacity = *self.shared.pool_capacity.lock().unwrap();
        let mut pool = self.shared.pool.lock().unwrap();
        pool.push((key, session));
        while pool.len() > capacity {
            pool.remove(0);
        }
    }

    fn record(&self, report: &QueryReport) {
        self.shared.rollup.lock().unwrap().record_query(report);
        ivy_telemetry::local_record_query(report);
    }

    fn note_checkout(&self, hit: bool) {
        self.shared.rollup.lock().unwrap().record_checkout(hit);
        ivy_telemetry::local_record_checkout(hit);
        counter_add(
            if hit {
                "oracle.frame_hits"
            } else {
                "oracle.frame_misses"
            },
            1,
        );
    }
}

/// One group asserted through a [`FrameSession`] handle, mirrored outside
/// the live session so fresh handles (and session rebuilds) can replay it.
struct GroupRec {
    label: String,
    ids: Vec<FormulaId>,
    enabled: bool,
    retired: bool,
}

/// The live half of a [`FrameSession`]: the checked-out session plus the
/// per-handle group mapping.
struct LiveState {
    session: EprSession,
    /// `map[i]` is the session group of handle group `i` (`None` once
    /// retired).
    map: Vec<Option<GroupId>>,
    /// True when the session was recycled from the pool, so a
    /// `TooManyInstances` on a new group may just mean "budget already
    /// spent by earlier tenants" — rebuilt transparently.
    reused: bool,
}

/// Handle to one group asserted via [`FrameSession::assert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameGroup(usize);

/// A checked-out query handle over one [`Frame`] (see [`Oracle::open`]).
/// Dropping the handle retires its groups and returns the session (if any)
/// to the oracle's pool.
pub struct FrameSession<'o> {
    oracle: &'o Oracle,
    frame: Frame,
    key: u64,
    round_limit: Option<usize>,
    groups: Vec<GroupRec>,
    live: Option<LiveState>,
}

impl FrameSession<'_> {
    /// Asserts one labeled sentence as a retirable group on top of the
    /// frame.
    ///
    /// # Errors
    ///
    /// Propagates [`EprError`]; a rejected group leaves the handle
    /// unchanged.
    pub fn assert(
        &mut self,
        label: impl Into<String>,
        id: FormulaId,
    ) -> Result<FrameGroup, EprError> {
        self.assert_ids(label, &[id])
    }

    /// Asserts the conjunction of `ids` as one retirable group.
    ///
    /// # Errors
    ///
    /// As for [`FrameSession::assert`].
    pub fn assert_ids(
        &mut self,
        label: impl Into<String>,
        ids: &[FormulaId],
    ) -> Result<FrameGroup, EprError> {
        self.groups.push(GroupRec {
            label: label.into(),
            ids: ids.to_vec(),
            enabled: true,
            retired: false,
        });
        if let Err(e) = self.live_assert_last() {
            self.groups.pop();
            return Err(self.oracle.soften(e));
        }
        Ok(FrameGroup(self.groups.len() - 1))
    }

    /// Enables or disables a group for subsequent queries.
    pub fn set_enabled(&mut self, g: FrameGroup, on: bool) {
        self.groups[g.0].enabled = on;
        if let Some(live) = &mut self.live {
            if let Some(gid) = live.map[g.0] {
                live.session.set_enabled(gid, on);
            }
        }
    }

    /// Permanently drops a group.
    pub fn retire(&mut self, g: FrameGroup) {
        self.groups[g.0].retired = true;
        if let Some(live) = &mut self.live {
            if let Some(gid) = live.map[g.0].take() {
                live.session.retire(gid);
            }
        }
    }

    /// Bounds the lazy equality repair loop per query on this handle
    /// (overriding the oracle default; reset at check-in).
    pub fn set_lazy_round_limit(&mut self, limit: Option<usize>) {
        self.round_limit = limit;
        if let Some(live) = &mut self.live {
            live.session.set_lazy_round_limit(limit);
        }
    }

    /// Solves the frame plus the enabled groups.
    ///
    /// # Errors
    ///
    /// Propagates [`EprError`].
    pub fn check(&mut self) -> Result<EprOutcome, EprError> {
        self.solve_goal(&Goal::default())
    }

    /// Solves the frame plus the enabled groups plus `goal` (asserted as
    /// per-label groups so UNSAT cores can name them, retired afterwards —
    /// also on errors, so the handle survives best-effort budgeted
    /// queries).
    ///
    /// # Errors
    ///
    /// Propagates [`EprError`].
    pub fn solve_goal(&mut self, goal: &Goal) -> Result<EprOutcome, EprError> {
        let result = if self.live.is_none() {
            self.oracle
                .fresh_outcome(&self.frame, &self.groups, goal, self.round_limit)
        } else {
            let reused = self.live.as_ref().is_some_and(|l| l.reused);
            match self.try_goal_live(goal) {
                Err(EprError::TooManyInstances { .. }) if reused => {
                    self.rebuild_live().and_then(|()| self.try_goal_live(goal))
                }
                other => other,
            }
        };
        result.map_err(|e| self.oracle.soften(e))
    }

    /// One query on the live session. Goal groups are always retired
    /// before returning.
    fn try_goal_live(&mut self, goal: &Goal) -> Result<EprOutcome, EprError> {
        let oracle = self.oracle;
        let live = self.live.as_mut().expect("live session");
        let mut goal_groups = Vec::with_capacity(goal.asserts().len());
        let mut failed = None;
        for (label, id) in goal.asserts() {
            match live.session.assert_id(label.clone(), *id) {
                Ok(g) => goal_groups.push(g),
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        let result = match failed {
            Some(e) => Err(e),
            None => {
                let r = live.session.check();
                oracle.record(live.session.report());
                r
            }
        };
        for g in goal_groups {
            live.session.retire(g);
        }
        result
    }

    /// Replaces an instantiation-exhausted recycled session with a fresh
    /// grounding of the frame plus this handle's live groups. The candidate
    /// is built before swapping, so a failure leaves the handle usable.
    fn rebuild_live(&mut self) -> Result<(), EprError> {
        let mut session = self
            .oracle
            .build_session(&self.frame, self.key, self.round_limit)?;
        let mut map = Vec::with_capacity(self.groups.len());
        for rec in &self.groups {
            if rec.retired {
                map.push(None);
                continue;
            }
            let gid = session.assert_group_ids(rec.label.clone(), &rec.ids)?;
            if !rec.enabled {
                session.set_enabled(gid, false);
            }
            map.push(Some(gid));
        }
        // The old session is dropped, not pooled: its budget is spent.
        self.live = Some(LiveState {
            session,
            map,
            reused: false,
        });
        Ok(())
    }

    /// Mirrors the most recently pushed group into the live session, if
    /// any. On an instantiation-budget rejection of a *recycled* session,
    /// rebuilds it from the frame (which replays every live group,
    /// including the new one).
    fn live_assert_last(&mut self) -> Result<(), EprError> {
        if self.live.is_none() {
            return Ok(());
        }
        let rec = self.groups.last().expect("just pushed");
        let (label, ids) = (rec.label.clone(), rec.ids.clone());
        let reused = self.live.as_ref().is_some_and(|l| l.reused);
        let live = self.live.as_mut().expect("checked above");
        match live.session.assert_group_ids(label, &ids) {
            Ok(gid) => {
                live.map.push(Some(gid));
                Ok(())
            }
            Err(EprError::TooManyInstances { .. }) if reused => self.rebuild_live(),
            Err(e) => Err(e),
        }
    }
}

impl Drop for FrameSession<'_> {
    fn drop(&mut self) {
        if let Some(mut live) = self.live.take() {
            // A churn-heavy handle leaves too many dead clauses behind to be
            // worth recycling (see [`MAX_POOLED_HANDLE_GROUPS`]).
            if self.groups.len() > MAX_POOLED_HANDLE_GROUPS {
                return;
            }
            // Restore frame-only state before pooling: retire every handle
            // group and lift any handle-local round limit.
            for gid in live.map.iter().filter_map(|g| *g) {
                live.session.retire(gid);
            }
            live.session.set_lazy_round_limit(None);
            self.oracle.checkin(self.key, live.session);
        }
    }
}

/// Runs `count` independent queries across up to `threads` scoped worker
/// threads, in waves. Both results and errors are inspected in index order,
/// so the outcome (the lowest-index witness, or the lowest-index error) is
/// deterministic regardless of thread scheduling.
fn parallel_first<T, F>(threads: usize, count: usize, query: F) -> Result<Option<T>, EprError>
where
    T: Send,
    F: Fn(usize) -> Result<Option<T>, EprError> + Sync,
{
    let threads = threads.max(1);
    let mut start = 0;
    while start < count {
        let end = usize::min(start + threads, count);
        let wave: Vec<Result<Option<T>, EprError>> = std::thread::scope(|scope| {
            let query = &query;
            let handles: Vec<_> = (start..end)
                .map(|i| scope.spawn(move || query(i)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("query thread panicked"))
                .collect()
        });
        for result in wave {
            if let Some(found) = result? {
                return Ok(Some(found));
            }
        }
        start = end;
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_fol::intern::Interner;
    use ivy_fol::parse_formula;

    fn sig() -> Signature {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_relation("r", ["s"]).unwrap();
        sig.add_constant("a", "s").unwrap();
        sig
    }

    fn fid(text: &str) -> FormulaId {
        let f = parse_formula(text).unwrap();
        Interner::with(|it| it.intern(&f))
    }

    #[test]
    fn fingerprint_tracks_frame_content() {
        let sig = sig();
        let mut f1 = Frame::new(&sig);
        f1.push("base", fid("forall X:s. r(X)"));
        let mut f2 = Frame::new(&sig);
        f2.push("base", fid("forall X:s. r(X)"));
        assert_eq!(f1.fingerprint(), f2.fingerprint());
        f2.push("extra", fid("r(a)"));
        assert_ne!(f1.fingerprint(), f2.fingerprint());
        // A different label alone changes the fingerprint too.
        let mut f3 = Frame::new(&sig);
        f3.push("other", fid("forall X:s. r(X)"));
        assert_ne!(f1.fingerprint(), f3.fingerprint());
    }

    #[test]
    fn strategies_agree_on_solve() {
        let sig = sig();
        let mut frame = Frame::new(&sig);
        frame.push("base", fid("forall X:s. r(X)"));
        let sat_goal = Goal::new("g", fid("r(a)"));
        let unsat_goal = Goal::new("g", fid("exists X:s. ~r(X)"));
        for strategy in [
            QueryStrategy::Fresh,
            QueryStrategy::Session,
            QueryStrategy::Parallel(2),
            QueryStrategy::Portfolio(2),
        ] {
            let mut oracle = Oracle::new();
            oracle.set_strategy(strategy);
            assert!(
                oracle.solve(&frame, &sat_goal).unwrap().is_sat(),
                "{strategy:?}"
            );
            assert!(
                !oracle.solve(&frame, &unsat_goal).unwrap().is_sat(),
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn session_pool_reuses_groundings() {
        let sig = sig();
        let mut frame = Frame::new(&sig);
        frame.push("base", fid("forall X:s. r(X)"));
        let oracle = Oracle::new();
        let goal = Goal::new("g", fid("r(a)"));
        oracle.solve(&frame, &goal).unwrap();
        oracle.solve(&frame, &goal).unwrap();
        oracle.solve(&frame, &goal).unwrap();
        let rollup = oracle.rollup();
        assert_eq!(rollup.frame_misses, 1);
        assert_eq!(rollup.frame_hits, 2);
        assert_eq!(rollup.sessions_built, 1);
        assert_eq!(rollup.report.queries, 3);
        // A different frame grounds its own session.
        let mut other = Frame::new(&sig);
        other.push("base", fid("r(a)"));
        oracle.solve(&other, &goal).unwrap();
        assert_eq!(oracle.rollup().frame_misses, 2);
    }

    #[test]
    fn frame_session_groups_toggle_and_retire() {
        let sig = sig();
        let frame = Frame::new(&sig);
        for strategy in [QueryStrategy::Fresh, QueryStrategy::Session] {
            let mut oracle = Oracle::new();
            oracle.set_strategy(strategy);
            let mut h = oracle.open(&frame).unwrap();
            let all = h.assert("all", fid("forall X:s. r(X)")).unwrap();
            let none = h.assert("none", fid("forall X:s. ~r(X)")).unwrap();
            assert!(!h.check().unwrap().is_sat(), "{strategy:?}");
            h.set_enabled(none, false);
            assert!(h.check().unwrap().is_sat(), "{strategy:?}");
            h.set_enabled(none, true);
            h.retire(all);
            assert!(h.check().unwrap().is_sat(), "{strategy:?}");
        }
    }

    #[test]
    fn churn_heavy_handles_are_not_pooled() {
        let sig = sig();
        let mut frame = Frame::new(&sig);
        frame.push("base", fid("forall X:s. r(X)"));
        let oracle = Oracle::new();
        {
            let mut h = oracle.open(&frame).unwrap();
            for i in 0..=MAX_POOLED_HANDLE_GROUPS {
                let g = h.assert(format!("c{i}"), fid("r(a)")).unwrap();
                h.retire(g);
            }
            assert!(h.check().unwrap().is_sat());
        }
        // The handle exceeded the churn bound, so its session was dropped:
        // reopening the frame grounds a new one.
        assert_eq!(oracle.rollup().sessions_built, 1);
        drop(oracle.open(&frame).unwrap());
        assert_eq!(oracle.rollup().sessions_built, 2);
        // A light handle is pooled and reused.
        drop(oracle.open(&frame).unwrap());
        assert_eq!(oracle.rollup().sessions_built, 2);
    }

    #[test]
    fn portfolio_strategy_pools_sessions_and_overrides_fanout() {
        let sig = sig();
        let mut frame = Frame::new(&sig);
        frame.push("base", fid("forall X:s. r(X)"));
        let mut oracle = Oracle::new();
        oracle.set_strategy(QueryStrategy::Portfolio(3));
        assert_eq!(oracle.effective_solver_config().portfolio, 3);
        // Any sequential strategy forces the fan-out back to 0, even when
        // the configured toggles request one.
        let mut config = oracle.solver_config();
        config.portfolio = 8;
        oracle.set_solver_config(config);
        oracle.set_strategy(QueryStrategy::Session);
        assert_eq!(oracle.effective_solver_config().portfolio, 0);
        oracle.set_strategy(QueryStrategy::Portfolio(4));
        assert_eq!(oracle.effective_solver_config().portfolio, 4);
        // Portfolio pools sessions by frame fingerprint, like Session.
        let goal = Goal::new("g", fid("r(a)"));
        oracle.solve(&frame, &goal).unwrap();
        oracle.solve(&frame, &goal).unwrap();
        let rollup = oracle.rollup();
        assert_eq!(rollup.sessions_built, 1);
        assert_eq!(rollup.frame_hits, 1);
    }

    #[test]
    fn bounded_and_full_modes_never_share_pooled_sessions() {
        let sig = sig();
        let mut frame = Frame::new(&sig);
        frame.push("base", fid("forall X:s. r(X)"));
        assert_ne!(
            frame.fingerprint(),
            frame.fingerprint_with_mode(InstantiationMode::Bounded(2))
        );
        let goal = Goal::new("g", fid("r(a)"));
        let oracle = Oracle::new();
        oracle.solve(&frame, &goal).unwrap();
        // A bounded view over the same shared pool must ground its own
        // session rather than reuse the full-mode one.
        let mut bounded = oracle.view();
        bounded.set_mode(InstantiationMode::Bounded(3));
        bounded.solve(&frame, &goal).unwrap();
        let rollup = oracle.rollup();
        assert_eq!(rollup.sessions_built, 2);
        assert_eq!(rollup.frame_misses, 2);
        // Each mode reuses its *own* pooled session on the next query.
        oracle.solve(&frame, &goal).unwrap();
        bounded.solve(&frame, &goal).unwrap();
        assert_eq!(oracle.rollup().sessions_built, 2);
    }

    #[test]
    fn bounded_mode_solves_unstratified_frames() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_relation("r", ["s"]).unwrap();
        sig.add_constant("a", "s").unwrap();
        sig.add_function("next", ["s"], "s").unwrap();
        let mut frame = Frame::new(&sig);
        frame.push("base", fid("forall X:s. r(X)"));
        let mut oracle = Oracle::new();
        // Full mode refuses the signature outright.
        assert!(matches!(
            oracle.solve(&frame, &Goal::new("g", fid("r(a)"))),
            Err(EprError::Sig(_))
        ));
        oracle.set_mode(InstantiationMode::Bounded(2));
        for strategy in [QueryStrategy::Fresh, QueryStrategy::Session] {
            oracle.set_strategy(strategy);
            // UNSAT is a verdict even under a live (truncating) bound.
            let unsat = oracle
                .solve(&frame, &Goal::new("g", fid("exists X:s. ~r(X)")))
                .unwrap();
            assert!(matches!(unsat, EprOutcome::Unsat(_)), "{strategy:?}");
            // SAT degrades to Unknown(BoundReached): the `next` closure is
            // infinite, so the bound is always load-bearing here.
            let sat = oracle.solve(&frame, &Goal::new("g", fid("r(a)"))).unwrap();
            assert!(
                matches!(sat, EprOutcome::Unknown(StopReason::BoundReached)),
                "{strategy:?}: {}",
                sat.tag()
            );
        }
    }

    #[test]
    fn bounded_mode_softens_instance_overflow_to_inconclusive() {
        let sig = sig();
        let mut frame = Frame::new(&sig);
        frame.push("base", fid("forall X:s, Y:s, Z:s. r(X) | r(Y) | r(Z)"));
        let goal = Goal::new("g", fid("exists X:s, Y:s. r(X) & r(Y) & X ~= Y"));
        for strategy in [QueryStrategy::Fresh, QueryStrategy::Session] {
            let mut oracle = Oracle::new();
            oracle.set_strategy(strategy);
            oracle.set_instance_limit(1);
            // Full mode: a hard error the caller must restructure around.
            assert!(
                matches!(
                    oracle.solve(&frame, &goal),
                    Err(EprError::TooManyInstances { .. })
                ),
                "{strategy:?}"
            );
            // Bounded mode: best-effort by contract, so the overflow is
            // inconclusive like any other exhausted bound.
            oracle.set_mode(InstantiationMode::Bounded(2));
            assert!(
                matches!(
                    oracle.solve(&frame, &goal),
                    Err(EprError::Inconclusive(StopReason::InstanceBudget))
                ),
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn exhausted_recycled_session_is_rebuilt() {
        let sig = sig();
        let mut frame = Frame::new(&sig);
        frame.push("base", fid("forall X:s. r(X)"));
        let mut oracle = Oracle::new();
        // Ground once under a permissive limit, pool the session.
        let goal = Goal::new("g", fid("exists X:s, Y:s. r(X) & r(Y) & X ~= Y"));
        assert!(oracle.solve(&frame, &goal).unwrap().is_sat());
        // Tighten the limit so the recycled session cannot afford the goal's
        // delta re-instantiation, while a fresh grounding still can: the
        // oracle must rebuild transparently and return the same verdict.
        let spent = oracle.rollup().report.instances;
        oracle.set_instance_limit(spent.max(4));
        let before = oracle.rollup().sessions_built;
        let outcome = oracle.solve(&frame, &goal);
        match outcome {
            Ok(o) => {
                assert!(o.is_sat());
                // Either the recycled session had room, or it was rebuilt.
                assert!(oracle.rollup().sessions_built >= before);
            }
            Err(EprError::TooManyInstances { .. }) => {
                // The goal exceeds the limit even fresh: acceptable, the
                // point is that reuse never yields a *different* error or
                // verdict than fresh grounding.
                let mut fresh = Oracle::new();
                fresh.set_strategy(QueryStrategy::Fresh);
                fresh.set_instance_limit(spent.max(4));
                assert!(matches!(
                    fresh.solve(&frame, &goal),
                    Err(EprError::TooManyInstances { .. })
                ));
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}
