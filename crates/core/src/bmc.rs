//! Bounded verification (Section 4.1 of the paper): `k`-invariance checking
//! and symbolic trace reconstruction.
//!
//! `k`-invariance bounds the number of loop iterations but *not* the state
//! size (Equation 3): a property found `k`-invariant holds in every state
//! reachable by at most `k` iterations, over rings/networks of any size.

use std::sync::Arc;

use ivy_epr::{Budget, EprError};
use ivy_fol::intern::{self, FormulaId};
use ivy_fol::{Formula, Structure};
use ivy_rml::{project_state, unroll, Program, Unrolling};

use crate::oracle::{sat_model, Frame, FrameSession, Goal, Oracle, QueryStrategy};
use crate::vc::not_renamed;

/// A concrete counterexample trace: the loop-head states of an execution,
/// labeled with the actions between them.
#[derive(Clone, Debug)]
pub struct Trace {
    /// States at the loop head, `states[0]` right after `init`.
    pub states: Vec<Structure>,
    /// `actions[i]` is the action taken between `states[i]` and
    /// `states[i+1]` (empty when reconstruction failed to label a step).
    pub actions: Vec<String>,
    /// What was violated (a safety label, a conjecture rendering, or
    /// `"abort"`).
    pub violated: String,
}

impl Trace {
    /// Number of loop iterations the trace executes.
    pub fn steps(&self) -> usize {
        self.states.len().saturating_sub(1)
    }
}

/// Bounded verification engine for one program.
#[derive(Clone, Debug)]
pub struct Bmc<'p> {
    program: &'p Program,
    oracle: Arc<Oracle>,
}

impl<'p> Bmc<'p> {
    /// Creates a BMC engine with its own default [`Oracle`] (incremental
    /// depth scanning via [`QueryStrategy::Session`]).
    pub fn new(program: &'p Program) -> Bmc<'p> {
        Bmc::with_oracle(program, Arc::new(Oracle::new()))
    }

    /// Creates a BMC engine issuing every query through `oracle` — sharing
    /// it with other engines shares the frame-keyed session cache too.
    pub fn with_oracle(program: &'p Program, oracle: Arc<Oracle>) -> Bmc<'p> {
        Bmc { program, oracle }
    }

    /// The engine's oracle.
    pub fn oracle(&self) -> &Arc<Oracle> {
        &self.oracle
    }

    /// Installs a resource budget applied to every underlying EPR query;
    /// exceeding it surfaces as [`EprError::Inconclusive`], never as a
    /// spurious "no trace up to depth k".
    pub fn set_budget(&mut self, budget: Budget) {
        Arc::make_mut(&mut self.oracle).set_budget(budget);
    }

    /// Caps grounding size per query (see
    /// [`ivy_epr::EprCheck::set_instance_limit`]); cumulative per check call
    /// in incremental mode.
    pub fn set_instance_limit(&mut self, limit: u64) {
        Arc::make_mut(&mut self.oracle).set_instance_limit(limit);
    }

    /// Toggles incremental solving (on by default). Incremental checks hold
    /// one oracle session per call: the base frame is grounded once, each
    /// transition step joins it permanently as the scan deepens, and every
    /// per-depth violation runs as a retirable assumption group — so learnt
    /// clauses carry across the whole depth-by-depth scan. `false` re-solves
    /// every depth from scratch (the reference behavior,
    /// [`QueryStrategy::Fresh`]).
    pub fn set_incremental(&mut self, on: bool) {
        Arc::make_mut(&mut self.oracle).set_strategy(if on {
            QueryStrategy::Session
        } else {
            QueryStrategy::Fresh
        });
    }

    /// Checks whether `phi` is `k`-invariant: true in every state reachable
    /// at the loop head within `k` iterations (Equation 3 of the paper).
    /// Returns `None` when invariant, or a violating trace.
    ///
    /// # Errors
    ///
    /// Propagates [`EprError`] (fragment violations, resource limits).
    pub fn check_k_invariance(&self, phi: &Formula, k: usize) -> Result<Option<Trace>, EprError> {
        let u = unroll(self.program, k);
        let mut scan = self.open_scan(&u)?;
        for j in 0..=k {
            let bad = not_renamed(phi, &u.maps[j]);
            if let Some(model) = scan.solve_at(&u, j, ("violation", bad))? {
                return Ok(Some(self.extract_trace(&u, j, &model, format!("~({phi})"))));
            }
        }
        Ok(None)
    }

    /// Checks all safety properties and abort reachability up to `k`
    /// iterations. Returns the first violating trace found, scanning depth
    /// by depth (so the trace is minimal in iteration count).
    ///
    /// # Errors
    ///
    /// Propagates [`EprError`].
    pub fn check_safety(&self, k: usize) -> Result<Option<Trace>, EprError> {
        let u = unroll(self.program, k);
        let mut scan = self.open_scan(&u)?;
        // Aborts during init (no steps involved; depth 0).
        let false_id = intern::false_id();
        if u.init_error != false_id {
            if let Some(model) = scan.solve_at(&u, 0, ("abort", u.init_error))? {
                let mut trace = self.extract_trace(&u, 0, &model, String::new());
                trace.violated = "abort during init".into();
                return Ok(Some(trace));
            }
        }
        for j in 0..=k {
            // Safety properties at state j.
            for (label, phi) in &self.program.safety {
                let bad = not_renamed(phi, &u.maps[j]);
                if let Some(model) = scan.solve_at(&u, j, ("violation", bad))? {
                    return Ok(Some(self.extract_trace(&u, j, &model, label.clone())));
                }
            }
            // Aborts inside the body step from state j.
            if j < u.step_errors.len() {
                for (action, err) in &u.step_errors[j] {
                    if *err == false_id {
                        continue;
                    }
                    if let Some(model) = scan.solve_at(&u, j, ("abort", *err))? {
                        return Ok(Some(self.extract_trace(
                            &u,
                            j,
                            &model,
                            format!("abort in action `{action}`"),
                        )));
                    }
                }
            }
            // Aborts in the finalization command from state j.
            if u.final_errors[j] != false_id {
                let err = u.final_errors[j];
                if let Some(model) = scan.solve_at(&u, j, ("abort", err))? {
                    return Ok(Some(self.extract_trace(
                        &u,
                        j,
                        &model,
                        "abort in final".to_string(),
                    )));
                }
            }
        }
        Ok(None)
    }

    /// Opens the depth-scan handle: the frame is the unrolling base;
    /// transition steps join as permanent groups as the scan deepens (see
    /// [`ReachScan::solve_at`]). Under [`QueryStrategy::Fresh`] the handle
    /// re-grounds per query — the reference behavior.
    fn open_scan(&self, u: &Unrolling) -> Result<ReachScan<'_>, EprError> {
        let mut frame = Frame::new(&u.sig);
        frame.push("base", u.base);
        Ok(ReachScan {
            handle: self.oracle.open(&frame)?,
            steps_added: 0,
        })
    }

    /// Projects the model onto loop-head states 0..=j and labels steps by
    /// evaluating each action's path formula in the model.
    fn extract_trace(&self, u: &Unrolling, j: usize, model: &Structure, violated: String) -> Trace {
        let mut states = Vec::with_capacity(j + 1);
        for map in u.maps.iter().take(j + 1) {
            states.push(project_state(model, &self.program.sig, map));
        }
        let mut actions = Vec::with_capacity(j);
        for step in u.step_paths.iter().take(j) {
            let name = step
                .iter()
                .find(|(_, f)| model.eval_closed(&intern::resolve(*f)).unwrap_or(false))
                .map(|(n, _)| n.clone())
                .unwrap_or_default();
            actions.push(name);
        }
        Trace {
            states,
            actions,
            violated,
        }
    }
}

/// The depth-scan state: one oracle handle plus how many transition steps
/// have been permanently asserted so far.
struct ReachScan<'o> {
    handle: FrameSession<'o>,
    steps_added: usize,
}

impl ReachScan<'_> {
    /// Solves `base ∧ steps[0..j] ∧ extra`, extending the handle with any
    /// not-yet-asserted steps — they are permanent: deeper queries only ever
    /// add steps. Returns the model on SAT.
    fn solve_at(
        &mut self,
        u: &Unrolling,
        j: usize,
        extra: (&str, FormulaId),
    ) -> Result<Option<Structure>, EprError> {
        while self.steps_added < j {
            self.handle.assert(
                format!("step{}", self.steps_added),
                u.steps[self.steps_added],
            )?;
            self.steps_added += 1;
        }
        let outcome = self.handle.solve_goal(&Goal::new(extra.0, extra.1))?;
        Ok(sat_model(outcome)?.map(|m| m.structure))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_fol::parse_formula;
    use ivy_rml::{check_program, parse_program};

    /// A counter-ish protocol: tokens spread from a seed; the (wrong)
    /// property "no two distinct marked nodes" is violated in 2 steps.
    const SPREAD: &str = r#"
sort node
relation marked : node
variable n : node
variable seed : node

init {
  marked(X0) := X0 = seed
}

action mark_one {
  havoc n;
  marked.insert(n)
}
"#;

    fn spread() -> Program {
        let p = parse_program(SPREAD).unwrap();
        assert!(check_program(&p).is_empty());
        p
    }

    #[test]
    fn invariant_property_reported_invariant() {
        let p = spread();
        let bmc = Bmc::new(&p);
        // "seed is always marked" is invariant at every depth.
        let phi = parse_formula("marked(seed)").unwrap();
        assert!(bmc.check_k_invariance(&phi, 3).unwrap().is_none());
    }

    #[test]
    fn exhausted_budget_is_inconclusive_not_invariant() {
        // With the budget exhausted, the invariant property above must NOT
        // be reported "invariant up to depth k": a budgeted None from the
        // solver surfaces as Inconclusive, never as a bound.
        let p = spread();
        let mut bmc = Bmc::new(&p);
        bmc.set_budget(Budget::UNLIMITED.with_max_conflicts(0));
        let phi = parse_formula("marked(seed)").unwrap();
        let err = bmc.check_k_invariance(&phi, 3).unwrap_err();
        assert!(
            matches!(
                err,
                EprError::Inconclusive(ivy_epr::StopReason::ConflictBudget)
            ),
            "{err}"
        );
    }

    #[test]
    fn violated_property_yields_trace() {
        let p = spread();
        let bmc = Bmc::new(&p);
        // "at most one marked node" breaks within 1 step (marking a second
        // node).
        let phi = parse_formula("forall X:node, Y:node. marked(X) & marked(Y) -> X = Y").unwrap();
        let trace = bmc.check_k_invariance(&phi, 3).unwrap().unwrap();
        assert!(trace.steps() >= 1 && trace.steps() <= 3);
        // The final state really violates the property; earlier ones do not.
        let last = trace.states.last().unwrap();
        assert!(!last.eval_closed(&phi).unwrap());
        assert!(trace.states[0].eval_closed(&phi).unwrap());
        // Steps are labeled with the only action.
        assert!(trace.actions.iter().all(|a| a == "mark_one"));
    }

    #[test]
    fn trace_replays_in_interpreter() {
        let p = spread();
        let bmc = Bmc::new(&p);
        let phi = parse_formula("forall X:node, Y:node. marked(X) & marked(Y) -> X = Y").unwrap();
        let trace = bmc.check_k_invariance(&phi, 2).unwrap().unwrap();
        // Each consecutive state pair must be reachable via exec_all of the
        // named action.
        let axiom = p.axiom();
        for i in 0..trace.steps() {
            let action = p.action(&trace.actions[i]).unwrap();
            let outcomes = ivy_rml::exec_all(&axiom, &action.cmd, &trace.states[i]).unwrap();
            let reached = outcomes.iter().any(|o| match o {
                ivy_rml::ExecOutcome::Done(s) => s == &trace.states[i + 1],
                _ => false,
            });
            assert!(reached, "step {i} does not replay concretely");
        }
    }

    #[test]
    fn safety_check_finds_assert_violation() {
        let src = format!(
            "{SPREAD}\nsafety at_most_one: forall X:node, Y:node. marked(X) & marked(Y) -> X = Y\n"
        );
        let p = parse_program(&src).unwrap();
        assert!(check_program(&p).is_empty());
        let bmc = Bmc::new(&p);
        let trace = bmc.check_safety(4).unwrap().unwrap();
        assert_eq!(trace.violated, "at_most_one");
        assert_eq!(trace.steps(), 1, "minimal depth reported first");
    }

    #[test]
    fn abort_in_action_detected() {
        let src = r#"
sort node
relation marked : node
variable n : node
init { marked(X0) := false }
action mark { havoc n; marked.insert(n) }
action check { assert forall X:node. ~marked(X) }
"#;
        let p = parse_program(src).unwrap();
        assert!(check_program(&p).is_empty());
        let bmc = Bmc::new(&p);
        let trace = bmc.check_safety(3).unwrap().unwrap();
        assert!(trace.violated.contains("check"), "{}", trace.violated);
    }

    #[test]
    fn safe_program_passes_bmc() {
        let src = r#"
sort node
relation marked : node
variable seed : node
variable n : node
safety seed_marked: marked(seed)
init { marked(X0) := X0 = seed }
action mark { havoc n; marked.insert(n) }
"#;
        let p = parse_program(src).unwrap();
        assert!(check_program(&p).is_empty());
        let bmc = Bmc::new(&p);
        assert!(bmc.check_safety(4).unwrap().is_none());
    }

    #[test]
    fn non_incremental_mode_agrees() {
        let p = spread();
        let mut bmc = Bmc::new(&p);
        bmc.set_incremental(false);
        let phi = parse_formula("forall X:node, Y:node. marked(X) & marked(Y) -> X = Y").unwrap();
        let trace = bmc.check_k_invariance(&phi, 3).unwrap().unwrap();
        assert_eq!(trace.steps(), 1);
        assert!(bmc
            .check_k_invariance(&parse_formula("marked(seed)").unwrap(), 3)
            .unwrap()
            .is_none());
    }
}
