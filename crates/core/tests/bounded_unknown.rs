//! Unknown-verdict plumbing audit for bounded instantiation.
//!
//! Every engine routes its queries through the shared [`Oracle`]. When a
//! bounded run's SAT answer leaned on the instantiation bound, the
//! outcome is `Unknown(BoundReached)` — and every engine must surface
//! that to its caller as [`EprError::Inconclusive`], never as a verdict
//! ("inductive", "safe", a CTI, a trace). These tests drive each engine
//! over a model whose epoch-generator function keeps the term universe
//! permanently truncated, so every satisfiable query hits the bound.

use std::sync::Arc;

use ivy_core::{
    enumerate_candidates, houdini_with_oracle, infer, Bmc, Conjecture, Generalizer, InferOptions,
    Measure, Oracle, QueryStrategy, Verifier,
};
use ivy_epr::{EprError, InstantiationMode, StopReason};
use ivy_fol::{PartialStructure, Sort};
use ivy_rml::{check_program, parse_program, Program};

/// A non-EPR model (`f : t -> t` keeps the universe open) whose safety
/// is violated in one step: every engine's first SAT query is forced to
/// lean on the bound.
const OPEN_BREAK: &str = r#"
sort t
function f : t -> t
relation p : t
local x : t
safety all_p: forall X:t. p(X)
init { p(X0) := true }
action break { havoc x; p.remove(x) }
"#;

fn open_break() -> Program {
    let p = parse_program(OPEN_BREAK).unwrap();
    assert!(
        check_program(&p).iter().all(|e| e.is_fragment()),
        "only fragment problems expected"
    );
    p
}

fn bounded_oracle(depth: usize) -> Arc<Oracle> {
    let mut o = Oracle::new();
    o.set_mode(InstantiationMode::Bounded(depth));
    Arc::new(o)
}

fn safety(program: &Program) -> Vec<Conjecture> {
    program
        .safety
        .iter()
        .map(|(l, f)| Conjecture::new(l.clone(), f.clone()))
        .collect()
}

fn assert_bound_reached<T: std::fmt::Debug>(engine: &str, r: Result<T, EprError>) {
    match r {
        Err(EprError::Inconclusive(StopReason::BoundReached)) => {}
        other => panic!("{engine}: expected Inconclusive(BoundReached), got {other:?}"),
    }
}

#[test]
fn verifier_reports_bound_reached_not_a_cti() {
    let p = open_break();
    let v = Verifier::with_oracle(&p, bounded_oracle(2));
    assert_bound_reached("verifier", v.check(&safety(&p)));
}

#[test]
fn minimal_cti_search_reports_bound_reached() {
    let p = open_break();
    let v = Verifier::with_oracle(&p, bounded_oracle(2));
    let measures = vec![Measure::SortSize(Sort::new("t"))];
    assert_bound_reached(
        "find_minimal_cti",
        v.find_minimal_cti(&safety(&p), &measures),
    );
}

#[test]
fn bmc_reports_bound_reached_not_a_trace() {
    let p = open_break();
    let bmc = Bmc::with_oracle(&p, bounded_oracle(2));
    assert_bound_reached("bmc", bmc.check_safety(1));
}

#[test]
fn houdini_reports_bound_reached_not_survivors() {
    let p = open_break();
    let oracle = bounded_oracle(2);
    let candidates = enumerate_candidates(&p.sig, 1, 1);
    assert_bound_reached("houdini", houdini_with_oracle(&p, candidates, &oracle));
}

#[test]
fn infer_reports_bound_reached_not_a_proof() {
    let p = open_break();
    let oracle = bounded_oracle(2);
    let opts = InferOptions {
        vars_per_sort: 1,
        max_literals: 1,
        ..InferOptions::default()
    };
    assert_bound_reached("infer", infer(&p, &oracle, &opts));
}

#[test]
fn generalizer_reports_bound_reached_not_a_conjecture() {
    let p = open_break();
    let g = Generalizer::with_oracle(&p, bounded_oracle(2));
    // An empty partial structure is the weakest upper bound: the
    // too-strong probe (is some excluded state reachable?) is a SAT
    // query whose answer leans on the bound.
    let upper = PartialStructure::new(Arc::new(p.sig.clone()));
    assert_bound_reached("generalize", g.auto_generalize(&upper, 1));
}

#[test]
fn instance_overflow_is_inconclusive_in_bounded_mode() {
    // The other bound-liveness path: exceeding the ground-instance
    // budget under a depth bound is an expected consequence of the dial,
    // so it degrades to Inconclusive(InstanceBudget) — exit 3 at the
    // CLI — instead of a hard TooManyInstances error.
    let p = open_break();
    let mut o = Oracle::new();
    o.set_mode(InstantiationMode::Bounded(2));
    o.set_instance_limit(1);
    let v = Verifier::with_oracle(&p, Arc::new(o));
    match v.check(&safety(&p)) {
        Err(EprError::Inconclusive(StopReason::InstanceBudget)) => {}
        other => panic!("expected Inconclusive(InstanceBudget), got {other:?}"),
    }
}

#[test]
fn fresh_strategy_degrades_identically() {
    let p = open_break();
    let mut o = Oracle::new();
    o.set_mode(InstantiationMode::Bounded(2));
    o.set_strategy(QueryStrategy::Fresh);
    let v = Verifier::with_oracle(&p, Arc::new(o));
    assert_bound_reached("verifier(fresh)", v.check(&safety(&p)));
}

#[test]
fn unsat_backed_verdicts_survive_the_bound() {
    // The flip side of the audit: a verdict that rests only on UNSAT
    // answers must NOT degrade. `p` starts full and `grow` only
    // inserts, so safety is inductive — refutations within the bounded
    // clause set are sound regardless of truncation.
    let src = r#"
sort t
function f : t -> t
relation p : t
local x : t
safety all_p: forall X:t. p(X)
init { p(X0) := true }
action grow { havoc x; p.insert(x) }
"#;
    let p = parse_program(src).unwrap();
    assert!(check_program(&p).iter().all(|e| e.is_fragment()));
    let v = Verifier::with_oracle(&p, bounded_oracle(2));
    let inv: Vec<Conjecture> = p
        .safety
        .iter()
        .map(|(l, f)| Conjecture::new(l.clone(), f.clone()))
        .collect();
    assert!(v.check(&inv).unwrap().is_inductive());
}
