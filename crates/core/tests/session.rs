//! Integration tests for the interactive session: weakening, stopping,
//! budget exhaustion, and the too-strong path (Figure 5's branches that the
//! happy-path protocol sessions do not exercise).

use ivy_core::{
    Conjecture, CtiDecision, ProposalDecision, ScriptedUser, Session, SessionOutcome,
    TooStrongDecision, User,
};
use ivy_fol::{parse_formula, PartialStructure, Sym};
use ivy_rml::{check_program, parse_program, Program};

const SPREAD: &str = r#"
sort node
relation marked : node
relation blue : node
local n : node
variable seed : node
safety seed_marked: marked(seed)
init { marked(X0) := X0 = seed; blue(X0) := false }
action mark { havoc n; marked.insert(n) }
"#;

fn spread() -> Program {
    let p = parse_program(SPREAD).unwrap();
    assert!(check_program(&p).is_empty());
    p
}

#[test]
fn weakening_removes_bad_conjectures() {
    let p = spread();
    // Start with safety plus a conjecture that fails initiation (wrong).
    let initial = vec![
        Conjecture::new("C0", parse_formula("marked(seed)").unwrap()),
        Conjecture::new("Cbad", parse_formula("forall X:node. ~marked(X)").unwrap()),
    ];
    let mut session = Session::new(&p, initial, vec![]);
    let mut user = ScriptedUser::new();
    user.push_cti(|_ctx, cti| {
        // The CTI pinpoints the initiation failure of Cbad: weaken.
        assert!(matches!(
            cti.violation,
            ivy_core::Violation::Initiation { .. }
        ));
        CtiDecision::Weaken {
            remove: vec!["Cbad".into()],
        }
    });
    let outcome = session.run(&mut user, 5).unwrap();
    assert_eq!(outcome, SessionOutcome::Proved);
    assert_eq!(session.conjectures().len(), 1);
    assert_eq!(session.stats().weakened, 1);
}

#[test]
fn stop_is_respected() {
    let p = spread();
    let initial = vec![
        Conjecture::new("C0", parse_formula("marked(seed)").unwrap()),
        Conjecture::new(
            "one",
            parse_formula("forall X:node, Y:node. marked(X) & marked(Y) -> X = Y").unwrap(),
        ),
    ];
    let mut session = Session::new(&p, initial, vec![]);
    let mut user = ScriptedUser::new(); // empty script: stops at first CTI
    assert_eq!(session.run(&mut user, 5).unwrap(), SessionOutcome::Stopped);
}

#[test]
fn budget_exhaustion_reported() {
    struct Stubborn;
    impl User for Stubborn {
        fn on_cti(&mut self, _ctx: &ivy_core::SessionCtx<'_>, _cti: &ivy_core::Cti) -> CtiDecision {
            // A user that dithers: "weakens" nothing, making no progress.
            // The same CTI comes back every iteration until the budget runs
            // out.
            CtiDecision::Weaken { remove: vec![] }
        }
        fn on_too_strong(
            &mut self,
            _ctx: &ivy_core::SessionCtx<'_>,
            _attempted: &PartialStructure,
            _trace: &ivy_core::Trace,
        ) -> TooStrongDecision {
            TooStrongDecision::Stop
        }
        fn on_proposal(
            &mut self,
            _ctx: &ivy_core::SessionCtx<'_>,
            _proposal: &ivy_core::Proposal,
        ) -> ProposalDecision {
            ProposalDecision::AcceptUpperBound
        }
    }
    let p = spread();
    let initial = vec![
        Conjecture::new("C0", parse_formula("marked(seed)").unwrap()),
        Conjecture::new(
            "one",
            parse_formula("forall X:node, Y:node. marked(X) & marked(Y) -> X = Y").unwrap(),
        ),
    ];
    let mut session = Session::new(&p, initial, vec![]);
    let outcome = session.run(&mut Stubborn, 3).unwrap();
    assert_eq!(outcome, SessionOutcome::OutOfBudget);
    assert_eq!(session.stats().ctis, 4, "budget + 1 detection");
}

#[test]
fn too_strong_feedback_reaches_user() {
    // A user that over-generalizes (empty facts on a reachable pattern)
    // gets a trace and retries with the full CTI.
    struct Learner {
        saw_too_strong: bool,
    }
    impl User for Learner {
        fn on_cti(&mut self, _ctx: &ivy_core::SessionCtx<'_>, cti: &ivy_core::Cti) -> CtiDecision {
            // Over-generalize: keep only the `marked` positive facts —
            // excludes ALL states with any marked node, but such states are
            // reachable (the initial state!), so BMC must object.
            let mut s_u = PartialStructure::from_structure(&cti.state);
            s_u.retain_facts(|f| f.symbol() == &Sym::new("marked") && f.value());
            CtiDecision::Generalize {
                upper_bound: s_u,
                bound: 2,
            }
        }
        fn on_too_strong(
            &mut self,
            _ctx: &ivy_core::SessionCtx<'_>,
            _attempted: &PartialStructure,
            trace: &ivy_core::Trace,
        ) -> TooStrongDecision {
            self.saw_too_strong = true;
            assert!(!trace.states.is_empty());
            TooStrongDecision::Stop
        }
        fn on_proposal(
            &mut self,
            _ctx: &ivy_core::SessionCtx<'_>,
            _proposal: &ivy_core::Proposal,
        ) -> ProposalDecision {
            ProposalDecision::Stop
        }
    }
    let p = spread();
    let initial = vec![
        Conjecture::new("C0", parse_formula("marked(seed)").unwrap()),
        Conjecture::new(
            "one",
            parse_formula("forall X:node, Y:node. marked(X) & marked(Y) -> X = Y").unwrap(),
        ),
    ];
    let mut session = Session::new(&p, initial, vec![]);
    let mut user = Learner {
        saw_too_strong: false,
    };
    let outcome = session.run(&mut user, 5).unwrap();
    assert_eq!(outcome, SessionOutcome::Stopped);
    assert!(
        user.saw_too_strong,
        "BMC must reject the over-generalization"
    );
}
