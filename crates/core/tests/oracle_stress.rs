//! Concurrency stress: many threads hammering ONE shared oracle with a
//! mix of frames and engines must produce exactly the verdicts the same
//! workload produces single-threaded, and the frame-keyed session pool
//! must hand each pooled session to at most one thread.
//!
//! This is the server seam (`ivy serve` runs every worker against one
//! `Arc<Oracle>`), exercised without any sockets in the way.

use std::sync::{Arc, Barrier};

use ivy_core::{houdini_with_oracle, Bmc, Conjecture, Frame, Inductiveness, Oracle, Verifier};
use ivy_fol::parse_formula;
use ivy_rml::{check_program, parse_program, Program};

const MUTEX: &str = r#"
sort client
relation has_lock : client
relation lock_free
local c : client
safety mutex: forall C1:client, C2:client. has_lock(C1) & has_lock(C2) -> C1 = C2
init { has_lock(X0) := false; lock_free() := true }
action acquire { havoc c; assume lock_free; lock_free() := false; has_lock.insert(c) }
action release { havoc c; assume has_lock(c); has_lock.remove(c); lock_free() := true }
"#;

const SPREAD: &str = r#"
sort node
relation marked : node
local n : node
variable seed : node
safety seed_marked: marked(seed)
init { marked(X0) := X0 = seed }
action mark { havoc n; marked.insert(n) }
"#;

fn program(src: &str) -> Program {
    let p = parse_program(src).unwrap();
    assert!(check_program(&p).is_empty());
    p
}

fn mutex_invariant() -> Vec<Conjecture> {
    vec![
        Conjecture::new(
            "mutex",
            parse_formula("forall C1:client, C2:client. has_lock(C1) & has_lock(C2) -> C1 = C2")
                .unwrap(),
        ),
        Conjecture::new(
            "excl",
            parse_formula("forall C:client. has_lock(C) -> ~lock_free").unwrap(),
        ),
    ]
}

/// The mixed workload one "client" runs; returns a verdict transcript.
fn workload(mutex: &Program, spread: &Program, oracle: &Arc<Oracle>) -> Vec<String> {
    let mut verdicts = Vec::new();

    // 1. Strengthened mutex invariant: inductive.
    let v = Verifier::with_oracle(mutex, oracle.clone());
    verdicts.push(match v.check(&mutex_invariant()).unwrap() {
        Inductiveness::Inductive => "mutex:inductive".to_string(),
        Inductiveness::Cti(cti) => format!("mutex:cti:{}", cti.violation),
    });

    // 2. Safety alone: a consecution CTI.
    let safety: Vec<Conjecture> = mutex
        .safety
        .iter()
        .map(|(l, f)| Conjecture::new(l.clone(), f.clone()))
        .collect();
    verdicts.push(match v.check(&safety).unwrap() {
        Inductiveness::Inductive => "mutex-weak:inductive".to_string(),
        Inductiveness::Cti(_) => "mutex-weak:cti".to_string(),
    });

    // 3. BMC on a different program (different frames, same pool).
    let bmc = Bmc::with_oracle(spread, oracle.clone());
    verdicts.push(match bmc.check_safety(2).unwrap() {
        None => "spread:safe@2".to_string(),
        Some(_) => "spread:trace".to_string(),
    });

    // 4. Houdini over a tiny template on the mutex model.
    let candidates = ivy_core::enumerate_candidates(&mutex.sig, 1, 1);
    let h = houdini_with_oracle(mutex, candidates, oracle).unwrap();
    verdicts.push(format!(
        "mutex:houdini:{}:{}",
        h.invariant.len(),
        h.proves_safety
    ));

    verdicts
}

#[test]
fn shared_oracle_matches_single_threaded_verdicts() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 3;

    let mutex = program(MUTEX);
    let spread = program(SPREAD);

    // Reference transcript, computed on a private oracle.
    let reference = workload(&mutex, &spread, &Arc::new(Oracle::new()));

    // The shared oracle every thread hammers. Views share the pool.
    let shared = Arc::new(Oracle::new());
    shared.set_pool_capacity(THREADS * 8);

    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            handles.push(scope.spawn(|| {
                barrier.wait(); // maximize interleaving
                let view = Arc::new(shared.view());
                let mut transcripts = Vec::new();
                for _ in 0..ROUNDS {
                    transcripts.push(workload(&mutex, &spread, &view));
                }
                transcripts
            }));
        }
        for h in handles {
            for transcript in h.join().unwrap() {
                assert_eq!(transcript, reference, "concurrent verdict divergence");
            }
        }
    });

    // The workload repeated 24 times must have warmed the shared pool:
    // later rounds ride on sessions earlier rounds (of ANY thread) built.
    let rollup = shared.rollup();
    assert!(
        rollup.frame_hits > rollup.frame_misses,
        "a hot shared pool must serve mostly warm checkouts: {} hits, {} misses",
        rollup.frame_hits,
        rollup.frame_misses
    );
}

#[test]
fn pool_hands_each_session_to_at_most_one_thread() {
    const THREADS: usize = 8;

    let mutex = program(MUTEX);
    let oracle = Arc::new(Oracle::new());
    oracle.set_pool_capacity(THREADS);

    // One frame, shared by every thread.
    let mut frame = Frame::new(&mutex.sig);
    for c in mutex_invariant() {
        frame.push(c.name.clone(), ivy_fol::intern::intern(&c.formula));
    }

    // Round 1: a cold pool and 8 simultaneous checkouts — every thread
    // must get a freshly built session (nothing to share, nothing shared).
    let barrier = Barrier::new(THREADS);
    let run_round = |expect_label: &str| {
        std::thread::scope(|scope| {
            let barrier = &barrier;
            let mut handles = Vec::new();
            for _ in 0..THREADS {
                handles.push(scope.spawn(|| {
                    barrier.wait();
                    let mut session = oracle.open(&frame).unwrap();
                    // Hold the session across a rendezvous so all eight
                    // are checked out at once; a double-handed session
                    // would be mutated from two threads here.
                    barrier.wait();
                    let outcome = session.check().unwrap();
                    matches!(outcome, ivy_epr::EprOutcome::Sat(_))
                }));
            }
            for h in handles {
                assert!(h.join().unwrap(), "{expect_label}: invariant frame is SAT");
            }
        });
    };

    run_round("cold");
    let cold = oracle.rollup();
    assert_eq!(
        cold.sessions_built, THREADS as u64,
        "8 concurrent checkouts of one frame from a cold pool must build 8 sessions"
    );

    // Round 2: all eight sessions were checked back in; the same stampede
    // is served entirely from the pool, one pooled session per thread.
    run_round("warm");
    let warm = oracle.rollup();
    assert_eq!(
        warm.sessions_built, THREADS as u64,
        "a warm pool with 8 pooled sessions must build nothing new"
    );
    assert_eq!(
        warm.frame_hits - cold.frame_hits,
        THREADS as u64,
        "every warm checkout is a pool hit"
    );
}
