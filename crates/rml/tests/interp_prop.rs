//! Property tests relating the interpreter's two execution modes and the
//! guarded-path normal form used by the transition compiler.
//!
//! Commands and states come from a deterministic in-repo PRNG, so runs are
//! reproducible without an external test-data crate.

use ivy_fol::{Formula, Signature, Structure, Sym, Term};
use ivy_rml::interp::rand_like::XorShift;
use ivy_rml::{exec_all, exec_random, paths, Cmd, ExecOutcome};
use std::sync::Arc;

/// Deterministic splitmix64 generator.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed.wrapping_add(0x9e3779b97f4a7c15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

fn signature() -> Signature {
    let mut sig = Signature::new();
    sig.add_sort("s").unwrap();
    sig.add_relation("r", ["s"]).unwrap();
    sig.add_constant("a", "s").unwrap();
    sig
}

fn arb_state(g: &mut Gen) -> Structure {
    let n = 1 + g.below(3);
    let mut s = Structure::new(Arc::new(signature()));
    let elems: Vec<_> = (0..n).map(|_| s.add_element("s")).collect();
    s.set_fun("a", vec![], elems[g.below(n)].clone());
    for e in &elems {
        s.set_rel("r", vec![e.clone()], g.below(2) == 0);
    }
    s
}

fn arb_atomic(g: &mut Gen) -> Cmd {
    match g.below(6) {
        0 => Cmd::Skip,
        1 => Cmd::Abort,
        2 => Cmd::Havoc(Sym::new("a")),
        3 => Cmd::Assume(ivy_fol::parse_formula("r(a)").unwrap()),
        4 => Cmd::insert_tuple("r", vec![Sym::new("X0")], vec![Term::cst("a")]),
        _ => Cmd::remove_tuple("r", vec![Sym::new("X0")], vec![Term::cst("a")]),
    }
}

fn arb_cmd(g: &mut Gen) -> Cmd {
    let branches = 1 + g.below(3);
    let seqs: Vec<Cmd> = (0..branches)
        .map(|_| {
            let len = 1 + g.below(3);
            Cmd::seq((0..len).map(|_| arb_atomic(g)).collect::<Vec<_>>())
        })
        .collect();
    Cmd::choice(seqs)
}

/// Every random execution outcome appears among the exhaustive ones.
#[test]
fn random_execution_is_a_member_of_exec_all() {
    let mut g = Gen::new(0xa11);
    for case in 0..192 {
        let cmd = arb_cmd(&mut g);
        let state = arb_state(&mut g);
        let seed = 1 + g.next() % 999;
        let axiom = Formula::True;
        let all = exec_all(&axiom, &cmd, &state).unwrap();
        let mut rng = XorShift::new(seed);
        let one = exec_random(&axiom, &cmd, &state, &mut rng).unwrap();
        assert!(
            all.contains(&one),
            "case {case}: random outcome {one:?} missing from exhaustive set"
        );
    }
}

/// The number of aborting paths equals the number of Aborted outcomes an
/// assume-free command produces (assumes filter, so only compare when
/// the command has no Assume).
#[test]
fn path_count_matches_choice_structure() {
    let mut g = Gen::new(0xa12);
    for _ in 0..192 {
        let cmd = arb_cmd(&mut g);
        let state = arb_state(&mut g);
        let ps = paths(&cmd);
        assert!(!ps.is_empty());
        let has_assume = ps
            .iter()
            .any(|p| p.atoms.iter().any(|a| matches!(a, Cmd::Assume(_))));
        // Havoc multiplies outcomes by the domain size; count possibilities.
        if !has_assume {
            let outcomes = exec_all(&Formula::True, &cmd, &state).unwrap();
            let aborted = outcomes
                .iter()
                .filter(|o| matches!(o, ExecOutcome::Aborted))
                .count();
            let abort_paths = ps.iter().filter(|p| p.aborts).count();
            // Each aborting path contributes at least one Aborted outcome
            // (havocs before the abort multiply them).
            if abort_paths == 0 {
                assert_eq!(aborted, 0);
            } else {
                assert!(aborted >= abort_paths);
            }
        }
    }
}

/// `seq` and `choice` smart constructors do not change semantics
/// relative to raw nesting.
#[test]
fn constructors_preserve_semantics() {
    let mut g = Gen::new(0xa13);
    for _ in 0..192 {
        let a = arb_cmd(&mut g);
        let b = arb_cmd(&mut g);
        let state = arb_state(&mut g);
        let seed = 1 + g.next() % 499;
        let axiom = Formula::True;
        let smart = Cmd::seq([a.clone(), b.clone()]);
        let raw = Cmd::Seq(vec![a, b]);
        let mut rng1 = XorShift::new(seed);
        let mut rng2 = XorShift::new(seed);
        let o1 = exec_random(&axiom, &smart, &state, &mut rng1).unwrap();
        let o2 = exec_random(&axiom, &raw, &state, &mut rng2).unwrap();
        // Same RNG stream, same resolution: flattening must not reorder
        // nondeterminism for seq of two commands.
        assert_eq!(o1, o2);
    }
}
