//! Property tests relating the interpreter's two execution modes and the
//! guarded-path normal form used by the transition compiler.

use ivy_rml::interp::rand_like::XorShift;
use ivy_rml::{exec_all, exec_random, paths, Cmd, ExecOutcome};
use ivy_fol::{Formula, Signature, Structure, Sym, Term};
use proptest::prelude::*;
use std::sync::Arc;

fn signature() -> Signature {
    let mut sig = Signature::new();
    sig.add_sort("s").unwrap();
    sig.add_relation("r", ["s"]).unwrap();
    sig.add_constant("a", "s").unwrap();
    sig
}

fn arb_state() -> impl Strategy<Value = Structure> {
    (1usize..=3, any::<u64>()).prop_map(|(n, seed)| {
        let mut s = Structure::new(Arc::new(signature()));
        let elems: Vec<_> = (0..n).map(|_| s.add_element("s")).collect();
        let mut bits = seed;
        let mut next = || {
            bits = bits.wrapping_mul(6364136223846793005).wrapping_add(1);
            (bits >> 33) as usize
        };
        s.set_fun("a", vec![], elems[next() % n].clone());
        for e in &elems {
            s.set_rel("r", vec![e.clone()], next() % 2 == 0);
        }
        s
    })
}

fn arb_cmd() -> impl Strategy<Value = Cmd> {
    let atomic = prop_oneof![
        Just(Cmd::Skip),
        Just(Cmd::Abort),
        Just(Cmd::Havoc(Sym::new("a"))),
        Just(Cmd::Assume(ivy_fol::parse_formula("r(a)").unwrap())),
        Just(Cmd::insert_tuple(
            "r",
            vec![Sym::new("X0")],
            vec![Term::cst("a")]
        )),
        Just(Cmd::remove_tuple(
            "r",
            vec![Sym::new("X0")],
            vec![Term::cst("a")]
        )),
    ];
    let seq = proptest::collection::vec(atomic.clone(), 1..=3).prop_map(Cmd::seq);
    proptest::collection::vec(seq, 1..=3).prop_map(Cmd::choice)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every random execution outcome appears among the exhaustive ones.
    #[test]
    fn random_execution_is_a_member_of_exec_all(
        cmd in arb_cmd(),
        state in arb_state(),
        seed in 1u64..1000,
    ) {
        let axiom = Formula::True;
        let all = exec_all(&axiom, &cmd, &state).unwrap();
        let mut rng = XorShift::new(seed);
        let one = exec_random(&axiom, &cmd, &state, &mut rng).unwrap();
        prop_assert!(
            all.contains(&one),
            "random outcome {one:?} missing from exhaustive set"
        );
    }

    /// The number of aborting paths equals the number of Aborted outcomes an
    /// assume-free command produces (assumes filter, so only compare when
    /// the command has no Assume).
    #[test]
    fn path_count_matches_choice_structure(cmd in arb_cmd(), state in arb_state()) {
        let ps = paths(&cmd);
        prop_assert!(!ps.is_empty());
        let has_assume = ps.iter().any(|p| p.atoms.iter().any(|a| matches!(a, Cmd::Assume(_))));
        // Havoc multiplies outcomes by the domain size; count possibilities.
        if !has_assume {
            let outcomes = exec_all(&Formula::True, &cmd, &state).unwrap();
            let aborted = outcomes.iter().filter(|o| matches!(o, ExecOutcome::Aborted)).count();
            let abort_paths = ps.iter().filter(|p| p.aborts).count();
            // Each aborting path contributes at least one Aborted outcome
            // (havocs before the abort multiply them).
            if abort_paths == 0 {
                prop_assert_eq!(aborted, 0);
            } else {
                prop_assert!(aborted >= abort_paths);
            }
        }
    }

    /// `seq` and `choice` smart constructors do not change semantics
    /// relative to raw nesting.
    #[test]
    fn constructors_preserve_semantics(
        a in arb_cmd(),
        b in arb_cmd(),
        state in arb_state(),
        seed in 1u64..500,
    ) {
        let axiom = Formula::True;
        let smart = Cmd::seq([a.clone(), b.clone()]);
        let raw = Cmd::Seq(vec![a, b]);
        let mut rng1 = XorShift::new(seed);
        let mut rng2 = XorShift::new(seed);
        let o1 = exec_random(&axiom, &smart, &state, &mut rng1).unwrap();
        let o2 = exec_random(&axiom, &raw, &state, &mut rng2).unwrap();
        // Same RNG stream, same resolution: flattening must not reorder
        // nondeterminism for seq of two commands.
        prop_assert_eq!(o1, o2);
    }
}
