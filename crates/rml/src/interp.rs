//! An explicit-state interpreter for RML.
//!
//! Runs commands on concrete finite [`Structure`]s. This is *not* part of
//! the paper's toolchain — Ivy is purely symbolic — but it gives us a second,
//! independent semantics to test against: BMC traces must replay concretely,
//! and `k`-invariant properties must survive random walks of length `k`.

use std::collections::BTreeMap;

use ivy_fol::{Elem, EvalError, Formula, Structure, Sym};
use rand_like::Rng;

use crate::ast::{Action, Cmd, Program};

/// Minimal RNG abstraction so the interpreter does not hard-depend on a
/// specific `rand` version (tests inject `rand`-backed or deterministic
/// implementations).
pub mod rand_like {
    /// A source of uniform random indices.
    pub trait Rng {
        /// A uniform value in `0..bound` (`bound > 0`).
        fn below(&mut self, bound: usize) -> usize;
    }

    /// A small deterministic xorshift RNG, good enough for tests and
    /// simulations.
    #[derive(Clone, Debug)]
    pub struct XorShift {
        state: u64,
    }

    impl XorShift {
        /// Creates an RNG from a nonzero seed (zero is mapped to a default).
        pub fn new(seed: u64) -> XorShift {
            XorShift {
                state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
            }
        }
    }

    impl Rng for XorShift {
        fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "below(0)");
            self.state ^= self.state << 13;
            self.state ^= self.state >> 7;
            self.state ^= self.state << 17;
            (self.state % bound as u64) as usize
        }
    }
}

/// The result of executing a command on a state.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecOutcome {
    /// Execution completed in a new state.
    Done(Structure),
    /// An `abort` was reached (assertion violation).
    Aborted,
    /// Execution is blocked: an `assume` failed, a havoc had no candidate
    /// element, or an update left the axioms — the chosen resolution of
    /// nondeterminism admits no execution.
    Blocked,
}

/// Errors from interpretation (indicate malformed programs or states, not
/// protocol behaviour).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterpError(pub EvalError);

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "interpreter error: {}", self.0)
    }
}

impl std::error::Error for InterpError {}

impl From<EvalError> for InterpError {
    fn from(e: EvalError) -> Self {
        InterpError(e)
    }
}

/// Executes `cmd` on `state`, resolving nondeterminism with `rng`.
///
/// The interpretation follows the paper's semantics: an update that
/// produces a state violating `axiom` admits no execution (blocked), and
/// `assume` filters executions.
///
/// # Errors
///
/// Returns [`InterpError`] on evaluation failures (unknown symbols etc.),
/// which indicate a malformed program rather than protocol behaviour.
pub fn exec_random(
    axiom: &Formula,
    cmd: &Cmd,
    state: &Structure,
    rng: &mut impl Rng,
) -> Result<ExecOutcome, InterpError> {
    match cmd {
        Cmd::Skip => Ok(ExecOutcome::Done(state.clone())),
        Cmd::Abort => Ok(ExecOutcome::Aborted),
        Cmd::UpdateRel { rel, params, body } => {
            let mut next = state.clone();
            let arg_sorts = state
                .signature()
                .relation(rel)
                .expect("validated program")
                .to_vec();
            let tuples = enumerate_tuples(state, &arg_sorts);
            for tuple in tuples {
                let env: BTreeMap<Sym, Elem> =
                    params.iter().cloned().zip(tuple.iter().cloned()).collect();
                let value = state.eval(body, &env)?;
                next.set_rel(*rel, tuple, value);
            }
            finish_update(axiom, next)
        }
        Cmd::UpdateFun { fun, params, body } => {
            let mut next = state.clone();
            let decl = state
                .signature()
                .function(fun)
                .expect("validated program")
                .clone();
            let tuples = enumerate_tuples(state, &decl.args);
            for tuple in tuples {
                let env: BTreeMap<Sym, Elem> =
                    params.iter().cloned().zip(tuple.iter().cloned()).collect();
                let value = state.eval_term(body, &env)?;
                next.set_fun(*fun, tuple, value);
            }
            finish_update(axiom, next)
        }
        Cmd::Havoc(v) => {
            let decl = state
                .signature()
                .function(v)
                .expect("validated program")
                .clone();
            let candidates: Vec<Elem> = state.elements(&decl.ret).collect();
            if candidates.is_empty() {
                return Ok(ExecOutcome::Blocked);
            }
            let choice = candidates[rng.below(candidates.len())].clone();
            let mut next = state.clone();
            next.set_fun(*v, Vec::new(), choice);
            finish_update(axiom, next)
        }
        Cmd::Assume(phi) => {
            if state.eval_closed(phi)? {
                Ok(ExecOutcome::Done(state.clone()))
            } else {
                Ok(ExecOutcome::Blocked)
            }
        }
        Cmd::Seq(cmds) => {
            let mut current = state.clone();
            for c in cmds {
                match exec_random(axiom, c, &current, rng)? {
                    ExecOutcome::Done(s) => current = s,
                    other => return Ok(other),
                }
            }
            Ok(ExecOutcome::Done(current))
        }
        Cmd::Choice(cmds) => {
            if cmds.is_empty() {
                return Ok(ExecOutcome::Blocked);
            }
            let c = &cmds[rng.below(cmds.len())];
            exec_random(axiom, c, state, rng)
        }
    }
}

fn finish_update(axiom: &Formula, next: Structure) -> Result<ExecOutcome, InterpError> {
    if next.eval_closed(axiom)? {
        Ok(ExecOutcome::Done(next))
    } else {
        Ok(ExecOutcome::Blocked)
    }
}

fn enumerate_tuples(state: &Structure, sorts: &[ivy_fol::Sort]) -> Vec<Vec<Elem>> {
    let mut out = vec![Vec::new()];
    for sort in sorts {
        let elems: Vec<Elem> = state.elements(sort).collect();
        let mut next = Vec::with_capacity(out.len() * elems.len());
        for prefix in &out {
            for e in &elems {
                let mut t = prefix.clone();
                t.push(e.clone());
                next.push(t);
            }
        }
        out = next;
    }
    out
}

/// Executes `cmd` on `state` exploring *all* nondeterministic resolutions.
/// Returns the list of outcomes (may contain duplicates).
///
/// Exponential in the number of choices/havocs; for tests on small states.
///
/// # Errors
///
/// Returns [`InterpError`] on evaluation failures.
pub fn exec_all(
    axiom: &Formula,
    cmd: &Cmd,
    state: &Structure,
) -> Result<Vec<ExecOutcome>, InterpError> {
    match cmd {
        Cmd::Skip => Ok(vec![ExecOutcome::Done(state.clone())]),
        Cmd::Abort => Ok(vec![ExecOutcome::Aborted]),
        Cmd::UpdateRel { .. } | Cmd::UpdateFun { .. } => {
            // Deterministic: reuse the random executor with a dummy RNG.
            let mut rng = rand_like::XorShift::new(1);
            Ok(vec![exec_random(axiom, cmd, state, &mut rng)?])
        }
        Cmd::Havoc(v) => {
            let decl = state
                .signature()
                .function(v)
                .expect("validated program")
                .clone();
            let mut out = Vec::new();
            for e in state.elements(&decl.ret).collect::<Vec<_>>() {
                let mut next = state.clone();
                next.set_fun(*v, Vec::new(), e);
                match finish_update(axiom, next)? {
                    ExecOutcome::Done(s) => out.push(ExecOutcome::Done(s)),
                    other => out.push(other),
                }
            }
            if out.is_empty() {
                out.push(ExecOutcome::Blocked);
            }
            Ok(out)
        }
        Cmd::Assume(phi) => {
            if state.eval_closed(phi)? {
                Ok(vec![ExecOutcome::Done(state.clone())])
            } else {
                Ok(vec![ExecOutcome::Blocked])
            }
        }
        Cmd::Seq(cmds) => {
            let mut states = vec![state.clone()];
            let mut terminal = Vec::new();
            for c in cmds {
                let mut next_states = Vec::new();
                for s in &states {
                    for outcome in exec_all(axiom, c, s)? {
                        match outcome {
                            ExecOutcome::Done(ns) => next_states.push(ns),
                            other => terminal.push(other),
                        }
                    }
                }
                states = next_states;
            }
            let mut out: Vec<ExecOutcome> = states.into_iter().map(ExecOutcome::Done).collect();
            out.extend(terminal);
            Ok(out)
        }
        Cmd::Choice(cmds) => {
            let mut out = Vec::new();
            for c in cmds {
                out.extend(exec_all(axiom, c, state)?);
            }
            if out.is_empty() {
                out.push(ExecOutcome::Blocked);
            }
            Ok(out)
        }
    }
}

/// One step of a random walk over a program's loop: picks a random action
/// and executes it. Blocked attempts are retried up to `retries` times.
///
/// Returns the action name and resulting outcome of the last attempt.
///
/// # Errors
///
/// Returns [`InterpError`] on evaluation failures.
pub fn step_random(
    program: &Program,
    state: &Structure,
    rng: &mut impl Rng,
    retries: usize,
) -> Result<(String, ExecOutcome), InterpError> {
    let axiom = program.axiom();
    let mut last = ("<none>".to_string(), ExecOutcome::Blocked);
    for _ in 0..=retries {
        if program.actions.is_empty() {
            return Ok(last);
        }
        let Action { name, cmd } = &program.actions[rng.below(program.actions.len())];
        match exec_random(&axiom, cmd, state, rng)? {
            ExecOutcome::Blocked => {
                last = (name.clone(), ExecOutcome::Blocked);
            }
            other => return Ok((name.clone(), other)),
        }
    }
    Ok(last)
}

#[cfg(test)]
mod tests {
    use super::rand_like::XorShift;
    use super::*;
    use ivy_fol::{parse_formula, Signature, Term};
    use std::sync::Arc;

    fn toy() -> (Structure, Formula) {
        let mut sig = Signature::new();
        sig.add_sort("node").unwrap();
        sig.add_relation("leader", ["node"]).unwrap();
        sig.add_constant("n", "node").unwrap();
        let mut s = Structure::new(Arc::new(sig));
        let n0 = s.add_element("node");
        let _n1 = s.add_element("node");
        s.set_fun("n", vec![], n0);
        (s, Formula::True)
    }

    #[test]
    fn update_rel_applies_formula() {
        let (s, ax) = toy();
        let cmd = Cmd::UpdateRel {
            rel: Sym::new("leader"),
            params: vec![Sym::new("X0")],
            body: Formula::True,
        };
        let mut rng = XorShift::new(7);
        let ExecOutcome::Done(next) = exec_random(&ax, &cmd, &s, &mut rng).unwrap() else {
            panic!("expected done");
        };
        assert_eq!(next.rel_count(&Sym::new("leader")), 2);
    }

    #[test]
    fn assume_blocks() {
        let (s, ax) = toy();
        let cmd = Cmd::Assume(parse_formula("exists X:node. leader(X)").unwrap());
        let mut rng = XorShift::new(7);
        assert_eq!(
            exec_random(&ax, &cmd, &s, &mut rng).unwrap(),
            ExecOutcome::Blocked
        );
    }

    #[test]
    fn abort_propagates_through_seq() {
        let (s, ax) = toy();
        let cmd = Cmd::seq([Cmd::Abort, Cmd::Havoc(Sym::new("n"))]);
        let mut rng = XorShift::new(7);
        assert_eq!(
            exec_random(&ax, &cmd, &s, &mut rng).unwrap(),
            ExecOutcome::Aborted
        );
    }

    #[test]
    fn havoc_explores_all_elements() {
        let (s, ax) = toy();
        let outcomes = exec_all(&ax, &Cmd::Havoc(Sym::new("n")), &s).unwrap();
        assert_eq!(outcomes.len(), 2);
        let values: Vec<_> = outcomes
            .iter()
            .map(|o| match o {
                ExecOutcome::Done(st) => st.fun_app(&Sym::new("n"), &[]).unwrap().idx,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert!(values.contains(&0) && values.contains(&1));
    }

    #[test]
    fn axiom_violating_update_blocks() {
        let (s, _) = toy();
        let ax = parse_formula("exists X:node. leader(X)").unwrap();
        // First make a state satisfying the axiom.
        let mut s1 = s.clone();
        let e0 = s1.elements(&"node".into()).next().unwrap();
        s1.set_rel("leader", vec![e0], true);
        // Clearing leader violates the axiom: blocked.
        let cmd = Cmd::UpdateRel {
            rel: Sym::new("leader"),
            params: vec![Sym::new("X0")],
            body: Formula::False,
        };
        let mut rng = XorShift::new(7);
        assert_eq!(
            exec_random(&ax, &cmd, &s1, &mut rng).unwrap(),
            ExecOutcome::Blocked
        );
    }

    #[test]
    fn point_update_only_touches_target() {
        let (s, ax) = toy();
        let cmd = Cmd::point_update(
            "leader",
            vec![Sym::new("X0")],
            vec![Term::cst("n")],
            Term::cst("n"),
        );
        // leader is a relation; point_update is for functions. Use insert.
        let cmd2 = Cmd::insert_tuple("leader", vec![Sym::new("X0")], vec![Term::cst("n")]);
        let mut rng = XorShift::new(7);
        let ExecOutcome::Done(next) = exec_random(&ax, &cmd2, &s, &mut rng).unwrap() else {
            panic!("expected done");
        };
        assert_eq!(next.rel_count(&Sym::new("leader")), 1);
        let _ = cmd;
    }

    #[test]
    fn exec_all_choice_collects_branches() {
        let (s, ax) = toy();
        let cmd = Cmd::Choice(vec![Cmd::Skip, Cmd::Abort]);
        let outcomes = exec_all(&ax, &cmd, &s).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.contains(&ExecOutcome::Aborted));
    }
}
