//! Abstract syntax of RML, the Relational Modeling Language (Figure 10 of
//! the paper), plus the syntactic sugar of Figure 12.
//!
//! An RML program is `decls ; C_init ; while * do C_body ; C_final`, where
//! commands are loop-free. The loop body is a nondeterministic choice among
//! named *actions* (the paper's `send | receive` pattern); safety properties
//! are assertions checked at the loop head.

use std::fmt;

use ivy_fol::{Binding, Formula, Signature, Sym, Term};

/// An RML command.
#[derive(Clone, PartialEq, Eq)]
pub enum Cmd {
    /// Do nothing.
    Skip,
    /// Terminate abnormally (the error state).
    Abort,
    /// Bulk relation update `r(x̄) := ϕ(x̄)`: `r` becomes the set of tuples
    /// satisfying the quantifier-free formula.
    UpdateRel {
        /// The relation being updated.
        rel: Sym,
        /// The formal parameters (one per argument position).
        params: Vec<Sym>,
        /// Quantifier-free right-hand side over `params`.
        body: Formula,
    },
    /// Bulk function update `f(x̄) := t(x̄)`.
    UpdateFun {
        /// The function being updated.
        fun: Sym,
        /// The formal parameters.
        params: Vec<Sym>,
        /// Right-hand side term over `params`.
        body: Term,
    },
    /// Nondeterministic assignment `v := *` to a program variable.
    Havoc(Sym),
    /// Restrict executions to those satisfying an `∃*∀*` sentence.
    Assume(Formula),
    /// Sequential composition.
    Seq(Vec<Cmd>),
    /// Nondeterministic choice.
    Choice(Vec<Cmd>),
}

impl Cmd {
    /// Sequential composition, flattening nested sequences and dropping
    /// skips.
    pub fn seq(cmds: impl IntoIterator<Item = Cmd>) -> Cmd {
        let mut out = Vec::new();
        for c in cmds {
            match c {
                Cmd::Skip => {}
                Cmd::Seq(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Cmd::Skip,
            1 => out.pop().expect("len checked"),
            _ => Cmd::Seq(out),
        }
    }

    /// Nondeterministic choice, flattening nested choices.
    pub fn choice(cmds: impl IntoIterator<Item = Cmd>) -> Cmd {
        let mut out = Vec::new();
        for c in cmds {
            match c {
                Cmd::Choice(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            1 => out.pop().expect("len checked"),
            _ => Cmd::Choice(out),
        }
    }

    /// The paper's `assert ϕ` sugar: `{assume ¬ϕ; abort} | skip`.
    pub fn assert(phi: Formula) -> Cmd {
        Cmd::choice([
            Cmd::seq([Cmd::Assume(Formula::not(phi)), Cmd::Abort]),
            Cmd::Skip,
        ])
    }

    /// The paper's `if ϕ then C1 else C2` sugar:
    /// `{assume ϕ; C1} | {assume ¬ϕ; C2}`.
    pub fn ite(phi: Formula, then_cmd: Cmd, else_cmd: Cmd) -> Cmd {
        Cmd::choice([
            Cmd::seq([Cmd::Assume(phi.clone()), then_cmd]),
            Cmd::seq([Cmd::Assume(Formula::not(phi)), else_cmd]),
        ])
    }

    /// The paper's `r.insert(x̄ | ϕ)` sugar: `r(x̄) := r(x̄) ∨ ϕ(x̄)`.
    pub fn insert_where(rel: impl Into<Sym>, params: Vec<Sym>, phi: Formula) -> Cmd {
        let rel = rel.into();
        let atom = Formula::rel(rel, params.iter().map(|p| Term::Var(*p)));
        Cmd::UpdateRel {
            rel,
            params,
            body: Formula::or([atom, phi]),
        }
    }

    /// The paper's `r.remove(x̄ | ϕ)` sugar: `r(x̄) := r(x̄) ∧ ¬ϕ(x̄)`.
    pub fn remove_where(rel: impl Into<Sym>, params: Vec<Sym>, phi: Formula) -> Cmd {
        let rel = rel.into();
        let atom = Formula::rel(rel, params.iter().map(|p| Term::Var(*p)));
        Cmd::UpdateRel {
            rel,
            params,
            body: Formula::and([atom, Formula::not(phi)]),
        }
    }

    /// The paper's `r.insert t̄` sugar: insert a single tuple of closed terms.
    pub fn insert_tuple(rel: impl Into<Sym>, params: Vec<Sym>, tuple: Vec<Term>) -> Cmd {
        let eqs = Formula::and(
            params
                .iter()
                .zip(&tuple)
                .map(|(p, t)| Formula::eq(Term::Var(*p), t.clone())),
        );
        Cmd::insert_where(rel, params, eqs)
    }

    /// The paper's `r.remove t̄` sugar: remove a single tuple of closed terms.
    pub fn remove_tuple(rel: impl Into<Sym>, params: Vec<Sym>, tuple: Vec<Term>) -> Cmd {
        let eqs = Formula::and(
            params
                .iter()
                .zip(&tuple)
                .map(|(p, t)| Formula::eq(Term::Var(*p), t.clone())),
        );
        Cmd::remove_where(rel, params, eqs)
    }

    /// The paper's `f[t̄] := t` point-update sugar:
    /// `f(x̄) := ite(x̄ = t̄, t, f(x̄))`.
    pub fn point_update(fun: impl Into<Sym>, params: Vec<Sym>, at: Vec<Term>, value: Term) -> Cmd {
        let fun = fun.into();
        if params.is_empty() {
            // Nullary function = program variable: plain assignment.
            return Cmd::UpdateFun {
                fun,
                params,
                body: value,
            };
        }
        let eqs = Formula::and(
            params
                .iter()
                .zip(&at)
                .map(|(p, t)| Formula::eq(Term::Var(*p), t.clone())),
        );
        let old = Term::app(fun, params.iter().map(|p| Term::Var(*p)));
        Cmd::UpdateFun {
            fun,
            params,
            body: Term::ite(eqs, value, old),
        }
    }

    /// Whether the command can reach an `abort`.
    pub fn mentions_abort(&self) -> bool {
        match self {
            Cmd::Abort => true,
            Cmd::Seq(cs) | Cmd::Choice(cs) => cs.iter().any(Cmd::mentions_abort),
            _ => false,
        }
    }

    /// The base (unversioned) symbols this command may modify.
    pub fn modified_symbols(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        self.collect_modified(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_modified(&self, out: &mut Vec<Sym>) {
        match self {
            Cmd::UpdateRel { rel, .. } => out.push(*rel),
            Cmd::UpdateFun { fun, .. } => out.push(*fun),
            Cmd::Havoc(v) => out.push(*v),
            Cmd::Seq(cs) | Cmd::Choice(cs) => cs.iter().for_each(|c| c.collect_modified(out)),
            _ => {}
        }
    }
}

impl fmt::Display for Cmd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write_indented(f, 0)
    }
}

impl fmt::Debug for Cmd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl Cmd {
    fn write_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Cmd::Skip => write!(f, "{pad}skip"),
            Cmd::Abort => write!(f, "{pad}abort"),
            Cmd::UpdateRel { rel, params, body } => {
                write!(f, "{pad}{rel}(")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ") := {body}")
            }
            Cmd::UpdateFun { fun, params, body } => {
                write!(f, "{pad}{fun}")?;
                if !params.is_empty() {
                    write!(f, "(")?;
                    for (i, p) in params.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{p}")?;
                    }
                    write!(f, ")")?;
                }
                write!(f, " := {body}")
            }
            Cmd::Havoc(v) => write!(f, "{pad}havoc {v}"),
            Cmd::Assume(phi) => write!(f, "{pad}assume {phi}"),
            Cmd::Seq(cs) => {
                writeln!(f, "{pad}{{")?;
                for c in cs {
                    c.write_indented(f, indent + 1)?;
                    writeln!(f, ";")?;
                }
                write!(f, "{pad}}}")
            }
            Cmd::Choice(cs) => {
                writeln!(f, "{pad}choice {{")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        writeln!(f, "{pad}or")?;
                    }
                    c.write_indented(f, indent + 1)?;
                    writeln!(f)?;
                }
                write!(f, "{pad}}}")
            }
        }
    }
}

/// A named loop action (one arm of the body's nondeterministic choice).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Action {
    /// The action's name (used in trace displays, e.g. `send`).
    pub name: String,
    /// The action's command.
    pub cmd: Cmd,
}

/// A complete RML program.
///
/// Safety properties live in `safety` and are interpreted as assertions at
/// the loop head — exactly the paper's pattern of starting the loop body
/// with `assert ϕ` (Figure 1, line 17).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// The vocabulary: sorts, relations, functions, program variables.
    pub sig: Signature,
    /// Labeled `∃*∀*` axioms restricting all states.
    pub axioms: Vec<(String, Formula)>,
    /// Initialization command (runs once from an arbitrary axiom-satisfying
    /// state).
    pub init: Cmd,
    /// The named actions of the loop body.
    pub actions: Vec<Action>,
    /// Finalization command (often `skip`).
    pub final_cmd: Cmd,
    /// Labeled safety properties checked at the loop head.
    pub safety: Vec<(String, Formula)>,
    /// Program variables that are scratch *locals*: havocked before use
    /// inside actions, carrying no protocol state. They are excluded from
    /// CTI generalization (the paper's figures never display them).
    pub locals: std::collections::BTreeSet<Sym>,
}

impl Program {
    /// Creates a program with no axioms, actions, or safety properties over
    /// the given signature.
    pub fn new(sig: Signature) -> Program {
        Program {
            sig,
            axioms: Vec::new(),
            init: Cmd::Skip,
            actions: Vec::new(),
            final_cmd: Cmd::Skip,
            safety: Vec::new(),
            locals: std::collections::BTreeSet::new(),
        }
    }

    /// The loop body: the nondeterministic choice of all actions.
    pub fn body(&self) -> Cmd {
        Cmd::choice(self.actions.iter().map(|a| a.cmd.clone()))
    }

    /// The conjunction of all axioms.
    pub fn axiom(&self) -> Formula {
        Formula::and(self.axioms.iter().map(|(_, f)| f.clone()))
    }

    /// The conjunction of all safety properties.
    pub fn safety_formula(&self) -> Formula {
        Formula::and(self.safety.iter().map(|(_, f)| f.clone()))
    }

    /// Looks up an action by name.
    pub fn action(&self, name: &str) -> Option<&Action> {
        self.actions.iter().find(|a| a.name == name)
    }
}

/// Builds fresh parameter bindings `X0:s0, X1:s1, ...` for a relation or
/// function's argument sorts — convenient when constructing bulk updates.
pub fn update_params(sorts: &[ivy_fol::Sort]) -> (Vec<Sym>, Vec<Binding>) {
    let syms: Vec<Sym> = (0..sorts.len())
        .map(|i| Sym::new(format!("X{i}")))
        .collect();
    let bindings = syms
        .iter()
        .zip(sorts)
        .map(|(v, s)| Binding::new(*v, *s))
        .collect();
    (syms, bindings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_fol::parse_formula;

    #[test]
    fn seq_flattens_and_drops_skip() {
        let c = Cmd::seq([
            Cmd::Skip,
            Cmd::seq([Cmd::Abort, Cmd::Skip]),
            Cmd::Havoc(Sym::new("n")),
        ]);
        match &c {
            Cmd::Seq(cs) => assert_eq!(cs.len(), 2),
            other => panic!("expected seq, got {other}"),
        }
        assert!(c.mentions_abort());
    }

    #[test]
    fn assert_sugar_shape() {
        let c = Cmd::assert(parse_formula("p").unwrap());
        match &c {
            Cmd::Choice(arms) => {
                assert_eq!(arms.len(), 2);
                assert!(arms[0].mentions_abort());
                assert_eq!(arms[1], Cmd::Skip);
            }
            other => panic!("expected choice, got {other}"),
        }
    }

    #[test]
    fn insert_tuple_builds_disjunction() {
        let c = Cmd::insert_tuple(
            "pnd",
            vec![Sym::new("X0"), Sym::new("X1")],
            vec![Term::cst("i"), Term::cst("n")],
        );
        let Cmd::UpdateRel { body, .. } = &c else {
            panic!("expected update");
        };
        assert_eq!(body.to_string(), "pnd(X0, X1) | X0 = i & X1 = n");
    }

    #[test]
    fn point_update_on_variable_is_plain_assignment() {
        let c = Cmd::point_update("v", vec![], vec![], Term::cst("w"));
        let Cmd::UpdateFun { params, body, .. } = &c else {
            panic!("expected update");
        };
        assert!(params.is_empty());
        assert_eq!(body, &Term::cst("w"));
    }

    #[test]
    fn point_update_builds_ite() {
        let c = Cmd::point_update(
            "f",
            vec![Sym::new("X0")],
            vec![Term::cst("a")],
            Term::cst("b"),
        );
        let Cmd::UpdateFun { body, .. } = &c else {
            panic!("expected update");
        };
        assert_eq!(body.to_string(), "ite(X0 = a, b, f(X0))");
    }

    #[test]
    fn modified_symbols_deduped() {
        let c = Cmd::seq([
            Cmd::Havoc(Sym::new("n")),
            Cmd::Havoc(Sym::new("n")),
            Cmd::insert_tuple("r", vec![Sym::new("X0")], vec![Term::cst("n")]),
        ]);
        assert_eq!(c.modified_symbols(), vec![Sym::new("n"), Sym::new("r")]);
    }

    #[test]
    fn program_body_is_action_choice() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        let mut p = Program::new(sig);
        p.actions.push(Action {
            name: "a".into(),
            cmd: Cmd::Skip,
        });
        p.actions.push(Action {
            name: "b".into(),
            cmd: Cmd::Abort,
        });
        match p.body() {
            Cmd::Choice(cs) => assert_eq!(cs.len(), 2),
            other => panic!("expected choice, got {other}"),
        }
        assert!(p.action("b").unwrap().cmd.mentions_abort());
    }
}
