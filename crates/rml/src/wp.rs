//! The weakest-precondition operator of Figure 13.
//!
//! ```text
//! wp(skip, Q)            = Q
//! wp(abort, Q)           = false
//! wp(r(x̄) := ϕ(x̄), Q)   = (A → Q)[ϕ(s̄)/r(s̄)]
//! wp(f(x̄) := t(x̄), Q)   = (A → Q)[t(s̄)/f(s̄)]
//! wp(v := *, Q)          = ∀x. (A → Q)[x/v]
//! wp(assume ϕ, Q)        = ϕ → Q
//! wp(C1 ; C2, Q)         = wp(C1, wp(C2, Q))
//! wp(C1 | C2, Q)         = wp(C1, Q) ∧ wp(C2, Q)
//! ```
//!
//! where `A` is the conjunction of the program's axioms: state mutations are
//! restricted to axiom-satisfying states. Lemma 3.2: if `Q` is `∀*∃*` then
//! so is `wp(C, Q)` (after prenexing) — verified by property tests.

use std::collections::BTreeSet;

use ivy_fol::intern::{FormulaId, Interner};
use ivy_fol::subst::{fresh_name, rewrite_function, rewrite_relation, subst_constant};
use ivy_fol::{Binding, Formula, Signature, Sym, Term};

use crate::ast::Cmd;

/// Computes `wp(cmd, post)` with respect to the axiom conjunction `axiom`.
///
/// `sig` supplies sorts for the fresh universal variable introduced by
/// `havoc`.
///
/// # Panics
///
/// Panics if a havocked variable is not a declared program variable
/// (validated by [`crate::check`]).
pub fn wp(sig: &Signature, axiom: &Formula, cmd: &Cmd, post: &Formula) -> Formula {
    let _span = ivy_telemetry::Span::enter("wp");
    wp_rec(sig, axiom, cmd, post)
}

/// Recursive body of [`wp`], kept separate so the telemetry span covers one
/// top-level call rather than nesting (and double-counting) per subcommand.
fn wp_rec(sig: &Signature, axiom: &Formula, cmd: &Cmd, post: &Formula) -> Formula {
    match cmd {
        Cmd::Skip => post.clone(),
        Cmd::Abort => Formula::False,
        Cmd::UpdateRel { rel, params, body } => {
            let target = Formula::implies(axiom.clone(), post.clone());
            rewrite_relation(&target, rel, params, body)
        }
        Cmd::UpdateFun { fun, params, body } => {
            let target = Formula::implies(axiom.clone(), post.clone());
            rewrite_function(&target, fun, params, body)
        }
        Cmd::Havoc(v) => {
            let decl = sig
                .function(v)
                .unwrap_or_else(|| panic!("havoc of undeclared variable `{v}`"));
            assert!(decl.is_constant(), "havoc target `{v}` is not a variable");
            let target = Formula::implies(axiom.clone(), post.clone());
            let mut used: BTreeSet<Sym> = target.free_vars();
            ivy_fol::subst::all_var_names(&target, &mut used);
            let x = fresh_name(&heading_var(v), &mut used);
            let substituted = subst_constant(&target, v, &Term::Var(x));
            Formula::forall([Binding::new(x, decl.ret)], substituted)
        }
        Cmd::Assume(phi) => Formula::implies(phi.clone(), post.clone()),
        Cmd::Seq(cmds) => {
            let mut q = post.clone();
            for c in cmds.iter().rev() {
                q = wp_rec(sig, axiom, c, &q);
            }
            q
        }
        Cmd::Choice(cmds) => Formula::and(cmds.iter().map(|c| wp_rec(sig, axiom, c, post))),
    }
}

/// Hash-consed `wp`: identical to [`wp`] but operating on interned
/// [`FormulaId`]s throughout, so repeated subterms (the axiom guard, shared
/// postconditions under `|`) are substituted once and memoized.
///
/// `resolve(wp_id(..)) == wp(..)` — checked by property tests.
pub fn wp_id(sig: &Signature, axiom: FormulaId, cmd: &Cmd, post: FormulaId) -> FormulaId {
    let _span = ivy_telemetry::Span::enter("wp");
    Interner::with(|it| wp_in(it, sig, axiom, cmd, post))
}

/// [`wp_id`] against an already-held interner (for callers inside an
/// [`Interner::with`] scope, which must not re-enter the global lock).
pub fn wp_in(
    it: &mut Interner,
    sig: &Signature,
    axiom: FormulaId,
    cmd: &Cmd,
    post: FormulaId,
) -> FormulaId {
    match cmd {
        Cmd::Skip => post,
        Cmd::Abort => it.false_id(),
        Cmd::UpdateRel { rel, params, body } => {
            let target = it.implies(axiom, post);
            let b = it.intern(body);
            it.rewrite_relation(target, *rel, params, b)
        }
        Cmd::UpdateFun { fun, params, body } => {
            let target = it.implies(axiom, post);
            let b = it.intern_term(body);
            it.rewrite_function(target, *fun, params, b)
        }
        Cmd::Havoc(v) => {
            let decl = sig
                .function(v)
                .unwrap_or_else(|| panic!("havoc of undeclared variable `{v}`"));
            assert!(decl.is_constant(), "havoc target `{v}` is not a variable");
            let target = it.implies(axiom, post);
            let mut used: BTreeSet<Sym> = (*it.all_vars(target)).clone();
            let x = fresh_name(&heading_var(v), &mut used);
            let xv = it.var(x);
            let substituted = it.subst_constant(target, *v, xv);
            it.forall(vec![Binding::new(x, decl.ret)], substituted)
        }
        Cmd::Assume(phi) => {
            let p = it.intern(phi);
            it.implies(p, post)
        }
        Cmd::Seq(cmds) => {
            let mut q = post;
            for c in cmds.iter().rev() {
                q = wp_in(it, sig, axiom, c, q);
            }
            q
        }
        Cmd::Choice(cmds) => {
            let parts: Vec<FormulaId> = cmds
                .iter()
                .map(|c| wp_in(it, sig, axiom, c, post))
                .collect();
            it.and(parts)
        }
    }
}

/// A capitalized variable name for the havocked program variable `v`
/// (e.g. `n` becomes `N`), matching the parser's variable convention.
fn heading_var(v: &Sym) -> String {
    let mut s: String = v.as_str().to_string();
    if let Some(first) = s.get_mut(0..1) {
        first.make_ascii_uppercase();
    }
    format!("{s}_h")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_fol::parse_formula;

    fn sig() -> Signature {
        let mut sig = Signature::new();
        sig.add_sort("node").unwrap();
        sig.add_sort("id").unwrap();
        sig.add_function("idf", ["node"], "id").unwrap();
        sig.add_relation("leader", ["node"]).unwrap();
        sig.add_relation("pnd", ["id", "node"]).unwrap();
        sig.add_relation("le", ["id", "id"]).unwrap();
        sig.add_constant("n", "node").unwrap();
        sig.add_constant("m", "node").unwrap();
        sig
    }

    #[test]
    fn wp_skip_and_abort() {
        let sig = sig();
        let q = parse_formula("leader(n)").unwrap();
        assert_eq!(wp(&sig, &Formula::True, &Cmd::Skip, &q), q);
        assert_eq!(wp(&sig, &Formula::True, &Cmd::Abort, &q), Formula::False);
    }

    #[test]
    fn wp_assume() {
        let sig = sig();
        let q = parse_formula("leader(n)").unwrap();
        let phi = parse_formula("leader(m)").unwrap();
        let w = wp(&sig, &Formula::True, &Cmd::Assume(phi), &q);
        assert_eq!(w.to_string(), "leader(m) -> leader(n)");
    }

    #[test]
    fn wp_relation_update_substitutes() {
        let sig = sig();
        // leader(x) := false; then "no one is a leader" must hold trivially.
        let cmd = Cmd::UpdateRel {
            rel: Sym::new("leader"),
            params: vec![Sym::new("X0")],
            body: Formula::False,
        };
        let q = parse_formula("forall X:node. ~leader(X)").unwrap();
        let w = wp(&sig, &Formula::True, &cmd, &q);
        // The substituted postcondition is `forall X. ~false`, which
        // normalizes to `true` (substitution itself builds raw nodes).
        assert_eq!(ivy_fol::nnf(&w), Formula::True);
    }

    #[test]
    fn wp_havoc_quantifies() {
        let sig = sig();
        let q = parse_formula("leader(n)").unwrap();
        let w = wp(&sig, &Formula::True, &Cmd::Havoc(Sym::new("n")), &q);
        assert_eq!(w.to_string(), "forall N_h:node. leader(N_h)");
    }

    #[test]
    fn wp_seq_is_right_to_left() {
        let sig = sig();
        // n := m; assume leader(n)  -- wp(Q) = leader(m) -> Q[m/n].
        let cmd = Cmd::seq([
            Cmd::point_update("n", vec![], vec![], Term::cst("m")),
            Cmd::Assume(parse_formula("leader(n)").unwrap()),
        ]);
        let q = parse_formula("pnd(idf(n), n)").unwrap();
        let w = wp(&sig, &Formula::True, &cmd, &q);
        assert_eq!(w.to_string(), "leader(m) -> pnd(idf(m), m)");
    }

    #[test]
    fn wp_choice_conjoins() {
        let sig = sig();
        let q = parse_formula("leader(n)").unwrap();
        let cmd = Cmd::choice([Cmd::Assume(parse_formula("p").unwrap()), Cmd::Abort]);
        // Need `p` relation in sig.
        let mut sig2 = sig.clone();
        sig2.add_relation("p", Vec::<&str>::new()).unwrap();
        let w = wp(&sig2, &Formula::True, &cmd, &q);
        assert_eq!(w, Formula::False, "abort branch forces false");
        let _ = sig;
    }

    #[test]
    fn wp_axioms_guard_updates() {
        let sig = sig();
        let axiom = parse_formula("forall X:node. leader(X)").unwrap();
        let cmd = Cmd::UpdateRel {
            rel: Sym::new("leader"),
            params: vec![Sym::new("X0")],
            body: Formula::False,
        };
        // Post = false; but the update makes the axiom false, so no
        // execution survives: wp = (A -> false)[false/leader] = ~(forall X. false)
        // = true (on nonempty domains; formula-level simplification keeps the
        // negated quantifier).
        let w = wp(&sig, &axiom, &cmd, &Formula::False);
        assert_eq!(w.to_string(), "~(forall X:node. false)");
    }

    #[test]
    fn wp_preserves_ae_fragment() {
        // Lemma 3.2 on a representative command: the paper's receive action
        // shape. Q is ∀*; wp must prenex to ∀*∃* (here even ∀*).
        let sig = sig();
        let axiom = parse_formula("forall X:id, Y:id. le(X, Y) | le(Y, X)").unwrap();
        let cmd = Cmd::seq([
            Cmd::Havoc(Sym::new("n")),
            Cmd::Assume(parse_formula("exists I:id. pnd(I, n)").unwrap()),
            Cmd::insert_tuple(
                "pnd",
                vec![Sym::new("X0"), Sym::new("X1")],
                vec![Term::app("idf", [Term::cst("n")]), Term::cst("m")],
            ),
            Cmd::UpdateRel {
                rel: Sym::new("leader"),
                params: vec![Sym::new("X0")],
                body: parse_formula("leader(X0) | X0 = n").unwrap(),
            },
        ]);
        let q =
            parse_formula("forall N1:node, N2:node. leader(N1) & leader(N2) -> N1 = N2").unwrap();
        let w = wp(&sig, &axiom, &cmd, &q);
        assert!(
            ivy_fol::is_ae_sentence(&w),
            "wp left the ∀*∃* fragment: {w}"
        );
    }
}
