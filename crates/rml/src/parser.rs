//! A parser for `.rml` program files.
//!
//! The concrete syntax mirrors Figure 1 of the paper:
//!
//! ```text
//! sort node
//! sort id
//! function idf : node -> id
//! relation le : id, id
//! relation leader : node
//! variable n : node
//!
//! axiom unique_ids: forall N1:node, N2:node. N1 ~= N2 -> idf(N1) ~= idf(N2)
//! safety one_leader: forall X:node, Y:node. leader(X) & leader(Y) -> X = Y
//!
//! init {
//!   leader(X0) := false
//! }
//!
//! action elect {
//!   havoc n;
//!   assume forall X:node. le(idf(X), idf(n));
//!   leader.insert(n)
//! }
//! ```
//!
//! Statement forms inside blocks: `skip`, `abort`, `havoc v`,
//! `assume ϕ`, `assert ϕ`, `if ϕ { ... } [else { ... }]`,
//! bulk updates `r(X0, X1) := ϕ` / `f(X0) := t`, variable assignment
//! `v := t`, point updates `f[t̄] := t`, and `r.insert(t̄)` / `r.remove(t̄)`.

use std::fmt;

use ivy_fol::{parse_formula_prefix, parse_term_prefix, Formula, Signature, Sym, Term};

use crate::ast::{Action, Cmd, Program};

/// A parse error with byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RmlParseError {
    /// Byte offset into the source.
    pub pos: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for RmlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RML parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for RmlParseError {}

/// Parses an RML program. Declarations must precede their first use; the
/// program is *not* semantically validated here — run
/// [`crate::check::check_program`] on the result.
///
/// # Errors
///
/// Returns [`RmlParseError`] on syntax errors or duplicate/unknown
/// declarations.
pub fn parse_program(src: &str) -> Result<Program, RmlParseError> {
    let mut p = RmlParser {
        src,
        pos: 0,
        program: Program::new(Signature::new()),
    };
    p.parse()?;
    Ok(p.program)
}

struct RmlParser<'a> {
    src: &'a str,
    pos: usize,
    program: Program,
}

impl<'a> RmlParser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, RmlParseError> {
        Err(RmlParseError {
            pos: self.pos,
            msg: msg.into(),
        })
    }

    fn skip_ws(&mut self) {
        let bytes = self.src.as_bytes();
        loop {
            while self.pos < bytes.len() && (bytes[self.pos] as char).is_whitespace() {
                self.pos += 1;
            }
            if self.pos < bytes.len() && bytes[self.pos] == b'#' {
                while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
    }

    fn eat_str(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect_str(&mut self, s: &str) -> Result<(), RmlParseError> {
        if self.eat_str(s) {
            Ok(())
        } else {
            self.err(format!("expected `{s}`"))
        }
    }

    fn peek_ident(&mut self) -> Option<String> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        let end = rest
            .char_indices()
            .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '_' || *c == '\''))
            .map_or(rest.len(), |(i, _)| i);
        if end == 0 || !rest.starts_with(|c: char| c.is_ascii_alphabetic() || c == '_') {
            None
        } else {
            Some(rest[..end].to_string())
        }
    }

    fn ident(&mut self) -> Result<String, RmlParseError> {
        match self.peek_ident() {
            Some(s) => {
                self.pos += s.len();
                Ok(s)
            }
            None => self.err("expected identifier"),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_ident().as_deref() == Some(kw) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn formula(&mut self) -> Result<Formula, RmlParseError> {
        self.skip_ws();
        match parse_formula_prefix(&self.src[self.pos..]) {
            Ok((f, consumed)) => {
                self.pos += consumed;
                Ok(f)
            }
            Err(e) => Err(RmlParseError {
                pos: self.pos + e.pos,
                msg: e.msg,
            }),
        }
    }

    fn term(&mut self) -> Result<Term, RmlParseError> {
        self.skip_ws();
        match parse_term_prefix(&self.src[self.pos..]) {
            Ok((t, consumed)) => {
                self.pos += consumed;
                Ok(t)
            }
            Err(e) => Err(RmlParseError {
                pos: self.pos + e.pos,
                msg: e.msg,
            }),
        }
    }

    fn sort_list(&mut self) -> Result<Vec<String>, RmlParseError> {
        let mut out = vec![self.ident()?];
        while self.eat_str(",") {
            out.push(self.ident()?);
        }
        Ok(out)
    }

    fn parse(&mut self) -> Result<(), RmlParseError> {
        loop {
            self.skip_ws();
            if self.pos >= self.src.len() {
                return Ok(());
            }
            let Some(kw) = self.peek_ident() else {
                return self.err("expected a declaration keyword");
            };
            match kw.as_str() {
                "sort" => {
                    self.pos += kw.len();
                    let name = self.ident()?;
                    self.sig_mut(|sig| sig.add_sort(name.as_str()).map(|_| ()))?;
                }
                "relation" => {
                    self.pos += kw.len();
                    let name = self.ident()?;
                    let sorts = if self.eat_str(":") {
                        self.sort_list()?
                    } else {
                        Vec::new()
                    };
                    self.sig_mut(|sig| {
                        sig.add_relation(name.as_str(), sorts.iter().map(String::as_str))
                            .map(|_| ())
                    })?;
                }
                "function" => {
                    self.pos += kw.len();
                    let name = self.ident()?;
                    self.expect_str(":")?;
                    let args = self.sort_list()?;
                    self.expect_str("->")?;
                    let ret = self.ident()?;
                    self.sig_mut(|sig| {
                        sig.add_function(
                            name.as_str(),
                            args.iter().map(String::as_str),
                            ret.as_str(),
                        )
                        .map(|_| ())
                    })?;
                }
                "variable" | "local" => {
                    let is_local = kw == "local";
                    self.pos += kw.len();
                    let name = self.ident()?;
                    self.expect_str(":")?;
                    let sort = self.ident()?;
                    self.sig_mut(|sig| sig.add_constant(name.as_str(), sort.as_str()).map(|_| ()))?;
                    if is_local {
                        self.program.locals.insert(Sym::new(&name));
                    }
                }
                "axiom" => {
                    self.pos += kw.len();
                    let label = self.ident()?;
                    self.expect_str(":")?;
                    let f = self.formula()?;
                    self.program.axioms.push((label, f));
                }
                "safety" => {
                    self.pos += kw.len();
                    let label = self.ident()?;
                    self.expect_str(":")?;
                    let f = self.formula()?;
                    self.program.safety.push((label, f));
                }
                "init" => {
                    self.pos += kw.len();
                    let cmd = self.block()?;
                    self.program.init = Cmd::seq([self.program.init.clone(), cmd]);
                }
                "action" => {
                    self.pos += kw.len();
                    let name = self.ident()?;
                    let cmd = self.block()?;
                    if self.program.actions.iter().any(|a| a.name == name) {
                        return self.err(format!("duplicate action `{name}`"));
                    }
                    self.program.actions.push(Action { name, cmd });
                }
                "final" => {
                    self.pos += kw.len();
                    let cmd = self.block()?;
                    self.program.final_cmd = Cmd::seq([self.program.final_cmd.clone(), cmd]);
                }
                other => return self.err(format!("unknown declaration `{other}`")),
            }
        }
    }

    fn sig_mut(
        &mut self,
        f: impl FnOnce(&mut Signature) -> Result<(), ivy_fol::SigError>,
    ) -> Result<(), RmlParseError> {
        let mut sig = self.program.sig.clone();
        match f(&mut sig) {
            Ok(()) => {
                self.program.sig = sig;
                Ok(())
            }
            Err(e) => self.err(e.to_string()),
        }
    }

    fn block(&mut self) -> Result<Cmd, RmlParseError> {
        self.expect_str("{")?;
        let mut stmts = Vec::new();
        loop {
            if self.eat_str("}") {
                break;
            }
            stmts.push(self.stmt()?);
            // Optional semicolons between statements.
            while self.eat_str(";") {}
        }
        Ok(Cmd::seq(stmts))
    }

    fn stmt(&mut self) -> Result<Cmd, RmlParseError> {
        let Some(kw) = self.peek_ident() else {
            return self.err("expected a statement");
        };
        match kw.as_str() {
            "skip" => {
                self.pos += kw.len();
                Ok(Cmd::Skip)
            }
            "abort" => {
                self.pos += kw.len();
                Ok(Cmd::Abort)
            }
            "havoc" => {
                self.pos += kw.len();
                let v = self.ident()?;
                Ok(Cmd::Havoc(Sym::new(v)))
            }
            "assume" => {
                self.pos += kw.len();
                Ok(Cmd::Assume(self.formula()?))
            }
            "assert" => {
                self.pos += kw.len();
                Ok(Cmd::assert(self.formula()?))
            }
            "if" => {
                self.pos += kw.len();
                let cond = self.formula()?;
                let then_cmd = self.block()?;
                let else_cmd = if self.eat_keyword("else") {
                    self.block()?
                } else {
                    Cmd::Skip
                };
                Ok(Cmd::ite(cond, then_cmd, else_cmd))
            }
            _ => self.assignment_like(),
        }
    }

    /// Parses update statements headed by a symbol name.
    fn assignment_like(&mut self) -> Result<Cmd, RmlParseError> {
        let name = self.ident()?;
        let sym = Sym::new(&name);
        // r.insert(t̄) / r.remove(t̄)
        if self.eat_str(".") {
            let op = self.ident()?;
            self.expect_str("(")?;
            let mut tuple = vec![self.term()?];
            while self.eat_str(",") {
                tuple.push(self.term()?);
            }
            self.expect_str(")")?;
            let Some(arg_sorts) = self.program.sig.relation(&sym) else {
                return self.err(format!("`{name}` is not a declared relation"));
            };
            let params: Vec<Sym> = (0..arg_sorts.len())
                .map(|i| Sym::new(format!("X{i}")))
                .collect();
            return match op.as_str() {
                "insert" => Ok(Cmd::insert_tuple(sym, params, tuple)),
                "remove" => Ok(Cmd::remove_tuple(sym, params, tuple)),
                other => self.err(format!("unknown relation operation `.{other}`")),
            };
        }
        // f[t̄] := t (point update)
        if self.eat_str("[") {
            let mut at = vec![self.term()?];
            while self.eat_str(",") {
                at.push(self.term()?);
            }
            self.expect_str("]")?;
            self.expect_str(":=")?;
            let value = self.term()?;
            let Some(decl) = self.program.sig.function(&sym) else {
                return self.err(format!("`{name}` is not a declared function"));
            };
            let params: Vec<Sym> = (0..decl.args.len())
                .map(|i| Sym::new(format!("X{i}")))
                .collect();
            return Ok(Cmd::point_update(sym, params, at, value));
        }
        // Bulk update r(X0, ...) := ... or f(X0, ...) := ...
        if self.eat_str("(") {
            let mut params = Vec::new();
            if !self.eat_str(")") {
                loop {
                    let p = self.ident()?;
                    if !p.starts_with(|c: char| c.is_ascii_uppercase()) {
                        return self.err(format!(
                            "bulk-update parameter `{p}` must be a capitalized logical variable"
                        ));
                    }
                    params.push(Sym::new(p));
                    if self.eat_str(")") {
                        break;
                    }
                    self.expect_str(",")?;
                }
            }
            self.expect_str(":=")?;
            if self.program.sig.relation(&sym).is_some() {
                let body = self.formula()?;
                return Ok(Cmd::UpdateRel {
                    rel: sym,
                    params,
                    body,
                });
            }
            if self.program.sig.function(&sym).is_some() {
                let body = self.term()?;
                return Ok(Cmd::UpdateFun {
                    fun: sym,
                    params,
                    body,
                });
            }
            return self.err(format!("`{name}` is not declared"));
        }
        // Plain variable assignment v := t.
        if self.eat_str(":=") {
            let value = self.term()?;
            return Ok(Cmd::UpdateFun {
                fun: sym,
                params: vec![],
                body: value,
            });
        }
        self.err(format!("cannot parse statement starting with `{name}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_program;

    const TOY: &str = r#"
# A toy election protocol.
sort node
sort id
function idf : node -> id
relation le : id, id
relation leader : node
relation pnd : id, node
variable n : node
variable m : node

axiom le_total: forall X:id, Y:id. le(X, Y) | le(Y, X)
safety one_leader: forall X:node, Y:node. leader(X) & leader(Y) -> X = Y

init {
  leader(X0) := false;
  pnd(X0, X1) := false
}

action send {
  havoc n;
  havoc m;
  pnd.insert(idf(n), m)
}

action recv {
  havoc n;
  assume pnd(idf(n), n);
  if forall X:node. le(idf(X), idf(n)) {
    leader.insert(n)
  } else {
    skip
  }
}
"#;

    #[test]
    fn toy_program_parses_and_checks() {
        let p = parse_program(TOY).unwrap();
        assert_eq!(p.actions.len(), 2);
        assert_eq!(p.axioms.len(), 1);
        assert_eq!(p.safety.len(), 1);
        let errs = check_program(&p);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn action_structure() {
        let p = parse_program(TOY).unwrap();
        let send = p.action("send").unwrap();
        match &send.cmd {
            Cmd::Seq(cs) => assert_eq!(cs.len(), 3),
            other => panic!("expected seq, got {other}"),
        }
        let recv = p.action("recv").unwrap();
        assert!(matches!(&recv.cmd, Cmd::Seq(_)));
    }

    #[test]
    fn init_accumulates() {
        let p = parse_program(TOY).unwrap();
        match &p.init {
            Cmd::Seq(cs) => assert_eq!(cs.len(), 2),
            other => panic!("expected seq, got {other}"),
        }
    }

    #[test]
    fn unknown_keyword_rejected() {
        let e = parse_program("wibble x").unwrap_err();
        assert!(e.msg.contains("wibble"));
    }

    #[test]
    fn duplicate_action_rejected() {
        let src = "action a { skip }\naction a { skip }";
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn lowercase_bulk_param_rejected() {
        let src = "sort s\nrelation r : s\ninit { r(x) := true }";
        let e = parse_program(src).unwrap_err();
        assert!(e.msg.contains("capitalized"), "{e}");
    }

    #[test]
    fn point_update_parses() {
        let src = "sort s\nfunction f : s -> s\nvariable a : s\ninit { f[a] := a }";
        let p = parse_program(src).unwrap();
        // f: s -> s is not stratified; only parsing is under test here.
        match &p.init {
            Cmd::UpdateFun { body, .. } => {
                assert_eq!(body.to_string(), "ite(X0 = a, a, f(X0))");
            }
            other => panic!("expected update, got {other}"),
        }
    }

    #[test]
    fn variable_assignment_parses() {
        let src = "sort s\nvariable a : s\nvariable b : s\ninit { a := b }";
        let p = parse_program(src).unwrap();
        assert!(matches!(&p.init, Cmd::UpdateFun { params, .. } if params.is_empty()));
    }

    #[test]
    fn assert_statement_desugars() {
        let src = "sort s\nrelation r : s\naction a { assert forall X:s. r(X) }";
        let p = parse_program(src).unwrap();
        assert!(p.action("a").unwrap().cmd.mentions_abort());
    }

    #[test]
    fn error_positions_are_byte_offsets() {
        let src = "sort s\nrelation r : s\ninit { assume forall X:s. & }";
        let e = parse_program(src).unwrap_err();
        assert!(e.pos > 20);
    }
}
