//! Static validation of RML programs: sort checking, the quantifier-fragment
//! restrictions of Figure 10, and the stratification requirement.
//!
//! These checks are what make every verification condition land in decidable
//! EPR (Theorem 3.3): updates must be quantifier-free, assumes and axioms
//! `∃*∀*`, safety properties `∀*∃*`, and functions stratified.

use std::collections::BTreeMap;
use std::fmt;

use ivy_fol::{is_ae_sentence, is_ea_sentence, Formula, SortError, Sym};

use crate::ast::{Cmd, Program};

/// A single validation problem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// The signature's functions are not stratified.
    NotStratified(String),
    /// A symbol name uses the reserved `__` separator (needed for BMC
    /// vocabulary versioning).
    ReservedName(Sym),
    /// An ill-sorted formula or term.
    Sort(String, SortError),
    /// An update right-hand side contains quantifiers.
    UpdateNotQuantifierFree {
        /// The updated symbol.
        symbol: Sym,
    },
    /// Update parameters are not distinct, or the arity is wrong.
    BadUpdateParams {
        /// The updated symbol.
        symbol: Sym,
        /// Details.
        reason: String,
    },
    /// An update body mentions variables that are not parameters.
    UpdateOpenBody {
        /// The updated symbol.
        symbol: Sym,
        /// The stray variable.
        var: Sym,
    },
    /// An `assume`/axiom is not `∃*∀*`.
    NotEA {
        /// Where the formula came from (axiom label or "assume").
        context: String,
    },
    /// A safety property is not `∀*∃*`.
    NotAE {
        /// The property's label.
        label: String,
    },
    /// A formula that must be closed has a free variable.
    Open {
        /// Where the formula came from.
        context: String,
        /// The free variable.
        var: Sym,
    },
    /// `havoc` of something that is not a declared program variable.
    BadHavoc(Sym),
    /// Update of an undeclared symbol.
    UnknownSymbol(Sym),
}

impl CheckError {
    /// Whether this problem is purely a *fragment* violation — the program
    /// is well-formed but falls outside decidable EPR (unstratified
    /// functions, `∀∃` axioms/assumes, `∃∀` safety). Fragment problems are
    /// exactly what bounded instantiation (`--bound N`) tolerates: they
    /// change which verdicts are reachable, not what the program means.
    /// Everything else (sort errors, malformed updates, …) stays a hard
    /// error in every mode.
    pub fn is_fragment(&self) -> bool {
        matches!(
            self,
            CheckError::NotStratified(_) | CheckError::NotEA { .. } | CheckError::NotAE { .. }
        )
    }
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::NotStratified(msg) => write!(f, "{msg}"),
            CheckError::ReservedName(s) => {
                write!(f, "symbol `{s}` uses the reserved `__` separator")
            }
            CheckError::Sort(ctx, e) => write!(f, "in {ctx}: {e}"),
            CheckError::UpdateNotQuantifierFree { symbol } => {
                write!(f, "update of `{symbol}` has a quantified right-hand side")
            }
            CheckError::BadUpdateParams { symbol, reason } => {
                write!(f, "update of `{symbol}`: {reason}")
            }
            CheckError::UpdateOpenBody { symbol, var } => write!(
                f,
                "update of `{symbol}` mentions `{var}` which is not a parameter"
            ),
            CheckError::NotEA { context } => {
                write!(f, "{context} is not an ∃*∀* sentence")
            }
            CheckError::NotAE { label } => {
                write!(f, "safety property `{label}` is not a ∀*∃* sentence")
            }
            CheckError::Open { context, var } => {
                write!(f, "{context} has free variable `{var}`")
            }
            CheckError::BadHavoc(v) => {
                write!(f, "havoc target `{v}` is not a declared program variable")
            }
            CheckError::UnknownSymbol(s) => write!(f, "update of undeclared symbol `{s}`"),
        }
    }
}

impl std::error::Error for CheckError {}

fn is_quantifier_free(f: &Formula) -> bool {
    match f {
        Formula::True | Formula::False => true,
        Formula::Rel(..) | Formula::Eq(..) => true, // ite conditions are QF by construction
        Formula::Not(g) => is_quantifier_free(g),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().all(is_quantifier_free),
        Formula::Implies(a, b) | Formula::Iff(a, b) => {
            is_quantifier_free(a) && is_quantifier_free(b)
        }
        Formula::Forall(..) | Formula::Exists(..) => false,
    }
}

/// Validates a program; returns all problems found (empty = valid).
pub fn check_program(p: &Program) -> Vec<CheckError> {
    let mut errors = Vec::new();
    if let Err(e) = p.sig.stratification() {
        errors.push(CheckError::NotStratified(e.to_string()));
    }
    for (name, _) in p.sig.relations() {
        if name.as_str().contains("__") {
            errors.push(CheckError::ReservedName(*name));
        }
    }
    for (name, _) in p.sig.functions() {
        if name.as_str().contains("__") {
            errors.push(CheckError::ReservedName(*name));
        }
    }
    for (label, f) in &p.axioms {
        check_sentence(p, &format!("axiom `{label}`"), f, Fragment::Ea, &mut errors);
    }
    for (label, f) in &p.safety {
        check_sentence(
            p,
            &format!("safety property `{label}`"),
            f,
            Fragment::Ae,
            &mut errors,
        );
        if !is_ae_sentence(f) {
            errors.push(CheckError::NotAE {
                label: label.clone(),
            });
        }
    }
    check_cmd(p, &p.init, &mut errors);
    for a in &p.actions {
        check_cmd(p, &a.cmd, &mut errors);
    }
    check_cmd(p, &p.final_cmd, &mut errors);
    errors
}

enum Fragment {
    Ea,
    Ae,
}

fn check_sentence(
    p: &Program,
    context: &str,
    f: &Formula,
    fragment: Fragment,
    errors: &mut Vec<CheckError>,
) {
    if let Some(v) = f.free_vars().into_iter().next() {
        errors.push(CheckError::Open {
            context: context.to_string(),
            var: v,
        });
        return;
    }
    if let Err(e) = f.well_sorted(&p.sig, &BTreeMap::new()) {
        errors.push(CheckError::Sort(context.to_string(), e));
        return;
    }
    match fragment {
        Fragment::Ea => {
            if !is_ea_sentence(f) {
                errors.push(CheckError::NotEA {
                    context: context.to_string(),
                });
            }
        }
        Fragment::Ae => {} // AE reported by the caller with its label
    }
}

fn check_cmd(p: &Program, cmd: &Cmd, errors: &mut Vec<CheckError>) {
    match cmd {
        Cmd::Skip | Cmd::Abort => {}
        Cmd::UpdateRel { rel, params, body } => {
            let Some(arg_sorts) = p.sig.relation(rel) else {
                errors.push(CheckError::UnknownSymbol(*rel));
                return;
            };
            let arg_sorts = arg_sorts.to_vec();
            if params.len() != arg_sorts.len() {
                errors.push(CheckError::BadUpdateParams {
                    symbol: *rel,
                    reason: format!(
                        "expected {} parameter(s), found {}",
                        arg_sorts.len(),
                        params.len()
                    ),
                });
                return;
            }
            check_update_common(p, rel, params, &arg_sorts, errors);
            if !is_quantifier_free(body) {
                errors.push(CheckError::UpdateNotQuantifierFree { symbol: *rel });
            }
            let env: BTreeMap<Sym, ivy_fol::Sort> = params.iter().cloned().zip(arg_sorts).collect();
            for v in body.free_vars() {
                if !env.contains_key(&v) {
                    errors.push(CheckError::UpdateOpenBody {
                        symbol: *rel,
                        var: v,
                    });
                }
            }
            if let Err(e) = body.well_sorted(&p.sig, &env) {
                errors.push(CheckError::Sort(format!("update of `{rel}`"), e));
            }
        }
        Cmd::UpdateFun { fun, params, body } => {
            let Some(decl) = p.sig.function(fun) else {
                errors.push(CheckError::UnknownSymbol(*fun));
                return;
            };
            let decl = decl.clone();
            if params.len() != decl.args.len() {
                errors.push(CheckError::BadUpdateParams {
                    symbol: *fun,
                    reason: format!(
                        "expected {} parameter(s), found {}",
                        decl.args.len(),
                        params.len()
                    ),
                });
                return;
            }
            check_update_common(p, fun, params, &decl.args, errors);
            let env: BTreeMap<Sym, ivy_fol::Sort> =
                params.iter().cloned().zip(decl.args.clone()).collect();
            let mut body_vars = std::collections::BTreeSet::new();
            body.collect_vars(&mut body_vars);
            for v in body_vars {
                if !env.contains_key(&v) {
                    errors.push(CheckError::UpdateOpenBody {
                        symbol: *fun,
                        var: v,
                    });
                }
            }
            match body.sort(&p.sig, &env) {
                Some(s) if s == decl.ret => {}
                Some(s) => errors.push(CheckError::Sort(
                    format!("update of `{fun}`"),
                    SortError::SortMismatch {
                        term: body.clone(),
                        expected: decl.ret,
                        found: s,
                    },
                )),
                None => errors.push(CheckError::Sort(
                    format!("update of `{fun}`"),
                    SortError::IllSortedTerm(body.clone()),
                )),
            }
        }
        Cmd::Havoc(v) => {
            let ok = p.sig.function(v).is_some_and(|d| d.is_constant());
            if !ok {
                errors.push(CheckError::BadHavoc(*v));
            }
        }
        Cmd::Assume(f) => {
            check_sentence(p, "assume", f, Fragment::Ea, errors);
        }
        Cmd::Seq(cs) | Cmd::Choice(cs) => {
            for c in cs {
                check_cmd(p, c, errors);
            }
        }
    }
}

fn check_update_common(
    _p: &Program,
    symbol: &Sym,
    params: &[Sym],
    _sorts: &[ivy_fol::Sort],
    errors: &mut Vec<CheckError>,
) {
    let mut seen = std::collections::BTreeSet::new();
    for param in params {
        if !seen.insert(*param) {
            errors.push(CheckError::BadUpdateParams {
                symbol: *symbol,
                reason: format!("duplicate parameter `{param}`"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Action;
    use ivy_fol::{parse_formula, Signature, Term};

    fn base_program() -> Program {
        let mut sig = Signature::new();
        sig.add_sort("node").unwrap();
        sig.add_relation("leader", ["node"]).unwrap();
        sig.add_constant("n", "node").unwrap();
        Program::new(sig)
    }

    #[test]
    fn fragment_problems_are_exactly_what_bounds_tolerate() {
        // Fragment: the shape of the logic, fixable by a depth bound.
        assert!(CheckError::NotStratified("cycle".into()).is_fragment());
        assert!(CheckError::NotEA {
            context: "axiom a".into()
        }
        .is_fragment());
        assert!(CheckError::NotAE { label: "s".into() }.is_fragment());
        // Hard: the model itself is broken; no bound helps.
        assert!(!CheckError::UnknownSymbol(Sym::new("ghost")).is_fragment());
        assert!(!CheckError::Open {
            context: "axiom a".into(),
            var: Sym::new("X"),
        }
        .is_fragment());
    }

    #[test]
    fn valid_program_passes() {
        let mut p = base_program();
        p.axioms.push((
            "triv".into(),
            parse_formula("exists X:node. X = X").unwrap(),
        ));
        p.safety.push((
            "one_leader".into(),
            parse_formula("forall X:node, Y:node. leader(X) & leader(Y) -> X = Y").unwrap(),
        ));
        p.actions.push(Action {
            name: "elect".into(),
            cmd: Cmd::seq([
                Cmd::Havoc(Sym::new("n")),
                Cmd::insert_tuple("leader", vec![Sym::new("X0")], vec![Term::cst("n")]),
            ]),
        });
        assert_eq!(check_program(&p), vec![]);
    }

    #[test]
    fn ae_axiom_rejected() {
        let mut p = base_program();
        let mut sig = p.sig.clone();
        sig.add_relation("r", ["node", "node"]).unwrap();
        p.sig = sig;
        p.axioms.push((
            "ae".into(),
            parse_formula("forall X:node. exists Y:node. r(X, Y)").unwrap(),
        ));
        let errs = check_program(&p);
        assert!(
            errs.iter().any(|e| matches!(e, CheckError::NotEA { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn quantified_update_rejected() {
        let mut p = base_program();
        p.actions.push(Action {
            name: "bad".into(),
            cmd: Cmd::UpdateRel {
                rel: Sym::new("leader"),
                params: vec![Sym::new("X0")],
                body: parse_formula("exists Y:node. Y = X0").unwrap(),
            },
        });
        let errs = check_program(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, CheckError::UpdateNotQuantifierFree { .. })));
    }

    #[test]
    fn open_update_body_rejected() {
        let mut p = base_program();
        p.actions.push(Action {
            name: "bad".into(),
            cmd: Cmd::UpdateRel {
                rel: Sym::new("leader"),
                params: vec![Sym::new("X0")],
                body: parse_formula("X0 = Y9").unwrap(),
            },
        });
        let errs = check_program(&p);
        assert!(
            errs.iter()
                .any(|e| matches!(e, CheckError::UpdateOpenBody { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn bad_havoc_rejected() {
        let mut p = base_program();
        p.init = Cmd::Havoc(Sym::new("nonexistent"));
        let errs = check_program(&p);
        assert!(errs.iter().any(|e| matches!(e, CheckError::BadHavoc(_))));
    }

    #[test]
    fn reserved_names_rejected() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_relation("bad__name", ["s"]).unwrap();
        let p = Program::new(sig);
        let errs = check_program(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, CheckError::ReservedName(_))));
    }

    #[test]
    fn unstratified_rejected() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_function("next", ["s"], "s").unwrap();
        let p = Program::new(sig);
        let errs = check_program(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, CheckError::NotStratified(_))));
    }

    #[test]
    fn duplicate_params_rejected() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_relation("r", ["s", "s"]).unwrap();
        let mut p = Program::new(sig);
        p.init = Cmd::UpdateRel {
            rel: Sym::new("r"),
            params: vec![Sym::new("X"), Sym::new("X")],
            body: Formula::True,
        };
        let errs = check_program(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, CheckError::BadUpdateParams { .. })));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut p = base_program();
        p.init = Cmd::UpdateRel {
            rel: Sym::new("leader"),
            params: vec![],
            body: Formula::True,
        };
        let errs = check_program(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, CheckError::BadUpdateParams { .. })));
    }
}
