//! Pretty printing of whole RML programs back to concrete syntax.
//!
//! `parse_program(render_program(&p))` reconstructs an equivalent program;
//! the round trip is checked for all shipped protocol models.

use std::fmt::Write as _;

use crate::ast::{Cmd, Program};

/// Renders a program in the `.rml` concrete syntax.
///
/// Sugared forms (`assert`, `if`, `insert`) are expanded to their core
/// counterparts (`Choice`/`Assume`/bulk updates), so the output is a
/// *normalized* model rather than a byte-for-byte copy of the input.
pub fn render_program(p: &Program) -> String {
    let mut out = String::new();
    for sort in p.sig.sorts() {
        let _ = writeln!(out, "sort {sort}");
    }
    for (name, args) in p.sig.relations() {
        if args.is_empty() {
            let _ = writeln!(out, "relation {name}");
        } else {
            let args: Vec<String> = args.iter().map(ToString::to_string).collect();
            let _ = writeln!(out, "relation {name} : {}", args.join(", "));
        }
    }
    for (name, decl) in p.sig.functions() {
        if decl.is_constant() {
            let kw = if p.locals.contains(name) {
                "local"
            } else {
                "variable"
            };
            let _ = writeln!(out, "{kw} {name} : {}", decl.ret);
        } else {
            let args: Vec<String> = decl.args.iter().map(ToString::to_string).collect();
            let _ = writeln!(out, "function {name} : {} -> {}", args.join(", "), decl.ret);
        }
    }
    for (label, f) in &p.axioms {
        let _ = writeln!(out, "axiom {label}: {f}");
    }
    for (label, f) in &p.safety {
        let _ = writeln!(out, "safety {label}: {f}");
    }
    if p.init != Cmd::Skip {
        let _ = writeln!(out, "init {{");
        render_cmd(&mut out, &p.init, 1);
        let _ = writeln!(out, "}}");
    }
    for action in &p.actions {
        let _ = writeln!(out, "action {} {{", action.name);
        render_cmd(&mut out, &action.cmd, 1);
        let _ = writeln!(out, "}}");
    }
    if p.final_cmd != Cmd::Skip {
        let _ = writeln!(out, "final {{");
        render_cmd(&mut out, &p.final_cmd, 1);
        let _ = writeln!(out, "}}");
    }
    out
}

fn render_cmd(out: &mut String, cmd: &Cmd, indent: usize) {
    let pad = "  ".repeat(indent);
    match cmd {
        Cmd::Skip => {
            let _ = writeln!(out, "{pad}skip;");
        }
        Cmd::Abort => {
            let _ = writeln!(out, "{pad}abort;");
        }
        Cmd::Havoc(v) => {
            let _ = writeln!(out, "{pad}havoc {v};");
        }
        Cmd::Assume(f) => {
            let _ = writeln!(out, "{pad}assume {f};");
        }
        Cmd::UpdateRel { rel, params, body } => {
            let params: Vec<String> = params.iter().map(ToString::to_string).collect();
            let _ = writeln!(out, "{pad}{rel}({}) := {body};", params.join(", "));
        }
        Cmd::UpdateFun { fun, params, body } => {
            if params.is_empty() {
                let _ = writeln!(out, "{pad}{fun} := {body};");
            } else {
                let params: Vec<String> = params.iter().map(ToString::to_string).collect();
                let _ = writeln!(out, "{pad}{fun}({}) := {body};", params.join(", "));
            }
        }
        Cmd::Seq(cmds) => {
            for c in cmds {
                render_cmd(out, c, indent);
            }
        }
        Cmd::Choice(cmds) => {
            // Render as nested if over fresh oblivious branches is not
            // possible in the surface syntax; emit the desugared
            // assume-guarded form when the choice is an if/assert shape,
            // otherwise fall back to the `if`-reconstruction below.
            if let Some((cond, then_cmd, else_cmd)) = as_ite(cmds) {
                let _ = writeln!(out, "{pad}if {cond} {{");
                render_cmd(out, &then_cmd, indent + 1);
                if else_cmd != Cmd::Skip {
                    let _ = writeln!(out, "{pad}}} else {{");
                    render_cmd(out, &else_cmd, indent + 1);
                }
                let _ = writeln!(out, "{pad}}};");
            } else if let [only] = cmds.as_slice() {
                render_cmd(out, only, indent);
            } else {
                // A genuine nondeterministic choice that is not an
                // if-shape has no concrete syntax of its own; express it
                // with mutually exclusive guards when possible is not
                // generally possible, so we print each branch as an `if
                // true` cascade — still parseable and semantically a
                // superset... instead, panic loudly: shipped models only
                // produce if-shapes.
                unreachable!("free-form Choice has no surface syntax: {cmds:?}")
            }
        }
    }
}

/// Recognizes the `if` desugaring `{assume c; A} | {assume ~c; B}` (and the
/// `assert` shape `{assume ~c; abort} | skip`).
fn as_ite(cmds: &[Cmd]) -> Option<(ivy_fol::Formula, Cmd, Cmd)> {
    let [a, b] = cmds else { return None };
    let split = |c: &Cmd| -> Option<(ivy_fol::Formula, Cmd)> {
        match c {
            Cmd::Assume(f) => Some((f.clone(), Cmd::Skip)),
            Cmd::Seq(parts) => match parts.as_slice() {
                [Cmd::Assume(f), rest @ ..] => Some((f.clone(), Cmd::seq(rest.iter().cloned()))),
                _ => None,
            },
            Cmd::Skip => None,
            _ => None,
        }
    };
    let (ca, body_a) = split(a)?;
    match b {
        Cmd::Skip => {
            // assert shape: {assume ~phi; abort} | skip.
            Some((ca, body_a, Cmd::Skip))
        }
        _ => {
            let (cb, body_b) = split(b)?;
            if cb == ivy_fol::Formula::not(ca.clone()) {
                Some((ca, body_a, body_b))
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_program, parse_program};

    const TOY: &str = r#"
sort node
relation leader : node
local n : node
safety one: forall X:node, Y:node. leader(X) & leader(Y) -> X = Y
init { leader(X0) := false }
action elect {
  havoc n;
  if forall X:node. ~leader(X) { leader.insert(n) }
}
"#;

    #[test]
    fn round_trip_preserves_semantics() {
        let p1 = parse_program(TOY).unwrap();
        let text = render_program(&p1);
        let p2 = parse_program(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert!(check_program(&p2).is_empty());
        assert_eq!(p1.sig, p2.sig);
        assert_eq!(p1.axioms, p2.axioms);
        assert_eq!(p1.safety, p2.safety);
        assert_eq!(p1.locals, p2.locals);
        assert_eq!(p1.actions.len(), p2.actions.len());
        // The init command survives exactly; action bodies may renormalize
        // (if-reconstruction), so compare their path decompositions.
        assert_eq!(p1.init, p2.init);
        for (a1, a2) in p1.actions.iter().zip(&p2.actions) {
            assert_eq!(crate::paths(&a1.cmd), crate::paths(&a2.cmd), "{}", a1.name);
        }
    }
}
