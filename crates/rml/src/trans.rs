//! Compilation of RML commands to transition-relation formulas, and loop
//! unrolling for bounded verification (Section 4.1 of the paper).
//!
//! The paper formalizes `k`-invariance through `wp` (Equation 3), but naive
//! `wp`-unrolling duplicates the postcondition exponentially under
//! nondeterministic choice. We instead compile each loop-free command into a
//! two-vocabulary `∃*∀*` formula: commands are normalized to *guarded paths*
//! (distributing `|` over `;`), and each path is compiled with SSA-style
//! symbol versioning — updates define fresh symbol versions with universal
//! axioms, unmodified symbols get frame equalities only when some sibling
//! path modifies them. `∃*∀*` is closed under `∧` and `∨`, so a `k`-step
//! unrolling stays in EPR. The equivalence of the two encodings is checked
//! by property tests against `wp`.
//!
//! The compiler works entirely on the hash-consed IR of
//! [`ivy_fol::intern`]: every path formula is built as a [`FormulaId`], so
//! structurally shared pieces (axiom re-renames, frame equalities repeated
//! across sibling paths, path formulas repeated across steps) are
//! constructed and stored once. In particular the axiom conjunction — which
//! the old tree compiler deep-cloned and re-renamed on every update of a
//! mentioned symbol — now costs one memoized `rename_symbols` lookup per
//! distinct vocabulary.

use std::collections::{BTreeMap, BTreeSet};

use ivy_fol::intern::{FormulaId, Interner};
use ivy_fol::{Binding, Formula, Signature, Sym, Term};

use crate::ast::{Cmd, Program};

/// Maps each base symbol to its version at a given time point.
pub type SymMap = BTreeMap<Sym, Sym>;

/// One normalized execution path: a straight-line sequence of atomic
/// commands, optionally ending in `abort`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    /// Atomic commands in order (updates, havocs, assumes). Commands after
    /// an `abort` are unreachable and dropped.
    pub atoms: Vec<Cmd>,
    /// Whether the path ends in `abort`.
    pub aborts: bool,
}

/// Normalizes a loop-free command to its set of execution paths.
///
/// The result is exponential in the nesting of `|` inside `;` in the worst
/// case; RML protocol bodies are shallow choices of short sequences, so the
/// expansion matches the paper's action structure.
pub fn paths(cmd: &Cmd) -> Vec<Path> {
    match cmd {
        Cmd::Skip => vec![Path {
            atoms: vec![],
            aborts: false,
        }],
        Cmd::Abort => vec![Path {
            atoms: vec![],
            aborts: true,
        }],
        Cmd::UpdateRel { .. } | Cmd::UpdateFun { .. } | Cmd::Havoc(_) | Cmd::Assume(_) => {
            vec![Path {
                atoms: vec![cmd.clone()],
                aborts: false,
            }]
        }
        Cmd::Seq(cmds) => {
            let mut acc = vec![Path {
                atoms: vec![],
                aborts: false,
            }];
            for c in cmds {
                let continuations = paths(c);
                let mut next = Vec::new();
                for p in acc {
                    if p.aborts {
                        next.push(p);
                        continue;
                    }
                    for cont in &continuations {
                        let mut atoms = p.atoms.clone();
                        atoms.extend(cont.atoms.iter().cloned());
                        next.push(Path {
                            atoms,
                            aborts: cont.aborts,
                        });
                    }
                }
                acc = next;
            }
            acc
        }
        Cmd::Choice(cmds) => cmds.iter().flat_map(paths).collect(),
    }
}

/// An atomic command with interned payloads: the unit the compiler's path
/// normalization works over. Where [`paths`] deep-clones `Formula` trees in
/// the `Seq` cross-product, cloning an `IAtom` copies a [`FormulaId`] and a
/// short parameter vector, and each syntactic atom is interned exactly once
/// per unrolling instead of once per path it ends up on.
#[derive(Clone, Debug)]
enum IAtom {
    /// `assume φ`.
    Assume(FormulaId),
    /// `rel(params) := body`.
    UpdateRel {
        rel: Sym,
        params: Vec<Sym>,
        body: FormulaId,
    },
    /// `fun(params) := body`.
    UpdateFun {
        fun: Sym,
        params: Vec<Sym>,
        body: ivy_fol::intern::TermId,
    },
    /// `havoc v`.
    Havoc(Sym),
}

impl IAtom {
    /// The symbol this atom modifies, if any.
    fn modified(&self) -> Option<Sym> {
        match self {
            IAtom::Assume(_) => None,
            IAtom::UpdateRel { rel, .. } => Some(*rel),
            IAtom::UpdateFun { fun, .. } => Some(*fun),
            IAtom::Havoc(v) => Some(*v),
        }
    }
}

/// [`Path`] over interned atoms.
#[derive(Clone, Debug)]
struct IPath {
    atoms: Vec<IAtom>,
    aborts: bool,
}

/// [`paths`] over the hash-consed IR: same normalization, but formulas are
/// interned at the leaves — before the `Seq` cross-product multiplies the
/// atoms — so the expansion never copies a formula tree.
fn ipaths(it: &mut Interner, cmd: &Cmd) -> Vec<IPath> {
    match cmd {
        Cmd::Skip => vec![IPath {
            atoms: vec![],
            aborts: false,
        }],
        Cmd::Abort => vec![IPath {
            atoms: vec![],
            aborts: true,
        }],
        Cmd::Assume(phi) => vec![IPath {
            atoms: vec![IAtom::Assume(it.intern(phi))],
            aborts: false,
        }],
        Cmd::UpdateRel { rel, params, body } => vec![IPath {
            atoms: vec![IAtom::UpdateRel {
                rel: *rel,
                params: params.clone(),
                body: it.intern(body),
            }],
            aborts: false,
        }],
        Cmd::UpdateFun { fun, params, body } => vec![IPath {
            atoms: vec![IAtom::UpdateFun {
                fun: *fun,
                params: params.clone(),
                body: it.intern_term(body),
            }],
            aborts: false,
        }],
        Cmd::Havoc(v) => vec![IPath {
            atoms: vec![IAtom::Havoc(*v)],
            aborts: false,
        }],
        Cmd::Seq(cmds) => {
            let mut acc = vec![IPath {
                atoms: vec![],
                aborts: false,
            }];
            for c in cmds {
                let continuations = ipaths(it, c);
                let mut next = Vec::new();
                for p in acc {
                    if p.aborts {
                        next.push(p);
                        continue;
                    }
                    for cont in &continuations {
                        let mut atoms = p.atoms.clone();
                        atoms.extend(cont.atoms.iter().cloned());
                        next.push(IPath {
                            atoms,
                            aborts: cont.aborts,
                        });
                    }
                }
                acc = next;
            }
            acc
        }
        Cmd::Choice(cmds) => {
            let mut out = Vec::new();
            for c in cmds {
                out.extend(ipaths(it, c));
            }
            out
        }
    }
}

/// Renames relation/function symbols of a formula according to `map`
/// (symbols not in the map are unchanged).
///
/// Delegates to the interner ([`Interner::rename_symbols`]): renames are
/// memoized per (formula, map), so re-renaming a shared subformula — the
/// axiom conjunction, a frame equality — into an already-seen vocabulary is
/// a table lookup.
pub fn rename_symbols(f: &Formula, map: &SymMap) -> Formula {
    Interner::with(|it| {
        let fid = it.intern(f);
        let out = it.rename_symbols(fid, map);
        it.resolve(out)
    })
}

/// Renames function symbols of a term according to `map`.
///
/// Delegates to the interner like [`rename_symbols`].
pub fn rename_term(t: &Term, map: &SymMap) -> Term {
    Interner::with(|it| {
        let tid = it.intern_term(t);
        let out = it.rename_term_symbols(tid, map);
        it.resolve_term(out)
    })
}

/// A `k`-step symbolic unrolling of a program's loop.
///
/// All formulas are interned ([`FormulaId`]); use
/// [`ivy_fol::intern::resolve`] to materialize a tree when needed (e.g. for
/// display).
#[derive(Clone, Debug)]
pub struct Unrolling {
    /// The versioned signature: base symbols plus one copy per modification
    /// point.
    pub sig: Signature,
    /// Axioms at the pre-init state plus the init transition. Conjoin with
    /// `steps[0..j]` to constrain state `j`.
    pub base: FormulaId,
    /// `maps[j]` is the vocabulary of loop-head state `j`, for `j in 0..=k`.
    pub maps: Vec<SymMap>,
    /// `steps[j]` is the transition formula from state `j` to state `j+1`
    /// (the disjunction over all non-aborting body paths).
    pub steps: Vec<FormulaId>,
    /// Per step, the labeled path formulas `(action name, formula)` — used
    /// to reconstruct which action a BMC model took.
    pub step_paths: Vec<Vec<(String, FormulaId)>>,
    /// Error formula: some aborting path of `init` executes (from the
    /// pre-init state).
    pub init_error: FormulaId,
    /// `step_errors[j]`: some aborting path of the body executes from state
    /// `j` (labeled by action).
    pub step_errors: Vec<Vec<(String, FormulaId)>>,
    /// `final_errors[j]`: some aborting path of `final` executes from state
    /// `j`.
    pub final_errors: Vec<FormulaId>,
}

/// Compiles a `k`-step unrolling of `program`.
///
/// # Panics
///
/// Panics on invalid programs (undeclared symbols); run
/// [`crate::check::check_program`] first.
pub fn unroll(program: &Program, k: usize) -> Unrolling {
    unroll_inner(program, k, true)
}

/// Like [`unroll`], but state 0 is an *arbitrary* axiom-satisfying state
/// rather than the result of `init`. Used for inductiveness checks, where
/// the pre-state is constrained by the candidate invariant instead.
pub fn unroll_free(program: &Program, k: usize) -> Unrolling {
    unroll_inner(program, k, false)
}

fn unroll_inner(program: &Program, k: usize, with_init: bool) -> Unrolling {
    let _span = ivy_telemetry::Span::enter("trans");
    Interner::with(|it| {
        let axiom = it.intern(&program.axiom());
        let mut ctx = Ctx {
            sig: program.sig.clone(),
            axiom,
            counter: 0,
            frames: std::collections::HashMap::new(),
        };
        let identity: SymMap = program
            .sig
            .relations()
            .map(|(s, _)| (*s, *s))
            .chain(program.sig.functions().map(|(s, _)| (*s, *s)))
            .collect();

        // Pre-init state: axioms hold.
        let mut parts = vec![ctx.axiom];

        // Init phase (skipped for "free" unrollings: state 0 is then any
        // axiom-satisfying state).
        let (init_error, map0) = if with_init {
            let init_paths = ipaths(it, &program.init);
            let normal_init: Vec<&IPath> = init_paths.iter().filter(|p| !p.aborts).collect();
            let abort_init: Vec<&IPath> = init_paths.iter().filter(|p| p.aborts).collect();
            let (init_formula, map0) = ctx.compile_phase(it, &normal_init, &identity, "i");
            parts.push(init_formula);
            let errs: Vec<FormulaId> = abort_init
                .iter()
                .map(|p| ctx.compile_error_path(it, p, &identity))
                .collect();
            (it.or(errs), map0)
        } else {
            (it.false_id(), identity.clone())
        };

        // Body steps.
        let mut body_paths: Vec<(String, IPath)> = Vec::new();
        for a in &program.actions {
            for p in ipaths(it, &a.cmd) {
                body_paths.push((a.name.clone(), p));
            }
        }
        let mut maps = vec![map0];
        let mut steps = Vec::with_capacity(k);
        let mut step_paths = Vec::with_capacity(k);
        let mut step_errors = Vec::with_capacity(k);
        let mut final_errors = Vec::with_capacity(k + 1);
        for j in 0..k {
            let in_map = maps[j].clone();
            let normal: Vec<&IPath> = body_paths
                .iter()
                .filter(|(_, p)| !p.aborts)
                .map(|(_, p)| p)
                .collect();
            let (labeled, out_map) =
                ctx.compile_phase_labeled(it, &body_paths, &normal, &in_map, &format!("{}", j + 1));
            steps.push(it.or(labeled.iter().map(|(_, f)| *f).collect::<Vec<_>>()));
            step_paths.push(labeled);
            let errors: Vec<(String, FormulaId)> = body_paths
                .iter()
                .filter(|(_, p)| p.aborts)
                .map(|(name, p)| (name.clone(), ctx.compile_error_path(it, p, &in_map)))
                .collect();
            step_errors.push(errors);
            maps.push(out_map);
        }
        // Aborting final paths, from every loop-head state.
        let final_paths = ipaths(it, &program.final_cmd);
        for map in &maps {
            let errs: Vec<FormulaId> = final_paths
                .iter()
                .filter(|p| p.aborts)
                .map(|p| ctx.compile_error_path(it, p, map))
                .collect();
            final_errors.push(it.or(errs));
        }
        // Errors at state k (abort during step k+1) are intentionally absent:
        // callers decide how many steps to inspect.
        Unrolling {
            sig: ctx.sig,
            base: it.and(parts),
            maps,
            steps,
            step_paths,
            init_error,
            step_errors,
            final_errors,
        }
    })
}

struct Ctx {
    sig: Signature,
    axiom: FormulaId,
    counter: usize,
    /// Frame equalities keyed by `(symbol, from-version, to-version)`: the
    /// same frame is needed by every sibling path that leaves the symbol
    /// unwritten, so build its formula once.
    frames: std::collections::HashMap<(Sym, Sym, Sym), FormulaId>,
}

impl Ctx {
    /// Declares a fresh version of `base` and returns its name.
    fn fresh_version(&mut self, base: &Sym, tag: &str) -> Sym {
        loop {
            let name = Sym::new(format!("{base}__{tag}_{}", self.counter));
            self.counter += 1;
            if self.sig.relation(&name).is_some() || self.sig.function(&name).is_some() {
                continue;
            }
            if let Some(args) = self.sig.relation(base).map(<[ivy_fol::Sort]>::to_vec) {
                self.sig.add_relation(name, args).expect("fresh name");
            } else {
                let decl = self
                    .sig
                    .function(base)
                    .unwrap_or_else(|| panic!("unknown symbol `{base}`"))
                    .clone();
                self.sig
                    .add_function(name, decl.args, decl.ret)
                    .expect("fresh name");
            }
            return name;
        }
    }

    /// Compiles a set of non-aborting paths sharing an input vocabulary into
    /// a disjunction, producing the common output vocabulary.
    fn compile_phase(
        &mut self,
        it: &mut Interner,
        paths: &[&IPath],
        in_map: &SymMap,
        tag: &str,
    ) -> (FormulaId, SymMap) {
        let labeled: Vec<(String, IPath)> = paths
            .iter()
            .map(|p| (String::new(), (*p).clone()))
            .collect();
        let refs: Vec<&IPath> = paths.to_vec();
        let (out, map) = self.compile_phase_labeled(it, &labeled, &refs, in_map, tag);
        (
            it.or(out.into_iter().map(|(_, f)| f).collect::<Vec<_>>()),
            map,
        )
    }

    fn compile_phase_labeled(
        &mut self,
        it: &mut Interner,
        labeled: &[(String, IPath)],
        normal: &[&IPath],
        in_map: &SymMap,
        tag: &str,
    ) -> (Vec<(String, FormulaId)>, SymMap) {
        // Union of modified symbols across all (non-aborting) paths.
        let mut updated: BTreeSet<Sym> = BTreeSet::new();
        for p in normal {
            updated.extend(p.atoms.iter().filter_map(IAtom::modified));
        }
        let mut out_map = in_map.clone();
        for sym in &updated {
            let v = self.fresh_version(sym, tag);
            out_map.insert(*sym, v);
        }
        let mut out = Vec::new();
        for (name, p) in labeled {
            if p.aborts {
                continue;
            }
            let f = self.compile_path(it, p, in_map, &out_map, &updated, tag);
            out.push((name.clone(), f));
        }
        if out.is_empty() {
            // No normal path: the phase cannot execute.
            out.push((String::new(), it.false_id()));
        }
        (out, out_map)
    }

    /// Compiles one non-aborting path between fixed vocabularies.
    fn compile_path(
        &mut self,
        it: &mut Interner,
        path: &IPath,
        in_map: &SymMap,
        out_map: &SymMap,
        updated: &BTreeSet<Sym>,
        tag: &str,
    ) -> FormulaId {
        // Last update of each symbol writes its out version directly.
        let last_write: BTreeMap<Sym, usize> = path
            .atoms
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.modified().map(|s| (s, i)))
            .collect();
        let mut cur = in_map.clone();
        let mut parts = Vec::new();
        for (i, atom) in path.atoms.iter().enumerate() {
            match atom {
                IAtom::Assume(phi) => {
                    parts.push(it.rename_symbols(*phi, &cur));
                }
                IAtom::UpdateRel { rel, params, body } => {
                    let body = it.rename_symbols(*body, &cur);
                    let target = self.version_for(rel, i, &last_write, out_map, tag);
                    let arg_sorts = self.sig.relation(rel).expect("validated program").to_vec();
                    let bindings: Vec<Binding> = params
                        .iter()
                        .zip(&arg_sorts)
                        .map(|(p, s)| Binding::new(*p, *s))
                        .collect();
                    let args: Vec<_> = params.iter().map(|p| it.var(*p)).collect();
                    let lhs = it.rel(target, args);
                    let eqv = it.iff(lhs, body);
                    parts.push(it.forall(bindings, eqv));
                    cur.insert(*rel, target);
                    self.push_axiom_if_touched(it, rel, &cur, &mut parts);
                }
                IAtom::UpdateFun { fun, params, body } => {
                    let body = it.rename_term_symbols(*body, &cur);
                    let target = self.version_for(fun, i, &last_write, out_map, tag);
                    let decl = self.sig.function(fun).expect("validated program").clone();
                    let bindings: Vec<Binding> = params
                        .iter()
                        .zip(&decl.args)
                        .map(|(p, s)| Binding::new(*p, *s))
                        .collect();
                    let args: Vec<_> = params.iter().map(|p| it.var(*p)).collect();
                    let lhs = it.app(target, args);
                    let eqv = it.eq(lhs, body);
                    parts.push(it.forall(bindings, eqv));
                    cur.insert(*fun, target);
                    self.push_axiom_if_touched(it, fun, &cur, &mut parts);
                }
                IAtom::Havoc(v) => {
                    let target = self.version_for(v, i, &last_write, out_map, tag);
                    // No constraint: the new version is a free constant.
                    cur.insert(*v, target);
                    self.push_axiom_if_touched(it, v, &cur, &mut parts);
                }
            }
        }
        // Frames: symbols some sibling path modifies, but this one does not.
        for sym in updated {
            if cur[sym] == out_map[sym] {
                continue; // written by this path
            }
            parts.push(self.frame_equality(it, sym, &cur[sym], &out_map[sym]));
        }
        it.and(parts)
    }

    /// The version an update at position `i` writes: the common out-version
    /// when it is the symbol's last write, a temporary otherwise.
    fn version_for(
        &mut self,
        sym: &Sym,
        i: usize,
        last_write: &BTreeMap<Sym, usize>,
        out_map: &SymMap,
        tag: &str,
    ) -> Sym {
        if last_write.get(sym) == Some(&i) {
            out_map[sym]
        } else {
            self.fresh_version(sym, &format!("{tag}t"))
        }
    }

    /// Asserts the axioms over the current vocabulary when the freshly
    /// modified symbol occurs in them (mutations are restricted to
    /// axiom-satisfying states, mirroring `wp`'s `A → Q`). The rename is
    /// memoized in the interner: sibling paths sharing a vocabulary re-use
    /// the same renamed axiom node.
    fn push_axiom_if_touched(
        &self,
        it: &mut Interner,
        sym: &Sym,
        cur: &SymMap,
        parts: &mut Vec<FormulaId>,
    ) {
        if it.mentions(self.axiom, *sym) {
            parts.push(it.rename_symbols(self.axiom, cur));
        }
    }

    fn frame_equality(&mut self, it: &mut Interner, sym: &Sym, from: &Sym, to: &Sym) -> FormulaId {
        if let Some(&f) = self.frames.get(&(*sym, *from, *to)) {
            return f;
        }
        let out = if let Some(arg_sorts) = self.sig.relation(sym).map(<[ivy_fol::Sort]>::to_vec) {
            let (params, bindings) = crate::ast::update_params(&arg_sorts);
            let args: Vec<_> = params.iter().map(|p| it.var(*p)).collect();
            let lhs = it.rel(*to, args.clone());
            let rhs = it.rel(*from, args);
            let eqv = it.iff(lhs, rhs);
            it.forall(bindings, eqv)
        } else {
            let decl = self.sig.function(sym).expect("known symbol").clone();
            let (params, bindings) = crate::ast::update_params(&decl.args);
            let args: Vec<_> = params.iter().map(|p| it.var(*p)).collect();
            let lhs = it.app(*to, args.clone());
            let rhs = it.app(*from, args);
            let eqv = it.eq(lhs, rhs);
            it.forall(bindings, eqv)
        };
        self.frames.insert((*sym, *from, *to), out);
        out
    }

    /// Compiles an aborting path: the conjunction of its constraints up to
    /// the `abort` (no output vocabulary — execution ends).
    fn compile_error_path(
        &mut self,
        it: &mut Interner,
        path: &IPath,
        in_map: &SymMap,
    ) -> FormulaId {
        debug_assert!(path.aborts);
        let mut cur = in_map.clone();
        let mut parts = Vec::new();
        for atom in &path.atoms {
            match atom {
                IAtom::Assume(phi) => {
                    parts.push(it.rename_symbols(*phi, &cur));
                }
                IAtom::UpdateRel { rel, params, body } => {
                    let body = it.rename_symbols(*body, &cur);
                    let target = self.fresh_version(rel, "e");
                    let arg_sorts = self.sig.relation(rel).expect("validated program").to_vec();
                    let bindings: Vec<Binding> = params
                        .iter()
                        .zip(&arg_sorts)
                        .map(|(p, s)| Binding::new(*p, *s))
                        .collect();
                    let args: Vec<_> = params.iter().map(|p| it.var(*p)).collect();
                    let lhs = it.rel(target, args);
                    let eqv = it.iff(lhs, body);
                    parts.push(it.forall(bindings, eqv));
                    cur.insert(*rel, target);
                    self.push_axiom_if_touched(it, rel, &cur, &mut parts);
                }
                IAtom::UpdateFun { fun, params, body } => {
                    let body = it.rename_term_symbols(*body, &cur);
                    let target = self.fresh_version(fun, "e");
                    let decl = self.sig.function(fun).expect("validated program").clone();
                    let bindings: Vec<Binding> = params
                        .iter()
                        .zip(&decl.args)
                        .map(|(p, s)| Binding::new(*p, *s))
                        .collect();
                    let args: Vec<_> = params.iter().map(|p| it.var(*p)).collect();
                    let lhs = it.app(target, args);
                    let eqv = it.eq(lhs, body);
                    parts.push(it.forall(bindings, eqv));
                    cur.insert(*fun, target);
                    self.push_axiom_if_touched(it, fun, &cur, &mut parts);
                }
                IAtom::Havoc(v) => {
                    let target = self.fresh_version(v, "e");
                    cur.insert(*v, target);
                    self.push_axiom_if_touched(it, v, &cur, &mut parts);
                }
            }
        }
        it.and(parts)
    }
}

/// Projects a model over a versioned signature down to a base-signature
/// structure at the time point described by `map`.
///
/// # Panics
///
/// Panics if the model does not interpret a mapped symbol (construction
/// bug).
pub fn project_state(
    model: &ivy_fol::Structure,
    base_sig: &Signature,
    map: &SymMap,
) -> ivy_fol::Structure {
    use std::sync::Arc;
    let mut out = ivy_fol::Structure::new(Arc::new(base_sig.clone()));
    // Copy the domains.
    let mut elem_map: BTreeMap<ivy_fol::Elem, ivy_fol::Elem> = BTreeMap::new();
    for sort in base_sig.sorts() {
        for e in model.elements(sort).collect::<Vec<_>>() {
            let ne = out.add_element(*sort);
            elem_map.insert(e, ne);
        }
    }
    for (base, _) in base_sig.relations() {
        let versioned = map.get(base).unwrap_or(base);
        for tuple in model.rel_tuples(versioned).cloned().collect::<Vec<_>>() {
            let t: Vec<ivy_fol::Elem> = tuple.iter().map(|e| elem_map[e].clone()).collect();
            out.set_rel(*base, t, true);
        }
    }
    for (base, _) in base_sig.functions() {
        let versioned = map.get(base).unwrap_or(base);
        let entries: Vec<(Vec<ivy_fol::Elem>, ivy_fol::Elem)> = model
            .fun_entries(versioned)
            .map(|(a, r)| (a.clone(), r.clone()))
            .collect();
        for (args, res) in entries {
            let a: Vec<ivy_fol::Elem> = args.iter().map(|e| elem_map[e].clone()).collect();
            out.set_fun(*base, a, elem_map[&res].clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Action;
    use ivy_fol::{parse_formula, prenex};

    fn toy_program() -> Program {
        let mut sig = Signature::new();
        sig.add_sort("node").unwrap();
        sig.add_relation("leader", ["node"]).unwrap();
        sig.add_relation("pnd", ["node"]).unwrap();
        sig.add_constant("n", "node").unwrap();
        let mut p = Program::new(sig);
        p.init = Cmd::UpdateRel {
            rel: Sym::new("leader"),
            params: vec![Sym::new("X0")],
            body: Formula::False,
        };
        p.actions.push(Action {
            name: "elect".into(),
            cmd: Cmd::seq([
                Cmd::Havoc(Sym::new("n")),
                Cmd::Assume(parse_formula("pnd(n)").unwrap()),
                Cmd::insert_tuple("leader", vec![Sym::new("X0")], vec![Term::cst("n")]),
            ]),
        });
        p.actions.push(Action {
            name: "noop".into(),
            cmd: Cmd::Skip,
        });
        p.safety.push((
            "at_most_one".into(),
            parse_formula("forall X:node, Y:node. leader(X) & leader(Y) -> X = Y").unwrap(),
        ));
        p
    }

    #[test]
    fn paths_distribute_choice_over_seq() {
        let c = Cmd::seq([
            Cmd::choice([Cmd::Skip, Cmd::Abort]),
            Cmd::Havoc(Sym::new("n")),
        ]);
        let ps = paths(&c);
        assert_eq!(ps.len(), 2);
        // Abort path truncated: no havoc after abort.
        let abort_path = ps.iter().find(|p| p.aborts).unwrap();
        assert!(abort_path.atoms.is_empty());
        let normal = ps.iter().find(|p| !p.aborts).unwrap();
        assert_eq!(normal.atoms.len(), 1);
    }

    #[test]
    fn assert_sugar_produces_error_path() {
        let c = Cmd::assert(parse_formula("p").unwrap());
        let ps = paths(&c);
        assert_eq!(ps.len(), 2);
        let abort = ps.iter().find(|p| p.aborts).unwrap();
        assert_eq!(abort.atoms.len(), 1, "assume ~p before abort");
    }

    #[test]
    fn unrolling_shapes() {
        let p = toy_program();
        let u = unroll(&p, 3);
        assert_eq!(u.maps.len(), 4);
        assert_eq!(u.steps.len(), 3);
        assert_eq!(u.step_paths.len(), 3);
        // leader is modified by init: map 0 differs from identity.
        assert_ne!(u.maps[0][&Sym::new("leader")], Sym::new("leader"));
        // pnd is never modified: identity at every step.
        for m in &u.maps {
            assert_eq!(m[&Sym::new("pnd")], Sym::new("pnd"));
        }
        // n is modified by the body: versions advance per step.
        assert_ne!(u.maps[1][&Sym::new("n")], u.maps[2][&Sym::new("n")]);
    }

    #[test]
    fn unrolling_stays_in_ea() {
        let p = toy_program();
        let u = unroll(&p, 2);
        let mut query = vec![ivy_fol::intern::resolve(u.base)];
        query.extend(u.steps.iter().map(|&s| ivy_fol::intern::resolve(s)));
        // Violation of safety at state 2.
        let bad = Formula::not(rename_symbols(&p.safety_formula(), &u.maps[2]));
        query.push(bad);
        let pren = prenex(&Formula::and(query));
        assert!(pren.is_ea(), "BMC query must stay in ∃*∀*");
    }

    #[test]
    fn versioned_signature_is_stratified() {
        let p = toy_program();
        let u = unroll(&p, 3);
        assert!(u.sig.stratification().is_ok());
    }

    #[test]
    fn rename_symbols_renames_nested_terms() {
        let map: SymMap = [(Sym::new("f"), Sym::new("f__1"))].into_iter().collect();
        let f = parse_formula("r(f(c)) & f(c) = c").unwrap();
        let g = rename_symbols(&f, &map);
        assert_eq!(g.to_string(), "r(f__1(c)) & f__1(c) = c");
    }

    #[test]
    fn skip_only_program_has_trivial_steps() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        let mut p = Program::new(sig);
        p.actions.push(Action {
            name: "idle".into(),
            cmd: Cmd::Skip,
        });
        let u = unroll(&p, 2);
        let true_id = Interner::with(|it| it.true_id());
        for step in &u.steps {
            assert_eq!(step, &true_id, "skip transitions are vacuous");
        }
    }

    #[test]
    fn unrolling_matches_tree_reference_shape() {
        // The interned compiler must produce the same formulas the tree
        // compiler used to: spot-check that resolving `base` round-trips
        // through the interner unchanged and mentions the init version.
        let p = toy_program();
        let u = unroll(&p, 1);
        let base = ivy_fol::intern::resolve(u.base);
        assert_eq!(ivy_fol::intern::intern(&base), u.base, "lossless bridge");
        let v0 = &u.maps[0][&Sym::new("leader")];
        assert!(base.mentions_symbol(v0), "init defines {v0}");
    }
}
