//! Compilation of RML commands to transition-relation formulas, and loop
//! unrolling for bounded verification (Section 4.1 of the paper).
//!
//! The paper formalizes `k`-invariance through `wp` (Equation 3), but naive
//! `wp`-unrolling duplicates the postcondition exponentially under
//! nondeterministic choice. We instead compile each loop-free command into a
//! two-vocabulary `∃*∀*` formula: commands are normalized to *guarded paths*
//! (distributing `|` over `;`), and each path is compiled with SSA-style
//! symbol versioning — updates define fresh symbol versions with universal
//! axioms, unmodified symbols get frame equalities only when some sibling
//! path modifies them. `∃*∀*` is closed under `∧` and `∨`, so a `k`-step
//! unrolling stays in EPR. The equivalence of the two encodings is checked
//! by property tests against `wp`.

use std::collections::{BTreeMap, BTreeSet};

use ivy_fol::{Binding, Formula, Signature, Sym, Term};

use crate::ast::{Cmd, Program};

/// Maps each base symbol to its version at a given time point.
pub type SymMap = BTreeMap<Sym, Sym>;

/// One normalized execution path: a straight-line sequence of atomic
/// commands, optionally ending in `abort`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    /// Atomic commands in order (updates, havocs, assumes). Commands after
    /// an `abort` are unreachable and dropped.
    pub atoms: Vec<Cmd>,
    /// Whether the path ends in `abort`.
    pub aborts: bool,
}

/// Normalizes a loop-free command to its set of execution paths.
///
/// The result is exponential in the nesting of `|` inside `;` in the worst
/// case; RML protocol bodies are shallow choices of short sequences, so the
/// expansion matches the paper's action structure.
pub fn paths(cmd: &Cmd) -> Vec<Path> {
    match cmd {
        Cmd::Skip => vec![Path {
            atoms: vec![],
            aborts: false,
        }],
        Cmd::Abort => vec![Path {
            atoms: vec![],
            aborts: true,
        }],
        Cmd::UpdateRel { .. } | Cmd::UpdateFun { .. } | Cmd::Havoc(_) | Cmd::Assume(_) => {
            vec![Path {
                atoms: vec![cmd.clone()],
                aborts: false,
            }]
        }
        Cmd::Seq(cmds) => {
            let mut acc = vec![Path {
                atoms: vec![],
                aborts: false,
            }];
            for c in cmds {
                let continuations = paths(c);
                let mut next = Vec::new();
                for p in acc {
                    if p.aborts {
                        next.push(p);
                        continue;
                    }
                    for cont in &continuations {
                        let mut atoms = p.atoms.clone();
                        atoms.extend(cont.atoms.iter().cloned());
                        next.push(Path {
                            atoms,
                            aborts: cont.aborts,
                        });
                    }
                }
                acc = next;
            }
            acc
        }
        Cmd::Choice(cmds) => cmds.iter().flat_map(paths).collect(),
    }
}

/// Renames relation/function symbols of a formula according to `map`
/// (symbols not in the map are unchanged).
pub fn rename_symbols(f: &Formula, map: &SymMap) -> Formula {
    match f {
        Formula::True | Formula::False => f.clone(),
        Formula::Rel(r, args) => Formula::Rel(
            map.get(r).unwrap_or(r).clone(),
            args.iter().map(|t| rename_term(t, map)).collect(),
        ),
        Formula::Eq(a, b) => Formula::Eq(rename_term(a, map), rename_term(b, map)),
        Formula::Not(g) => Formula::Not(Box::new(rename_symbols(g, map))),
        Formula::And(fs) => Formula::And(fs.iter().map(|g| rename_symbols(g, map)).collect()),
        Formula::Or(fs) => Formula::Or(fs.iter().map(|g| rename_symbols(g, map)).collect()),
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(rename_symbols(a, map)),
            Box::new(rename_symbols(b, map)),
        ),
        Formula::Iff(a, b) => Formula::Iff(
            Box::new(rename_symbols(a, map)),
            Box::new(rename_symbols(b, map)),
        ),
        Formula::Forall(bs, g) => Formula::Forall(bs.clone(), Box::new(rename_symbols(g, map))),
        Formula::Exists(bs, g) => Formula::Exists(bs.clone(), Box::new(rename_symbols(g, map))),
    }
}

/// Renames function symbols of a term according to `map`.
pub fn rename_term(t: &Term, map: &SymMap) -> Term {
    match t {
        Term::Var(_) => t.clone(),
        Term::App(f, args) => Term::App(
            map.get(f).unwrap_or(f).clone(),
            args.iter().map(|a| rename_term(a, map)).collect(),
        ),
        Term::Ite(c, a, b) => Term::Ite(
            Box::new(rename_symbols(c, map)),
            Box::new(rename_term(a, map)),
            Box::new(rename_term(b, map)),
        ),
    }
}

/// A `k`-step symbolic unrolling of a program's loop.
#[derive(Clone, Debug)]
pub struct Unrolling {
    /// The versioned signature: base symbols plus one copy per modification
    /// point.
    pub sig: Signature,
    /// Axioms at the pre-init state plus the init transition. Conjoin with
    /// `steps[0..j]` to constrain state `j`.
    pub base: Formula,
    /// `maps[j]` is the vocabulary of loop-head state `j`, for `j in 0..=k`.
    pub maps: Vec<SymMap>,
    /// `steps[j]` is the transition formula from state `j` to state `j+1`
    /// (the disjunction over all non-aborting body paths).
    pub steps: Vec<Formula>,
    /// Per step, the labeled path formulas `(action name, formula)` — used
    /// to reconstruct which action a BMC model took.
    pub step_paths: Vec<Vec<(String, Formula)>>,
    /// Error formula: some aborting path of `init` executes (from the
    /// pre-init state).
    pub init_error: Formula,
    /// `step_errors[j]`: some aborting path of the body executes from state
    /// `j` (labeled by action).
    pub step_errors: Vec<Vec<(String, Formula)>>,
    /// `final_errors[j]`: some aborting path of `final` executes from state
    /// `j`.
    pub final_errors: Vec<Formula>,
}

/// Compiles a `k`-step unrolling of `program`.
///
/// # Panics
///
/// Panics on invalid programs (undeclared symbols); run
/// [`crate::check::check_program`] first.
pub fn unroll(program: &Program, k: usize) -> Unrolling {
    unroll_inner(program, k, true)
}

/// Like [`unroll`], but state 0 is an *arbitrary* axiom-satisfying state
/// rather than the result of `init`. Used for inductiveness checks, where
/// the pre-state is constrained by the candidate invariant instead.
pub fn unroll_free(program: &Program, k: usize) -> Unrolling {
    unroll_inner(program, k, false)
}

fn unroll_inner(program: &Program, k: usize, with_init: bool) -> Unrolling {
    let mut ctx = Ctx {
        sig: program.sig.clone(),
        axiom: program.axiom(),
        counter: 0,
    };
    let identity: SymMap = program
        .sig
        .relations()
        .map(|(s, _)| (s.clone(), s.clone()))
        .chain(program.sig.functions().map(|(s, _)| (s.clone(), s.clone())))
        .collect();

    // Pre-init state: axioms hold.
    let mut parts = vec![ctx.axiom.clone()];

    // Init phase (skipped for "free" unrollings: state 0 is then any
    // axiom-satisfying state).
    let (init_error, map0) = if with_init {
        let init_paths = paths(&program.init);
        let normal_init: Vec<&Path> = init_paths.iter().filter(|p| !p.aborts).collect();
        let abort_init: Vec<&Path> = init_paths.iter().filter(|p| p.aborts).collect();
        let (init_formula, map0) = ctx.compile_phase(&normal_init, &identity, "i");
        parts.push(init_formula);
        let init_error = Formula::or(
            abort_init
                .iter()
                .map(|p| ctx.compile_error_path(p, &identity)),
        );
        (init_error, map0)
    } else {
        (Formula::False, identity.clone())
    };

    // Body steps.
    let body_paths: Vec<(String, Path)> = program
        .actions
        .iter()
        .flat_map(|a| paths(&a.cmd).into_iter().map(move |p| (a.name.clone(), p)))
        .collect();
    let mut maps = vec![map0];
    let mut steps = Vec::with_capacity(k);
    let mut step_paths = Vec::with_capacity(k);
    let mut step_errors = Vec::with_capacity(k);
    let mut final_errors = Vec::with_capacity(k + 1);
    for j in 0..k {
        let in_map = maps[j].clone();
        let normal: Vec<&Path> = body_paths
            .iter()
            .filter(|(_, p)| !p.aborts)
            .map(|(_, p)| p)
            .collect();
        let (labeled, out_map) =
            ctx.compile_phase_labeled(&body_paths, &normal, &in_map, &format!("{}", j + 1));
        steps.push(Formula::or(labeled.iter().map(|(_, f)| f.clone())));
        step_paths.push(labeled);
        let errors: Vec<(String, Formula)> = body_paths
            .iter()
            .filter(|(_, p)| p.aborts)
            .map(|(name, p)| (name.clone(), ctx.compile_error_path(p, &in_map)))
            .collect();
        step_errors.push(errors);
        maps.push(out_map);
    }
    // Aborting final paths, from every loop-head state.
    let final_paths = paths(&program.final_cmd);
    for map in &maps {
        let err = Formula::or(
            final_paths
                .iter()
                .filter(|p| p.aborts)
                .map(|p| ctx.compile_error_path(p, map)),
        );
        final_errors.push(err);
    }
    // Errors at state k (abort during step k+1) are intentionally absent:
    // callers decide how many steps to inspect.
    Unrolling {
        sig: ctx.sig,
        base: Formula::and(parts),
        maps,
        steps,
        step_paths,
        init_error,
        step_errors,
        final_errors,
    }
}

struct Ctx {
    sig: Signature,
    axiom: Formula,
    counter: usize,
}

impl Ctx {
    /// Declares a fresh version of `base` and returns its name.
    fn fresh_version(&mut self, base: &Sym, tag: &str) -> Sym {
        loop {
            let name = Sym::new(format!("{base}__{tag}_{}", self.counter));
            self.counter += 1;
            if self.sig.relation(&name).is_some() || self.sig.function(&name).is_some() {
                continue;
            }
            if let Some(args) = self.sig.relation(base).map(<[ivy_fol::Sort]>::to_vec) {
                self.sig
                    .add_relation(name.clone(), args)
                    .expect("fresh name");
            } else {
                let decl = self
                    .sig
                    .function(base)
                    .unwrap_or_else(|| panic!("unknown symbol `{base}`"))
                    .clone();
                self.sig
                    .add_function(name.clone(), decl.args, decl.ret)
                    .expect("fresh name");
            }
            return name;
        }
    }

    /// Compiles a set of non-aborting paths sharing an input vocabulary into
    /// a disjunction, producing the common output vocabulary.
    fn compile_phase(&mut self, paths: &[&Path], in_map: &SymMap, tag: &str) -> (Formula, SymMap) {
        let labeled: Vec<(String, Path)> = paths
            .iter()
            .map(|p| (String::new(), (*p).clone()))
            .collect();
        let refs: Vec<&Path> = paths.to_vec();
        let (out, map) = self.compile_phase_labeled(&labeled, &refs, in_map, tag);
        (Formula::or(out.into_iter().map(|(_, f)| f)), map)
    }

    fn compile_phase_labeled(
        &mut self,
        labeled: &[(String, Path)],
        normal: &[&Path],
        in_map: &SymMap,
        tag: &str,
    ) -> (Vec<(String, Formula)>, SymMap) {
        // Union of modified symbols across all (non-aborting) paths.
        let mut updated: BTreeSet<Sym> = BTreeSet::new();
        for p in normal {
            for a in &p.atoms {
                updated.extend(a.modified_symbols());
            }
        }
        let mut out_map = in_map.clone();
        for sym in &updated {
            let v = self.fresh_version(sym, tag);
            out_map.insert(sym.clone(), v);
        }
        let mut out = Vec::new();
        for (name, p) in labeled {
            if p.aborts {
                continue;
            }
            let f = self.compile_path(p, in_map, &out_map, &updated, tag);
            out.push((name.clone(), f));
        }
        if out.is_empty() {
            // No normal path: the phase cannot execute.
            out.push((String::new(), Formula::False));
        }
        (out, out_map)
    }

    /// Compiles one non-aborting path between fixed vocabularies.
    fn compile_path(
        &mut self,
        path: &Path,
        in_map: &SymMap,
        out_map: &SymMap,
        updated: &BTreeSet<Sym>,
        tag: &str,
    ) -> Formula {
        // Last update of each symbol writes its out version directly.
        let last_write: BTreeMap<Sym, usize> = path
            .atoms
            .iter()
            .enumerate()
            .flat_map(|(i, a)| a.modified_symbols().into_iter().map(move |s| (s, i)))
            .collect();
        let mut cur = in_map.clone();
        let mut parts = Vec::new();
        for (i, atom) in path.atoms.iter().enumerate() {
            match atom {
                Cmd::Assume(phi) => parts.push(rename_symbols(phi, &cur)),
                Cmd::UpdateRel { rel, params, body } => {
                    let body = rename_symbols(body, &cur);
                    let target = self.version_for(rel, i, &last_write, out_map, tag);
                    let arg_sorts = self.sig.relation(rel).expect("validated program").to_vec();
                    let bindings: Vec<Binding> = params
                        .iter()
                        .zip(&arg_sorts)
                        .map(|(p, s)| Binding::new(p.clone(), s.clone()))
                        .collect();
                    let lhs =
                        Formula::rel(target.clone(), params.iter().map(|p| Term::Var(p.clone())));
                    parts.push(Formula::forall(bindings, Formula::iff(lhs, body)));
                    cur.insert(rel.clone(), target);
                    self.push_axiom_if_touched(rel, &cur, &mut parts);
                }
                Cmd::UpdateFun { fun, params, body } => {
                    let body = rename_term(body, &cur);
                    let target = self.version_for(fun, i, &last_write, out_map, tag);
                    let decl = self.sig.function(fun).expect("validated program").clone();
                    let bindings: Vec<Binding> = params
                        .iter()
                        .zip(&decl.args)
                        .map(|(p, s)| Binding::new(p.clone(), s.clone()))
                        .collect();
                    let lhs =
                        Term::app(target.clone(), params.iter().map(|p| Term::Var(p.clone())));
                    parts.push(Formula::forall(bindings, Formula::eq(lhs, body)));
                    cur.insert(fun.clone(), target);
                    self.push_axiom_if_touched(fun, &cur, &mut parts);
                }
                Cmd::Havoc(v) => {
                    let target = self.version_for(v, i, &last_write, out_map, tag);
                    // No constraint: the new version is a free constant.
                    cur.insert(v.clone(), target);
                    self.push_axiom_if_touched(v, &cur, &mut parts);
                }
                other => unreachable!("non-atomic command {other} in path"),
            }
        }
        // Frames: symbols some sibling path modifies, but this one does not.
        for sym in updated {
            if cur[sym] == out_map[sym] {
                continue; // written by this path
            }
            parts.push(self.frame_equality(sym, &cur[sym], &out_map[sym]));
        }
        Formula::and(parts)
    }

    /// The version an update at position `i` writes: the common out-version
    /// when it is the symbol's last write, a temporary otherwise.
    fn version_for(
        &mut self,
        sym: &Sym,
        i: usize,
        last_write: &BTreeMap<Sym, usize>,
        out_map: &SymMap,
        tag: &str,
    ) -> Sym {
        if last_write.get(sym) == Some(&i) {
            out_map[sym].clone()
        } else {
            self.fresh_version(sym, &format!("{tag}t"))
        }
    }

    /// Asserts the axioms over the current vocabulary when the freshly
    /// modified symbol occurs in them (mutations are restricted to
    /// axiom-satisfying states, mirroring `wp`'s `A → Q`).
    fn push_axiom_if_touched(&self, sym: &Sym, cur: &SymMap, parts: &mut Vec<Formula>) {
        if self.axiom.mentions_symbol(sym) {
            parts.push(rename_symbols(&self.axiom, cur));
        }
    }

    fn frame_equality(&self, sym: &Sym, from: &Sym, to: &Sym) -> Formula {
        if let Some(arg_sorts) = self.sig.relation(sym).map(<[ivy_fol::Sort]>::to_vec) {
            let (params, bindings) = crate::ast::update_params(&arg_sorts);
            let args: Vec<Term> = params.iter().map(|p| Term::Var(p.clone())).collect();
            Formula::forall(
                bindings,
                Formula::iff(
                    Formula::rel(to.clone(), args.clone()),
                    Formula::rel(from.clone(), args),
                ),
            )
        } else {
            let decl = self.sig.function(sym).expect("known symbol").clone();
            let (params, bindings) = crate::ast::update_params(&decl.args);
            let args: Vec<Term> = params.iter().map(|p| Term::Var(p.clone())).collect();
            Formula::forall(
                bindings,
                Formula::eq(
                    Term::app(to.clone(), args.clone()),
                    Term::app(from.clone(), args),
                ),
            )
        }
    }

    /// Compiles an aborting path: the conjunction of its constraints up to
    /// the `abort` (no output vocabulary — execution ends).
    fn compile_error_path(&mut self, path: &Path, in_map: &SymMap) -> Formula {
        debug_assert!(path.aborts);
        let mut cur = in_map.clone();
        let mut parts = Vec::new();
        for atom in &path.atoms {
            match atom {
                Cmd::Assume(phi) => parts.push(rename_symbols(phi, &cur)),
                Cmd::UpdateRel { rel, params, body } => {
                    let body = rename_symbols(body, &cur);
                    let target = self.fresh_version(rel, "e");
                    let arg_sorts = self.sig.relation(rel).expect("validated program").to_vec();
                    let bindings: Vec<Binding> = params
                        .iter()
                        .zip(&arg_sorts)
                        .map(|(p, s)| Binding::new(p.clone(), s.clone()))
                        .collect();
                    let lhs =
                        Formula::rel(target.clone(), params.iter().map(|p| Term::Var(p.clone())));
                    parts.push(Formula::forall(bindings, Formula::iff(lhs, body)));
                    cur.insert(rel.clone(), target);
                    self.push_axiom_if_touched(rel, &cur, &mut parts);
                }
                Cmd::UpdateFun { fun, params, body } => {
                    let body = rename_term(body, &cur);
                    let target = self.fresh_version(fun, "e");
                    let decl = self.sig.function(fun).expect("validated program").clone();
                    let bindings: Vec<Binding> = params
                        .iter()
                        .zip(&decl.args)
                        .map(|(p, s)| Binding::new(p.clone(), s.clone()))
                        .collect();
                    let lhs =
                        Term::app(target.clone(), params.iter().map(|p| Term::Var(p.clone())));
                    parts.push(Formula::forall(bindings, Formula::eq(lhs, body)));
                    cur.insert(fun.clone(), target);
                    self.push_axiom_if_touched(fun, &cur, &mut parts);
                }
                Cmd::Havoc(v) => {
                    let target = self.fresh_version(v, "e");
                    cur.insert(v.clone(), target);
                    self.push_axiom_if_touched(v, &cur, &mut parts);
                }
                other => unreachable!("non-atomic command {other} in path"),
            }
        }
        Formula::and(parts)
    }
}

/// Projects a model over a versioned signature down to a base-signature
/// structure at the time point described by `map`.
///
/// # Panics
///
/// Panics if the model does not interpret a mapped symbol (construction
/// bug).
pub fn project_state(
    model: &ivy_fol::Structure,
    base_sig: &Signature,
    map: &SymMap,
) -> ivy_fol::Structure {
    use std::sync::Arc;
    let mut out = ivy_fol::Structure::new(Arc::new(base_sig.clone()));
    // Copy the domains.
    let mut elem_map: BTreeMap<ivy_fol::Elem, ivy_fol::Elem> = BTreeMap::new();
    for sort in base_sig.sorts() {
        for e in model.elements(sort).collect::<Vec<_>>() {
            let ne = out.add_element(sort.clone());
            elem_map.insert(e, ne);
        }
    }
    for (base, _) in base_sig.relations() {
        let versioned = map.get(base).unwrap_or(base);
        for tuple in model.rel_tuples(versioned).cloned().collect::<Vec<_>>() {
            let t: Vec<ivy_fol::Elem> = tuple.iter().map(|e| elem_map[e].clone()).collect();
            out.set_rel(base.clone(), t, true);
        }
    }
    for (base, _) in base_sig.functions() {
        let versioned = map.get(base).unwrap_or(base);
        let entries: Vec<(Vec<ivy_fol::Elem>, ivy_fol::Elem)> = model
            .fun_entries(versioned)
            .map(|(a, r)| (a.clone(), r.clone()))
            .collect();
        for (args, res) in entries {
            let a: Vec<ivy_fol::Elem> = args.iter().map(|e| elem_map[e].clone()).collect();
            out.set_fun(base.clone(), a, elem_map[&res].clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Action;
    use ivy_fol::{parse_formula, prenex};

    fn toy_program() -> Program {
        let mut sig = Signature::new();
        sig.add_sort("node").unwrap();
        sig.add_relation("leader", ["node"]).unwrap();
        sig.add_relation("pnd", ["node"]).unwrap();
        sig.add_constant("n", "node").unwrap();
        let mut p = Program::new(sig);
        p.init = Cmd::UpdateRel {
            rel: Sym::new("leader"),
            params: vec![Sym::new("X0")],
            body: Formula::False,
        };
        p.actions.push(Action {
            name: "elect".into(),
            cmd: Cmd::seq([
                Cmd::Havoc(Sym::new("n")),
                Cmd::Assume(parse_formula("pnd(n)").unwrap()),
                Cmd::insert_tuple("leader", vec![Sym::new("X0")], vec![Term::cst("n")]),
            ]),
        });
        p.actions.push(Action {
            name: "noop".into(),
            cmd: Cmd::Skip,
        });
        p.safety.push((
            "at_most_one".into(),
            parse_formula("forall X:node, Y:node. leader(X) & leader(Y) -> X = Y").unwrap(),
        ));
        p
    }

    #[test]
    fn paths_distribute_choice_over_seq() {
        let c = Cmd::seq([
            Cmd::choice([Cmd::Skip, Cmd::Abort]),
            Cmd::Havoc(Sym::new("n")),
        ]);
        let ps = paths(&c);
        assert_eq!(ps.len(), 2);
        // Abort path truncated: no havoc after abort.
        let abort_path = ps.iter().find(|p| p.aborts).unwrap();
        assert!(abort_path.atoms.is_empty());
        let normal = ps.iter().find(|p| !p.aborts).unwrap();
        assert_eq!(normal.atoms.len(), 1);
    }

    #[test]
    fn assert_sugar_produces_error_path() {
        let c = Cmd::assert(parse_formula("p").unwrap());
        let ps = paths(&c);
        assert_eq!(ps.len(), 2);
        let abort = ps.iter().find(|p| p.aborts).unwrap();
        assert_eq!(abort.atoms.len(), 1, "assume ~p before abort");
    }

    #[test]
    fn unrolling_shapes() {
        let p = toy_program();
        let u = unroll(&p, 3);
        assert_eq!(u.maps.len(), 4);
        assert_eq!(u.steps.len(), 3);
        assert_eq!(u.step_paths.len(), 3);
        // leader is modified by init: map 0 differs from identity.
        assert_ne!(u.maps[0][&Sym::new("leader")], Sym::new("leader"));
        // pnd is never modified: identity at every step.
        for m in &u.maps {
            assert_eq!(m[&Sym::new("pnd")], Sym::new("pnd"));
        }
        // n is modified by the body: versions advance per step.
        assert_ne!(u.maps[1][&Sym::new("n")], u.maps[2][&Sym::new("n")]);
    }

    #[test]
    fn unrolling_stays_in_ea() {
        let p = toy_program();
        let u = unroll(&p, 2);
        let mut query = vec![u.base.clone()];
        query.extend(u.steps.iter().cloned());
        // Violation of safety at state 2.
        let bad = Formula::not(rename_symbols(&p.safety_formula(), &u.maps[2]));
        query.push(bad);
        let pren = prenex(&Formula::and(query));
        assert!(pren.is_ea(), "BMC query must stay in ∃*∀*");
    }

    #[test]
    fn versioned_signature_is_stratified() {
        let p = toy_program();
        let u = unroll(&p, 3);
        assert!(u.sig.stratification().is_ok());
    }

    #[test]
    fn rename_symbols_renames_nested_terms() {
        let map: SymMap = [(Sym::new("f"), Sym::new("f__1"))].into_iter().collect();
        let f = parse_formula("r(f(c)) & f(c) = c").unwrap();
        let g = rename_symbols(&f, &map);
        assert_eq!(g.to_string(), "r(f__1(c)) & f__1(c) = c");
    }

    #[test]
    fn skip_only_program_has_trivial_steps() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        let mut p = Program::new(sig);
        p.actions.push(Action {
            name: "idle".into(),
            cmd: Cmd::Skip,
        });
        let u = unroll(&p, 2);
        for step in &u.steps {
            assert_eq!(step, &Formula::True, "skip transitions are vacuous");
        }
    }
}
