//! RML — the Relational Modeling Language of the Ivy paper (Section 3).
//!
//! RML models infinite-state systems with finite relations over unbounded
//! sorted domains, stratified functions, quantifier-free updates and `∃*∀*`
//! assumes, guaranteeing that every verification condition is in decidable
//! EPR. This crate provides:
//!
//! * the [`Cmd`]/[`Program`] AST with the paper's syntactic sugar
//!   (Figures 10 and 12);
//! * a parser for `.rml` program text ([`parse_program`]);
//! * static validation of the fragment restrictions ([`check_program`]);
//! * the weakest-precondition operator of Figure 13 ([`wp()`]);
//! * a transition-relation compiler and loop unroller for bounded
//!   verification ([`trans`]);
//! * an explicit-state interpreter used for differential testing
//!   ([`interp`]).
//!
//! # Example
//!
//! ```
//! use ivy_rml::{parse_program, check_program};
//!
//! let p = parse_program(r#"
//! sort node
//! relation leader : node
//! variable n : node
//! safety at_most_one:
//!   forall X:node, Y:node. leader(X) & leader(Y) -> X = Y
//! init { leader(X0) := false }
//! action elect { havoc n; leader.insert(n) }
//! "#)?;
//! assert!(check_program(&p).is_empty());
//! # Ok::<(), ivy_rml::RmlParseError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod check;
pub mod interp;
pub mod parser;
pub mod pretty;
pub mod trans;
pub mod wp;

pub use ast::{update_params, Action, Cmd, Program};
pub use check::{check_program, CheckError};
pub use interp::{exec_all, exec_random, step_random, ExecOutcome, InterpError};
pub use parser::{parse_program, RmlParseError};
pub use pretty::render_program;
pub use trans::{
    paths, project_state, rename_symbols, unroll, unroll_free, Path, SymMap, Unrolling,
};
pub use wp::{wp, wp_id, wp_in};
