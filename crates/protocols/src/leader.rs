//! Leader election in a ring — the paper's running example (Figures 1–9).

use ivy_core::Conjecture;
use ivy_fol::parse_formula;
use ivy_rml::{check_program, parse_program, Program};

/// The RML source text (Figure 1).
pub const SOURCE: &str = include_str!("../rml/leader.rml");

/// Parses the protocol model.
///
/// # Panics
///
/// Panics if the embedded source fails to parse or validate (a build bug).
pub fn program() -> Program {
    let p = parse_program(SOURCE).expect("leader.rml parses");
    let errs = check_program(&p);
    assert!(errs.is_empty(), "leader.rml validates: {errs:?}");
    p
}

/// The buggy variant of Section 2.2: the `unique_ids` axiom is omitted,
/// letting two nodes share an id; BMC with bound 4 then produces the
/// two-leaders error trace of Figure 4.
pub fn program_without_unique_ids() -> Program {
    let mut p = program();
    p.axioms.retain(|(label, _)| label != "unique_ids");
    p
}

/// The paper's inductive invariant (Figure 6): the safety property `C0`
/// plus the three conjectures found interactively.
///
/// # Panics
///
/// Panics if the embedded formulas fail to parse (a build bug).
pub fn invariant() -> Vec<Conjecture> {
    vec![
        Conjecture::new("C0", parse_formula(C0).expect("C0 parses")),
        Conjecture::new("C1", parse_formula(C1).expect("C1 parses")),
        Conjecture::new("C2", parse_formula(C2).expect("C2 parses")),
        Conjecture::new("C3", parse_formula(C3).expect("C3 parses")),
    ]
}

/// C0: at most one leader (the safety property).
pub const C0: &str = "forall N1:node, N2:node. ~(leader(N1) & N1 ~= N2 & leader(N2))";

/// C1: the leader has the highest id.
pub const C1: &str = "forall N1:node, N2:node. ~(N1 ~= N2 & leader(N1) & le(idf(N1), idf(N2)))";

/// C2: only the highest id can be pending at its own node.
pub const C2: &str =
    "forall N1:node, N2:node. ~(N1 ~= N2 & pnd(idf(N1), N1) & le(idf(N1), idf(N2)))";

/// C3: a pending id cannot have bypassed a node with a higher id.
pub const C3: &str = "forall N1:node, N2:node, N3:node. \
    ~(btw(N1, N2, N3) & pnd(idf(N2), N1) & le(idf(N2), idf(N3)))";

/// The minimization measures a user would pick for this protocol
/// (Section 4.3 suggests minimizing elements and the `pnd` relation).
pub fn measures() -> Vec<ivy_core::Measure> {
    use ivy_fol::{Sort, Sym};
    vec![
        ivy_core::Measure::SortSize(Sort::new("node")),
        ivy_core::Measure::SortSize(Sort::new("id")),
        ivy_core::Measure::PositiveTuples(Sym::new("pnd")),
        ivy_core::Measure::PositiveTuples(Sym::new("leader")),
    ]
}

/// A scripted user re-enacting the paper's three generalization insights
/// (Figures 7–9). Each CTI is classified by its root cause and answered
/// with the corresponding coarse generalization, then BMC + Auto Generalize
/// with bound 3 — exactly the narration of Section 2.3:
///
/// * a leader with a non-maximal id → drop topology and `pnd` (Figure 7 (b));
/// * a node's own id pending at it while a higher id exists → drop topology
///   and `leader`, keep `pnd` (Figure 8 (b));
/// * a pending id that bypassed a higher node → keep the topology as `btw`,
///   drop `leader` (Figure 9 (b)).
pub fn paper_user(steps: usize) -> ivy_core::ScriptedUser {
    use ivy_core::CtiDecision;
    use ivy_fol::{PartialStructure, Sym};
    let locals = program().locals;
    let mut user = ivy_core::ScriptedUser::new();
    for _ in 0..steps {
        let locals = locals.clone();
        user.push_cti(move |_ctx, cti| {
            let mut s_u = PartialStructure::from_structure_without(&cti.state, &locals);
            let bad_leader = parse_formula(
                "exists N1:node, N2:node. N1 ~= N2 & leader(N1) & le(idf(N1), idf(N2))",
            )
            .expect("parses");
            let bad_pnd = parse_formula(
                "exists N1:node, N2:node. N1 ~= N2 & pnd(idf(N1), N1) & le(idf(N1), idf(N2))",
            )
            .expect("parses");
            if cti.state.eval_closed(&bad_leader).unwrap_or(false) {
                s_u.drop_symbol(&Sym::new("btw"));
                s_u.drop_symbol(&Sym::new("pnd"));
            } else if cti.state.eval_closed(&bad_pnd).unwrap_or(false) {
                s_u.drop_symbol(&Sym::new("btw"));
                s_u.drop_symbol(&Sym::new("leader"));
                s_u.drop_negative(&Sym::new("pnd"));
            } else {
                s_u.drop_symbol(&Sym::new("leader"));
                s_u.drop_negative(&Sym::new("pnd"));
                s_u.drop_negative(&Sym::new("btw"));
            }
            s_u.drop_negative(&Sym::new("le"));
            s_u.drop_negative(&Sym::new("idf"));
            CtiDecision::Generalize {
                upper_bound: s_u,
                bound: 3,
            }
        });
    }
    user
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_core::{Bmc, Verifier};

    #[test]
    fn model_parses_and_validates() {
        let p = program();
        assert_eq!(p.actions.len(), 2);
        assert_eq!(p.axioms.len(), 9);
        // Figure 14 row "Leader election in ring": S = 2, RF = 5.
        assert_eq!(p.sig.sorts().len(), 2);
        assert_eq!(p.sig.symbol_count(), 5);
    }

    #[test]
    fn figure6_invariant_is_inductive() {
        let p = program();
        let v = Verifier::new(&p);
        let inv = invariant();
        let result = v.check(&inv).unwrap();
        assert!(result.is_inductive(), "paper invariant must be inductive");
    }

    #[test]
    fn c0_alone_is_not_inductive() {
        let p = program();
        let v = Verifier::new(&p);
        let inv = vec![invariant().remove(0)];
        match v.check(&inv).unwrap() {
            ivy_core::Inductiveness::Cti(cti) => {
                // The CTI satisfies C0 but its successor violates it
                // (Figure 7 (a1)/(a2)).
                assert!(cti.state.eval_closed(&inv[0].formula).unwrap());
                let succ = cti.successor.expect("consecution CTI");
                assert!(!succ.eval_closed(&inv[0].formula).unwrap());
            }
            ivy_core::Inductiveness::Inductive => panic!("C0 alone cannot be inductive"),
        }
    }

    #[test]
    fn dropping_any_paper_conjecture_breaks_inductiveness() {
        let p = program();
        let v = Verifier::new(&p);
        let full = invariant();
        for drop in 1..full.len() {
            let mut inv = full.clone();
            inv.remove(drop);
            let result = v.check(&inv).unwrap();
            assert!(
                !result.is_inductive(),
                "dropping {} should break inductiveness",
                full[drop].name
            );
        }
    }

    #[test]
    fn figure4_missing_axiom_found_by_bmc_bound_4() {
        let p = program_without_unique_ids();
        let bmc = Bmc::new(&p);
        let trace = bmc
            .check_safety(4)
            .unwrap()
            .expect("two leaders reachable without unique ids");
        assert_eq!(trace.violated, "at_most_one_leader");
        assert_eq!(trace.steps(), 4, "Figure 4 shows a 4-step trace");
        // Final state has two leaders.
        let last = trace.states.last().unwrap();
        let two = ivy_fol::parse_formula("exists X:node, Y:node. X ~= Y & leader(X) & leader(Y)")
            .unwrap();
        assert!(last.eval_closed(&two).unwrap());
    }

    #[test]
    fn correct_model_passes_bmc_bound_3() {
        let p = program();
        let bmc = Bmc::new(&p);
        assert!(bmc.check_safety(3).unwrap().is_none());
    }
}
